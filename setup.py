"""Setup shim.

This environment has no network access and no ``wheel`` package, so PEP 660
editable installs (``pip install -e .``) cannot build the editable wheel.
``python setup.py develop`` installs an egg-link instead and needs neither.
"""

from setuptools import setup

setup()
