#!/usr/bin/env python3
"""Memory-system simulation: refresh overheads on your own workload mix.

Runs the cycle-based simulator (Section 7's methodology) on a custom
blend of streaming, random and pointer-chasing traffic, comparing the
four designs of Figure 16.  Edit the MIX below to match your workload.

Run:  python examples/memory_system_sim.py
"""

from repro.sim.config import MachineConfig, PAPER_VARIANTS
from repro.sim.core import run_trace
from repro.sim.energy import account_energy
from repro.sim.pcm_timing import OpCounts
from repro.workloads.synthetic import (
    interleave,
    pointer_chase_trace,
    random_trace,
    stream_trace,
)

N = 40_000

#: A key-value-store-like blend: mostly random reads over a large working
#: set, a streaming log writer, and some dependent index walks.
MIX = [
    (random_trace(N // 2, 800_000, write_fraction=0.1, gap_ns=8.0, name="gets", seed=1), 0.5),
    (stream_trace(N // 4, 400_000, write_fraction=1.0, gap_ns=6.0, name="log", seed=2, n_arrays=1), 0.25),
    (pointer_chase_trace(N // 4, 800_000, gap_ns=10.0, name="index", seed=3), 0.25),
]


def main() -> None:
    machine = MachineConfig()
    trace = interleave("kv-store", MIX, seed=0)
    print(
        f"workload: {len(trace)} line accesses, "
        f"{trace.write_fraction:.0%} writes, "
        f"{trace.dependent.mean():.0%} dependent"
    )
    print(
        f"{'design':>12} {'time [ms]':>10} {'norm':>6} {'energy [uJ]':>12} "
        f"{'power [W]':>10} {'PCM R/W/REF':>18}"
    )
    base_time = None
    for name, variant in PAPER_VARIANTS.items():
        res = run_trace(trace, machine, variant)
        counts = OpCounts(
            reads=res.pcm_reads, writes=res.pcm_writes, refreshes=res.pcm_refreshes
        )
        energy = account_energy(counts, machine)
        if base_time is None:
            base_time = res.exec_time_ns
        print(
            f"{name:>12} {res.exec_time_ns / 1e6:>10.2f} "
            f"{res.exec_time_ns / base_time:>6.3f} "
            f"{energy.total_nj / 1e3:>12.1f} "
            f"{energy.power_w(res.exec_time_ns):>10.3f} "
            f"{res.pcm_reads:>6}/{res.pcm_writes}/{res.pcm_refreshes:>6}"
        )
    print(
        "\n4LC-REF pays refresh twice: bank blocking and ~42% of the 40MB/s\n"
        "write budget.  3LC removes both and shaves the ECC read adder."
    )


if __name__ == "__main__":
    main()
