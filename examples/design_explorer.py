#!/usr/bin/env python3
"""Design-space explorer for a PCM architect.

Answers the questions Section 4 poses — what refresh interval is
acceptable, what cell error rate is tolerable — for *your* device
geometry, then sizes the ECC and projects density for generalized
n-level cells (Section 8) under tighter write control.

Run:  python examples/design_explorer.py [device_GB]
"""

import sys

import numpy as np

from repro import (
    ReliabilityTarget,
    RefreshModel,
    all_designs,
    analytic_design_cer,
    block_error_rate,
)
from repro.analysis.retention import retention_time_s
from repro.cells.params import SIGMA_R
from repro.mapping.constraints import DesignSpace
from repro.mapping.optimizer import optimize_mapping


def refresh_interval_study(device_gb: int) -> None:
    model = RefreshModel(device_bytes=device_gb * 2**30)
    print(f"Refresh feasibility for a {device_gb}GB, 8-bank device:")
    print(f"  full refresh pass (serial writes): {model.device_refresh_pass_s:.0f} s")
    print(f"  write-throughput-limited pass:     {model.throughput_limited_pass_s:.0f} s")
    print(f"  shortest practical interval (2x):  {model.min_practical_interval_s() / 60:.1f} min")
    print(f"{'interval':>10} {'bank avail':>11} {'write BW left':>14}")
    for minutes in (4, 8, 17, 34, 68):
        iv = minutes * 60.0
        print(
            f"{minutes:>8}m  {model.bank_availability(iv):>10.3f} "
            f"{1 - model.refresh_write_fraction(iv):>13.2f}"
        )
    print()


def ecc_sizing(device_gb: int) -> None:
    target = ReliabilityTarget(device_bytes=device_gb * 2**30)
    designs = all_designs()
    print(f"ECC sizing to one erroneous block per {device_gb}GB device in 10 years:")
    for name, base_cells in (("4LCo", 256), ("3LCo", 342)):
        d = designs[name]
        for t in (0, 1, 2, 4, 10):
            n_cells = base_cells + (10 * t) // 2 + (12 if name == "3LCo" else 31)
            r = retention_time_s(d, n_cells, t, target=target)
            if r.retention_s >= 10 * 3.156e7:
                horizon = "nonvolatile (>10 yr)"
            elif r.retention_s >= 86400:
                horizon = f"refresh every {r.retention_s / 86400:.1f} days"
            elif r.retention_s >= 120:
                horizon = f"refresh every {r.retention_minutes:.1f} min"
            else:
                horizon = f"refresh every {r.retention_s:.1f} s (impractical)"
            print(f"  {name} + BCH-{t:<2}: {horizon}")
        print()


def n_level_projection() -> None:
    print("Generalized n-level cells at sigma_R/2 (Section 8):")
    margin = (2.75 + 0.05) * SIGMA_R / 2
    for n in (3, 4, 5, 6):
        space = DesignSpace(n, margin=margin)
        res = optimize_mapping(
            n,
            eval_time_s=[2.0**15, 2.0**25],
            space=space,
            grid_points_per_dim=8,
            coarse_z_points=201,
            polish_z_points=301,
        )
        cer_1yr = analytic_design_cer(res.design, [3.156e7], z_points=401)[0]
        bler = block_error_rate(cer_1yr, 512, 1)
        print(
            f"  {n} levels: ideal {np.log2(n):.2f} b/cell, "
            f"CER@1yr {cer_1yr:.1E}, BLER@1yr w/ BCH-1 {bler:.1E}"
        )
    print(
        "\nDenser cells trade retention for capacity; the write-variability\n"
        "reduction needed to fit them is the paper's Section-8 lever."
    )


if __name__ == "__main__":
    device_gb = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    refresh_interval_study(device_gb)
    ecc_sizing(device_gb)
    n_level_projection()
