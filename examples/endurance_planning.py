#!/usr/bin/env python3
"""Endurance planning: how long will an MLC-PCM device actually last?

MLC-PCM endures ~1e5 write cycles per cell (Section 6.4) — the paper's
wearout machinery exists because that is not much.  This example stacks
the three defenses and shows what each buys for a write-hot workload:

1. **mark-and-spare** absorbs the first six cell failures per block;
2. **Start-Gap wear leveling** [26] stops a hot block from dying early;
3. **spare-block remapping** [39] turns the block-lifetime tail into
   extra device life.

Run:  python examples/endurance_planning.py
"""

import numpy as np

from repro.wearout.remap import lifetime_with_remapping
from repro.wearout.wear_leveling import StartGap, simulate_wear, wear_stats

MEAN_ENDURANCE = 1e5  # MLC cycles (Section 6.4)
N_LINES = 256


def hot_workload(n_writes: int, hot_fraction: float, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.where(
        rng.random(n_writes) < hot_fraction, 11, rng.integers(0, N_LINES, n_writes)
    )


def wear_leveling_study() -> None:
    writes = hot_workload(300_000, hot_fraction=0.7)
    print("Step 1+2 - wear leveling on a 70%-hot write stream:")
    base = wear_stats(simulate_wear(N_LINES, writes))
    print(
        f"  unleveled: hottest line wears {base['max_over_mean']:.0f}x the "
        f"mean -> device dies at ~{MEAN_ENDURANCE / base['max_over_mean']:.1E} "
        f"mean writes/line"
    )
    for interval in (16, 64):
        sg = StartGap(N_LINES, gap_move_interval=interval)
        st = wear_stats(simulate_wear(N_LINES, writes, leveler=sg))
        print(
            f"  start-gap (move/{interval}): max/mean {st['max_over_mean']:.2f} "
            f"at {sg.write_overhead:.1%} extra writes"
        )
    print()


def remapping_study() -> None:
    print("Step 3 - spare-block pool (uniform wear, mark-and-spare budget 6):")
    print(f"{'spare pool':>11} {'first block death':>18} {'device death':>13} {'gain':>6}")
    for pct in (0, 2, 5, 10, 20):
        out = lifetime_with_remapping(
            n_blocks=500,
            n_spare_blocks=500 * pct // 100,
            failures_per_block_budget=6,
            mean_endurance=MEAN_ENDURANCE,
            endurance_sigma=0.3,
            seed=1,
        )
        print(
            f"{pct:>10}% {out['first_block_failure_writes']:>18.2E} "
            f"{out['device_lifetime_writes']:>13.2E} "
            f"{out['lifetime_gain']:>5.2f}x"
        )
    print()
    print(
        "Mark-and-spare sets the per-block budget, wear leveling makes\n"
        "every block see the same traffic, and the spare pool monetizes\n"
        "the endurance distribution's tail — the full Section-6.4 stack."
    )


if __name__ == "__main__":
    wear_leveling_study()
    remapping_study()
