#!/usr/bin/env python3
"""Quickstart: the paper's result chain in five minutes.

1. Build the five cell designs of Figure 8 and compare their drift CER.
2. Check the nonvolatility criterion (10-year retention at the device
   reliability target).
3. Push a 64-byte block through the full 3-ON-2 datapath — encoding,
   a drift error, a wearout failure — and read it back intact.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    PAPER_TIME_GRID_S,
    PAPER_TIME_LABELS,
    ThreeOnTwoBlockCodec,
    all_designs,
    analytic_design_cer,
    meets_nonvolatility,
)


def compare_designs() -> None:
    print("Drift cell error rates (semi-analytic, Figure 8):")
    designs = all_designs()
    header = f"{'time':>10} " + " ".join(f"{n:>9}" for n in designs)
    print(header)
    curves = {
        name: analytic_design_cer(d, PAPER_TIME_GRID_S)
        for name, d in designs.items()
    }
    for i, label in enumerate(PAPER_TIME_LABELS):
        row = " ".join(
            f"{curves[n][i]:9.1E}" if curves[n][i] else f"{'0':>9}"
            for n in designs
        )
        print(f"{label:>10} {row}")
    print()


def check_nonvolatility() -> None:
    designs = all_designs()
    print("Ten-year nonvolatility (16GB device, <1 erroneous block):")
    for name, n_cells, t in (("4LCo", 306, 10), ("3LCn", 354, 1), ("3LCo", 354, 1)):
        ok = meets_nonvolatility(designs[name], n_cells, t)
        ecc = f"BCH-{t}"
        print(f"  {name} + {ecc}: {'NONVOLATILE' if ok else 'volatile (needs refresh)'}")
    print()


def datapath_demo() -> None:
    print("3-ON-2 datapath demo (Figure 9):")
    codec = ThreeOnTwoBlockCodec()
    rng = np.random.default_rng(0)
    data = rng.integers(0, 2, 512).astype(np.uint8)

    # A block that has already lost one cell pair to wearout.
    block = codec.new_block_state()
    block.mark(42)
    states, check_bits = codec.encode(data, block)
    print(f"  512 data bits -> {states.size} MLC cells + {check_bits.size} SLC check bits")

    # Inject one drift error: a cell slips one state up.
    victim = int(np.nonzero(states < 2)[0][7])
    states[victim] += 1

    out = codec.decode(states, check_bits)
    assert np.array_equal(out.data_bits, data)
    print(
        f"  read back OK: {out.tec_corrected} drift error corrected by BCH-1, "
        f"{out.hec_pairs_dropped} worn pair squeezed out by mark-and-spare"
    )
    print(f"  storage density: {codec.bits_per_cell:.3f} bits/cell (paper: 1.406)")


if __name__ == "__main__":
    compare_designs()
    check_nonvolatility()
    datapath_demo()
