#!/usr/bin/env python3
"""In-memory checkpointing on nonvolatile PCM (the paper's HPC motivation).

An exascale application checkpoints its state into byte-addressable PCM
(Section 1 cites in-memory checkpointing [11] as a key use).  This example
writes a checkpoint to a functional PCM device, powers the machine off —
no refresh possible — and restores after increasingly long outages:

- the proposed 3LC device restores bit-exact state even after ten years;
- the 4LC device, which depends on 17-minute refresh, starts corrupting
  checkpoints within hours of losing power.

Run:  python examples/checkpoint_storage.py
"""

import numpy as np

from repro import PCMDevice, UncorrectableBlock

CHECKPOINT_BLOCKS = 24  # 24 x 64B of application state
YEAR_S = 3.156e7
OUTAGES = [
    ("1 hour", 3600.0),
    ("1 day", 86400.0),
    ("1 month", 2.63e6),
    ("1 year", YEAR_S),
    ("10 years", 10 * YEAR_S),
]


def make_checkpoint(rng: np.random.Generator) -> list[np.ndarray]:
    """Simulated application state: one 512-bit block per 'rank'."""
    return [rng.integers(0, 2, 512).astype(np.uint8) for _ in range(CHECKPOINT_BLOCKS)]


def try_restore(kind: str, seed: int) -> None:
    rng = np.random.default_rng(seed)
    checkpoint = make_checkpoint(rng)
    device = PCMDevice(CHECKPOINT_BLOCKS, kind, seed=seed)
    for b, block in enumerate(checkpoint):
        device.write(b, block, t_now=0.0)

    print(f"{kind} device ({CHECKPOINT_BLOCKS} blocks written, then power off):")
    for label, outage in OUTAGES:
        corrupt = 0
        corrected = 0
        for b, expect in enumerate(checkpoint):
            try:
                out = device.read(b, t_now=outage)
                corrected += out.tec_corrected
                if not np.array_equal(out.data_bits, expect):
                    corrupt += 1
            except UncorrectableBlock:
                corrupt += 1
        status = "restored bit-exact" if corrupt == 0 else f"{corrupt} blocks CORRUPT"
        extra = f" ({corrected} drift errors corrected)" if corrected else ""
        print(f"  after {label:>8}: {status}{extra}")
    print()


if __name__ == "__main__":
    try_restore("3LC", seed=1)
    try_restore("4LC", seed=2)
    print(
        "The 3LC checkpoint survives a decade unpowered; the 4LC device's\n"
        "drift outruns even BCH-10 once refresh stops — the paper's case\n"
        "that only the three-level design is genuinely nonvolatile."
    )
