"""Configuration for ``repro.lint``: the ``[tool.repro-lint]`` block.

Example (all keys optional)::

    [tool.repro-lint]
    exclude = ["tests/fixtures/**"]          # glob, fnmatch-style
    select = ["RPL001", "RPL004"]            # default: every rule
    disable = ["RPL005"]
    paths = ["src", "tests"]                 # default roots for --all
    baseline = "lint_baseline.json"          # ratchet file (whole-program)

    [tool.repro-lint.layers]                 # RPL015 contracts
    "repro.montecarlo" = { deny = ["repro.service"] }

    [tool.repro-lint.severity]
    RPL005 = "warning"                       # or "error"

    [tool.repro-lint.per-path]
    "tests/**" = { disable = ["RPL003"] }

    [tool.repro-lint.rules.RPL001]
    allow = ["src/repro/montecarlo/rng.py"]

Globs are matched with :func:`fnmatch.fnmatch` against the file's
POSIX path relative to the config root (the directory holding
``pyproject.toml``), so ``*`` crosses directory separators and
``tests/**`` and ``tests/*`` are equivalent.  The config object is a
plain picklable dataclass: worker processes receive it by value.
"""

from __future__ import annotations

import dataclasses
import fnmatch
import pathlib
import tomllib
from typing import Any, Mapping

from repro.lint.rules.base import Severity

__all__ = ["ConfigError", "LintConfig", "load_config", "path_matches"]

_SECTION = "repro-lint"

#: Keys accepted at the top level of ``[tool.repro-lint]``.
_TOP_KEYS = {
    "exclude",
    "select",
    "disable",
    "severity",
    "per-path",
    "rules",
    "paths",
    "baseline",
    "layers",
}


class ConfigError(ValueError):
    """Raised for a malformed ``[tool.repro-lint]`` block."""


def path_matches(rel_posix: str, patterns: list[str]) -> bool:
    """True if the relative POSIX path matches any fnmatch pattern.

    ``**`` is normalized to ``*`` (fnmatch's ``*`` already crosses
    ``/``); a pattern with no slash also matches against the basename,
    so ``conftest.py`` excludes every conftest.
    """
    name = rel_posix.rsplit("/", 1)[-1]
    for pat in patterns:
        pat = pat.replace("**", "*")
        if fnmatch.fnmatch(rel_posix, pat):
            return True
        if "/" not in pat and fnmatch.fnmatch(name, pat):
            return True
    return False


@dataclasses.dataclass
class LintConfig:
    """Resolved linter configuration (defaults == empty config block)."""

    root: str = "."
    exclude: list[str] = dataclasses.field(default_factory=list)
    select: list[str] | None = None
    disable: list[str] = dataclasses.field(default_factory=list)
    severity: dict[str, str] = dataclasses.field(default_factory=dict)
    per_path: dict[str, dict[str, list[str]]] = dataclasses.field(default_factory=dict)
    rule_options: dict[str, dict[str, Any]] = dataclasses.field(default_factory=dict)
    #: Default roots for ``--all`` / pathless whole-program runs.
    paths: list[str] = dataclasses.field(default_factory=list)
    #: Ratchet baseline file, relative to ``root`` (None: no baseline).
    baseline: str | None = None
    #: RPL015 contracts: module-prefix -> {"deny": [module prefixes]}.
    layers: dict[str, dict[str, list[str]]] = dataclasses.field(
        default_factory=dict
    )

    def enabled_codes(self, all_codes: list[str], rel_posix: str) -> set[str]:
        """Codes active for one file after select/disable and per-path."""
        codes = set(self.select) if self.select is not None else set(all_codes)
        codes -= set(self.disable)
        for pattern, override in self.per_path.items():
            if not path_matches(rel_posix, [pattern]):
                continue
            if "select" in override:
                codes &= set(override["select"])
            codes -= set(override.get("disable", []))
        return codes

    def is_excluded(self, rel_posix: str) -> bool:
        return path_matches(rel_posix, self.exclude)

    def severity_for(self, code: str, default: Severity) -> Severity:
        name = self.severity.get(code)
        return Severity(name) if name is not None else default


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(f"[tool.{_SECTION}] {message}")


def _str_list(value: Any, key: str) -> list[str]:
    _require(
        isinstance(value, list) and all(isinstance(v, str) for v in value),
        f"{key!r} must be a list of strings, got {value!r}",
    )
    return list(value)


def _parse(section: Mapping[str, Any], root: pathlib.Path) -> LintConfig:
    unknown = set(section) - _TOP_KEYS
    _require(not unknown, f"unknown keys {sorted(unknown)}")
    cfg = LintConfig(root=str(root))
    if "exclude" in section:
        cfg.exclude = _str_list(section["exclude"], "exclude")
    if "select" in section:
        cfg.select = _str_list(section["select"], "select")
    if "disable" in section:
        cfg.disable = _str_list(section["disable"], "disable")
    for code, level in section.get("severity", {}).items():
        _require(
            level in ("error", "warning"),
            f"severity for {code} must be 'error' or 'warning', got {level!r}",
        )
        cfg.severity[code.upper()] = level
    per_path = section.get("per-path", {})
    _require(isinstance(per_path, Mapping), "'per-path' must be a table")
    for pattern, override in per_path.items():
        _require(
            isinstance(override, Mapping)
            and set(override) <= {"select", "disable"},
            f"per-path {pattern!r} accepts only 'select' and 'disable'",
        )
        cfg.per_path[pattern] = {
            key: _str_list(value, f"per-path.{pattern}.{key}")
            for key, value in override.items()
        }
    rules = section.get("rules", {})
    _require(isinstance(rules, Mapping), "'rules' must be a table")
    for code, options in rules.items():
        _require(
            isinstance(options, Mapping),
            f"rules.{code} must be a table of options",
        )
        cfg.rule_options[code.upper()] = dict(options)
    if "paths" in section:
        cfg.paths = _str_list(section["paths"], "paths")
    if "baseline" in section:
        _require(
            isinstance(section["baseline"], str),
            f"'baseline' must be a string path, got {section['baseline']!r}",
        )
        cfg.baseline = section["baseline"]
    layers = section.get("layers", {})
    _require(isinstance(layers, Mapping), "'layers' must be a table")
    for module, contract in layers.items():
        _require(
            isinstance(contract, Mapping) and set(contract) <= {"deny"},
            f"layers.{module!r} accepts only a 'deny' list",
        )
        cfg.layers[module] = {
            "deny": _str_list(
                contract.get("deny", []), f"layers.{module}.deny"
            )
        }
    return cfg


def load_config(start: str | pathlib.Path = ".") -> LintConfig:
    """Find and parse ``pyproject.toml`` at/above ``start``.

    Walks up from ``start`` (a file or directory) to the filesystem
    root; the first ``pyproject.toml`` wins even if it has no
    ``[tool.repro-lint]`` block (its directory still anchors relative
    paths).  With no pyproject at all, returns pure defaults rooted at
    ``start``.
    """
    path = pathlib.Path(start).resolve()
    if path.is_file():
        path = path.parent
    for candidate in (path, *path.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            with open(pyproject, "rb") as f:
                data = tomllib.load(f)
            section = data.get("tool", {}).get(_SECTION, {})
            return _parse(section, candidate)
    return LintConfig(root=str(path))
