"""Pass 1 of the whole-program analyzer: the project model.

Per-file AST rules (RPL001–008) see one file at a time; the concurrency
and determinism contracts they protect are *program* properties — a
coroutine is only blocking if something it transitively calls blocks, an
RNG is only traceable if the function that built it is known, a layering
violation is a property of the import *graph*.  This module builds the
shared model those whole-program rules (RPL010–015) run against:

- one :class:`ModuleInfo` per file: dotted module name, the parsed AST
  (parsed exactly once — pass 2 reuses it), suppression table, resolved
  import edges (absolute targets, relative imports resolved against the
  module's own package), and module-level ``*_VERSION`` constants;
- one :class:`FunctionInfo` per function/method: coroutine-ness, every
  call site with its canonical dotted target, ``await``-while-holding-a-
  ``threading.Lock`` regions, and ``asyncio.create_task`` retention;
- the :class:`ProjectModel` tying them together: qualified-name
  function lookup (so call edges cross files) and the import graph.

Resolution is lexical and conservative, like the per-file rules: a call
through an object attribute (``device.write_block``) does not resolve,
so no edge is created and no rule guesses.  ``self.method()`` resolves
within the defining class — the one object-dispatch case a linter can
answer soundly.
"""

from __future__ import annotations

import ast
import dataclasses
import fnmatch
import pathlib

from repro.lint.config import LintConfig
from repro.lint.rules.imports import ImportMap, resolve_relative
from repro.lint.suppress import Suppressions

__all__ = [
    "CallSite",
    "FunctionInfo",
    "ImportEdge",
    "ModuleInfo",
    "ProjectModel",
    "TaskSpawn",
    "build_model",
    "module_name_for",
]

#: Module-level constants matching these patterns are tracked as engine
#: version markers (RPL014's completeness domain).
VERSION_PATTERNS = ("*_VERSION",)


def module_name_for(path: pathlib.Path) -> str:
    """Dotted module name of a file, walked up through ``__init__.py`` dirs.

    ``src/repro/service/app.py`` → ``repro.service.app`` because
    ``repro/`` and ``repro/service/`` are packages while ``src/`` is not.
    A loose file (no enclosing package) is just its stem, which keeps
    single-file fixture models working.
    """
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.resolve().parent
    while (parent / "__init__.py").is_file():
        parts.append(parent.name)
        parent = parent.parent
    if not parts:  # a loose __init__.py with no package parent
        parts = [path.stem]
    return ".".join(reversed(parts))


@dataclasses.dataclass(frozen=True)
class CallSite:
    """One statically-resolvable call expression inside a function."""

    name: str  # canonical dotted target (import-alias resolved)
    lineno: int
    col: int
    awaited: bool  # lexically under an ``await``


@dataclasses.dataclass(frozen=True)
class TaskSpawn:
    """One ``asyncio.create_task``-family call and how its handle fared."""

    name: str
    lineno: int
    col: int
    retained: bool  # assigned/awaited/passed on vs. bare expression stmt


@dataclasses.dataclass
class FunctionInfo:
    """Async/call summary of one function or method."""

    qualname: str  # module-qualified: ``pkg.mod.Class.meth``
    name: str
    module: str
    lineno: int
    col: int
    is_coroutine: bool
    params: list[str]
    calls: list[CallSite]
    awaits_under_lock: list[tuple[int, int, str]]  # (line, col, lock expr)
    task_spawns: list[TaskSpawn]
    node: ast.AST  # the defining FunctionDef/AsyncFunctionDef


@dataclasses.dataclass
class ImportEdge:
    """One import statement edge, with its absolute target module."""

    target: str
    lineno: int
    col: int
    names: tuple[str, ...]  # imported names for ``from x import a, b``


@dataclasses.dataclass
class ModuleInfo:
    """Everything pass 2 may ask about one file."""

    path: str
    rel_posix: str
    module: str
    source: str
    tree: ast.Module | None
    suppressions: Suppressions
    imports: list[ImportEdge]
    import_map: ImportMap | None
    version_constants: set[str]
    functions: dict[str, FunctionInfo]  # key: in-module qualname
    parse_error: Exception | None = None


_TASK_FACTORIES = {"asyncio.create_task", "asyncio.ensure_future"}
_LOCK_FACTORIES = {"threading.Lock", "threading.RLock", "threading.Condition"}


def _is_lockish(expr: ast.AST, imports: ImportMap) -> str | None:
    """Render a ``with`` context expression if it looks like a thread lock.

    Matches a direct ``threading.Lock()`` construction or any name /
    attribute chain whose final component contains ``lock`` (the repo
    convention: ``self._lock``, ``registry_lock``, …).  ``async with``
    never reaches here — asyncio locks are await-safe by design.
    """
    node = expr.func if isinstance(expr, ast.Call) else expr
    name = imports.canonical(node)
    if name is None:
        return None
    if isinstance(expr, ast.Call):
        return name if name in _LOCK_FACTORIES else None
    return name if "lock" in name.split(".")[-1].lower() else None


class _ModuleVisitor(ast.NodeVisitor):
    """One walk collecting functions, calls, and async hazards."""

    def __init__(self, module: str, imports: ImportMap, local_defs: set[str]):
        self.module = module
        self.imports = imports
        self.local_defs = local_defs  # module-level function/class names
        self.functions: dict[str, FunctionInfo] = {}
        self._class_stack: list[str] = []
        self._fn_stack: list[FunctionInfo] = []
        self._lock_stack: list[str] = []
        self._await_depth = 0

    # -- name canonicalization ----------------------------------------
    def _canonical(self, func: ast.AST) -> str | None:
        """Dotted call target in module-absolute terms, or None."""
        name = self.imports.canonical(func)
        if name is None:
            return None
        head = name.split(".", 1)[0]
        if head == "self" and self._class_stack:
            # self.meth() resolves within the lexically enclosing class.
            rest = name.split(".", 1)[1] if "." in name else ""
            return f"{self.module}.{self._class_stack[-1]}.{rest}" if rest else None
        if head in self.local_defs and self.imports.alias_of(head) is None:
            return f"{self.module}.{name}"
        return name

    # -- function scaffolding -----------------------------------------
    def _enter_function(self, node, is_coroutine: bool):
        scope = ".".join(self._class_stack + [node.name])
        args = node.args
        params = [
            a.arg
            for a in [
                *args.posonlyargs, *args.args, *args.kwonlyargs,
                *([args.vararg] if args.vararg else []),
                *([args.kwarg] if args.kwarg else []),
            ]
        ]
        info = FunctionInfo(
            qualname=f"{self.module}.{scope}",
            name=node.name,
            module=self.module,
            lineno=node.lineno,
            col=node.col_offset,
            is_coroutine=is_coroutine,
            params=params,
            calls=[],
            awaits_under_lock=[],
            task_spawns=[],
            node=node,
        )
        self.functions[scope] = info
        self._fn_stack.append(info)
        # A nested def's body runs later: locks held here are not held
        # there, so the stacks reset around the body.
        saved_locks, self._lock_stack = self._lock_stack, []
        saved_await, self._await_depth = self._await_depth, 0
        for child in node.body:
            self.visit(child)
        self._lock_stack = saved_locks
        self._await_depth = saved_await
        self._fn_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node, is_coroutine=False)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node, is_coroutine=True)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        for child in node.body:
            self.visit(child)
        self._class_stack.pop()

    def visit_Lambda(self, node: ast.Lambda) -> None:
        saved_locks, self._lock_stack = self._lock_stack, []
        self.generic_visit(node)
        self._lock_stack = saved_locks

    # -- async hazards -------------------------------------------------
    def visit_With(self, node: ast.With) -> None:
        locks = [
            rendered
            for item in node.items
            if (rendered := _is_lockish(item.context_expr, self.imports))
        ]
        self._lock_stack.extend(locks)
        for item in node.items:
            self.visit(item.context_expr)
        for child in node.body:
            self.visit(child)
        if locks:
            del self._lock_stack[-len(locks):]

    def visit_Await(self, node: ast.Await) -> None:
        fn = self._fn_stack[-1] if self._fn_stack else None
        if fn is not None and self._lock_stack:
            fn.awaits_under_lock.append(
                (node.lineno, node.col_offset, self._lock_stack[-1])
            )
        self._await_depth += 1
        self.generic_visit(node)
        self._await_depth -= 1

    def visit_Expr(self, node: ast.Expr) -> None:
        # A bare create_task(...) statement: the handle is dropped.
        value = node.value
        if isinstance(value, ast.Call):
            self._record_task(value, retained=False)
        self.generic_visit(node)

    def _task_target(self, call: ast.Call) -> str | None:
        name = self._canonical(call.func)
        if name in _TASK_FACTORIES:
            return name
        # loop.create_task / anything.create_task: same hazard.
        if isinstance(call.func, ast.Attribute) and call.func.attr == "create_task":
            return name or "<loop>.create_task"
        return None

    def _record_task(self, call: ast.Call, retained: bool) -> None:
        fn = self._fn_stack[-1] if self._fn_stack else None
        target = self._task_target(call)
        if fn is not None and target is not None:
            fn.task_spawns.append(
                TaskSpawn(target, call.lineno, call.col_offset, retained)
            )

    # -- call sites ----------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        fn = self._fn_stack[-1] if self._fn_stack else None
        if fn is not None:
            if self._task_target(node) is not None and not any(
                t.lineno == node.lineno and t.col == node.col_offset
                for t in fn.task_spawns
            ):
                self._record_task(node, retained=True)
            name = self._canonical(node.func)
            if name is not None:
                fn.calls.append(
                    CallSite(name, node.lineno, node.col_offset, self._await_depth > 0)
                )
        self.generic_visit(node)


def _collect_imports(tree: ast.Module, module: str) -> list[ImportEdge]:
    edges: list[ImportEdge] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                edges.append(
                    ImportEdge(alias.name, node.lineno, node.col_offset, ())
                )
        elif isinstance(node, ast.ImportFrom):
            target = resolve_relative(module, node.level, node.module)
            if target is None:
                continue
            edges.append(
                ImportEdge(
                    target,
                    node.lineno,
                    node.col_offset,
                    tuple(alias.name for alias in node.names),
                )
            )
    return edges


def _version_constants(tree: ast.Module) -> set[str]:
    """Public module-level ``*_VERSION`` assignments."""
    out: set[str] = set()
    for node in tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and not target.id.startswith("_")
                and any(fnmatch.fnmatch(target.id, p) for p in VERSION_PATTERNS)
            ):
                out.add(target.id)
    return out


def build_module_info(
    path: str | pathlib.Path, config: LintConfig, *, module: str | None = None
) -> ModuleInfo:
    """Parse one file into its :class:`ModuleInfo` (parse errors recorded)."""
    p = pathlib.Path(path)
    root = pathlib.Path(config.root)
    try:
        rel_posix = p.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel_posix = p.resolve().as_posix()
    modname = module if module is not None else module_name_for(p)
    try:
        source = p.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return ModuleInfo(
            path=str(p), rel_posix=rel_posix, module=modname, source="",
            tree=None, suppressions=Suppressions(), imports=[], import_map=None,
            version_constants=set(), functions={}, parse_error=exc,
        )
    try:
        tree = ast.parse(source, filename=str(p))
    except SyntaxError as exc:
        return ModuleInfo(
            path=str(p), rel_posix=rel_posix, module=modname, source=source,
            tree=None, suppressions=Suppressions.from_source(source), imports=[],
            import_map=None, version_constants=set(), functions={},
            parse_error=exc,
        )
    imports = ImportMap(tree, module=modname)
    local_defs = {
        n.name
        for n in tree.body
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
    }
    visitor = _ModuleVisitor(modname, imports, local_defs)
    for child in tree.body:
        visitor.visit(child)
    return ModuleInfo(
        path=str(p),
        rel_posix=rel_posix,
        module=modname,
        source=source,
        tree=tree,
        suppressions=Suppressions.from_source(source),
        imports=_collect_imports(tree, modname),
        import_map=imports,
        version_constants=_version_constants(tree),
        functions=visitor.functions,
    )


class ProjectModel:
    """The pass-1 output: every module plus cross-module lookups."""

    def __init__(self, modules: list[ModuleInfo], config: LintConfig):
        self.config = config
        self.modules: dict[str, ModuleInfo] = {m.rel_posix: m for m in modules}
        self.by_module: dict[str, ModuleInfo] = {}
        for m in modules:
            # First definition wins on collisions (loose same-stem files).
            self.by_module.setdefault(m.module, m)
        self.functions: dict[str, FunctionInfo] = {}
        for m in modules:
            for info in m.functions.values():
                self.functions.setdefault(info.qualname, info)

    def resolve(self, name: str) -> FunctionInfo | None:
        """Function a canonical call target refers to, if in the project.

        Handles ``pkg.mod.func``, ``pkg.mod.Class.meth``, and package
        re-exports one level deep (``pkg.func`` where ``pkg/__init__``
        imported ``func`` from a project module).
        """
        hit = self.functions.get(name)
        if hit is not None:
            return hit
        # Re-export chase: resolve the module prefix, then ask its
        # import map where the remaining name came from.
        head, _, tail = name.rpartition(".")
        mod = self.by_module.get(head)
        if mod is not None and mod.import_map is not None and tail:
            alias = mod.import_map.alias_of(tail)
            if alias is not None and alias != name:
                return self.functions.get(alias)
        return None

    def module_of(self, rel_posix: str) -> ModuleInfo | None:
        return self.modules.get(rel_posix)

    def import_graph(self) -> dict[str, set[str]]:
        """Module → set of imported project modules (resolved edges)."""
        graph: dict[str, set[str]] = {}
        for m in self.modules.values():
            targets: set[str] = set()
            for edge in m.imports:
                if edge.target in self.by_module:
                    targets.add(edge.target)
                for n in edge.names:
                    sub = f"{edge.target}.{n}"
                    if sub in self.by_module:
                        targets.add(sub)
            graph[m.module] = targets
        return graph

    def import_cycles(self) -> list[list[str]]:
        """Strongly-connected components of size > 1 (import cycles)."""
        graph = self.import_graph()
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        cycles: list[list[str]] = []
        counter = [0]

        def strongconnect(v: str) -> None:
            index[v] = low[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            on_stack.add(v)
            for w in sorted(graph.get(v, ())):
                if w not in index:
                    strongconnect(w)
                    low[v] = min(low[v], low[w])
                elif w in on_stack:
                    low[v] = min(low[v], index[w])
            if low[v] == index[v]:
                comp: list[str] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == v:
                        break
                if len(comp) > 1:
                    cycles.append(sorted(comp))

        for v in sorted(graph):
            if v not in index:
                strongconnect(v)
        return sorted(cycles)


def build_model(
    paths: list[str | pathlib.Path], config: LintConfig
) -> ProjectModel:
    """Pass 1: parse every file once and assemble the project model."""
    return ProjectModel([build_module_info(p, config) for p in paths], config)
