"""Reporters: human text and machine JSON.

The JSON document (``schema_version`` 1) is stable for CI consumption;
its shape is documented in ``docs/LINTING.md`` and pinned by
``tests/test_lint_engine.py``::

    {
      "schema_version": 1,
      "tool": "repro.lint",
      "files_checked": <int>,
      "suppressed": <int>,
      "violations": [
        {"path": str, "line": int, "col": int, "code": "RPLnnn",
         "rule": str, "severity": "error"|"warning", "message": str},
        ...
      ],
      "summary": {"total": int, "errors": int, "warnings": int,
                  "by_code": {"RPLnnn": int, ...}},
      "exit_code": 0|1
    }
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Any

from repro.lint.engine import LintResult
from repro.lint.rules import all_rules

__all__ = ["SCHEMA_VERSION", "render_json", "render_text", "render_rule_list", "to_json_dict"]

SCHEMA_VERSION = 1


def render_text(result: LintResult) -> str:
    """``path:line:col: CODE [severity] message`` lines plus a summary."""
    lines = [
        f"{v.path}:{v.line}:{v.col}: {v.code} [{v.severity.value}] {v.message}"
        for v in result.violations
    ]
    summary = (
        f"{result.files_checked} files checked: "
        f"{result.errors} errors, {result.warnings} warnings"
    )
    if result.suppressed:
        summary += f", {result.suppressed} suppressed"
    lines.append(summary)
    return "\n".join(lines)


def to_json_dict(result: LintResult) -> dict[str, Any]:
    by_code = Counter(v.code for v in result.violations)
    return {
        "schema_version": SCHEMA_VERSION,
        "tool": "repro.lint",
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "violations": [v.to_dict() for v in result.violations],
        "summary": {
            "total": len(result.violations),
            "errors": result.errors,
            "warnings": result.warnings,
            "by_code": dict(sorted(by_code.items())),
        },
        "exit_code": result.exit_code,
    }


def render_json(result: LintResult) -> str:
    return json.dumps(to_json_dict(result), indent=2, sort_keys=False)


def render_rule_list() -> str:
    """``--list-rules`` output: code, name, severity, rationale."""
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.code}  {rule.name} [{rule.severity.value}]")
        lines.append(f"        {rule.rationale}")
    return "\n".join(lines)
