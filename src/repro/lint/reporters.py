"""Reporters: human text, machine JSON, and SARIF.

The JSON document (``schema_version`` 2) is stable for CI consumption;
its shape is documented in ``docs/LINTING.md`` and pinned by
``tests/test_lint_engine.py``::

    {
      "schema_version": 2,
      "tool": "repro.lint",
      "files_checked": <int>,
      "suppressed": <int>,
      "baselined": <int>,
      "violations": [
        {"path": str, "line": int, "col": int, "code": "RPLnnn",
         "rule": str, "severity": "error"|"warning", "message": str},
        ...
      ],
      "summary": {"total": int, "errors": int, "warnings": int,
                  "by_code": {"RPLnnn": int, ...}},
      "exit_code": 0|1
    }

Schema history: v1 had no ``baselined`` field (pre-ratchet).

The SARIF reporter emits a minimal SARIF 2.1.0 log — one run, one
result per violation, one ``rules`` descriptor per distinct code — for
upload to code-scanning UIs.  ``level`` maps error→"error",
warning→"warning"; positions are 1-based per the SARIF spec (our
0-based columns shift by one).
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Any

from repro.lint.engine import LintResult
from repro.lint.rules import all_project_rules, all_rules

__all__ = [
    "SCHEMA_VERSION",
    "render_json",
    "render_sarif",
    "render_text",
    "render_rule_list",
    "to_json_dict",
    "to_sarif_dict",
]

SCHEMA_VERSION = 2

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(result: LintResult) -> str:
    """``path:line:col: CODE [severity] message`` lines plus a summary."""
    lines = [
        f"{v.path}:{v.line}:{v.col}: {v.code} [{v.severity.value}] {v.message}"
        for v in result.violations
    ]
    summary = (
        f"{result.files_checked} files checked: "
        f"{result.errors} errors, {result.warnings} warnings"
    )
    if result.suppressed:
        summary += f", {result.suppressed} suppressed"
    if result.baselined:
        summary += f", {result.baselined} baselined"
    lines.append(summary)
    return "\n".join(lines)


def to_json_dict(result: LintResult) -> dict[str, Any]:
    by_code = Counter(v.code for v in result.violations)
    return {
        "schema_version": SCHEMA_VERSION,
        "tool": "repro.lint",
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "baselined": result.baselined,
        "violations": [v.to_dict() for v in result.violations],
        "summary": {
            "total": len(result.violations),
            "errors": result.errors,
            "warnings": result.warnings,
            "by_code": dict(sorted(by_code.items())),
        },
        "exit_code": result.exit_code,
    }


def render_json(result: LintResult) -> str:
    return json.dumps(to_json_dict(result), indent=2, sort_keys=False)


def to_sarif_dict(result: LintResult) -> dict[str, Any]:
    """Minimal SARIF 2.1.0 log for one lint run."""
    known = {r.code: r for r in [*all_rules(), *all_project_rules()]}
    used_codes = sorted({v.code for v in result.violations})
    descriptors = []
    for code in used_codes:
        rule = known.get(code)
        descriptors.append(
            {
                "id": code,
                "name": rule.name if rule else code,
                "shortDescription": {
                    "text": rule.rationale if rule else "parse error"
                },
            }
        )
    results = [
        {
            "ruleId": v.code,
            "ruleIndex": used_codes.index(v.code),
            "level": v.severity.value,
            "message": {"text": v.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": v.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": v.line,
                            "startColumn": v.col + 1,
                        },
                    }
                }
            ],
        }
        for v in result.violations
    ]
    return {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.lint",
                        "informationUri": "https://example.invalid/repro-lint",
                        "rules": descriptors,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(result: LintResult) -> str:
    return json.dumps(to_sarif_dict(result), indent=2, sort_keys=False)


def render_rule_list() -> str:
    """``--list-rules`` output: code, name, severity, rationale.

    Whole-program rules (run only under ``--all``) are listed after the
    per-file rules, marked ``[project]``.
    """
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.code}  {rule.name} [{rule.severity.value}]")
        lines.append(f"        {rule.rationale}")
    for rule in all_project_rules():
        lines.append(
            f"{rule.code}  {rule.name} [{rule.severity.value}] [project]"
        )
        lines.append(f"        {rule.rationale}")
    return "\n".join(lines)
