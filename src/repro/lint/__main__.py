"""CLI entry: ``python -m repro.lint [paths...]``.

Exit status: 0 — clean (warnings allowed); 1 — at least one
error-severity violation (or an unparseable file); 2 — usage or
configuration error.
"""

from __future__ import annotations

import argparse
import sys

from repro.lint.config import ConfigError, LintConfig, load_config
from repro.lint.engine import run_paths
from repro.lint.reporters import render_json, render_rule_list, render_text

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based invariant linter for the repro codebase: RNG "
            "discipline, cache-key salting, wall-clock hygiene, lock "
            "discipline, and general determinism hazards."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["."],
        help="files or directories to lint (default: current directory)",
    )
    parser.add_argument(
        "-f",
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (default: min(cpus, 8); 1 = serial)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated codes to run (overrides config select)",
    )
    parser.add_argument(
        "--disable",
        metavar="CODES",
        help="comma-separated codes to skip (adds to config disable)",
    )
    parser.add_argument(
        "--config",
        metavar="PATH",
        help="pyproject.toml (or directory) to read [tool.repro-lint] from "
        "(default: nearest pyproject above the current directory)",
    )
    parser.add_argument(
        "--no-config",
        action="store_true",
        help="ignore pyproject configuration entirely",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the report body; only the exit status matters",
    )
    return parser


def _codes(raw: str) -> list[str]:
    return [c.strip().upper() for c in raw.split(",") if c.strip()]


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        print(render_rule_list())
        return 0
    try:
        if args.no_config:
            config = LintConfig()
        else:
            config = load_config(args.config if args.config else ".")
    except ConfigError as exc:
        print(f"repro.lint: configuration error: {exc}", file=sys.stderr)
        return 2
    if args.select:
        config.select = _codes(args.select)
    if args.disable:
        config.disable = [*config.disable, *_codes(args.disable)]
    result = run_paths(args.paths, config, jobs=args.jobs)
    if not args.quiet:
        report = (
            render_json(result) if args.format == "json" else render_text(result)
        )
        print(report)
    return result.exit_code


if __name__ == "__main__":
    sys.exit(main())
