"""CLI entry: ``python -m repro.lint [paths...]``.

Per-file mode (the default) runs RPL001-008 file-parallel.  Whole-
program mode (``--all``) builds the project model first and adds the
RPL010-015 packs, the ratchet baseline, and ``--fix``.

Exit status: 0 — clean (warnings allowed); 1 — at least one
error-severity violation (or an unparseable file); 2 — usage or
configuration error.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.lint.baseline import write_baseline
from repro.lint.config import ConfigError, LintConfig, load_config
from repro.lint.engine import discover_files, run_paths, run_whole_program
from repro.lint.fixes import fix_paths
from repro.lint.reporters import (
    render_json,
    render_rule_list,
    render_sarif,
    render_text,
)

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based invariant linter for the repro codebase: RNG "
            "discipline, cache-key salting, wall-clock hygiene, lock "
            "discipline, and general determinism hazards.  With --all, "
            "a two-pass whole-program analysis adds asyncio concurrency, "
            "RNG provenance dataflow, and architecture layering rules."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: the config 'paths' "
        "list, else the current directory)",
    )
    parser.add_argument(
        "--all",
        action="store_true",
        dest="whole_program",
        help="whole-program mode: build the project model and run the "
        "RPL010-015 packs in addition to the per-file rules",
    )
    parser.add_argument(
        "-f",
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for per-file mode (default: min(cpus, 8); "
        "1 = serial; --all always runs in-process)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated codes to run (overrides config select)",
    )
    parser.add_argument(
        "--disable",
        metavar="CODES",
        help="comma-separated codes to skip (adds to config disable)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="ratchet baseline file for --all (default: the config "
        "'baseline' key; pass '' to disable)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="with --all: rewrite the baseline to accept current "
        "findings, then exit 0 (the ratchet check forbids growth)",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="apply automated fixes (unused-import removal, make_rng "
        "rewrites) before linting; prints each applied fix",
    )
    parser.add_argument(
        "--config",
        metavar="PATH",
        help="pyproject.toml (or directory) to read [tool.repro-lint] from "
        "(default: nearest pyproject above the current directory)",
    )
    parser.add_argument(
        "--no-config",
        action="store_true",
        help="ignore pyproject configuration entirely",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the report body; only the exit status matters",
    )
    return parser


def _codes(raw: str) -> list[str]:
    return [c.strip().upper() for c in raw.split(",") if c.strip()]


def _resolve_paths(args, config: LintConfig) -> list[str]:
    if args.paths:
        return list(args.paths)
    if config.paths:
        root = pathlib.Path(config.root)
        return [str(root / p) for p in config.paths]
    return ["."]


def _resolve_baseline(args, config: LintConfig) -> str | None:
    if args.baseline is not None:
        return args.baseline or None  # '' disables
    if config.baseline:
        return str(pathlib.Path(config.root) / config.baseline)
    return None


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        print(render_rule_list())
        return 0
    if (args.update_baseline or args.fix) and not args.whole_program:
        print(
            "repro.lint: --update-baseline/--fix require --all",
            file=sys.stderr,
        )
        return 2
    try:
        if args.no_config:
            config = LintConfig()
        else:
            config = load_config(args.config if args.config else ".")
    except ConfigError as exc:
        print(f"repro.lint: configuration error: {exc}", file=sys.stderr)
        return 2
    if args.select:
        config.select = _codes(args.select)
    if args.disable:
        config.disable = [*config.disable, *_codes(args.disable)]
    paths = _resolve_paths(args, config)
    if not args.whole_program:
        result = run_paths(paths, config, jobs=args.jobs)
    else:
        if args.fix:
            for fixed in fix_paths(discover_files(paths, config), config):
                for line in fixed.applied:
                    print(f"fixed: {line}")
        baseline = _resolve_baseline(args, config)
        if args.update_baseline:
            result = run_whole_program(paths, config)
            payload = write_baseline(
                baseline or str(pathlib.Path(config.root) / "lint_baseline.json"),
                result.violations,
            )
            if not args.quiet:
                print(
                    f"baseline updated: {payload['total']} finding(s) accepted"
                )
            return 0
        result = run_whole_program(paths, config, baseline=baseline)
    if not args.quiet:
        if args.format == "json":
            report = render_json(result)
        elif args.format == "sarif":
            report = render_sarif(result)
        else:
            report = render_text(result)
        print(report)
    return result.exit_code


if __name__ == "__main__":
    sys.exit(main())
