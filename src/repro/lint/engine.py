"""Lint engine: file discovery, per-file rule dispatch, parallel map.

One file is one unit of work: read, tokenize suppressions, parse, run
every enabled rule, filter suppressed findings.  Files fan out to a
process pool (``ast.parse`` is CPU-bound) and results are re-sorted by
``(path, line, col, code)``, so output is byte-identical for any
``--jobs`` value — the linter holds itself to the same determinism
contract it enforces.
"""

from __future__ import annotations

import ast
import dataclasses
import os
import pathlib
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Sequence

from repro.lint.baseline import apply_baseline, load_baseline
from repro.lint.config import LintConfig
from repro.lint.model import ModuleInfo, ProjectModel, build_model
from repro.lint.rules import ProjectRule, Rule, all_project_rules, all_rules
from repro.lint.rules.base import Severity, Violation
from repro.lint.suppress import Suppressions

__all__ = [
    "FileContext",
    "LintResult",
    "discover_files",
    "lint_file",
    "run_paths",
    "run_whole_program",
]

#: Code reported for files the parser rejects (not a rule; always on).
PARSE_ERROR_CODE = "RPL000"


@dataclasses.dataclass
class FileContext:
    """Everything a rule may look at for one file."""

    path: str
    rel_posix: str
    source: str
    config: LintConfig

    @property
    def display_path(self) -> str:
        return self.rel_posix


@dataclasses.dataclass
class LintResult:
    """Aggregate outcome of one lint run."""

    violations: list[Violation]
    files_checked: int
    suppressed: int
    #: Pre-existing findings absorbed by the ratchet baseline.
    baselined: int = 0

    @property
    def errors(self) -> int:
        return sum(1 for v in self.violations if v.severity is Severity.ERROR)

    @property
    def warnings(self) -> int:
        return sum(1 for v in self.violations if v.severity is Severity.WARNING)

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0


def _rel_posix(path: pathlib.Path, root: pathlib.Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.resolve().as_posix()


def discover_files(
    paths: Sequence[str | os.PathLike], config: LintConfig
) -> list[pathlib.Path]:
    """Python files under ``paths``, minus config excludes, sorted."""
    root = pathlib.Path(config.root)
    seen: set[pathlib.Path] = set()
    out: list[pathlib.Path] = []
    for entry in paths:
        p = pathlib.Path(entry)
        if p.is_dir():
            candidates: Iterable[pathlib.Path] = sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            candidates = [p]
        else:
            candidates = []
        for c in candidates:
            r = c.resolve()
            # Bytecode cache dirs can shadow sources with stale .py files
            # (editor backups, pytest caches); never lint them.
            if "__pycache__" in c.parts:
                continue
            if r in seen or config.is_excluded(_rel_posix(c, root)):
                continue
            seen.add(r)
            out.append(c)
    return sorted(out, key=lambda p: _rel_posix(p, pathlib.Path(config.root)))


def lint_file(
    path: str | os.PathLike,
    config: LintConfig,
    rules: Sequence[Rule] | None = None,
) -> tuple[list[Violation], int]:
    """Lint one file; returns ``(violations, n_suppressed)``."""
    rules = list(rules) if rules is not None else all_rules()
    p = pathlib.Path(path)
    rel = _rel_posix(p, pathlib.Path(config.root))
    try:
        source = p.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        unreadable = Violation(
            path=rel,
            line=1,
            col=0,
            code=PARSE_ERROR_CODE,
            rule="unreadable-file",
            severity=Severity.ERROR,
            message=f"cannot read file: {exc}",
        )
        return [unreadable], 0
    ctx = FileContext(path=str(p), rel_posix=rel, source=source, config=config)
    try:
        tree = ast.parse(source, filename=str(p))
    except SyntaxError as exc:
        parse_error = Violation(
            path=rel,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            code=PARSE_ERROR_CODE,
            rule="syntax-error",
            severity=Severity.ERROR,
            message=f"cannot parse: {exc.msg}",
        )
        return [parse_error], 0
    suppressions = Suppressions.from_source(source)
    enabled = config.enabled_codes([r.code for r in rules], rel)
    violations: list[Violation] = []
    suppressed = 0
    for rule in rules:
        if rule.code not in enabled:
            continue
        for violation in rule.check(tree, ctx):
            if suppressions.is_suppressed(violation.code, violation.line):
                suppressed += 1
            else:
                violations.append(violation)
    violations.sort(key=Violation.sort_key)
    return violations, suppressed


def _lint_one(args: tuple[str, LintConfig]) -> tuple[list[Violation], int]:
    # Top-level function so ProcessPoolExecutor can pickle the task.
    path, config = args
    return lint_file(path, config)


def run_paths(
    paths: Sequence[str | os.PathLike],
    config: LintConfig | None = None,
    jobs: int | None = None,
) -> LintResult:
    """Lint every Python file under ``paths`` (file-parallel).

    ``jobs=None`` picks ``min(cpu_count, 8)``; ``jobs<=1`` or a handful
    of files runs serially.  If the pool cannot start (restricted
    sandboxes), the run silently degrades to serial — results are
    identical by construction.
    """
    config = config if config is not None else LintConfig()
    files = discover_files(paths, config)
    tasks = [(str(f), config) for f in files]
    if jobs is None:
        jobs = min(os.cpu_count() or 1, 8)
    results: list[tuple[list[Violation], int]]
    if jobs <= 1 or len(tasks) < 4:
        results = [_lint_one(t) for t in tasks]
    else:
        try:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                chunk = max(1, len(tasks) // (jobs * 4))
                results = list(pool.map(_lint_one, tasks, chunksize=chunk))
        except (OSError, PermissionError, RuntimeError):
            results = [_lint_one(t) for t in tasks]
    violations: list[Violation] = []
    suppressed = 0
    for file_violations, file_suppressed in results:
        violations.extend(file_violations)
        suppressed += file_suppressed
    violations.sort(key=Violation.sort_key)
    return LintResult(
        violations=violations, files_checked=len(files), suppressed=suppressed
    )


def _lint_module(
    mod: ModuleInfo, config: LintConfig, rules: Sequence[Rule]
) -> tuple[list[Violation], int]:
    """Per-file rules over a pass-1 module: no re-read, no re-parse."""
    if mod.tree is None:
        exc = mod.parse_error
        if isinstance(exc, SyntaxError):
            v = Violation(
                path=mod.rel_posix,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                code=PARSE_ERROR_CODE,
                rule="syntax-error",
                severity=Severity.ERROR,
                message=f"cannot parse: {exc.msg}",
            )
        else:
            v = Violation(
                path=mod.rel_posix,
                line=1,
                col=0,
                code=PARSE_ERROR_CODE,
                rule="unreadable-file",
                severity=Severity.ERROR,
                message=f"cannot read file: {exc}",
            )
        return [v], 0
    ctx = FileContext(
        path=mod.path, rel_posix=mod.rel_posix, source=mod.source, config=config
    )
    enabled = config.enabled_codes([r.code for r in rules], mod.rel_posix)
    violations: list[Violation] = []
    suppressed = 0
    for rule in rules:
        if rule.code not in enabled:
            continue
        for violation in rule.check(mod.tree, ctx):
            if mod.suppressions.is_suppressed(violation.code, violation.line):
                suppressed += 1
            else:
                violations.append(violation)
    return violations, suppressed


def run_whole_program(
    paths: Sequence[str | os.PathLike],
    config: LintConfig | None = None,
    *,
    baseline: str | os.PathLike | None = None,
    file_rules: Sequence[Rule] | None = None,
    project_rules: Sequence[ProjectRule] | None = None,
    model: ProjectModel | None = None,
) -> LintResult:
    """The two-pass analysis: project model, then every rule pack.

    Pass 1 parses each discovered file exactly once into the
    :class:`ProjectModel`; pass 2 runs the per-file rules against the
    cached ASTs and the whole-program rules against the model, so the
    total parse count equals the file count regardless of how many
    rules are enabled.  Inline suppressions and per-path config apply
    to project findings exactly as they do to per-file ones, and a
    ``baseline`` file absorbs accepted findings (counted in
    ``LintResult.baselined``) without hiding regressions.

    Pass callers may hand in a prebuilt ``model`` (the CLI's ``--fix``
    reuses one run's model for the report).
    """
    config = config if config is not None else LintConfig()
    file_rules = list(file_rules) if file_rules is not None else all_rules()
    project_rules = (
        list(project_rules) if project_rules is not None else all_project_rules()
    )
    if model is None:
        files = discover_files(paths, config)
        model = build_model(list(files), config)
    modules = sorted(model.modules.values(), key=lambda m: m.rel_posix)
    violations: list[Violation] = []
    suppressed = 0
    for mod in modules:
        mod_violations, mod_suppressed = _lint_module(mod, config, file_rules)
        violations.extend(mod_violations)
        suppressed += mod_suppressed
    project_codes = [r.code for r in project_rules]
    for rule in project_rules:
        for violation in rule.check_project(model):
            enabled = config.enabled_codes(project_codes, violation.path)
            if violation.code not in enabled:
                continue
            mod = model.modules.get(violation.path)
            if mod is not None and mod.suppressions.is_suppressed(
                violation.code, violation.line
            ):
                suppressed += 1
            else:
                violations.append(violation)
    violations.sort(key=Violation.sort_key)
    baselined = 0
    if baseline is not None:
        counts = load_baseline(baseline)
        violations, baselined = apply_baseline(violations, counts)
    return LintResult(
        violations=violations,
        files_checked=len(model.modules),
        suppressed=suppressed,
        baselined=baselined,
    )
