"""``--fix``: the small set of rewrites safe enough to automate.

Only two fixes ship, chosen because both are provably behavior-
preserving under this repo's contracts:

- **make_rng rewrite** — a *seeded* ``numpy.random.default_rng(seed)``
  in engine code (RPL001 clause 3) becomes
  ``make_rng(seed)`` with ``from repro.montecarlo.rng import make_rng``
  inserted once; ``make_rng`` wraps the same construction behind the
  sanctioned fan-out, so the stream is unchanged while provenance
  becomes traceable.  Unseeded calls are *not* rewritten — there is no
  seed to preserve, so a human must decide where the seed comes from.
- **unused-import removal** — an imported name referenced nowhere else
  in the module (including inside string constants, which covers
  ``__all__`` re-export lists and string annotations) is dropped.
  ``__init__.py`` files are skipped wholesale: their imports *are* the
  public API.

Everything else stays manual on purpose: a fixer that edits control
flow is a second implementation of the rule, and the two disagree
exactly when it matters.

Edits are computed as character spans from AST node positions and
applied back-to-front, so earlier spans never shift.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
import re

from repro.lint.config import LintConfig, path_matches
from repro.lint.rules.imports import ImportMap
from repro.lint.rules.rpl001_rng import BannedRandomRule, _is_unseeded

__all__ = ["FixResult", "fix_file", "fix_paths", "fix_source"]

_MAKE_RNG_IMPORT = "from repro.montecarlo.rng import make_rng"
_WORD = re.compile(r"\w+")


@dataclasses.dataclass
class FixResult:
    """Outcome of fixing one file."""

    path: str
    rel_posix: str
    changed: bool
    applied: list[str]


def _line_offsets(source: str) -> list[int]:
    offsets = [0]
    for line in source.splitlines(keepends=True):
        offsets.append(offsets[-1] + len(line))
    return offsets


def _span(offsets: list[int], node: ast.AST) -> tuple[int, int]:
    start = offsets[node.lineno - 1] + node.col_offset
    end = offsets[node.end_lineno - 1] + node.end_col_offset
    return start, end


def _apply(source: str, edits: list[tuple[int, int, str]]) -> str:
    for start, end, replacement in sorted(edits, reverse=True):
        source = source[:start] + replacement + source[end:]
    return source


def _rewrite_make_rng(
    source: str, tree: ast.Module, rel_posix: str, config: LintConfig
) -> tuple[str, list[str]]:
    """Seeded ``default_rng(seed)`` -> ``make_rng(seed)`` in engine code."""
    rule = BannedRandomRule()
    opts = dict(rule.default_options)
    opts.update(config.rule_options.get(rule.code, {}))
    if path_matches(rel_posix, list(opts["allow"])):
        return source, []
    if not path_matches(rel_posix, list(opts["restricted"])):
        return source, []
    imports = ImportMap(tree)
    offsets = _line_offsets(source)
    edits: list[tuple[int, int, str]] = []
    applied: list[str] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if imports.canonical(node.func) != "numpy.random.default_rng":
            continue
        if _is_unseeded(node):
            continue  # nothing deterministic to preserve; human call
        start, end = _span(offsets, node.func)
        edits.append((start, end, "make_rng"))
        applied.append(
            f"{rel_posix}:{node.lineno}: "
            "rewrote numpy.random.default_rng(...) -> make_rng(...)"
        )
    if not edits:
        return source, []
    fixed = _apply(source, edits)
    if imports.canonical(ast.Name(id="make_rng")) != (
        "repro.montecarlo.rng.make_rng"
    ):
        fixed = _insert_import(fixed)
        applied.append(f"{rel_posix}: added '{_MAKE_RNG_IMPORT}'")
    return fixed, applied


def _insert_import(source: str) -> str:
    """Insert the make_rng import after the last top-level import."""
    tree = ast.parse(source)
    after_line = 0
    for stmt in tree.body:
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            after_line = stmt.end_lineno
        elif after_line == 0 and isinstance(stmt, ast.Expr):
            if isinstance(stmt.value, ast.Constant) and isinstance(
                stmt.value.value, str
            ):
                after_line = stmt.end_lineno  # after the docstring
    lines = source.splitlines(keepends=True)
    lines.insert(after_line, _MAKE_RNG_IMPORT + "\n")
    return "".join(lines)


def _used_names(tree: ast.Module) -> set[str]:
    """Identifiers referenced anywhere, plus words inside string constants.

    String words conservatively keep imports referenced only from
    ``__all__`` lists, string annotations, or doctests.
    """
    used: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            used.update(_WORD.findall(node.value))
    return used


def _render_import(stmt: ast.Import | ast.ImportFrom, kept: list[ast.alias]) -> str:
    names = ", ".join(
        a.name + (f" as {a.asname}" if a.asname else "") for a in kept
    )
    if isinstance(stmt, ast.Import):
        return f"import {names}"
    return f"from {'.' * stmt.level}{stmt.module or ''} import {names}"


def _remove_unused_imports(
    source: str, rel_posix: str
) -> tuple[str, list[str]]:
    tree = ast.parse(source)
    used = _used_names(tree)
    offsets = _line_offsets(source)
    edits: list[tuple[int, int, str]] = []
    applied: list[str] = []
    for stmt in tree.body:
        if not isinstance(stmt, (ast.Import, ast.ImportFrom)):
            continue
        if isinstance(stmt, ast.ImportFrom) and stmt.module == "__future__":
            continue
        if any(a.name == "*" for a in stmt.names):
            continue
        kept, dropped = [], []
        for alias in stmt.names:
            binding = alias.asname or alias.name.split(".")[0]
            (kept if binding in used else dropped).append(alias)
        if not dropped:
            continue
        # Whole statement lines, including any trailing comment/newline.
        start = offsets[stmt.lineno - 1]
        end = offsets[stmt.end_lineno]
        replacement = _render_import(stmt, kept) + "\n" if kept else ""
        edits.append((start, end, replacement))
        for alias in dropped:
            binding = alias.asname or alias.name.split(".")[0]
            applied.append(
                f"{rel_posix}:{stmt.lineno}: removed unused import "
                f"'{binding}'"
            )
    return _apply(source, edits), applied


def fix_source(
    source: str, rel_posix: str, config: LintConfig
) -> tuple[str, list[str]]:
    """Apply every automated fix to one module's source."""
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return source, []
    applied: list[str] = []
    source, done = _rewrite_make_rng(source, tree, rel_posix, config)
    applied.extend(done)
    if not rel_posix.endswith("__init__.py"):
        # Re-parse: the rewrite may have orphaned a numpy import.
        source, done = _remove_unused_imports(source, rel_posix)
        applied.extend(done)
    return source, applied


def fix_file(path: str | pathlib.Path, config: LintConfig) -> FixResult:
    p = pathlib.Path(path)
    try:
        rel = p.resolve().relative_to(pathlib.Path(config.root).resolve())
        rel_posix = rel.as_posix()
    except ValueError:
        rel_posix = p.resolve().as_posix()
    source = p.read_text(encoding="utf-8")
    fixed, applied = fix_source(source, rel_posix, config)
    changed = fixed != source
    if changed:
        p.write_text(fixed, encoding="utf-8")
    return FixResult(
        path=str(p), rel_posix=rel_posix, changed=changed, applied=applied
    )


def fix_paths(
    paths: list[str | pathlib.Path], config: LintConfig
) -> list[FixResult]:
    """Fix every file (already discovered/filtered by the caller)."""
    return [fix_file(p, config) for p in paths]
