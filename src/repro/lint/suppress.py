"""Inline suppression comments.

Two forms, both requiring explicit codes (there is deliberately no
"disable everything" spelling — suppressions are scoped waivers, not an
off switch):

- ``# repro-lint: disable=RPL003 -- why this is safe`` on the line a
  violation is reported at (for a multi-line statement, the line the
  report anchors to).  A comment standing alone on its own line also
  covers the *next* line, so long justifications need not push code
  past the line-length limit.  Several codes separate with commas.
- ``# repro-lint: disable-file=RPL001,RPL005 -- why`` anywhere in the
  file silences those codes for the whole file.

The trailing ``-- reason`` is optional syntax but mandatory policy: the
self-host test tree keeps every suppression justified (see
``docs/LINTING.md``).  Comments live outside the AST, so they are read
with :mod:`tokenize` and matched by (physical) line number.
"""

from __future__ import annotations

import dataclasses
import io
import re
import tokenize

__all__ = ["Suppressions"]

_PATTERN = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>disable(?:-file)?)\s*=\s*"
    r"(?P<codes>[A-Za-z0-9_,\s]+?)\s*(?:--\s*(?P<reason>.*))?$"
)


@dataclasses.dataclass
class Suppressions:
    """Per-file suppression state parsed from comments."""

    file_codes: frozenset[str] = frozenset()
    line_codes: dict[int, frozenset[str]] = dataclasses.field(default_factory=dict)

    @classmethod
    def from_source(cls, source: str) -> "Suppressions":
        """Scan one file's comments; tolerant of tokenize failures.

        A file that cannot be tokenized (it will fail parsing anyway
        and be reported as RPL000) simply has no suppressions.
        """
        file_codes: set[str] = set()
        line_codes: dict[int, frozenset[str]] = {}
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for tok in tokens:
                if tok.type != tokenize.COMMENT:
                    continue
                match = _PATTERN.search(tok.string)
                if not match:
                    continue
                codes = frozenset(
                    code.strip().upper()
                    for code in match.group("codes").split(",")
                    if code.strip()
                )
                if not codes:
                    continue
                if match.group("scope") == "disable-file":
                    file_codes |= codes
                else:
                    line, col = tok.start
                    lines = [line]
                    if not tok.line[:col].strip():
                        lines.append(line + 1)  # standalone comment covers next line
                    for n in lines:
                        line_codes[n] = line_codes.get(n, frozenset()) | codes
        except (tokenize.TokenError, IndentationError, SyntaxError):
            pass
        return cls(file_codes=frozenset(file_codes), line_codes=line_codes)

    def is_suppressed(self, code: str, line: int) -> bool:
        code = code.upper()
        if code in self.file_codes:
            return True
        return code in self.line_codes.get(line, frozenset())
