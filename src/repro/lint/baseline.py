"""Baseline / ratchet support for the whole-program pass.

A baseline is a committed JSON file mapping ``"<path>::<code>"`` to a
count of accepted pre-existing findings.  Keys deliberately omit line
numbers: unrelated edits that shift a finding up or down must not
invalidate the baseline, while a *new* finding of the same code in the
same file (count exceeded) still fails the build.  The ratchet is the
trivial consequence: regenerating the baseline must never grow its
total, so debt can only be paid down.

File format (``schema`` guards future layout changes)::

    {"schema": 1, "total": 2,
     "counts": {"src/repro/service/app.py::RPL012": 2}}
"""

from __future__ import annotations

import json
import pathlib

from repro.lint.rules.base import Violation

__all__ = [
    "BASELINE_SCHEMA",
    "apply_baseline",
    "baseline_key",
    "build_baseline",
    "load_baseline",
    "write_baseline",
]

BASELINE_SCHEMA = 1


def baseline_key(violation: Violation) -> str:
    """Stable identity of a finding: path and code, never line numbers."""
    return f"{violation.path}::{violation.code}"


def load_baseline(path: str | pathlib.Path) -> dict[str, int]:
    """Counts from a baseline file; ``{}`` if the file does not exist."""
    p = pathlib.Path(path)
    if not p.is_file():
        return {}
    data = json.loads(p.read_text(encoding="utf-8"))
    if data.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"unsupported baseline schema {data.get('schema')!r} in {p}; "
            f"expected {BASELINE_SCHEMA} — regenerate with --update-baseline"
        )
    counts = data.get("counts", {})
    if not isinstance(counts, dict):
        raise ValueError(f"baseline {p}: 'counts' must be an object")
    return {str(k): int(v) for k, v in counts.items()}


def apply_baseline(
    violations: list[Violation], counts: dict[str, int]
) -> tuple[list[Violation], int]:
    """Split findings into ``(kept, n_baselined)``.

    Findings are consumed against the counts in sorted order, so for a
    key with budget *n* the first *n* findings (lowest line first) are
    absorbed and any excess — a regression — is kept and fails the run.
    """
    if not counts:
        return list(violations), 0
    budget = dict(counts)
    kept: list[Violation] = []
    absorbed = 0
    for violation in sorted(violations, key=Violation.sort_key):
        key = baseline_key(violation)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            absorbed += 1
        else:
            kept.append(violation)
    return kept, absorbed


def build_baseline(violations: list[Violation]) -> dict:
    """Baseline payload accepting exactly the given findings."""
    counts: dict[str, int] = {}
    for violation in violations:
        key = baseline_key(violation)
        counts[key] = counts.get(key, 0) + 1
    return {
        "schema": BASELINE_SCHEMA,
        "total": sum(counts.values()),
        "counts": dict(sorted(counts.items())),
    }


def write_baseline(
    path: str | pathlib.Path, violations: list[Violation]
) -> dict:
    """Write (and return) the baseline payload for ``violations``."""
    payload = build_baseline(violations)
    pathlib.Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return payload
