"""`repro.lint` — AST-based invariant linter for this repository.

The repo's reproducibility guarantees (bit-identical Monte Carlo results
for any worker count, zero-re-execution campaign resume) rest on code
conventions that ordinary linters cannot see: every generator must come
from the :mod:`repro.montecarlo.rng` SeedSequence fan-out, every cache
key must be salted with ``ENGINE_VERSION``, scheduler shared state must
be mutated under its lock.  This package turns those conventions into
machine-checked invariants:

- per-rule AST visitors with stable codes (``RPL001``…), each documented
  in ``docs/LINTING.md`` with the invariant it protects;
- a two-pass **whole-program** mode (``--all``): pass 1 parses every
  file once into a :class:`~repro.lint.model.ProjectModel` (symbol
  tables, resolved import graph, async/call summaries); pass 2 runs the
  RPL010-015 packs over it — asyncio concurrency, RNG provenance
  dataflow, cache-key completeness, and declarative layering contracts;
- ``# repro-lint: disable=RPLxxx -- reason`` inline suppressions,
  applied identically to per-file and project findings;
- a ``[tool.repro-lint]`` pyproject config block (excludes, per-path
  rule enables, severity and per-rule option overrides, ``layers``
  contracts, default ``paths``, ratchet ``baseline``);
- a committed baseline + ratchet (``--baseline`` /
  ``--update-baseline``) so legacy findings are held constant while new
  ones fail the build;
- ``--fix`` for the rewrites safe enough to automate;
- file-parallel execution with deterministic output ordering;
- text, JSON, and SARIF reporters (schemas in ``docs/LINTING.md``).

Run it as ``python -m repro.lint [paths...]`` (add ``--all`` for the
whole-program pass); it exits nonzero iff an error-severity violation
survives suppression and the baseline.
"""

from __future__ import annotations

from repro.lint.baseline import apply_baseline, build_baseline, load_baseline
from repro.lint.config import LintConfig, load_config
from repro.lint.engine import LintResult, lint_file, run_paths, run_whole_program
from repro.lint.fixes import fix_file, fix_source
from repro.lint.model import ProjectModel, build_model
from repro.lint.rules import all_project_rules, all_rules
from repro.lint.rules.base import ProjectRule, Rule, Severity, Violation

__all__ = [
    "LintConfig",
    "LintResult",
    "ProjectModel",
    "ProjectRule",
    "Rule",
    "Severity",
    "Violation",
    "all_project_rules",
    "all_rules",
    "apply_baseline",
    "build_baseline",
    "build_model",
    "fix_file",
    "fix_source",
    "lint_file",
    "load_config",
    "load_baseline",
    "run_paths",
    "run_whole_program",
]
