"""`repro.lint` — AST-based invariant linter for this repository.

The repo's reproducibility guarantees (bit-identical Monte Carlo results
for any worker count, zero-re-execution campaign resume) rest on code
conventions that ordinary linters cannot see: every generator must come
from the :mod:`repro.montecarlo.rng` SeedSequence fan-out, every cache
key must be salted with ``ENGINE_VERSION``, scheduler shared state must
be mutated under its lock.  This package turns those conventions into
machine-checked invariants:

- per-rule AST visitors with stable codes (``RPL001``…), each documented
  in ``docs/LINTING.md`` with the invariant it protects;
- ``# repro-lint: disable=RPLxxx -- reason`` inline suppressions;
- a ``[tool.repro-lint]`` pyproject config block (excludes, per-path
  rule enables, severity and per-rule option overrides);
- file-parallel execution with deterministic output ordering;
- text and JSON reporters (schema in ``docs/LINTING.md``).

Run it as ``python -m repro.lint [paths...]``; it exits nonzero iff an
error-severity violation survives suppression.
"""

from __future__ import annotations

from repro.lint.config import LintConfig, load_config
from repro.lint.engine import LintResult, lint_file, run_paths
from repro.lint.rules import all_rules
from repro.lint.rules.base import Rule, Severity, Violation

__all__ = [
    "LintConfig",
    "LintResult",
    "Rule",
    "Severity",
    "Violation",
    "all_rules",
    "lint_file",
    "load_config",
    "run_paths",
]
