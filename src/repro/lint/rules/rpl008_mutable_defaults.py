"""RPL008 — mutable default arguments.

A mutable default is evaluated once at ``def`` time and shared by every
call; state leaks across calls (and across campaign jobs sharing a
helper).  The rule flags list/dict/set displays, comprehensions, and
calls to well-known mutable constructors used as parameter defaults.
"""

from __future__ import annotations

import ast

from repro.lint.rules.base import Rule, Severity, Violation
from repro.lint.rules.imports import ImportMap

__all__ = ["MutableDefaultRule"]

_DISPLAYS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)

_MUTABLE_CALLS = {
    "list", "dict", "set", "bytearray",
    "collections.defaultdict", "collections.deque", "collections.Counter",
    "collections.OrderedDict",
}


class MutableDefaultRule(Rule):
    code = "RPL008"
    name = "mutable-default-argument"
    severity = Severity.ERROR
    rationale = (
        "a mutable default is shared across calls; use None and "
        "construct inside the function"
    )
    default_options = {}

    def check(self, tree: ast.Module, ctx) -> list[Violation]:
        imports = ImportMap(tree)
        out: list[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = [
                d
                for d in (*node.args.defaults, *node.args.kw_defaults)
                if d is not None
            ]
            for default in defaults:
                bad = isinstance(default, _DISPLAYS)
                if not bad and isinstance(default, ast.Call):
                    bad = imports.canonical(default.func) in _MUTABLE_CALLS
                if bad:
                    label = getattr(node, "name", "<lambda>")
                    out.append(
                        self.violation(
                            ctx,
                            default,
                            f"mutable default argument in {label}(); default "
                            "to None and construct inside the body",
                        )
                    )
        return out
