"""RPL012 — fire-and-forget ``asyncio.create_task``.

A task whose handle is dropped has two failure modes, both silent.
Python keeps only a *weak* reference to running tasks, so a dropped
handle can be garbage-collected mid-flight and the work simply stops.
And when the task raises, nobody awaits the exception: it surfaces (if
ever) as a destructor warning long after the cause, which in this
service means a dead flush loop that looks like mysteriously growing
tail latency rather than a traceback.

The rule flags ``asyncio.create_task`` / ``asyncio.ensure_future`` /
``<loop>.create_task`` whose result is used as a bare expression
statement.  Retaining patterns — assignment (``self._task = ...``),
``await``, passing the handle onward — all pass.  The repo idiom for a
genuinely detached task is to retain it and add a done-callback that
logs; a justified inline waiver covers the rare exception.
"""

from __future__ import annotations

from repro.lint.config import path_matches
from repro.lint.model import ProjectModel
from repro.lint.rules.base import ProjectRule, Severity, Violation

__all__ = ["FireAndForgetTaskRule"]


class FireAndForgetTaskRule(ProjectRule):
    code = "RPL012"
    name = "fire-and-forget-task"
    severity = Severity.ERROR
    rationale = (
        "a dropped task handle can be garbage-collected mid-flight and "
        "its exceptions vanish; retain the handle and observe its result"
    )
    default_options = {
        "paths": ["src/*"],
    }

    def check_project(self, model: ProjectModel) -> list[Violation]:
        opts = self.project_options(model.config)
        out: list[Violation] = []
        for module in model.modules.values():
            if module.tree is None:
                continue
            if not path_matches(module.rel_posix, list(opts["paths"])):
                continue
            for fn in module.functions.values():
                for spawn in fn.task_spawns:
                    if spawn.retained:
                        continue
                    out.append(
                        self.project_violation(
                            model,
                            module,
                            spawn.lineno,
                            spawn.col,
                            f"{spawn.name}(...) in {fn.name}() discards its "
                            "task handle; the task can be GC'd mid-flight "
                            "and its exception is never retrieved — keep the "
                            "handle and await or done-callback it",
                        )
                    )
        return out
