"""RPL006 — swallowed exceptions in retry-adjacent code.

The campaign scheduler's retry/backoff machinery depends on failures
*propagating*: a handler that catches everything and does nothing turns
a failed job into a silently-wrong "success", defeating retry
accounting, failure isolation, and the event-log audit trail.  The rule
flags

- bare ``except:`` (catches ``SystemExit``/``KeyboardInterrupt`` too);
- ``except Exception:`` / ``except BaseException:`` (alone or in a
  tuple) whose body does nothing but ``pass`` / ``...`` / ``continue``.

A broad handler that logs, re-raises, or records the error is fine —
breadth is only flagged when combined with swallowing.
"""

from __future__ import annotations

import ast

from repro.lint.rules.base import Rule, Severity, Violation, qualified_name

__all__ = ["ExceptionSwallowRule"]

_BROAD = {"Exception", "BaseException", "builtins.Exception", "builtins.BaseException"}


def _is_broad(type_node: ast.AST | None) -> bool:
    if type_node is None:
        return True
    if isinstance(type_node, ast.Tuple):
        return any(_is_broad(elt) for elt in type_node.elts)
    return qualified_name(type_node) in _BROAD


def _swallows(body: list[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and (stmt.value.value is Ellipsis or isinstance(stmt.value.value, str))
        ):
            continue  # ``...`` or a docstring-style string
        return False
    return True


class ExceptionSwallowRule(Rule):
    code = "RPL006"
    name = "swallowed-broad-exception"
    severity = Severity.ERROR
    rationale = (
        "retry/isolation accounting requires failures to propagate; "
        "a swallowing broad handler converts them into silent wrong results"
    )
    default_options = {}

    def check(self, tree: ast.Module, ctx) -> list[Violation]:
        out: list[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                out.append(
                    self.violation(
                        ctx,
                        node,
                        "bare 'except:' catches SystemExit/KeyboardInterrupt; "
                        "name the exceptions (and never swallow them silently)",
                    )
                )
            elif _is_broad(node.type) and _swallows(node.body):
                out.append(
                    self.violation(
                        ctx,
                        node,
                        "broad exception handler swallows the error; handle, "
                        "log, or re-raise so retry/isolation can account for it",
                    )
                )
        return out
