"""RPL007 — shell-interpreted subprocess invocation.

``subprocess.*(..., shell=True)`` and ``os.system``/``os.popen`` route
the command line through ``/bin/sh``: any interpolated path or spec
field becomes an injection vector, and quoting differences make runs
environment-dependent.  Campaign specs accept user-provided strings, so
the repo's convention is argv-list execution only.
"""

from __future__ import annotations

import ast

from repro.lint.rules.base import Rule, Severity, Violation
from repro.lint.rules.imports import ImportMap

__all__ = ["ShellInvocationRule"]

_OS_SHELL = {"os.system", "os.popen", "os.popen2", "os.popen3", "os.popen4"}


class ShellInvocationRule(Rule):
    code = "RPL007"
    name = "shell-interpreted-subprocess"
    severity = Severity.ERROR
    rationale = (
        "shell=True turns interpolated strings into injection vectors; "
        "pass an argv list instead"
    )
    default_options = {}

    def check(self, tree: ast.Module, ctx) -> list[Violation]:
        imports = ImportMap(tree)
        out: list[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = imports.canonical(node.func)
            if name in _OS_SHELL:
                out.append(
                    self.violation(
                        ctx,
                        node,
                        f"{name}() runs through /bin/sh; use subprocess.run "
                        "with an argv list",
                    )
                )
            elif name is not None and name.startswith("subprocess."):
                for kw in node.keywords:
                    if (
                        kw.arg == "shell"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                    ):
                        out.append(
                            self.violation(
                                ctx,
                                node,
                                f"{name}(..., shell=True) is shell-interpreted; "
                                "pass an argv list without shell=True",
                            )
                        )
        return out
