"""RPL004 — scheduler shared state is mutated only under its lock.

The campaign scheduler fans jobs out to a thread pool; its ``states`` /
``results`` maps are read by worker threads (dependency results are
snapshotted per job) while the orchestrating thread mutates them.  The
repo's convention is that every mutation happens inside
``with self._lock:`` so the maps can never be observed mid-update —
a torn read turns into a wrong dependency payload, which is exactly the
kind of silent corruption the resume tests cannot catch.

The rule applies to the configured files (default:
``*/campaign/scheduler.py``).  Inside any class there, a statement that
mutates ``self.<guarded attr>`` — assignment, augmented assignment,
subscript store/delete, or a mutating method call such as ``.pop()`` —
must be lexically inside a ``with self._lock:`` block in the *same*
function.  ``__init__`` is exempt (the object is not shared yet), and a
nested function does not inherit its definition site's lock: it runs
later, when the lock may no longer be held.
"""

from __future__ import annotations

import ast

from repro.lint.rules.base import Rule, Severity, Violation, qualified_name

__all__ = ["LockDisciplineRule"]

_MUTATORS = {
    "update", "pop", "popitem", "clear", "setdefault",
    "append", "extend", "insert", "remove", "add", "discard",
}


def _guarded_base(node: ast.AST, guarded: set[str]) -> ast.AST | None:
    """The ``self.<attr>`` node a store/delete targets, if guarded."""
    while isinstance(node, (ast.Subscript, ast.Starred)):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and node.attr in guarded
    ):
        return node
    return None


class LockDisciplineRule(Rule):
    code = "RPL004"
    name = "shared-state-mutation-outside-lock"
    severity = Severity.ERROR
    rationale = (
        "scheduler maps are read concurrently by worker threads; "
        "unlocked mutation risks torn dependency snapshots"
    )
    default_options = {
        "files": ["*/campaign/scheduler.py"],
        "guarded": ["states", "results"],
        "lock": "_lock",
        "exempt_methods": ["__init__"],
    }

    def check(self, tree: ast.Module, ctx) -> list[Violation]:
        opts = self.options(ctx)
        from repro.lint.config import path_matches

        if not path_matches(ctx.rel_posix, list(opts["files"])):
            return []
        guarded = set(opts["guarded"])
        lock_name = f"self.{opts['lock']}"
        exempt = set(opts["exempt_methods"])
        out: list[Violation] = []

        def visit(node: ast.AST, lock_depth: int) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name in exempt:
                    return
                lock_depth = 0  # the body runs later, lock not inherited
            elif isinstance(node, ast.Lambda):
                lock_depth = 0
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                if any(
                    qualified_name(item.context_expr) == lock_name
                    for item in node.items
                ):
                    lock_depth += 1
            elif lock_depth == 0:
                hit: ast.AST | None = None
                if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        elts = (
                            target.elts
                            if isinstance(target, (ast.Tuple, ast.List))
                            else [target]
                        )
                        for elt in elts:
                            hit = hit or _guarded_base(elt, guarded)
                elif isinstance(node, ast.Delete):
                    for target in node.targets:
                        hit = hit or _guarded_base(target, guarded)
                elif isinstance(node, ast.Call):
                    if (
                        isinstance(node.func, ast.Attribute)
                        and node.func.attr in _MUTATORS
                    ):
                        hit = _guarded_base(node.func.value, guarded)
                if hit is not None:
                    attr = f"self.{hit.attr}"  # type: ignore[attr-defined]
                    out.append(
                        self.violation(
                            ctx,
                            node,
                            f"mutation of shared {attr} outside "
                            f"'with {lock_name}:'",
                        )
                    )
            for child in ast.iter_child_nodes(node):
                visit(child, lock_depth)

        visit(tree, 0)
        return out
