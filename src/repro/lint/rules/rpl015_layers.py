"""RPL015 — architecture layering contracts.

The repo's layering is a load-bearing invariant, not a style choice:
``montecarlo`` must stay importable without the service stack (it runs
inside ``ProcessPoolExecutor`` workers), and the service must not grow
a dependency on campaign persistence that would couple request latency
to disk layout.  Those contracts live as a declarative table in
``pyproject.toml``::

    [tool.repro-lint.layers]
    "repro.montecarlo" = { deny = ["repro.service", "repro.campaign"] }
    "repro.service"    = { deny = ["repro.campaign.events"] }

Every resolved import edge in the project model is checked against the
table: if the importing module falls under a layer key (dotted-segment
prefix match) and the import target falls under one of that layer's
``deny`` prefixes, the import line is flagged.  Deleting an edge from
the table silently legalizes the dependency — which is why the test
suite pins the table's exact contents.
"""

from __future__ import annotations

from repro.lint.model import ProjectModel
from repro.lint.rules.base import ProjectRule, Severity, Violation

__all__ = ["LayeringContractRule", "dotted_prefix"]


def dotted_prefix(module: str, prefix: str) -> bool:
    """True if ``module`` equals ``prefix`` or sits under it."""
    return module == prefix or module.startswith(prefix + ".")


class LayeringContractRule(ProjectRule):
    code = "RPL015"
    name = "layering-contract-violation"
    severity = Severity.ERROR
    rationale = (
        "cross-layer imports couple the compute kernels to the service "
        "stack (breaking worker-process isolation) or the service to "
        "campaign persistence; the allowed graph is declared in "
        "[tool.repro-lint.layers]"
    )
    default_options: dict = {}

    def check_project(self, model: ProjectModel) -> list[Violation]:
        layers = model.config.layers
        if not layers:
            return []
        out: list[Violation] = []
        for module in model.modules.values():
            if module.tree is None or not module.module:
                continue
            denied: list[tuple[str, str]] = []  # (layer key, deny prefix)
            for layer, contract in layers.items():
                if not dotted_prefix(module.module, layer):
                    continue
                for deny in contract.get("deny", ()):
                    denied.append((layer, deny))
            if not denied:
                continue
            for edge in module.imports:
                if edge.target is None:
                    continue
                for layer, deny in denied:
                    if dotted_prefix(edge.target, deny):
                        out.append(
                            self.project_violation(
                                model,
                                module,
                                edge.lineno,
                                edge.col,
                                f"layer '{layer}' must not import "
                                f"'{deny}' (imports {edge.target}); "
                                "declared in [tool.repro-lint.layers] — "
                                "invert the dependency or move the shared "
                                "code below both layers",
                            )
                        )
                        break
        return out
