"""RPL003 — wall clock reads in deterministic paths.

Monte Carlo results and campaign job payloads must be pure functions of
``(spec, seed, ENGINE_VERSION)``; a ``time.time()`` or
``datetime.now()`` folded into a result (or a cache key) makes runs
unrepeatable and resume non-byte-equal.  The rule bans wall-clock reads
inside the configured deterministic path globs (default: ``montecarlo``
and ``campaign``).  Monotonic clocks for *metrics* — ``perf_counter``,
``monotonic`` — stay allowed: they measure, they never enter results.
Telemetry timestamps (event logs) are the intended use of an inline
``# repro-lint: disable=RPL003 -- <why>`` waiver.

Both calls and bare references are flagged: ``default_factory=time.time``
is as much a wall-clock read as ``time.time()``.
"""

from __future__ import annotations

import ast

from repro.lint.rules.base import Rule, Severity, Violation
from repro.lint.rules.imports import ImportMap

__all__ = ["WallClockRule"]

_BANNED = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


class WallClockRule(Rule):
    code = "RPL003"
    name = "wall-clock-in-deterministic-path"
    severity = Severity.ERROR
    rationale = (
        "results must be a pure function of (spec, seed, ENGINE_VERSION); "
        "wall-clock reads make them unrepeatable"
    )
    default_options = {
        "paths": ["*/montecarlo/*", "*/campaign/*"],
    }

    def check(self, tree: ast.Module, ctx) -> list[Violation]:
        opts = self.options(ctx)
        from repro.lint.config import path_matches

        if not path_matches(ctx.rel_posix, list(opts["paths"])):
            return []
        imports = ImportMap(tree)
        out: list[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            name = imports.canonical(node)
            if name in _BANNED:
                out.append(
                    self.violation(
                        ctx,
                        node,
                        f"wall-clock read {name} in a deterministic path; "
                        "results must not depend on when they were computed "
                        "(use time.perf_counter for durations, or suppress "
                        "with a justification for telemetry)",
                    )
                )
        return out
