"""Import-alias resolution so rules match *canonical* dotted names.

``np.random.default_rng``, ``numpy.random.default_rng`` and
``from numpy.random import default_rng`` must all trip the same rule.
:class:`ImportMap` records what each local name was bound to by the
file's import statements, and :meth:`canonical` rewrites an expression's
dotted path into fully-qualified module terms.  Resolution is purely
lexical — a local variable shadowing an import alias later in the file
is not tracked — which is the right trade for a linter: false positives
stay suppressible, and no code is executed.
"""

from __future__ import annotations

import ast

from repro.lint.rules.base import qualified_name

__all__ = ["ImportMap", "resolve_relative"]


def resolve_relative(module: str | None, level: int, target: str | None) -> str | None:
    """Absolute module named by a ``from ..x import y`` statement.

    ``module`` is the dotted name of the importing module (``None`` when
    unknown, in which case relative imports stay unresolved).  ``level``
    counts leading dots; one dot anchors at the importer's package.
    """
    if level == 0:
        return target
    if module is None:
        return None
    parts = module.split(".")
    if len(parts) < level:
        return None
    base = parts[: len(parts) - level]
    if target:
        base.append(target)
    return ".".join(base) if base else None


class ImportMap:
    """Local-name → canonical-module map for one parsed file.

    ``module`` — the file's own dotted module name — lets relative
    imports resolve to absolute names; without it they are skipped
    (the pre-whole-program behavior, still right for loose files).
    """

    def __init__(self, tree: ast.Module, module: str | None = None):
        self._alias: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        self._alias[alias.asname] = alias.name
                    else:
                        # ``import numpy.random`` binds the *top* name.
                        top = alias.name.split(".", 1)[0]
                        self._alias[top] = top
            elif isinstance(node, ast.ImportFrom):
                source = resolve_relative(module, node.level, node.module)
                if source is None:
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    self._alias[local] = f"{source}.{alias.name}"

    def alias_of(self, local: str) -> str | None:
        """Canonical target a local name was import-bound to, if any."""
        return self._alias.get(local)

    def canonical(self, node: ast.AST) -> str | None:
        """Fully-qualified dotted name of an attribute chain, or None."""
        dotted = qualified_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        resolved = self._alias.get(head, head)
        return f"{resolved}.{rest}" if rest else resolved
