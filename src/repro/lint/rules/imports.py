"""Import-alias resolution so rules match *canonical* dotted names.

``np.random.default_rng``, ``numpy.random.default_rng`` and
``from numpy.random import default_rng`` must all trip the same rule.
:class:`ImportMap` records what each local name was bound to by the
file's import statements, and :meth:`canonical` rewrites an expression's
dotted path into fully-qualified module terms.  Resolution is purely
lexical — a local variable shadowing an import alias later in the file
is not tracked — which is the right trade for a linter: false positives
stay suppressible, and no code is executed.
"""

from __future__ import annotations

import ast

from repro.lint.rules.base import qualified_name

__all__ = ["ImportMap"]


class ImportMap:
    """Local-name → canonical-module map for one parsed file."""

    def __init__(self, tree: ast.Module):
        self._alias: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        self._alias[alias.asname] = alias.name
                    else:
                        # ``import numpy.random`` binds the *top* name.
                        top = alias.name.split(".", 1)[0]
                        self._alias[top] = top
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative imports stay project-local
                for alias in node.names:
                    local = alias.asname or alias.name
                    self._alias[local] = f"{node.module}.{alias.name}"

    def canonical(self, node: ast.AST) -> str | None:
        """Fully-qualified dotted name of an attribute chain, or None."""
        dotted = qualified_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        resolved = self._alias.get(head, head)
        return f"{resolved}.{rest}" if rest else resolved
