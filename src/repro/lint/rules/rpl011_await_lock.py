"""RPL011 — ``await`` while holding a ``threading.Lock``.

A thread lock held across an ``await`` is a deadlock and priority-
inversion machine: the suspension lets any other coroutine on the loop
run, and if one of them (or an engine-thread callback) tries to take
the same lock, the loop blocks forever — the lock's owner can only
release it after the event loop resumes it.  Even short of deadlock,
every event-loop task serializes behind a lock meant to order *thread*
access for microseconds, not I/O waits.

Detection comes from the pass-1 function summaries: a ``with`` (never
``async with`` — asyncio primitives are await-safe) whose context
expression constructs or names a thread lock (``threading.Lock()``,
``self._lock``, any ``*lock*`` name by repo convention) containing an
``await`` in the same function body.  The fix is to compute under the
lock and await outside it, or switch to ``asyncio.Lock``.
"""

from __future__ import annotations

from repro.lint.config import path_matches
from repro.lint.model import ProjectModel
from repro.lint.rules.base import ProjectRule, Severity, Violation

__all__ = ["AwaitUnderLockRule"]


class AwaitUnderLockRule(ProjectRule):
    code = "RPL011"
    name = "await-holding-thread-lock"
    severity = Severity.ERROR
    rationale = (
        "a threading.Lock held across an await can deadlock the event "
        "loop and serializes unrelated coroutines behind thread-ordering "
        "critical sections"
    )
    default_options = {
        "paths": ["src/*"],
    }

    def check_project(self, model: ProjectModel) -> list[Violation]:
        opts = self.project_options(model.config)
        out: list[Violation] = []
        for module in model.modules.values():
            if module.tree is None:
                continue
            if not path_matches(module.rel_posix, list(opts["paths"])):
                continue
            for fn in module.functions.values():
                for lineno, col, lock in fn.awaits_under_lock:
                    out.append(
                        self.project_violation(
                            model,
                            module,
                            lineno,
                            col,
                            f"await inside 'with {lock}:' in {fn.name}(); a "
                            "thread lock held across a suspension point can "
                            "deadlock the loop — release before awaiting or "
                            "use asyncio.Lock",
                        )
                    )
        return out
