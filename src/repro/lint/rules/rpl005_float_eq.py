"""RPL005 — exact equality against computed floats.

``0.1 + 0.2 == 0.3`` is False; a threshold comparison written with
``==`` against a float literal silently never (or always) fires as soon
as either side is computed.  The rule flags ``==`` / ``!=`` comparisons
where an operand is a non-integral float literal or an arithmetic
expression containing a float literal, and points at
``math.isclose`` / ``np.isclose``.

Comparisons against the literal ``0.0`` are allowed by default
(``allow_zero_literal``): this codebase uses exact zero as a sentinel
for "parameter disabled" (``sigma == 0.0``) and for detecting genuine
underflow-to-zero, both of which are exact-representation checks, not
tolerance checks.
"""

from __future__ import annotations

import ast

from repro.lint.rules.base import Rule, Severity, Violation

__all__ = ["FloatEqualityRule"]

_ARITH = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.Pow, ast.Mod, ast.FloorDiv)


class FloatEqualityRule(Rule):
    code = "RPL005"
    name = "float-equality-comparison"
    severity = Severity.ERROR
    rationale = (
        "exact == on computed floats is representation-dependent; "
        "use math.isclose/np.isclose with an explicit tolerance"
    )
    default_options = {
        "allow_zero_literal": True,
    }

    def _floatish(self, node: ast.AST, allow_zero: bool) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return not (allow_zero and node.value == 0.0)
        if isinstance(node, ast.UnaryOp):
            return self._floatish(node.operand, allow_zero)
        if isinstance(node, ast.BinOp) and isinstance(node.op, _ARITH):
            # Arithmetic over any float literal produces a computed float;
            # the zero allowance does not apply inside an expression.
            return any(
                isinstance(sub, ast.Constant) and isinstance(sub.value, float)
                for sub in ast.walk(node)
            )
        return False

    def check(self, tree: ast.Module, ctx) -> list[Violation]:
        allow_zero = bool(self.options(ctx)["allow_zero_literal"])
        out: list[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if self._floatish(left, allow_zero) or self._floatish(
                    right, allow_zero
                ):
                    out.append(
                        self.violation(
                            ctx,
                            node,
                            "exact ==/!= against a float; use "
                            "math.isclose/np.isclose with an explicit "
                            "tolerance",
                        )
                    )
                    break  # one report per comparison statement
        return out
