"""Rule/violation primitives shared by every ``repro.lint`` rule."""

from __future__ import annotations

import ast
import dataclasses
import enum
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.lint.config import LintConfig
    from repro.lint.engine import FileContext
    from repro.lint.model import ModuleInfo, ProjectModel

__all__ = ["ProjectRule", "Rule", "Severity", "Violation", "qualified_name"]


class Severity(enum.Enum):
    """How a violation affects the exit status.

    ``ERROR`` violations fail the run; ``WARNING`` violations are
    reported but exit 0.  Severities are per-rule defaults that the
    ``[tool.repro-lint.severity]`` config table can override.
    """

    WARNING = "warning"
    ERROR = "error"


@dataclasses.dataclass(frozen=True)
class Violation:
    """One finding, anchored to a source position.

    ``line``/``col`` are 1-based line and 0-based column, matching
    :mod:`ast` node coordinates (and clickable ``path:line`` rendering).
    """

    path: str
    line: int
    col: int
    code: str
    rule: str
    severity: Severity
    message: str

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
        }


class Rule:
    """Base class: one invariant, one stable code, one AST pass.

    Subclasses set the class attributes and implement :meth:`check`,
    returning violations for a parsed file.  Rules must be pure
    functions of ``(tree, context)`` — no filesystem access, no global
    state — so the engine can fan files out to worker processes.

    ``default_options`` documents every knob the rule reads from its
    ``[tool.repro-lint.rules.<code>]`` config table; user config is
    merged over it (unknown keys rejected by the config loader).
    """

    code: str = "RPL000"
    name: str = "unnamed-rule"
    severity: Severity = Severity.ERROR
    rationale: str = ""
    default_options: Mapping[str, Any] = {}

    def check(self, tree: ast.Module, ctx: "FileContext") -> list[Violation]:
        raise NotImplementedError

    def options(self, ctx: "FileContext") -> Mapping[str, Any]:
        """This rule's options with config overrides applied."""
        merged = dict(self.default_options)
        merged.update(ctx.config.rule_options.get(self.code, {}))
        return merged

    def violation(self, ctx: "FileContext", node: ast.AST, message: str) -> Violation:
        return Violation(
            path=ctx.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            rule=self.name,
            severity=ctx.config.severity_for(self.code, self.severity),
            message=message,
        )


class ProjectRule(Rule):
    """Base class for whole-program rules (the pass-2 packs, RPL010+).

    A project rule sees the :class:`~repro.lint.model.ProjectModel`
    built by pass 1 — every module's AST, import edges, and function
    summaries at once — instead of one file.  It therefore runs only in
    whole-program mode (``--all``); :meth:`check` is a no-op so the
    per-file engine can share one registry without special-casing.

    Implementations stay pure functions of ``(model,)`` — the model owns
    the config — and report through :meth:`project_violation` so path
    rendering, severity overrides, and suppression filtering behave
    exactly like per-file rules.
    """

    def check(self, tree: ast.Module, ctx: "FileContext") -> list[Violation]:
        return []  # whole-program only; nothing to say about one file

    def check_project(self, model: "ProjectModel") -> list[Violation]:
        raise NotImplementedError

    def project_options(self, config: "LintConfig") -> Mapping[str, Any]:
        merged = dict(self.default_options)
        merged.update(config.rule_options.get(self.code, {}))
        return merged

    def project_violation(
        self,
        model: "ProjectModel",
        module: "ModuleInfo",
        lineno: int,
        col: int,
        message: str,
    ) -> Violation:
        return Violation(
            path=module.rel_posix,
            line=lineno,
            col=col,
            code=self.code,
            rule=self.name,
            severity=model.config.severity_for(self.code, self.severity),
            message=message,
        )


def qualified_name(node: ast.AST) -> str | None:
    """Dotted name of a Name/Attribute chain (``np.random.default_rng``).

    Returns ``None`` for anything that is not a pure attribute chain
    (calls, subscripts, …), which rules treat as "not statically
    resolvable" rather than guessing.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
