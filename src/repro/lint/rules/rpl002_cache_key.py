"""RPL002 — cache-key builders must salt with ``ENGINE_VERSION``.

The persistent result cache (:mod:`repro.montecarlo.results_cache`)
promises that bumping ``ENGINE_VERSION`` invalidates every stale entry.
That only holds if *every* function hashing key material mixes the
version in; an unsalted key silently serves results computed by an old
engine — byte-equal resume would restore wrong numbers.

Detection: a function whose name looks like a key builder (``*_key``,
``key``, ``*cache_key*`` by default) and whose body computes a digest
via :mod:`hashlib` must reference one of the configured version names
(default ``ENGINE_VERSION``) somewhere in its body.
"""

from __future__ import annotations

import ast
import fnmatch

from repro.lint.rules.base import Rule, Severity, Violation, qualified_name
from repro.lint.rules.imports import ImportMap

__all__ = ["CacheKeyVersionRule"]


class CacheKeyVersionRule(Rule):
    code = "RPL002"
    name = "cache-key-missing-engine-version"
    severity = Severity.ERROR
    rationale = (
        "an unsalted cache key survives engine changes and silently "
        "serves results computed by stale code"
    )
    default_options = {
        "name_patterns": ["*_key", "key", "*cache_key*"],
        "version_names": ["ENGINE_VERSION"],
    }

    def check(self, tree: ast.Module, ctx) -> list[Violation]:
        opts = self.options(ctx)
        patterns = list(opts["name_patterns"])
        versions = set(opts["version_names"])
        imports = ImportMap(tree)
        out: list[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not any(fnmatch.fnmatch(node.name, p) for p in patterns):
                continue
            hashes = False
            salted = False
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call):
                    name = imports.canonical(sub.func) or ""
                    if name.startswith("hashlib."):
                        hashes = True
                dotted = qualified_name(sub)
                if dotted is not None and dotted.split(".")[-1] in versions:
                    salted = True
            if hashes and not salted:
                out.append(
                    self.violation(
                        ctx,
                        node,
                        f"cache-key builder {node.name}() hashes key material "
                        "without referencing ENGINE_VERSION; stale entries "
                        "will survive engine changes",
                    )
                )
        return out
