"""RPL010 — blocking call inside a coroutine (direct or transitive).

The service's "bit-identical to unbatched" guarantee rests on its event
loop staying responsive: the flush loop must observe deadlines, and
request futures must resolve in submission order.  A coroutine that
calls ``time.sleep``, sync file/subprocess I/O, or — worse — drops
straight into the numpy-heavy Monte Carlo / coding kernels stalls every
other request on the loop.  The sanctioned seam is the executor
(``run_in_executor`` / ``run_serialized`` / ``asyncio.to_thread``):
callables passed there produce no call edge, so routing work through
the seam is exactly what makes this rule pass.

Whole-program part: the rule follows resolved call edges from each
coroutine through *synchronous* project functions (awaited coroutine
calls yield the loop and are fine), so a blocking call hidden two sync
helpers deep is still attributed to the coroutine's call site, with the
chain named in the message.
"""

from __future__ import annotations

import fnmatch

from repro.lint.config import path_matches
from repro.lint.model import FunctionInfo, ProjectModel
from repro.lint.rules.base import ProjectRule, Severity, Violation

__all__ = ["BlockingInCoroutineRule"]

#: Call targets that block the calling thread outright.
_BLOCKING = [
    "time.sleep",
    "open",
    "io.open",
    "os.system",
    "os.popen",
    "os.waitpid",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "socket.create_connection",
    "urllib.request.urlopen",
    "requests.get",
    "requests.post",
    "requests.request",
]


class BlockingInCoroutineRule(ProjectRule):
    code = "RPL010"
    name = "blocking-call-in-coroutine"
    severity = Severity.ERROR
    rationale = (
        "a blocking call on the event loop stalls the batching queue's "
        "deadline flush and every concurrent request; route work through "
        "the executor seam instead"
    )
    default_options = {
        # Files whose coroutines are held to the rule.
        "paths": ["src/*"],
        # Directly blocking call targets (canonical dotted names).
        "blocking": list(_BLOCKING),
        # Project modules that are numpy-heavy compute kernels: calling
        # into them from a coroutine without the executor seam blocks.
        "heavy": ["repro.montecarlo.*", "repro.coding.*"],
        # Kernel-adjacent modules cheap enough to call inline.
        "heavy_allow": ["repro.montecarlo.rng", "repro.montecarlo.rng.*"],
        # Transitive search depth through sync project functions.
        "max_depth": 6,
    }

    def _classify(
        self, name: str, opts, model: ProjectModel
    ) -> str | None:
        """Why a call target blocks, or None if it does not."""
        if name in set(opts["blocking"]):
            return f"blocking call {name}()"
        if any(fnmatch.fnmatch(name, p) for p in opts["heavy_allow"]):
            return None
        if any(fnmatch.fnmatch(name, p) for p in opts["heavy"]):
            return f"call into the compute kernel {name}()"
        return None

    def check_project(self, model: ProjectModel) -> list[Violation]:
        opts = self.project_options(model.config)
        out: list[Violation] = []
        for module in model.modules.values():
            if module.tree is None:
                continue
            if not path_matches(module.rel_posix, list(opts["paths"])):
                continue
            for fn in module.functions.values():
                if not fn.is_coroutine:
                    continue
                out.extend(self._check_coroutine(fn, module, opts, model))
        return out

    def _check_coroutine(self, fn, module, opts, model) -> list[Violation]:
        out = []
        for call in fn.calls:
            reason = self._classify(call.name, opts, model)
            chain: list[str] = []
            if reason is None:
                target = model.resolve(call.name)
                if target is not None and not target.is_coroutine:
                    reason, chain = self._search_sync(
                        target, opts, model, int(opts["max_depth"])
                    )
            if reason is not None:
                via = f" (via {' -> '.join(chain)})" if chain else ""
                out.append(
                    self.project_violation(
                        model,
                        module,
                        call.lineno,
                        call.col,
                        f"coroutine {fn.name}() makes {reason}{via}; the "
                        "event loop stalls — route it through the executor "
                        "seam (run_in_executor / run_serialized / to_thread)",
                    )
                )
        return out

    def _search_sync(
        self, start: FunctionInfo, opts, model: ProjectModel, max_depth: int
    ) -> tuple[str | None, list[str]]:
        """BFS through sync project calls for the first blocking target."""
        seen = {start.qualname}
        frontier: list[tuple[FunctionInfo, list[str]]] = [(start, [start.name])]
        for _ in range(max_depth):
            next_frontier: list[tuple[FunctionInfo, list[str]]] = []
            for fn, chain in frontier:
                for call in fn.calls:
                    reason = self._classify(call.name, opts, model)
                    if reason is not None:
                        return reason, chain
                    target = model.resolve(call.name)
                    if (
                        target is not None
                        and not target.is_coroutine
                        and target.qualname not in seen
                    ):
                        seen.add(target.qualname)
                        next_frontier.append((target, chain + [target.name]))
            frontier = next_frontier
            if not frontier:
                break
        return None, []
