"""RPL014 — cache-key completeness across engine version constants.

RPL002 checks that a key builder mentions ``ENGINE_VERSION``; it cannot
know that the results being cached *also* depend on the batched
datapath, whose semantics are versioned by
``repro.coding.batch.DATAPATH_VERSION``.  This rule closes that gap
with the project model: for every ``hashlib``-hashing key builder, it
finds the modules that actually *call* it (those are the engines whose
outputs the key addresses), collects every public ``*_VERSION``
constant defined in or imported by those caller modules, and requires
the builder to fold each one into the key.

Concretely: ``bler_counts_key`` is called from ``bler_mc``, which
imports both the executor (``ENGINE_VERSION``) and the batch datapath
(``DATAPATH_VERSION``) — so the key must reference both, and a future
codec module with its own ``CODEC_VERSION`` is covered the day
``bler_mc`` starts importing it, with no rule change.

A builder nobody in the project calls falls back to the RPL002
contract (its own module's version surface), so dead-looking helpers
still get checked.
"""

from __future__ import annotations

import ast
import fnmatch

from repro.lint.config import path_matches
from repro.lint.model import FunctionInfo, ModuleInfo, ProjectModel
from repro.lint.rules.base import ProjectRule, Severity, Violation, qualified_name

__all__ = ["CacheKeyCompletenessRule"]


class CacheKeyCompletenessRule(ProjectRule):
    code = "RPL014"
    name = "cache-key-missing-version-constant"
    severity = Severity.ERROR
    rationale = (
        "a cache key that omits a version constant of an engine feeding "
        "it silently serves results computed by stale code after that "
        "engine changes"
    )
    default_options = {
        # Builder name patterns (same family as RPL002).
        "name_patterns": ["*_key", "key", "*cache_key*"],
        # Caller modules considered engine code.
        "paths": ["src/*"],
    }

    def check_project(self, model: ProjectModel) -> list[Violation]:
        opts = self.project_options(model.config)
        builders = self._find_builders(model, opts)
        if not builders:
            return []
        callers = self._callers_of(model, builders, opts)
        out: list[Violation] = []
        for qualname, (fn, module) in sorted(builders.items()):
            required: dict[str, str] = {}  # constant -> inducing module
            caller_modules = callers.get(qualname) or {module.module}
            for caller in sorted(caller_modules):
                for const, origin in self._version_surface(model, caller).items():
                    required.setdefault(const, origin)
            referenced = self._referenced_names(fn)
            missing = sorted(set(required) - referenced)
            if missing:
                detail = ", ".join(
                    f"{name} ({required[name]})" for name in missing
                )
                out.append(
                    self.project_violation(
                        model,
                        module,
                        fn.lineno,
                        fn.col,
                        f"cache-key builder {fn.name}() omits version "
                        f"constant(s) {detail} in scope of its callers; "
                        "stale entries will survive changes to those "
                        "engines — fold every version into the key payload",
                    )
                )
        return out

    # -- discovery -----------------------------------------------------
    def _find_builders(
        self, model: ProjectModel, opts
    ) -> dict[str, tuple[FunctionInfo, ModuleInfo]]:
        patterns = list(opts["name_patterns"])
        out: dict[str, tuple[FunctionInfo, ModuleInfo]] = {}
        for module in model.modules.values():
            if module.tree is None:
                continue
            for fn in module.functions.values():
                if not any(fnmatch.fnmatch(fn.name, p) for p in patterns):
                    continue
                if any(c.name.startswith("hashlib.") for c in fn.calls):
                    out[fn.qualname] = (fn, module)
        return out

    def _callers_of(
        self, model: ProjectModel, builders: dict, opts
    ) -> dict[str, set[str]]:
        """builder qualname -> modules (dotted) with a resolved call to it."""
        paths = list(opts["paths"])
        callers: dict[str, set[str]] = {}
        for module in model.modules.values():
            if module.tree is None:
                continue
            if not path_matches(module.rel_posix, paths):
                continue
            for fn in module.functions.values():
                if fn.qualname in builders:
                    continue  # a builder calling hashlib is not a caller
                for call in fn.calls:
                    target = model.resolve(call.name)
                    if target is not None and target.qualname in builders:
                        callers.setdefault(target.qualname, set()).add(
                            module.module
                        )
        return callers

    def _version_surface(
        self, model: ProjectModel, dotted: str
    ) -> dict[str, str]:
        """``*_VERSION`` constants visible from one caller module."""
        module = model.by_module.get(dotted)
        if module is None:
            return {}
        surface = {c: dotted for c in module.version_constants}
        for target in sorted(model.import_graph().get(dotted, ())):
            imported = model.by_module.get(target)
            if imported is None:
                continue
            for const in imported.version_constants:
                surface.setdefault(const, target)
        return surface

    @staticmethod
    def _referenced_names(fn: FunctionInfo) -> set[str]:
        """Final name components referenced anywhere in the builder body."""
        out: set[str] = set()
        for node in ast.walk(fn.node):
            dotted = qualified_name(node)
            if dotted is not None:
                out.add(dotted.split(".")[-1])
        return out
