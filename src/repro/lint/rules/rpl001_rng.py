"""RPL001 — banned nondeterministic / unroutled RNG construction.

Bit-identical Monte Carlo results (any worker count, any chunk size)
hold only because every generator descends from the ``SeedSequence``
spawn tree in :mod:`repro.montecarlo.rng`.  Three hazards break that:

1. legacy global-state API (``np.random.seed``, ``np.random.normal``,
   ``np.random.RandomState`` …) — hidden shared state, order-dependent;
2. unseeded construction (``default_rng()`` / ``default_rng(None)`` /
   ``SeedSequence()``) — fresh OS entropy every run;
3. ad-hoc ``default_rng(...)`` / ``Generator(...)`` construction in
   engine code — even seeded, it forks the stream outside the spawn
   tree, so results stop being a pure function of the campaign seed.

(1) and (2) are flagged everywhere.  (3) is flagged only under the
``restricted`` path globs (default: ``src/*``) and never in the
``allow``-listed fan-out modules; tests and benchmarks may build seeded
generators directly.
"""

from __future__ import annotations

import ast

from repro.lint.rules.base import Rule, Severity, Violation
from repro.lint.rules.imports import ImportMap

__all__ = ["BannedRandomRule"]

_NS = "numpy.random"

#: Legacy global-state functions plus the legacy RandomState class.
_LEGACY = {
    "seed", "random", "rand", "randn", "random_sample", "ranf", "sample",
    "randint", "random_integers", "choice", "shuffle", "permutation",
    "bytes", "normal", "standard_normal", "uniform", "binomial", "poisson",
    "exponential", "gamma", "beta", "lognormal", "laplace", "logistic",
    "multinomial", "multivariate_normal", "pareto", "rayleigh",
    "triangular", "vonmises", "wald", "weibull", "zipf", "geometric",
    "gumbel", "hypergeometric", "chisquare", "dirichlet", "logseries",
    "negative_binomial", "power", "standard_cauchy",
    "standard_exponential", "standard_gamma", "standard_t",
    "get_state", "set_state", "RandomState",
}

_CONSTRUCTORS = {f"{_NS}.default_rng", f"{_NS}.Generator"}
_SEEDED_CONSTRUCTORS = _CONSTRUCTORS | {f"{_NS}.SeedSequence"}


def _is_unseeded(call: ast.Call) -> bool:
    """True for ``f()`` / ``f(None)`` / ``f(entropy=None)`` / ``f(seed=None)``."""
    if call.args and not (
        isinstance(call.args[0], ast.Constant) and call.args[0].value is None
    ):
        return False
    seedish = [
        kw
        for kw in call.keywords
        if kw.arg in ("seed", "entropy") or kw.arg is None
    ]
    if call.args:
        return not seedish  # positional None seed, nothing else seeding it
    if not seedish:
        return not call.keywords  # no args at all; other kwargs may seed
    return all(
        isinstance(kw.value, ast.Constant) and kw.value.value is None
        for kw in seedish
        if kw.arg is not None
    )


class BannedRandomRule(Rule):
    code = "RPL001"
    name = "banned-nondeterministic-rng"
    severity = Severity.ERROR
    rationale = (
        "all randomness must flow through the SeedSequence spawn tree in "
        "repro.montecarlo.rng, or results stop being reproducible"
    )
    default_options = {
        # Where ad-hoc (even seeded) construction is an error.
        "restricted": ["src/*"],
        # Spawn-tree home modules, exempt from every clause.
        "allow": ["*/montecarlo/rng.py", "*/montecarlo/executor.py"],
    }

    def check(self, tree: ast.Module, ctx) -> list[Violation]:
        opts = self.options(ctx)
        from repro.lint.config import path_matches

        if path_matches(ctx.rel_posix, list(opts["allow"])):
            return []
        restricted = path_matches(ctx.rel_posix, list(opts["restricted"]))
        imports = ImportMap(tree)
        out: list[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = imports.canonical(node.func)
            if name is None or not name.startswith(_NS + "."):
                continue
            tail = name[len(_NS) + 1 :]
            if tail in _LEGACY:
                out.append(
                    self.violation(
                        ctx,
                        node,
                        f"legacy global-state RNG call {name}(); draw from a "
                        "Generator built by repro.montecarlo.rng instead",
                    )
                )
            elif name in _SEEDED_CONSTRUCTORS and _is_unseeded(node):
                out.append(
                    self.violation(
                        ctx,
                        node,
                        f"unseeded {name}() draws fresh OS entropy; pass an "
                        "explicit seed (or derive via repro.montecarlo.rng)",
                    )
                )
            elif name in _CONSTRUCTORS and restricted:
                out.append(
                    self.violation(
                        ctx,
                        node,
                        f"direct {name}(...) construction outside the "
                        "SeedSequence fan-out modules; use "
                        "repro.montecarlo.rng.make_rng/spawn_rngs/block_rng",
                    )
                )
        return out
