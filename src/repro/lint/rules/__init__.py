"""Rule registry: one instance of every shipped rule, ordered by code."""

from __future__ import annotations

from repro.lint.rules.base import Rule, Severity, Violation
from repro.lint.rules.rpl001_rng import BannedRandomRule
from repro.lint.rules.rpl002_cache_key import CacheKeyVersionRule
from repro.lint.rules.rpl003_wallclock import WallClockRule
from repro.lint.rules.rpl004_lock import LockDisciplineRule
from repro.lint.rules.rpl005_float_eq import FloatEqualityRule
from repro.lint.rules.rpl006_except import ExceptionSwallowRule
from repro.lint.rules.rpl007_shell import ShellInvocationRule
from repro.lint.rules.rpl008_mutable_defaults import MutableDefaultRule

__all__ = ["Rule", "Severity", "Violation", "all_rules"]

_RULE_CLASSES: tuple[type[Rule], ...] = (
    BannedRandomRule,
    CacheKeyVersionRule,
    WallClockRule,
    LockDisciplineRule,
    FloatEqualityRule,
    ExceptionSwallowRule,
    ShellInvocationRule,
    MutableDefaultRule,
)


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, sorted by code."""
    return sorted((cls() for cls in _RULE_CLASSES), key=lambda r: r.code)
