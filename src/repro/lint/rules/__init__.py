"""Rule registry: one instance of every shipped rule, ordered by code.

Two registries, matching the two analysis passes:

- :func:`all_rules` — per-file rules (RPL001-008), runnable on a single
  source file with no cross-file knowledge;
- :func:`all_project_rules` — whole-program rules (RPL010-015), which
  run against the pass-1 :class:`repro.lint.model.ProjectModel`.
"""

from __future__ import annotations

from repro.lint.rules.base import ProjectRule, Rule, Severity, Violation
from repro.lint.rules.rpl001_rng import BannedRandomRule
from repro.lint.rules.rpl002_cache_key import CacheKeyVersionRule
from repro.lint.rules.rpl003_wallclock import WallClockRule
from repro.lint.rules.rpl004_lock import LockDisciplineRule
from repro.lint.rules.rpl005_float_eq import FloatEqualityRule
from repro.lint.rules.rpl006_except import ExceptionSwallowRule
from repro.lint.rules.rpl007_shell import ShellInvocationRule
from repro.lint.rules.rpl008_mutable_defaults import MutableDefaultRule
from repro.lint.rules.rpl010_blocking import BlockingInCoroutineRule
from repro.lint.rules.rpl011_await_lock import AwaitUnderLockRule
from repro.lint.rules.rpl012_task_retention import FireAndForgetTaskRule
from repro.lint.rules.rpl013_rng_provenance import RngProvenanceRule
from repro.lint.rules.rpl014_version_salt import CacheKeyCompletenessRule
from repro.lint.rules.rpl015_layers import LayeringContractRule

__all__ = [
    "ProjectRule",
    "Rule",
    "Severity",
    "Violation",
    "all_project_rules",
    "all_rules",
]

_RULE_CLASSES: tuple[type[Rule], ...] = (
    BannedRandomRule,
    CacheKeyVersionRule,
    WallClockRule,
    LockDisciplineRule,
    FloatEqualityRule,
    ExceptionSwallowRule,
    ShellInvocationRule,
    MutableDefaultRule,
)

_PROJECT_RULE_CLASSES: tuple[type[ProjectRule], ...] = (
    BlockingInCoroutineRule,
    AwaitUnderLockRule,
    FireAndForgetTaskRule,
    RngProvenanceRule,
    CacheKeyCompletenessRule,
    LayeringContractRule,
)


def all_rules() -> list[Rule]:
    """Fresh instances of every registered per-file rule, sorted by code."""
    return sorted((cls() for cls in _RULE_CLASSES), key=lambda r: r.code)


def all_project_rules() -> list[ProjectRule]:
    """Fresh instances of every whole-program rule, sorted by code."""
    return sorted(
        (cls() for cls in _PROJECT_RULE_CLASSES), key=lambda r: r.code
    )
