"""RPL013 — RNG provenance at Monte Carlo / datapath entry points.

RPL001 bans *constructing* ad-hoc generators in engine code; this rule
closes the remaining gap interprocedurally: a ``Generator`` that
*reaches* an MC/datapath entry point (any project function with an
``rng``-named parameter in the protected modules) must trace back to
the :mod:`repro.montecarlo.rng` SeedSequence fan-out.  Otherwise the
call's results are not a pure function of the campaign seed — the
chunk/jobs-invariance contract silently breaks at exactly one call
site, which no per-file rule can see.

At each call site the bound argument is traced through local and
module-level assignments:

- **traceable** — a ``make_rng`` / ``spawn_rngs`` / ``block_rng`` call,
  a ``.spawn(...)`` / subscript / passthrough of a traceable value, or
  the enclosing function's own ``rng`` parameter (provenance is then
  the *caller's* obligation, checked at its own call sites — that is
  the interprocedural upgrade);
- **banned** — a value constructed by ``numpy.random.default_rng`` /
  ``Generator`` / ``RandomState`` or ``random.Random`` anywhere along
  the trace;
- anything statically unresolvable (attribute loads, containers) is
  left alone: false positives stay suppressible, never fabricated.
"""

from __future__ import annotations

import ast
import fnmatch

from repro.lint.config import path_matches
from repro.lint.model import FunctionInfo, ModuleInfo, ProjectModel
from repro.lint.rules.base import ProjectRule, Severity, Violation

__all__ = ["RngProvenanceRule"]

_SKIP_PARAMS = ("self", "cls")


class RngProvenanceRule(ProjectRule):
    code = "RPL013"
    name = "untraceable-rng-at-entry-point"
    severity = Severity.ERROR
    rationale = (
        "every Generator reaching an MC/datapath entry point must descend "
        "from the repro.montecarlo.rng SeedSequence fan-out, or results "
        "stop being a pure function of the campaign seed"
    )
    default_options = {
        # Call sites in these files are checked.
        "paths": ["src/*"],
        # Modules whose rng-parameterized functions are protected.
        "entry_paths": [
            "repro.montecarlo.*",
            "repro.coding.*",
            "repro.cells.*",
            "repro.core.*",
        ],
        # Parameter names that carry generators.
        "param_names": ["rng", "rngs"],
        # The sanctioned fan-out factories.
        "factories": [
            "repro.montecarlo.rng.make_rng",
            "repro.montecarlo.rng.spawn_rngs",
            "repro.montecarlo.rng.block_rng",
        ],
        # Constructions that sever the spawn tree.
        "banned": [
            "numpy.random.default_rng",
            "numpy.random.Generator",
            "numpy.random.RandomState",
            "random.Random",
        ],
    }

    def check_project(self, model: ProjectModel) -> list[Violation]:
        opts = self.project_options(model.config)
        out: list[Violation] = []
        for module in model.modules.values():
            if module.tree is None or module.import_map is None:
                continue
            if not path_matches(module.rel_posix, list(opts["paths"])):
                continue
            module_env = self._assignments(module.tree)
            for fn in module.functions.values():
                out.extend(
                    self._check_function(fn, module, module_env, opts, model)
                )
        return out

    # -- helpers -------------------------------------------------------
    @staticmethod
    def _assignments(scope: ast.AST) -> dict[str, ast.expr]:
        """Simple single-target name assignments in one scope body."""
        env: dict[str, ast.expr] = {}
        body = scope.body if hasattr(scope, "body") else []
        for stmt in body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
            ):
                env[stmt.targets[0].id] = stmt.value
            elif isinstance(stmt, (ast.For, ast.While, ast.If, ast.With, ast.Try)):
                for sub in ast.walk(stmt):
                    if (
                        isinstance(sub, ast.Assign)
                        and len(sub.targets) == 1
                        and isinstance(sub.targets[0], ast.Name)
                    ):
                        env[sub.targets[0].id] = sub.value
        return env

    def _entry_param(
        self, target: FunctionInfo, opts
    ) -> tuple[str, int] | None:
        """The protected parameter (name, positional index) of a callee."""
        if not any(
            fnmatch.fnmatch(target.module, p) for p in opts["entry_paths"]
        ):
            return None
        params = [p for p in target.params if p not in _SKIP_PARAMS]
        for want in opts["param_names"]:
            if want in params:
                return want, params.index(want)
        return None

    def _trace(
        self,
        expr: ast.expr,
        fn: FunctionInfo,
        module: ModuleInfo,
        local_env: dict[str, ast.expr],
        module_env: dict[str, ast.expr],
        opts,
        depth: int = 0,
    ) -> str | None:
        """Returns the banned construction's name, or None if acceptable."""
        if depth > 8:
            return None
        imports = module.import_map
        if isinstance(expr, ast.Call):
            name = imports.canonical(expr.func)
            if name in set(opts["banned"]):
                return name
            if name in set(opts["factories"]):
                return None
            # x.spawn(...) and friends: provenance of the receiver.
            if isinstance(expr.func, ast.Attribute):
                return self._trace(
                    expr.func.value, fn, module, local_env, module_env,
                    opts, depth + 1,
                )
            return None
        if isinstance(expr, ast.Subscript):
            return self._trace(
                expr.value, fn, module, local_env, module_env, opts, depth + 1
            )
        if isinstance(expr, ast.Name):
            if expr.id in local_env:
                return self._trace(
                    local_env[expr.id], fn, module, local_env, module_env,
                    opts, depth + 1,
                )
            if expr.id in fn.params:
                return None  # delegated: the caller's call site is checked
            if expr.id in module_env:
                return self._trace(
                    module_env[expr.id], fn, module, {}, module_env,
                    opts, depth + 1,
                )
        return None  # not statically resolvable: stay silent

    def _check_function(
        self,
        fn: FunctionInfo,
        module: ModuleInfo,
        module_env: dict[str, ast.expr],
        opts,
        model: ProjectModel,
    ) -> list[Violation]:
        out: list[Violation] = []
        local_env = self._assignments(fn.node)
        imports = module.import_map
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            name = imports.canonical(node.func)
            if name is None:
                continue
            if module.module and name.split(".")[0] in module.functions:
                name = f"{module.module}.{name}"
            target = model.resolve(name)
            if target is None:
                continue
            entry = self._entry_param(target, opts)
            if entry is None:
                continue
            param, index = entry
            arg: ast.expr | None = None
            for kw in node.keywords:
                if kw.arg == param:
                    arg = kw.value
            if arg is None and index < len(node.args):
                arg = node.args[index]
            if arg is None:
                continue
            banned = self._trace(
                arg, fn, module, local_env, module_env, opts
            )
            if banned is not None:
                out.append(
                    self.project_violation(
                        model,
                        module,
                        node.lineno,
                        node.col_offset,
                        f"generator passed to {target.name}() traces to "
                        f"{banned}(), outside the SeedSequence fan-out; "
                        "derive it via repro.montecarlo.rng "
                        "(make_rng/spawn_rngs/block_rng) so results stay a "
                        "pure function of the campaign seed",
                    )
                )
        return out
