"""Enumerative coding for non-power-of-two-level cells (Section 8, [10]).

The 3-ON-2 encoding is the smallest instance of a general scheme: a group
of ``n`` cells with ``q`` levels has ``q^n`` states; reserving one (all
cells at the top level) as the INV marker leaves ``q^n - 1`` codepoints,
of which ``2^k <= q^n - 1`` carry ``k`` bits via mixed-radix enumeration.
For ``q=3, n=2`` this is exactly Table 2 (k=3, INV = [S4, S4]).

Section 8 proposes exactly this generalization for future 5- and 6-level
cells; :func:`best_group` searches group sizes for the densest practical
encoding, and the generalized mark-and-spare of
:mod:`repro.wearout.mark_and_spare` works unchanged because the INV
marker remains "force every cell to the top level" — the state any
stuck-reset cell can reach.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

__all__ = ["EnumerativeCode", "best_group"]


@dataclasses.dataclass(frozen=True)
class EnumerativeCode:
    """k bits on n q-level cells, top-of-everything reserved as INV."""

    q_levels: int
    n_cells: int
    reserve_inv: bool = True

    def __post_init__(self) -> None:
        if self.q_levels < 2:
            raise ValueError("need at least two levels")
        if self.n_cells < 1:
            raise ValueError("need at least one cell per group")
        if self.capacity_bits < 1:
            raise ValueError("group too small to store any bits")

    @property
    def n_states(self) -> int:
        return self.q_levels**self.n_cells

    @property
    def inv_value(self) -> int:
        """Group value of the INV marker (all cells at the top level)."""
        return self.n_states - 1

    @property
    def capacity_bits(self) -> int:
        usable = self.n_states - (1 if self.reserve_inv else 0)
        return usable.bit_length() - 1  # floor(log2(usable))

    @property
    def bits_per_cell(self) -> float:
        return self.capacity_bits / self.n_cells

    @property
    def ideal_bits_per_cell(self) -> float:
        return math.log2(self.q_levels)

    # ------------------------------------------------------------------
    def encode_group(self, value: int) -> np.ndarray:
        """Message value -> per-cell levels (most significant cell first)."""
        if not 0 <= value < (1 << self.capacity_bits):
            raise ValueError(f"value {value} out of range")
        digits = np.empty(self.n_cells, dtype=np.int64)
        v = value
        for i in range(self.n_cells - 1, -1, -1):
            digits[i] = v % self.q_levels
            v //= self.q_levels
        return digits

    def decode_group(self, levels: np.ndarray) -> int | None:
        """Per-cell levels -> message value, or ``None`` for INV."""
        lv = np.asarray(levels, dtype=np.int64)
        if lv.shape != (self.n_cells,):
            raise ValueError(f"expected {self.n_cells} levels")
        if np.any((lv < 0) | (lv >= self.q_levels)):
            raise ValueError("level out of range")
        value = 0
        for d in lv:
            value = value * self.q_levels + int(d)
        if self.reserve_inv and value == self.inv_value:
            return None
        if value >= (1 << self.capacity_bits):
            # Legal cell state but outside the message range (can only
            # appear through drift corruption); report as None too.
            return None
        return value

    # Vectorized block forms -------------------------------------------
    def encode_bits(self, bits: np.ndarray) -> np.ndarray:
        """Bit array -> flat level array (zero-padded to whole groups)."""
        b = np.asarray(bits, dtype=np.int64)
        k = self.capacity_bits
        n_groups = -(-b.size // k)
        padded = np.zeros(n_groups * k, dtype=np.int64)
        padded[: b.size] = b
        shifts = (1 << np.arange(k - 1, -1, -1)).astype(np.int64)
        values = padded.reshape(n_groups, k) @ shifts
        out = np.empty((n_groups, self.n_cells), dtype=np.int64)
        v = values.copy()
        for i in range(self.n_cells - 1, -1, -1):
            out[:, i] = v % self.q_levels
            v //= self.q_levels
        return out.reshape(-1)

    def decode_bits(
        self, levels: np.ndarray, n_bits: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Flat level array -> ``(bits, inv_flags)`` (INV groups read 0)."""
        lv = np.asarray(levels, dtype=np.int64)
        if lv.size % self.n_cells:
            raise ValueError("level array must hold whole groups")
        groups = lv.reshape(-1, self.n_cells)
        values = np.zeros(groups.shape[0], dtype=np.int64)
        for i in range(self.n_cells):
            values = values * self.q_levels + groups[:, i]
        inv = values >= (1 << self.capacity_bits)
        safe = np.where(inv, 0, values)
        k = self.capacity_bits
        shifts = np.arange(k - 1, -1, -1)
        bits = ((safe[:, None] >> shifts[None, :]) & 1).astype(np.uint8).reshape(-1)
        if n_bits > bits.size:
            raise ValueError(f"only {bits.size} bits stored")
        return bits[:n_bits], inv


def best_group(
    q_levels: int, max_cells: int = 12, data_bits: int = 512
) -> EnumerativeCode:
    """Densest group size for a q-level cell (ties -> smaller group).

    Larger groups approach the ideal log2(q) bits/cell but cost wider
    decode logic; ``max_cells`` bounds the search like the paper's
    512-bit row-buffer granularity bounds practical group sizes.
    """
    best: EnumerativeCode | None = None
    for n in range(1, max_cells + 1):
        try:
            code = EnumerativeCode(q_levels, n)
        except ValueError:
            continue
        if best is None or code.bits_per_cell > best.bits_per_cell + 1e-12:
            best = code
    if best is None:
        raise ValueError("no feasible group size")
    return best
