"""Block-level codecs: the full 64-byte datapaths of Figure 9 / Table 3.

Two codecs assemble the paper's complete designs:

- :class:`ThreeOnTwoBlockCodec` — the proposed 3LC design: 512 data bits
  in 171 3-ON-2 pairs (342 cells) + 6 spare pairs (12 cells) for
  mark-and-spare, protected by BCH-1 over the 708-bit TEC view with its
  10 check bits in drift-immune SLC cells.  364 cells total,
  1.406 bits/cell (Section 6.5).
- :class:`FourLevelBlockCodec` — the optimized 4LC baseline: 512 data
  bits Gray-coded into 256 cells, BCH-10 (100 check bits in 50 cells,
  part of the codeword and therefore self-protected against drift), and
  ECP-6 for wearout.  ECP entries live in controller-visible metadata in
  this functional model (the paper's Figure 14 budget of 31 cells is
  what the capacity analysis counts); correction order follows Section
  6.6: TEC -> HEC -> symbol decode.

Both decoders report per-stage correction counts so benchmarks and the
device model can attribute errors.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.coding.bch import BCH, BCHDecodeFailure
from repro.coding.gray import bits_to_states, states_to_bits
from repro.coding.smart import RotationSmartCode
from repro.core import three_on_two as t32
from repro.wearout.ecp import ECPConfig, ECPTable, ecp_cells_mlc
from repro.wearout.mark_and_spare import (
    MarkAndSpareBlock,
    MarkAndSpareConfig,
    SpareExhausted,
    correct_values,
)

__all__ = [
    "DecodedBlock",
    "ThreeOnTwoBlockCodec",
    "FourLevelBlockCodec",
    "UncorrectableBlock",
]


class UncorrectableBlock(Exception):
    """The block's error pattern exceeded the design's correction power."""


@dataclasses.dataclass(frozen=True)
class DecodedBlock:
    """Result of a block read: data plus per-stage diagnostics."""

    data_bits: np.ndarray
    tec_corrected: int  # transient (drift) errors corrected by the ECC
    hec_pairs_dropped: int  # INV pairs squeezed out (3-ON-2) / ECP hits (4LC)


class ThreeOnTwoBlockCodec:
    """The paper's full 3-ON-2 block design (Sections 6.1-6.5)."""

    def __init__(self, data_bits: int = 512, n_spare_pairs: int = 6):
        self.data_bits = data_bits
        self.ms_config = MarkAndSpareConfig(
            n_data_pairs=t32.pairs_needed(data_bits),
            n_spare_pairs=n_spare_pairs,
        )
        self.n_mlc_cells = self.ms_config.n_cells
        self.tec = BCH(10, 1, 2 * self.n_mlc_cells)
        self.n_slc_cells = self.tec.n_check
        self.total_cells = self.n_mlc_cells + self.n_slc_cells

    @property
    def bits_per_cell(self) -> float:
        return self.data_bits / self.total_cells

    def new_block_state(self) -> MarkAndSpareBlock:
        """Controller-side wearout state for one block."""
        return MarkAndSpareBlock(self.ms_config)

    def encode(
        self, data_bits: np.ndarray, block: MarkAndSpareBlock | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Data bits -> ``(mlc_states, slc_check_bits)``.

        ``block`` carries the marked-pair layout; omitted means a fresh
        (failure-free) block.
        """
        bits = np.asarray(data_bits).astype(np.uint8)
        if bits.shape != (self.data_bits,):
            raise ValueError(f"expected {self.data_bits} bits, got {bits.shape}")
        # Explicit None check: a block state defining __bool__/__len__
        # (e.g. "no marks yet" ~ falsy) must never be silently replaced.
        if block is None:
            block = self.new_block_state()
        padded = np.zeros(self.ms_config.n_data_pairs * t32.BITS_PER_PAIR, dtype=np.uint8)
        padded[: bits.size] = bits
        values = t32.bits_to_values(padded)
        physical = block.layout(values)
        states = t32.encode_values(physical)
        tec_bits = t32.states_to_tec_bits(states)
        codeword = self.tec.encode(tec_bits)
        return states, codeword[self.tec.k :]

    def decode(
        self,
        states: np.ndarray,
        slc_check_bits: np.ndarray,
    ) -> DecodedBlock:
        """Figure 9 read path: TEC -> mark-and-spare -> symbol decode."""
        s = np.asarray(states, dtype=np.int64)
        if s.shape != (self.n_mlc_cells,):
            raise ValueError(f"expected {self.n_mlc_cells} states, got {s.shape}")
        check = np.asarray(slc_check_bits).astype(np.uint8)
        if check.shape != (self.n_slc_cells,):
            raise ValueError(
                f"expected {self.n_slc_cells} check bits, got {check.shape}"
            )
        # Stage 1 - transient error correction over the 2-bit cell view.
        received = np.concatenate([t32.states_to_tec_bits(s), check])
        try:
            tec_bits, n_corrected = self.tec.decode(received)
        except BCHDecodeFailure as exc:
            raise UncorrectableBlock(f"TEC failure: {exc}") from exc
        # No valid encoding contains the cell pattern "10" (S1=00, S2=01,
        # S4=11), so one surviving BCH correction is a multi-error escape
        # that landed on a BCH codeword outside the TEC image: detectable,
        # not correctable.
        grouped = tec_bits.reshape(-1, 2)
        if np.any((grouped[:, 0] == 1) & (grouped[:, 1] == 0)):
            raise UncorrectableBlock(
                "invalid TEC cell pattern '10' after correction "
                "(multi-error escape)"
            )
        corrected_states = t32.tec_bits_to_states(tec_bits)
        # Stage 2 - hard error correction (mark-and-spare).
        values = t32.decode_values(corrected_states)
        n_inv = int(np.sum(values == t32.INV_VALUE))
        try:
            data_values = correct_values(values, self.ms_config)
        except SpareExhausted as exc:
            raise UncorrectableBlock(f"HEC failure: {exc}") from exc
        # Stage 3 - symbol decoding to binary.
        bits = t32.values_to_bits(data_values)[: self.data_bits]
        return DecodedBlock(
            data_bits=bits.astype(np.uint8),
            tec_corrected=n_corrected,
            hec_pairs_dropped=n_inv,
        )


class FourLevelBlockCodec:
    """The optimized 4LC block design (Section 6.6, Table 3 row 1)."""

    def __init__(
        self,
        data_bits: int = 512,
        t: int = 10,
        ecp_entries: int = 6,
        smart: RotationSmartCode | None = None,
    ):
        if data_bits % 2:
            raise ValueError("data bits must fill whole 2-bit cells")
        self.data_bits = data_bits
        self.n_data_cells = data_bits // 2
        self.tec = BCH(10, t, data_bits)
        if self.tec.n_check % 2:
            raise ValueError("check bits must fill whole 2-bit cells")
        self.n_check_cells = self.tec.n_check // 2
        self.n_codeword_cells = self.n_data_cells + self.n_check_cells
        # ECP points into the 256 data cells only (Figure 14: 8-bit
        # pointer, 5 cells per entry, 31 cells for ECP-6).  Wearout in
        # check cells is absorbed by the BCH-10 budget.
        self.ecp_config = ECPConfig(
            n_data_cells=self.n_data_cells, n_entries=ecp_entries
        )
        self.n_ecp_cells = ecp_cells_mlc(self.n_data_cells, ecp_entries)
        self.total_cells = self.n_codeword_cells + self.n_ecp_cells
        self.smart = smart

    @property
    def bits_per_cell(self) -> float:
        return self.data_bits / self.total_cells

    def new_block_state(self) -> ECPTable:
        return ECPTable(self.ecp_config)

    def encode(
        self, data_bits: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Data bits -> ``(cell_states, smart_tags)``.

        States cover the whole BCH codeword (data + check cells).  When a
        smart code is configured its rotation tags are returned for
        controller-side storage (in SLC, like the 3-ON-2 check bits).
        """
        bits = np.asarray(data_bits).astype(np.uint8)
        if bits.shape != (self.data_bits,):
            raise ValueError(f"expected {self.data_bits} bits, got {bits.shape}")
        # Smart rotation is applied before the ECC (symbol decoding is the
        # *last* read stage per Section 6.6, so the ECC protects the
        # rotated symbols).
        data_states = bits_to_states(bits, 2)
        tags = None
        if self.smart is not None:
            data_states, tags = self.smart.encode(data_states)
        msg_bits = states_to_bits(data_states, 2)
        codeword = self.tec.encode(msg_bits)
        check_states = bits_to_states(codeword[self.tec.k :], 2)
        return np.concatenate([data_states, check_states]), tags

    def decode(
        self,
        states: np.ndarray,
        ecp: ECPTable | None = None,
        smart_tags: np.ndarray | None = None,
    ) -> DecodedBlock:
        """Read path: ECP substitution -> TEC -> symbol (smart/Gray) decode.

        The paper orders TEC before HEC because HEC *information stored in
        drifting cells* must be corrected before use (Figure 9).  In this
        functional model the ECP table is controller-side metadata and is
        drift-free by construction, so applying the substitutions first is
        equivalent to the paper's order with protected ECP state — and
        spares the BCH budget from known-worn cells, exactly what a real
        controller does.  Symbol decoding (un-rotating the smart code) is
        the final stage, per Section 6.6.
        """
        s = np.asarray(states, dtype=np.int64)
        if s.shape != (self.n_codeword_cells,):
            raise ValueError(
                f"expected {self.n_codeword_cells} states, got {s.shape}"
            )
        n_hec = 0
        if ecp is not None and ecp.n_used:
            s = np.concatenate([ecp.apply(s[: self.n_data_cells]), s[self.n_data_cells :]])
            n_hec = ecp.n_used
        received = states_to_bits(s, 2)
        try:
            msg_bits, n_corrected = self.tec.decode(received)
        except BCHDecodeFailure as exc:
            raise UncorrectableBlock(f"TEC failure: {exc}") from exc
        data_states = bits_to_states(msg_bits, 2)
        if self.smart is not None:
            if smart_tags is None:
                raise ValueError("smart encoding requires tags at decode")
            data_states = self.smart.decode(data_states, smart_tags)
        bits = states_to_bits(data_states, 2)
        return DecodedBlock(
            data_bits=bits.astype(np.uint8),
            tec_corrected=n_corrected,
            hec_pairs_dropped=n_hec,
        )
