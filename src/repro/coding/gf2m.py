"""Arithmetic in the finite field GF(2^m).

Log/antilog-table implementation supporting the vectorized syndrome and
Chien-search loops of the BCH decoder.  Field elements are represented as
integers in ``[0, 2^m)`` whose bits are the polynomial coefficients.
"""

from __future__ import annotations

import numpy as np

__all__ = ["GF2m", "PRIMITIVE_POLYS"]

#: Primitive polynomials (as integer bitmasks, degree m) for GF(2^m).
#: Standard choices from Lin & Costello, Table 2.7.
PRIMITIVE_POLYS: dict[int, int] = {
    2: 0b111,
    3: 0b1011,
    4: 0b10011,
    5: 0b100101,
    6: 0b1000011,
    7: 0b10001001,
    8: 0b100011101,
    9: 0b1000010001,
    10: 0b10000001001,
    11: 0b100000000101,
    12: 0b1000001010011,
    13: 0b10000000011011,
    14: 0b100010001000011,
    15: 0b1000000000000011,
    16: 0b10001000000001011,
}


class GF2m:
    """The field GF(2^m) with a fixed primitive element ``alpha = x``."""

    def __init__(self, m: int, prim_poly: int | None = None):
        if m not in PRIMITIVE_POLYS and prim_poly is None:
            raise ValueError(f"no built-in primitive polynomial for m={m}")
        self.m = m
        self.order = 1 << m
        self.n = self.order - 1  # multiplicative group order
        self.prim_poly = prim_poly if prim_poly is not None else PRIMITIVE_POLYS[m]

        # exp table doubled in length so products of logs need no modulo.
        exp = np.zeros(2 * self.n, dtype=np.int64)
        log = np.zeros(self.order, dtype=np.int64)
        x = 1
        for i in range(self.n):
            if x == 1 and i > 0:
                # alpha's multiplicative order divides i < n: not primitive.
                raise ValueError(
                    f"polynomial {self.prim_poly:#x} is not primitive for m={m}"
                )
            exp[i] = x
            log[x] = i
            x <<= 1
            if x & self.order:
                x ^= self.prim_poly
        if x != 1:
            raise ValueError(f"polynomial {self.prim_poly:#x} is not primitive for m={m}")
        exp[self.n : 2 * self.n] = exp[: self.n]
        self._exp = exp
        self._log = log
        log[0] = -1  # sentinel; callers must not use log(0)

    # -- scalar/elementwise ops (accept ints or integer ndarrays) ---------
    def mul(self, a, b):
        a = np.asarray(a)
        b = np.asarray(b)
        out = np.zeros(np.broadcast(a, b).shape, dtype=np.int64)
        nz = (a != 0) & (b != 0)
        if np.any(nz):
            la = self._log[np.broadcast_to(a, out.shape)[nz]]
            lb = self._log[np.broadcast_to(b, out.shape)[nz]]
            out[nz] = self._exp[la + lb]
        return out if out.ndim else int(out)

    def div(self, a, b):
        a = np.asarray(a)
        b = np.asarray(b)
        if np.any(b == 0):
            raise ZeroDivisionError("division by zero in GF(2^m)")
        out = np.zeros(np.broadcast(a, b).shape, dtype=np.int64)
        nz = np.broadcast_to(a, out.shape) != 0
        if np.any(nz):
            la = self._log[np.broadcast_to(a, out.shape)[nz]]
            lb = self._log[np.broadcast_to(b, out.shape)[nz]]
            out[nz] = self._exp[(la - lb) % self.n]
        return out if out.ndim else int(out)

    def inv(self, a):
        return self.div(1, a)

    def pow(self, a, k):
        """a**k with integer exponent k (vectorized in a)."""
        a = np.asarray(a)
        k = int(k)
        if k == 0:
            return np.ones_like(a) if a.ndim else 1
        out = np.zeros(a.shape, dtype=np.int64)
        nz = a != 0
        if np.any(nz):
            la = self._log[a[nz]]
            out[nz] = self._exp[(la * k) % self.n]
        return out if out.ndim else int(out)

    def alpha_pow(self, k):
        """alpha**k for scalar or array exponents (any sign)."""
        k = np.asarray(k)
        return (
            self._exp[np.mod(k, self.n)]
            if k.ndim
            else int(self._exp[int(k) % self.n])
        )

    def log(self, a):
        """Discrete log base alpha; error on zero."""
        a = np.asarray(a)
        if np.any(a == 0):
            raise ValueError("log of zero")
        out = self._log[a]
        return out if out.ndim else int(out)

    # -- polynomial helpers (coefficient lists, lowest degree first) ------
    def poly_eval(self, coeffs: np.ndarray, x):
        """Evaluate a polynomial with GF coefficients at point(s) x (Horner)."""
        x = np.asarray(x)
        res = np.zeros(x.shape, dtype=np.int64) if x.ndim else 0
        for c in np.asarray(coeffs)[::-1]:
            res = self.mul(res, x) ^ int(c)
        return res

    def poly_mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        out = np.zeros(len(a) + len(b) - 1, dtype=np.int64)
        for i, ai in enumerate(a):
            if ai:
                out[i : i + len(b)] ^= self.mul(ai, b)
        return out

    def minimal_polynomial(self, elem: int) -> int:
        """Minimal polynomial of ``elem`` over GF(2), as an integer bitmask."""
        # Conjugacy class {elem, elem^2, elem^4, ...}
        conj = []
        e = elem
        while e not in conj:
            conj.append(e)
            e = self.mul(e, e)
        # Product of (x - c) over the class, coefficients in GF(2^m)
        poly = np.array([1], dtype=np.int64)  # constant 1, will build up
        for c in conj:
            poly = self.poly_mul(poly, np.array([c, 1], dtype=np.int64))
        # Coefficients must land in GF(2)
        if any(int(c) not in (0, 1) for c in poly):
            raise AssertionError("minimal polynomial has non-binary coefficients")
        mask = 0
        for i, c in enumerate(poly):
            if c:
                mask |= 1 << i
        return mask

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GF(2^{self.m}, prim={self.prim_poly:#x})"
