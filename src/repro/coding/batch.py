"""Batched, bit-packed datapath kernels: decode N blocks per call.

The scalar codecs (:class:`repro.coding.bch.BCH`,
:class:`repro.coding.blockcodec.ThreeOnTwoBlockCodec`) walk Figure 9's
read path one 512-bit block at a time.  This module runs the same path
over ``(n_blocks, ...)`` arrays in a handful of NumPy passes:

- **Bit packing** — codewords become rows of ``uint64`` words
  (:func:`pack_bits`), so a GF(2) matrix-vector product collapses to
  ``popcount(word & mask) & 1`` per precomputed mask column.
- **Zero-syndrome dispatch** — a received word is error-free iff its
  remainder modulo the generator polynomial is zero
  (:meth:`repro.coding.bch.BCH.position_remainders`), and at datapath
  CERs almost every block is clean.  The batch decoder computes all N
  remainders with ``n_check`` masked popcounts and only touches the
  (rare) nonzero rows again.
- **t = 1 vectorized correction** — for BCH-1 the remainder *is* the
  syndrome ``S1 = alpha^deg`` of the single error, so a discrete-log
  table lookup yields every error position at once; no Berlekamp-Massey,
  no Chien search.  For ``t > 1`` the nonzero-remainder rows fall back to
  the scalar decoder (still skipping the clean majority).
- **LUT symbol stages** — 3-ON-2 pair encode/decode, the invalid-"10"
  TEC-pattern screen, and mark-and-spare squeezing
  (:func:`repro.wearout.mark_and_spare.correct_values_batch`) are table
  gathers and stable sorts over integer arrays.

Everything returns structured outcome arrays (decoded bits, per-block
``tec_corrected`` / ``hec_pairs_dropped``, an ``uncorrectable`` mask with
the failing stage) and is bit-identical to looping the scalar codecs —
the hypothesis differential suite in ``tests/test_batch_datapath.py``
holds the two paths together.

The empirical BLER engine (:mod:`repro.montecarlo.bler_mc`) drives these
kernels at ~1e6 blocks per run; ``benchmarks/test_perf_datapath_batch.py``
records the scalar-vs-batch throughput in ``results/BENCH_datapath.json``.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.chaos.registry import fault_point
from repro.coding.bch import BCH, BCHDecodeFailure
from repro.coding.blockcodec import ThreeOnTwoBlockCodec
from repro.core.three_on_two import (
    BITS_PER_PAIR,
    INV_VALUE,
    INVALID_TEC_VALUE,
    TEC_VALUE_TO_STATE,
)
from repro.wearout.mark_and_spare import MarkAndSpareBlock, correct_values_batch

__all__ = [
    "DATAPATH_VERSION",
    "FAIL_NONE",
    "FAIL_TEC",
    "FAIL_INVALID_PATTERN",
    "FAIL_HEC",
    "BatchBCH",
    "BatchBCHResult",
    "BatchDecodedBlocks",
    "BatchThreeOnTwoCodec",
    "pack_bits",
    "unpack_bits",
]

#: Salt for persistent BLER-MC cache keys (alongside the executor's
#: ``ENGINE_VERSION``); bump on any change that alters what the batch
#: kernels compute from the same inputs.
DATAPATH_VERSION = 1

#: ``fail_stage`` codes of :class:`BatchDecodedBlocks`, in pipeline order.
FAIL_NONE = 0  #: decoded fine
FAIL_TEC = 1  #: BCH reported an uncorrectable pattern (Figure 9 stage 1)
FAIL_INVALID_PATTERN = 2  #: post-ECC "10" cell view: multi-error escape
FAIL_HEC = 3  #: more INV pairs than spares (mark-and-spare exhausted)

#: Rows per internal decode chunk: large enough to amortize per-call
#: numpy overhead, small enough that a chunk's inter-stage temporaries
#: (~10 MB at 8192 rows) stay cache-resident.
_DECODE_CHUNK = 8192

def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack ``(n_rows, n_bits)`` 0/1 rows into ``(n_rows, n_words)`` uint64.

    Rows are padded with zero bits up to a whole number of 64-bit words.
    The word layout is an internal convention shared with the mask tables
    (``np.packbits`` byte order viewed as native uint64); only bitwise
    AND + popcount ever looks inside, so endianness cancels out.
    """
    b = np.ascontiguousarray(bits, dtype=np.uint8)
    if b.ndim != 2:
        raise ValueError(f"expected a 2-D bit array, got shape {b.shape}")
    n_words = -(-b.shape[1] // 64)
    packed = np.packbits(b, axis=1)
    if packed.shape[1] != 8 * n_words:
        pad = np.zeros((b.shape[0], 8 * n_words - packed.shape[1]), dtype=np.uint8)
        packed = np.concatenate([packed, pad], axis=1)
    return packed.view(np.uint64)


def unpack_bits(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: ``(n_rows, n_bits)`` uint8 rows."""
    w = np.ascontiguousarray(words, dtype=np.uint64)
    return np.unpackbits(w.view(np.uint8), axis=1)[:, :n_bits]


def _masked_parity(packed: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """GF(2) dot product of every packed row with one packed mask row."""
    return (
        np.bitwise_count(packed & mask[None, :]).sum(axis=1, dtype=np.int64) & 1
    )


@dataclasses.dataclass(frozen=True)
class BatchBCHResult:
    """Outcome arrays of one batch decode (no exceptions: masks instead).

    ``data`` holds each row's first ``k`` (message) bits after
    correction; rows flagged ``uncorrectable`` carry the *received* data
    bits unchanged (the scalar decoder raises there).  ``n_corrected``
    counts corrected bit errors per row.
    """

    data: np.ndarray  # (n_rows, k) uint8
    n_corrected: np.ndarray  # (n_rows,) int64
    uncorrectable: np.ndarray  # (n_rows,) bool


class BatchBCH:
    """Vectorized encoder/decoder over a scalar :class:`BCH` code.

    Precomputes one packed GF(2) mask per check bit from the code's
    position-remainder table; encode and syndrome evaluation are then
    ``n_check`` masked popcounts over the packed rows, independent of the
    batch size's Python overhead.
    """

    def __init__(self, code: BCH):
        self.code = code
        remainders = code.position_remainders()
        # Bit-column matrix: row b holds bit b of every position's
        # remainder (the GF(2) check matrix in remainder form).
        cols = (
            (remainders[None, :] >> np.arange(code.n_check)[:, None]) & 1
        ).astype(np.uint8)
        self._syndrome_masks = pack_bits(cols)
        self._encode_masks = pack_bits(cols[:, : code.k])
        self._n_words = self._syndrome_masks.shape[1]
        if code.t == 1:
            # For one error the remainder is S1 = alpha^deg itself, and
            # position i contributes remainder `remainders[i]`: invert
            # the table once and correction is a single gather.
            locate = np.full(1 << code.m, -1, dtype=np.int64)
            locate[remainders] = np.arange(code.n)
            locate[0] = -1  # zero is "no error", never a location
            self._t1_locate: np.ndarray | None = locate
        else:
            self._t1_locate = None

    def t1_error_positions(self, nonzero_remainders: np.ndarray) -> np.ndarray:
        """Error position for each nonzero remainder of a ``t = 1`` code.

        ``-1`` marks remainders whose syndrome points outside the
        shortened word: detectably uncorrectable, exactly the patterns
        for which the scalar Chien search finds no root in range.
        """
        if self._t1_locate is None:
            raise ValueError(f"not a single-error code: t={self.code.t}")
        return self._t1_locate[np.asarray(nonzero_remainders, dtype=np.int64)]

    def check_bits(self, data: np.ndarray) -> np.ndarray:
        """Systematic check bits of ``(n_rows, k)`` data rows."""
        d = np.ascontiguousarray(data, dtype=np.uint8)
        if d.ndim != 2 or d.shape[1] != self.code.k:
            raise ValueError(f"expected (n_rows, {self.code.k}) bits, got {d.shape}")
        packed = pack_bits(d)
        nc = self.code.n_check
        checks = np.zeros((d.shape[0], nc), dtype=np.uint8)
        for b in range(nc):
            # Remainder bit b lands at check-bit array index nc - 1 - b
            # (the scalar encoder's ordering).
            checks[:, nc - 1 - b] = _masked_parity(packed, self._encode_masks[b])
        return checks

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Systematic batch encode: ``[data | check]`` rows."""
        d = np.ascontiguousarray(data, dtype=np.uint8)
        return np.concatenate([d, self.check_bits(d)], axis=1)

    def remainders(self, received: np.ndarray) -> np.ndarray:
        """Remainder of every row modulo the generator, as integers.

        Zero iff the row is a codeword (all ``2t`` syndromes vanish), so
        this one pass implements the zero-syndrome dispatch.
        """
        r = np.ascontiguousarray(received, dtype=np.uint8)
        if r.ndim != 2 or r.shape[1] != self.code.n:
            raise ValueError(f"expected (n_rows, {self.code.n}) bits, got {r.shape}")
        packed = pack_bits(r)
        rem = np.zeros(r.shape[0], dtype=np.int64)
        for b in range(self.code.n_check):
            rem |= _masked_parity(packed, self._syndrome_masks[b]) << b
        return rem

    def decode(self, received: np.ndarray) -> BatchBCHResult:
        """Batch bounded-distance decode; bit-identical to scalar loops.

        Zero-remainder rows return immediately untouched.  With ``t = 1``
        the nonzero rows are corrected by one discrete-log gather (rows
        whose syndrome points outside the shortened word are flagged
        uncorrectable, exactly where the scalar Chien search finds no
        root).  With ``t > 1`` only the nonzero rows take the scalar
        Berlekamp-Massey + Chien path.
        """
        r = np.ascontiguousarray(received, dtype=np.uint8)
        rem = self.remainders(r)
        n_rows = r.shape[0]
        n_corrected = np.zeros(n_rows, dtype=np.int64)
        uncorrectable = np.zeros(n_rows, dtype=bool)
        dirty = np.nonzero(rem)[0]
        if dirty.size:
            r = r.copy()
            if self._t1_locate is not None:
                pos = self._t1_locate[rem[dirty]]
                bad = pos < 0
                uncorrectable[dirty[bad]] = True
                hit_rows = dirty[~bad]
                r[hit_rows, pos[~bad]] ^= 1
                n_corrected[hit_rows] = 1
            else:
                for i in dirty:
                    try:
                        data_i, n_i = self.code.decode(r[i])
                    except BCHDecodeFailure:
                        uncorrectable[i] = True
                    else:
                        r[i, : self.code.k] = data_i
                        n_corrected[i] = n_i
        return BatchBCHResult(
            data=r[:, : self.code.k],
            n_corrected=n_corrected,
            uncorrectable=uncorrectable,
        )


@dataclasses.dataclass(frozen=True)
class BatchDecodedBlocks:
    """Structured outcome of a batch Figure-9 read (see fail codes).

    Rows with ``uncorrectable`` set correspond exactly to the blocks for
    which the scalar :meth:`ThreeOnTwoBlockCodec.decode` raises
    :class:`~repro.coding.blockcodec.UncorrectableBlock`; their
    ``data_bits`` content is unspecified.  All other rows are
    bit-identical to the scalar decode.
    """

    data_bits: np.ndarray  # (n_blocks, data_bits) uint8
    tec_corrected: np.ndarray  # (n_blocks,) int64
    hec_pairs_dropped: np.ndarray  # (n_blocks,) int64
    uncorrectable: np.ndarray  # (n_blocks,) bool
    fail_stage: np.ndarray  # (n_blocks,) uint8 (FAIL_* codes)


class BatchThreeOnTwoCodec:
    """Batched mirror of :class:`ThreeOnTwoBlockCodec` (Sections 6.1-6.5).

    Wraps a scalar codec (its geometry and BCH-1 instance are shared) and
    runs encode/decode over ``(n_blocks, ...)`` arrays.
    """

    def __init__(self, codec: ThreeOnTwoBlockCodec | None = None):
        if codec is None:
            codec = ThreeOnTwoBlockCodec()
        self.codec = codec
        self.bch = BatchBCH(codec.tec)
        cfg = codec.ms_config
        self._n_pairs = cfg.n_pairs
        self._padded_bits = cfg.n_data_pairs * BITS_PER_PAIR
        # Split parity masks for the state-domain remainder: even codeword
        # positions hold each cell's high TEC bit (1 iff S4), odd its low
        # bit (1 iff >= S2).  Packing the two planes separately lets
        # decode skip materializing the (n_blocks, 708) bit matrix.
        code = codec.tec
        remainders = code.position_remainders()
        cols = (
            (remainders[None, : code.k] >> np.arange(code.n_check)[:, None]) & 1
        ).astype(np.uint8)
        self._parity_masks = np.concatenate(
            [pack_bits(cols[:, 0::2]), pack_bits(cols[:, 1::2])], axis=1
        )
        self._plane_words = self._parity_masks.shape[1] // 2
        # Check positions sit below the generator's degree, so their
        # remainder columns are exactly the powers of two: the check
        # bits' remainder contribution is plain binary recomposition.
        self._check_powers = 1 << np.arange(code.n_check - 1, -1, -1)

    # ------------------------------------------------------------------
    def _marked_matrix(
        self,
        n_blocks: int,
        blocks: (
            MarkAndSpareBlock
            | Sequence[MarkAndSpareBlock | None]
            | np.ndarray
            | None
        ),
    ) -> np.ndarray | None:
        """Per-row marked-pair mask, or ``None`` when every block is fresh."""
        if blocks is None:
            return None
        if isinstance(blocks, np.ndarray):
            # Raw (n_blocks, n_pairs) bool mask: the structure-of-arrays
            # engine hands its marked plane in directly, no objects.
            if blocks.shape != (n_blocks, self._n_pairs) or blocks.dtype != bool:
                raise ValueError(
                    f"expected a ({n_blocks}, {self._n_pairs}) bool marked "
                    f"mask, got {blocks.dtype} {blocks.shape}"
                )
            return blocks if blocks.any() else None
        if isinstance(blocks, MarkAndSpareBlock):
            row = np.zeros(self._n_pairs, dtype=bool)
            row[blocks.marked_pairs] = True
            if not row.any():
                return None
            return np.broadcast_to(row, (n_blocks, self._n_pairs))
        if len(blocks) != n_blocks:
            raise ValueError(
                f"got {len(blocks)} block states for {n_blocks} data rows"
            )
        marked = np.zeros((n_blocks, self._n_pairs), dtype=bool)
        for i, block in enumerate(blocks):
            if block is not None:
                marked[i, block.marked_pairs] = True
        return marked if marked.any() else None

    def encode(
        self,
        data_bits: np.ndarray,
        blocks: (
            MarkAndSpareBlock
            | Sequence[MarkAndSpareBlock | None]
            | np.ndarray
            | None
        ) = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batch write path: ``(n_blocks, data_bits)`` -> states + checks.

        ``blocks`` carries the marked-pair layouts: one shared
        :class:`MarkAndSpareBlock`, a per-row sequence (``None`` entries
        mean fresh), a raw ``(n_blocks, n_pairs)`` bool marked mask, or
        ``None`` for all-fresh.  Bit-identical to looping the scalar
        :meth:`ThreeOnTwoBlockCodec.encode`.
        """
        bits = np.ascontiguousarray(data_bits, dtype=np.uint8)
        if bits.ndim != 2 or bits.shape[1] != self.codec.data_bits:
            raise ValueError(
                f"expected (n_blocks, {self.codec.data_bits}) bits, got {bits.shape}"
            )
        n_blocks = bits.shape[0]
        padded = np.zeros((n_blocks, self._padded_bits), dtype=np.uint8)
        padded[:, : bits.shape[1]] = bits
        values = (
            padded[:, 0::3] * 4 + padded[:, 1::3] * 2 + padded[:, 2::3]
        )
        marked = self._marked_matrix(n_blocks, blocks)
        physical = np.zeros((n_blocks, self._n_pairs), dtype=np.uint8)
        if marked is None:
            physical[:, : values.shape[1]] = values
        else:
            physical[marked] = INV_VALUE
            # Stable argsort: unmarked pair indices first, in order — the
            # scalar layout() scatter, vectorized.
            order = np.argsort(marked, axis=1, kind="stable")
            np.put_along_axis(physical, order[:, : values.shape[1]], values, axis=1)
        states = np.empty((n_blocks, 2 * self._n_pairs), dtype=np.uint8)
        states[:, 0::2] = physical // 3
        states[:, 1::2] = physical % 3
        tec_bits = self._tec_word(states, check_bits=None)
        return states, self.bch.check_bits(tec_bits)

    def _tec_word(
        self, states: np.ndarray, check_bits: np.ndarray | None
    ) -> np.ndarray:
        """TEC bit view of uint8 state rows (S1=00, S2=01, S4=11).

        Strided comparisons instead of a table gather: fancy indexing
        over tens of millions of cells is the batch layer's single
        largest cost, a pair of boolean writes is ~10x cheaper.
        """
        n_cells = states.shape[1]
        n = 2 * n_cells + (0 if check_bits is None else check_bits.shape[1])
        word = np.empty((states.shape[0], n), dtype=np.uint8)
        word[:, 0 : 2 * n_cells : 2] = states == 2
        word[:, 1 : 2 * n_cells : 2] = states >= 1
        if check_bits is not None:
            word[:, 2 * n_cells :] = check_bits
        return word

    # ------------------------------------------------------------------
    def decode(self, states: np.ndarray, slc_check_bits: np.ndarray) -> BatchDecodedBlocks:
        """Batch Figure-9 read path: TEC -> mark-and-spare -> symbols.

        Stage failures become ``fail_stage`` codes instead of exceptions;
        the first failing stage wins, matching the scalar decoder's
        raise order.  The whole pipeline runs in the cell-state domain on
        ``uint8`` arrays; only rows with a nonzero BCH remainder (rare in
        a datapath read) are revisited to patch the corrected cell.
        """
        codec = self.codec
        s = np.asarray(states)
        if s.ndim != 2 or s.shape[1] != codec.n_mlc_cells:
            raise ValueError(
                f"expected (n_blocks, {codec.n_mlc_cells}) states, got {s.shape}"
            )
        if s.dtype != np.uint8:
            if np.any((s < 0) | (s > 2)):
                raise ValueError("three-level state indices must be in [0, 2]")
            s = s.astype(np.uint8)
        elif np.any(s > 2):
            raise ValueError("three-level state indices must be in [0, 2]")
        checks = np.ascontiguousarray(slc_check_bits, dtype=np.uint8)
        if checks.ndim != 2 or checks.shape != (s.shape[0], codec.n_slc_cells):
            raise ValueError(
                f"expected ({s.shape[0]}, {codec.n_slc_cells}) check bits, "
                f"got {checks.shape}"
            )
        n_blocks = s.shape[0]
        fault_point("datapath.batch_decode", n_blocks=n_blocks)
        bits = np.empty((n_blocks, self._padded_bits), dtype=np.uint8)
        tec_corrected = np.zeros(n_blocks, dtype=np.int64)
        n_inv = np.empty(n_blocks, dtype=np.int64)
        fail = np.zeros(n_blocks, dtype=np.uint8)
        # Row-chunked pipeline: each chunk's inter-stage temporaries stay
        # cache-resident, which is worth ~1.7x over streaming the whole
        # batch through every stage (measured at 1e5 blocks).
        for lo in range(0, n_blocks, _DECODE_CHUNK):
            hi = min(lo + _DECODE_CHUNK, n_blocks)
            self._decode_chunk(
                s[lo:hi],
                checks[lo:hi],
                bits[lo:hi],
                tec_corrected[lo:hi],
                n_inv[lo:hi],
                fail[lo:hi],
            )
        return BatchDecodedBlocks(
            data_bits=bits[:, : codec.data_bits],
            tec_corrected=tec_corrected,
            hec_pairs_dropped=n_inv,
            uncorrectable=fail != FAIL_NONE,
            fail_stage=fail,
        )

    def _decode_chunk(
        self,
        s: np.ndarray,
        checks: np.ndarray,
        bits: np.ndarray,
        tec_corrected: np.ndarray,
        n_inv: np.ndarray,
        fail: np.ndarray,
    ) -> None:
        """Decode one row chunk into preallocated output slices.

        Stage 1 — transient error correction over the 2-bit cell view.
        The remainder alone classifies every row (zero-syndrome
        dispatch) and is computed from two packed bit planes of the
        states, never materializing the (n_blocks, 708) codeword
        matrix; pair values are read straight off the *received*
        states and only nonzero-remainder rows are patched afterwards.
        """
        codec = self.codec
        n_blocks = s.shape[0]
        code = self.bch.code
        plane_bytes = -(-codec.n_mlc_cells // 8)
        buf = np.zeros((n_blocks, 16 * self._plane_words), dtype=np.uint8)
        buf[:, :plane_bytes] = np.packbits(s >> 1, axis=1)  # high bit: S4
        buf[:, 8 * self._plane_words : 8 * self._plane_words + plane_bytes] = (
            np.packbits(s != 0, axis=1)  # low bit: S2 or S4
        )
        packed = buf.view(np.uint64)
        rem = checks.astype(np.int64) @ self._check_powers
        and_buf = np.empty_like(packed)
        for b in range(code.n_check):
            np.bitwise_and(packed, self._parity_masks[b][None, :], out=and_buf)
            rem ^= (
                np.bitwise_count(and_buf).sum(axis=1, dtype=np.int64) & 1
            ) << b
        pair_values = s[:, 0::2] * 3 + s[:, 1::2]
        dirty = np.nonzero(rem)[0]
        if dirty.size:
            self._patch_dirty(rem, dirty, s, checks, pair_values, fail, tec_corrected)

        # Stage 2 — hard error correction (mark-and-spare squeeze).
        data_values, chunk_inv, exhausted = correct_values_batch(
            pair_values, codec.ms_config
        )
        n_inv[:] = chunk_inv
        fail[(fail == FAIL_NONE) & exhausted] = FAIL_HEC

        # Stage 3 — symbol decoding to binary.
        bits[:, 0::3] = (data_values >> 2) & 1
        bits[:, 1::3] = (data_values >> 1) & 1
        bits[:, 2::3] = data_values & 1

    def _patch_dirty(
        self,
        rem: np.ndarray,
        dirty: np.ndarray,
        s: np.ndarray,
        checks: np.ndarray,
        pair_values: np.ndarray,
        fail: np.ndarray,
        tec_corrected: np.ndarray,
    ) -> None:
        """Apply BCH corrections to the nonzero-remainder rows in place.

        Updates ``pair_values`` / ``fail`` / ``tec_corrected`` for the
        ``dirty`` rows so the stage-2 squeeze can stay on the all-rows
        fast path.  Also runs the post-ECC invalid-"10" screen: a single
        bit flip only ever touches one cell, so for ``t = 1`` checking
        the corrected cell is exhaustive (received states cannot encode
        "10").
        """
        n_tec_bits = 2 * self.codec.n_mlc_cells
        if self.bch._t1_locate is not None:
            pos = self.bch.t1_error_positions(rem[dirty])
            bad = pos < 0
            fail[dirty[bad]] = FAIL_TEC
            good = dirty[~bad]
            gpos = pos[~bad]
            tec_corrected[good] = 1
            in_data = gpos < n_tec_bits
            rows = good[in_data]
            p = gpos[in_data]  # flipped check bits never touch a cell
            cell = p // 2
            old = s[rows, cell].astype(np.int64)
            tec_val = old + (old == 2)  # states -> TEC values {0, 1, 3}
            tec_val ^= np.where(p % 2 == 0, 2, 1)  # flip high or low bit
            fail[rows[tec_val == INVALID_TEC_VALUE]] = FAIL_INVALID_PATTERN
            new_state = TEC_VALUE_TO_STATE[tec_val]
            even = cell % 2 == 0
            s_first = np.where(even, new_state, s[rows, cell - 1])
            s_second = np.where(even, s[rows, (cell + 1) % s.shape[1]], new_state)
            pair_values[rows, cell // 2] = (3 * s_first + s_second).astype(np.uint8)
        else:  # pragma: no cover - the 3-ON-2 TEC code always has t = 1
            received = self._tec_word(s[dirty], checks[dirty])
            for j, i in enumerate(dirty):
                try:
                    data_i, n_i = self.bch.code.decode(received[j])
                except BCHDecodeFailure:
                    fail[i] = FAIL_TEC
                    continue
                tec_corrected[i] = n_i
                tec_vals = data_i[0::2].astype(np.int64) * 2 + data_i[1::2]
                if np.any(tec_vals == INVALID_TEC_VALUE):
                    fail[i] = FAIL_INVALID_PATTERN
                row_states = TEC_VALUE_TO_STATE[tec_vals]
                pair_values[i] = (
                    3 * row_states[0::2] + row_states[1::2]
                ).astype(np.uint8)
