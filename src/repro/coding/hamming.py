"""Hamming / Hsiao single-error-correcting codes.

BCH-1 is equivalent to a Hamming code; the paper cites Hamming [13] and
Hsiao [15] as interchangeable realizations of the 3-ON-2 design's
transient-error code.  This module provides a fast syndrome-decoded SEC
code (plain Hamming) and an SEC-DED variant with Hsiao's odd-weight-column
construction, whose balanced parity-check matrix is what real memory
controllers implement.
"""

from __future__ import annotations

import itertools

import numpy as np

__all__ = ["HammingSEC", "HsiaoSECDED"]


class HammingSEC:
    """Systematic Hamming code correcting one bit error in ``k`` data bits.

    Uses ``r`` check bits with ``2^r - r - 1 >= k``.  The parity-check
    matrix columns for data bits are the non-power-of-two syndromes, so
    the syndrome directly identifies the flipped position.
    """

    def __init__(self, k: int):
        if k < 1:
            raise ValueError("k must be positive")
        r = 1
        while (1 << r) - r - 1 < k:
            r += 1
        self.k = k
        self.r = r
        self.n = k + r
        # columns: data bits get non-power-of-two values, check bit i gets 2^i
        data_cols = [v for v in range(3, 1 << r) if v & (v - 1)][:k]
        self._data_cols = np.asarray(data_cols, dtype=np.int64)
        self._col_to_pos = {int(c): i for i, c in enumerate(data_cols)}

    def encode(self, data_bits: np.ndarray) -> np.ndarray:
        bits = np.asarray(data_bits).astype(np.uint8)
        if bits.shape != (self.k,):
            raise ValueError(f"expected {self.k} bits, got {bits.shape}")
        syn = np.bitwise_xor.reduce(self._data_cols[bits.astype(bool)], initial=0)
        check = ((syn >> np.arange(self.r)) & 1).astype(np.uint8)
        return np.concatenate([bits, check])

    def _syndrome(self, word: np.ndarray) -> int:
        data, check = word[: self.k], word[self.k :]
        syn = np.bitwise_xor.reduce(self._data_cols[data.astype(bool)], initial=0)
        syn ^= int(np.sum(check.astype(np.int64) << np.arange(self.r)))
        return int(syn)

    def decode(self, received: np.ndarray) -> tuple[np.ndarray, int]:
        """Returns ``(data_bits, n_corrected)``; corrects at most 1 error."""
        word = np.asarray(received).astype(np.uint8).copy()
        if word.shape != (self.n,):
            raise ValueError(f"expected {self.n} bits, got {word.shape}")
        syn = self._syndrome(word)
        if syn == 0:
            return word[: self.k].copy(), 0
        if syn in self._col_to_pos:  # data-bit error
            word[self._col_to_pos[syn]] ^= 1
        elif syn & (syn - 1) == 0:  # check-bit error (power of two)
            word[self.k + int(syn).bit_length() - 1] ^= 1
        # any other syndrome would indicate a multi-bit error; plain
        # Hamming cannot flag it, mirroring real SEC behaviour.
        return word[: self.k].copy(), 1


class HsiaoSECDED:
    """Hsiao single-error-correcting, double-error-detecting code.

    Parity-check columns are distinct odd-weight r-bit vectors (minimum
    weight first), which makes every single error correctable (odd
    syndrome weight) and every double error detectable (even, nonzero
    syndrome weight).
    """

    def __init__(self, k: int):
        r = 2
        while _count_odd_columns(r) - r < k:
            r += 1
        self.k = k
        self.r = r
        self.n = k + r
        cols: list[int] = []
        for weight in range(3, r + 1, 2):
            for pos in itertools.combinations(range(r), weight):
                cols.append(sum(1 << p for p in pos))
                if len(cols) == k:
                    break
            if len(cols) == k:
                break
        if len(cols) < k:
            raise AssertionError("column construction fell short")
        self._data_cols = np.asarray(cols, dtype=np.int64)
        self._col_to_pos = {int(c): i for i, c in enumerate(cols)}

    def encode(self, data_bits: np.ndarray) -> np.ndarray:
        bits = np.asarray(data_bits).astype(np.uint8)
        if bits.shape != (self.k,):
            raise ValueError(f"expected {self.k} bits, got {bits.shape}")
        syn = np.bitwise_xor.reduce(self._data_cols[bits.astype(bool)], initial=0)
        check = ((syn >> np.arange(self.r)) & 1).astype(np.uint8)
        return np.concatenate([bits, check])

    def decode(self, received: np.ndarray) -> tuple[np.ndarray, int, bool]:
        """Returns ``(data_bits, n_corrected, detected_uncorrectable)``."""
        word = np.asarray(received).astype(np.uint8).copy()
        if word.shape != (self.n,):
            raise ValueError(f"expected {self.n} bits, got {word.shape}")
        data, check = word[: self.k], word[self.k :]
        syn = np.bitwise_xor.reduce(self._data_cols[data.astype(bool)], initial=0)
        syn ^= int(np.sum(check.astype(np.int64) << np.arange(self.r)))
        if syn == 0:
            return word[: self.k].copy(), 0, False
        weight = bin(syn).count("1")
        if weight % 2 == 0:
            return word[: self.k].copy(), 0, True  # double error detected
        if syn in self._col_to_pos:
            word[self._col_to_pos[syn]] ^= 1
            return word[: self.k].copy(), 1, False
        if weight == 1:  # check-bit error
            word[self.k + int(syn).bit_length() - 1] ^= 1
            return word[: self.k].copy(), 1, False
        # odd-weight syndrome matching no column: >= 3 errors detected
        return word[: self.k].copy(), 0, True


def _count_odd_columns(r: int) -> int:
    """Number of odd-weight r-bit columns of weight >= 3, plus r singletons."""
    total = 0
    for weight in range(3, r + 1, 2):
        total += _comb(r, weight)
    return total + r


def _comb(n: int, k: int) -> int:
    import math

    return math.comb(n, k)
