"""Binary BCH codes: encode, syndrome decode (Berlekamp-Massey + Chien).

The paper uses BCH-t ("an n-bit-correcting BCH code") both as the strong
transient-error code of the 4LC design (BCH-10 over a 512-bit block, 100
check bits) and, as BCH-1, the light code protecting the 3-ON-2 design's
708-bit cell image (10 check bits).  Both live in GF(2^10)
(n = 1023), shortened to the message lengths at hand.

Codewords are numpy ``uint8`` bit arrays, data bits first, check bits
last (systematic encoding).
"""

from __future__ import annotations

import dataclasses
import functools

import numpy as np

from repro.coding.gf2m import GF2m

__all__ = ["BCH", "BCHDecodeFailure", "bch_for_message"]


class BCHDecodeFailure(Exception):
    """More errors than the code can correct (detected, uncorrectable)."""


def _poly_mod2_mul(a: int, b: int) -> int:
    """Multiply two GF(2) polynomials given as integer bitmasks."""
    out = 0
    while b:
        if b & 1:
            out ^= a
        a <<= 1
        b >>= 1
    return out


def _poly_mod2_mod(a: int, b: int) -> int:
    """Remainder of GF(2) polynomial division a mod b (bitmask form)."""
    db = b.bit_length() - 1
    while a.bit_length() - 1 >= db and a:
        a ^= b << (a.bit_length() - 1 - db)
    return a


@dataclasses.dataclass(frozen=True)
class _BCHSpec:
    m: int
    t: int


@functools.lru_cache(maxsize=None)
def _generator_poly(m: int, t: int) -> int:
    """Generator polynomial of the narrow-sense binary BCH code."""
    gf = _field(m)
    g = 1
    seen: set[int] = set()
    for i in range(1, 2 * t + 1):
        elem = gf.alpha_pow(i)
        if elem in seen:
            continue
        # record full conjugacy class so we skip duplicates cheaply
        e = elem
        while e not in seen:
            seen.add(e)
            e = gf.mul(e, e)
        g = _poly_mod2_mul(g, gf.minimal_polynomial(elem))
    return g


@functools.lru_cache(maxsize=None)
def _field(m: int) -> GF2m:
    return GF2m(m)


class BCH:
    """A binary narrow-sense BCH code over GF(2^m), optionally shortened.

    Parameters
    ----------
    m:
        Field degree; natural length is ``n = 2^m - 1``.
    t:
        Number of correctable bit errors.
    k_message:
        Message (data) length in bits.  Must satisfy
        ``k_message <= n - n_check``.  The code is shortened by prepending
        virtual zero data bits.
    """

    def __init__(self, m: int, t: int, k_message: int):
        self.m = m
        self.t = t
        self.gf = _field(m)
        self.n_natural = (1 << m) - 1
        self.generator = _generator_poly(m, t)
        self.n_check = self.generator.bit_length() - 1
        self.k_natural = self.n_natural - self.n_check
        if k_message > self.k_natural:
            raise ValueError(
                f"message of {k_message} bits does not fit: "
                f"BCH(m={m}, t={t}) supports at most {self.k_natural}"
            )
        if k_message < 1:
            raise ValueError("message must have at least one bit")
        self.k = k_message
        self.n = self.k + self.n_check  # shortened block length
        self.shortening = self.k_natural - self.k
        self._position_remainders: np.ndarray | None = None

    # ------------------------------------------------------------------
    def position_remainders(self) -> np.ndarray:
        """``x^deg(i) mod g`` for every codeword position ``i``, as ints.

        Array index ``i`` corresponds to polynomial degree ``top - i``
        (``top = n_natural - 1 - shortening``), so entry ``i`` is the
        ``n_check``-bit GF(2) column a set bit at position ``i``
        contributes to the codeword's remainder modulo the generator.
        XOR-reducing the entries at a word's set bits gives:

        - on a received word: the full remainder, which is zero iff every
          syndrome is zero (the batch layer's zero-syndrome dispatch);
        - on data positions only: the systematic check bits (batch
          encode);
        - for ``t = 1``: the remainder *is* the field element
          ``S1 = alpha^deg`` of a single error, so its discrete log
          locates the error directly.

        The table is computed once per code and cached; treat it as
        read-only (it is the shared backing store for the batch kernels).
        """
        if self._position_remainders is None:
            top = self.n_natural - 1 - self.shortening
            # Remainders are n_check-bit integers; past 63 bits they only
            # fit as Python ints (object dtype).  The t = 1 kernels that
            # *index* with the table always have n_check = m <= 32.
            dtype: type | np.dtype = np.int64 if self.n_check < 63 else object
            rem_by_deg = np.zeros(top + 1, dtype=dtype)
            r = 1  # x^0 mod g
            high_bit = 1 << self.n_check
            for deg in range(top + 1):
                rem_by_deg[deg] = r
                r <<= 1
                if r & high_bit:
                    r ^= self.generator
            table = rem_by_deg[::-1].copy()  # index i <-> degree top - i
            table.setflags(write=False)
            self._position_remainders = table
        return self._position_remainders

    # ------------------------------------------------------------------
    def encode(self, data_bits: np.ndarray) -> np.ndarray:
        """Systematic encode: returns ``[data_bits | check_bits]``.

        ``data_bits[0]`` is the highest-order message coefficient, so the
        shortened positions (virtual zeros) sit "above" the array.
        """
        bits = np.asarray(data_bits)
        if bits.shape != (self.k,):
            raise ValueError(f"expected {self.k} data bits, got {bits.shape}")
        # message polynomial (as int): data * x^(n_check) mod g
        msg = 0
        for b in bits:
            msg = (msg << 1) | int(b)
        rem = _poly_mod2_mod(msg << self.n_check, self.generator)
        check = np.fromiter(
            ((rem >> (self.n_check - 1 - i)) & 1 for i in range(self.n_check)),
            dtype=np.uint8,
            count=self.n_check,
        )
        return np.concatenate([bits.astype(np.uint8), check])

    # ------------------------------------------------------------------
    def syndromes(self, received: np.ndarray) -> np.ndarray:
        """S_1 .. S_2t of the received word (natural-length indexing)."""
        r = np.asarray(received)
        if r.shape != (self.n,):
            raise ValueError(f"expected {self.n} bits, got {r.shape}")
        # Bit j of the array corresponds to polynomial degree n-1-j in the
        # shortened code == natural degree (n_natural - 1 - shortening) - j.
        positions = np.nonzero(r)[0]
        top = self.n_natural - 1 - self.shortening
        degrees = top - positions
        S = np.zeros(2 * self.t, dtype=np.int64)
        if positions.size:
            for j in range(1, 2 * self.t + 1):
                S[j - 1] = np.bitwise_xor.reduce(self.gf.alpha_pow(degrees * j))
        return S

    def _berlekamp_massey(self, S: np.ndarray) -> np.ndarray:
        """Error-locator polynomial sigma(x), lowest degree first."""
        gf = self.gf
        C = [1] + [0] * (2 * self.t)  # current locator
        B = [1] + [0] * (2 * self.t)  # last copy before update
        L, m_shift, b = 0, 1, 1
        for n_iter in range(2 * self.t):
            # discrepancy
            d = int(S[n_iter])
            for i in range(1, L + 1):
                d ^= gf.mul(C[i], int(S[n_iter - i]))
            if d == 0:
                m_shift += 1
            elif 2 * L <= n_iter:
                T = C[:]
                coef = gf.div(d, b)
                for i in range(0, 2 * self.t + 1 - m_shift):
                    C[i + m_shift] ^= gf.mul(coef, B[i])
                L = n_iter + 1 - L
                B = T
                b = d
                m_shift = 1
            else:
                coef = gf.div(d, b)
                for i in range(0, 2 * self.t + 1 - m_shift):
                    C[i + m_shift] ^= gf.mul(coef, B[i])
                m_shift += 1
        return np.asarray(C[: L + 1], dtype=np.int64)

    def _chien_search(self, sigma: np.ndarray) -> np.ndarray:
        """Error positions (array indices) from the locator polynomial."""
        gf = self.gf
        # Roots of sigma are alpha^{-degree}; only degrees within the
        # shortened word are valid error locations.
        top = self.n_natural - 1 - self.shortening
        degrees = np.arange(top, -1, -1)  # degree of each array index
        x = gf.alpha_pow(-degrees)  # candidate inverse locations
        vals = gf.poly_eval(sigma, x)
        return np.nonzero(vals == 0)[0]

    def decode(self, received: np.ndarray) -> tuple[np.ndarray, int]:
        """Correct up to t bit errors; returns (data_bits, n_corrected).

        Raises :class:`BCHDecodeFailure` when the error pattern is
        detectably uncorrectable.  (Patterns beyond the code's guarantee
        may also miscorrect silently, as in any bounded-distance decoder.)
        """
        r = np.asarray(received).astype(np.uint8)  # astype copies: safe to flip
        S = self.syndromes(r)
        if not np.any(S):
            # Error-free fast path: the overwhelmingly common case in a
            # datapath read.  No locator is ever built (tests assert zero
            # Berlekamp-Massey iterations here), mirroring the batch
            # layer's zero-syndrome dispatch.
            return r[: self.k].copy(), 0
        sigma = self._berlekamp_massey(S)
        n_err = len(sigma) - 1
        positions = self._chien_search(sigma)
        if len(positions) != n_err or n_err > self.t:
            raise BCHDecodeFailure(
                f"uncorrectable: locator degree {n_err}, "
                f"{len(positions)} roots in range"
            )
        r[positions] ^= 1
        if np.any(self.syndromes(r)):
            raise BCHDecodeFailure("correction did not zero the syndrome")
        return r[: self.k].copy(), int(n_err)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BCH(m={self.m}, t={self.t}, n={self.n}, k={self.k}, "
            f"check={self.n_check})"
        )


def bch_for_message(k_message: int, t: int) -> BCH:
    """Smallest-field BCH-t code fitting a ``k_message``-bit message."""
    for m in range(3, 17):
        n = (1 << m) - 1
        if k_message + m * t > n:  # quick lower bound on check bits
            continue
        try:
            code = BCH(m, t, k_message)
        except ValueError:
            continue
        return code
    raise ValueError(f"no supported field fits k={k_message}, t={t}")
