"""Codes: GF(2^m)/BCH, Hamming/Hsiao, Gray, 3-ON-2 relatives, smart/permutation/enumerative, block codecs."""
