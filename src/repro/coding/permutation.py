"""Permutation coding baseline (Mittelholzer et al. [22], Section 3).

Data are encoded in the *relative order* of analog resistance levels
written to a group of cells: the cells are programmed to distinct levels,
and the stored value is the permutation relating the written order to the
sorted order.  Decoding senses the analog resistances, argsorts them, and
unranks the permutation — no thresholds, so data survive as long as drift
preserves relative order.

The paper's reference scheme stores 11 bits in 7 cells (7! = 5040 >= 2^11
= 2048), for 1.57 bits/cell.  Our drift simulation of the scheme (used by
the Table 3 benchmarks) programs the 7 levels evenly across the
log-resistance range and applies the same tiered drift model as the
level-coded designs.  Packing 7 levels into the 3-decade range forces a
tighter write than the 4LC cells: the default write sigma is half the
Table-1 value so that adjacent write-and-verify windows do not overlap
(otherwise the scheme mis-orders at write time) — the patent's analog
"most likely pattern" decoding is abstracted as exact order recovery.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.cells.drift import PAPER_ESCALATION, TieredDrift
from repro.cells.params import SIGMA_R, T0_SECONDS, alpha_params_for_level
from repro.montecarlo.rng import alpha_samples, make_rng

__all__ = [
    "rank_permutation",
    "unrank_permutation",
    "PermutationCode",
    "permutation_group_error_rate",
]


def rank_permutation(perm: np.ndarray) -> int:
    """Lehmer-code rank of a permutation of 0..n-1 (lexicographic)."""
    p = list(np.asarray(perm, dtype=np.int64))
    n = len(p)
    if sorted(p) != list(range(n)):
        raise ValueError("not a permutation of 0..n-1")
    rank = 0
    available = list(range(n))
    for i, v in enumerate(p):
        idx = available.index(v)
        rank += idx * math.factorial(n - 1 - i)
        available.pop(idx)
    return rank


def unrank_permutation(rank: int, n: int) -> np.ndarray:
    """Inverse of :func:`rank_permutation`."""
    if not 0 <= rank < math.factorial(n):
        raise ValueError(f"rank {rank} out of range for n={n}")
    available = list(range(n))
    out = []
    for i in range(n):
        f = math.factorial(n - 1 - i)
        idx, rank = divmod(rank, f)
        out.append(available.pop(idx))
    return np.asarray(out, dtype=np.int64)


@dataclasses.dataclass(frozen=True)
class PermutationCode:
    """Permutation code storing ``bits`` bits in ``cells`` cells."""

    cells: int = 7
    bits: int = 11

    def __post_init__(self) -> None:
        if math.factorial(self.cells) < (1 << self.bits):
            raise ValueError(
                f"{self.cells}! < 2^{self.bits}: message does not fit"
            )

    @property
    def bits_per_cell(self) -> float:
        return self.bits / self.cells

    def encode(self, value: int) -> np.ndarray:
        """Message value -> level ordering (level index per cell)."""
        if not 0 <= value < (1 << self.bits):
            raise ValueError(f"value {value} out of range")
        return unrank_permutation(value, self.cells)

    def decode(self, levels: np.ndarray) -> int:
        """Level ordering (or any values with the same order) -> message.

        Accepts raw analog readings: only the argsort matters.
        """
        order = np.argsort(np.asarray(levels), kind="stable")
        perm = np.empty(self.cells, dtype=np.int64)
        perm[order] = np.arange(self.cells)
        return rank_permutation(perm)


def permutation_group_error_rate(
    times_s: np.ndarray,
    n_groups: int = 200_000,
    code: PermutationCode = PermutationCode(),
    lr_lo: float = 3.0,
    lr_hi: float = 6.0,
    sigma_lr: float = SIGMA_R / 2,
    schedule: TieredDrift = PAPER_ESCALATION,
    seed: int = 0,
) -> np.ndarray:
    """Monte Carlo group-error rate of the permutation code under drift.

    Cells are programmed to ``code.cells`` evenly spaced nominal levels
    (write noise ``sigma_lr``), drift with level-appropriate exponents
    (and tier escalation), and a group errs once any adjacent pair of the
    written order swaps.  Returned per time point.

    Note the granularity difference vs level-coded CER: one group error
    corrupts up to ``code.bits`` bits.
    """
    rng = make_rng(seed)
    times = np.asarray(times_s, dtype=float)
    nominal = np.linspace(lr_lo, lr_hi, code.cells)
    if 2 * 2.75 * sigma_lr >= nominal[1] - nominal[0]:
        raise ValueError(
            "write windows of adjacent levels overlap; tighten sigma_lr"
        )

    from repro.montecarlo.rng import truncated_normal

    z = truncated_normal(rng, 0.0, 1.0, -2.75, 2.75, n_groups * code.cells)
    lr0 = nominal[None, :] + sigma_lr * z.reshape(n_groups, code.cells)
    alphas = np.empty_like(lr0)
    for j, mu in enumerate(nominal):
        p = alpha_params_for_level(mu)
        a, _ = alpha_samples(rng, p.mu_alpha, p.sigma_alpha, n_groups)
        alphas[:, j] = a
    # Tier escalation, applied per cell via the critical-crossing closed
    # form is unnecessary here: for order comparisons we need the actual
    # lr(t), so evaluate the piecewise trajectory per time point.
    err = np.zeros(len(times))
    tier = schedule.tiers[0] if schedule.tiers else None
    if tier is not None:
        fresh = rng.standard_normal(lr0.shape)
        alpha2 = np.maximum(tier.mu_alpha + fresh * tier.sigma_alpha, 0.0)
    for it, t in enumerate(times):
        L = np.log10(t / T0_SECONDS)
        lr = lr0 + alphas * L
        if tier is not None:
            started_below = lr0 < tier.lr_break
            crossed = started_below & (lr > tier.lr_break)
            with np.errstate(divide="ignore", invalid="ignore"):
                L_cross = np.where(crossed, (tier.lr_break - lr0) / alphas, 0.0)
            lr = np.where(
                crossed, tier.lr_break + alpha2 * (L - L_cross), lr
            )
        # order preserved iff each written level stays below the next
        ordered = np.all(np.diff(lr, axis=1) > 0, axis=1)
        err[it] = 1.0 - ordered.mean()
    return err
