"""Generalized n-level block codec (Section 8).

Section 8 closes with: "We can combine the described optimal state
mapping, information encoding, and error correction techniques with the
generalized non-power-of-two-level cells to practically enable high
density MLC-PCM."  This module is that combination, for any level count:

- **data**: an enumerative group code (:class:`EnumerativeCode`) storing
  k bits per n-cell group, with the all-top group state reserved as INV;
- **wearout**: generalized mark-and-spare — a failed group is forced to
  all-top (every failure mode can reach the top level, via reverse-
  current revival if needed) and squeezed out on read;
- **transient errors**: BCH-1 over a per-cell Gray view, in which a
  one-step drift error flips exactly one bit and the INV state remains
  representable; check bits live in drift-immune SLC cells.

``q = 3, group = 2`` reproduces the paper's 3-ON-2 design bit for bit
(asserted by the tests); ``q = 5, 6`` are the future cells of Section 8.
"""

from __future__ import annotations

import math

import numpy as np

from repro.coding.bch import BCH, BCHDecodeFailure
from repro.coding.blockcodec import DecodedBlock, UncorrectableBlock
from repro.coding.enumerative import EnumerativeCode
from repro.wearout.mark_and_spare import (
    MarkAndSpareBlock,
    MarkAndSpareConfig,
    correct_values,
)

__all__ = ["NLevelBlockCodec", "gray_sequence"]


def gray_sequence(q_levels: int) -> np.ndarray:
    """First ``q`` codewords of the reflected Gray sequence.

    Consecutive entries differ in exactly one bit, so a one-step drift
    error is a single bit error in the TEC view (the Section 6.3
    property, generalized).
    """
    bits = max(1, math.ceil(math.log2(q_levels)))
    seq = np.arange(q_levels, dtype=np.int64)
    return seq ^ (seq >> 1), bits


class NLevelBlockCodec:
    """A 64B-style block on q-level cells with groups of ``group_cells``."""

    def __init__(
        self,
        q_levels: int,
        group_cells: int,
        data_bits: int = 512,
        n_spare_groups: int = 6,
    ):
        self.group = EnumerativeCode(q_levels, group_cells)
        self.data_bits = data_bits
        self.n_data_groups = -(-data_bits // self.group.capacity_bits)
        self.ms_config = MarkAndSpareConfig(
            n_data_pairs=self.n_data_groups, n_spare_pairs=n_spare_groups
        )
        self.n_cells = self.ms_config.n_pairs * group_cells
        self._gray, self.tec_bits_per_cell = gray_sequence(q_levels)
        self._gray_inverse = np.full(1 << self.tec_bits_per_cell, -1, dtype=np.int64)
        self._gray_inverse[self._gray] = np.arange(q_levels)
        self.tec = BCH(10, 1, self.tec_bits_per_cell * self.n_cells)
        self.n_slc_cells = self.tec.n_check
        self.total_cells = self.n_cells + self.n_slc_cells

    # ------------------------------------------------------------------
    @property
    def bits_per_cell(self) -> float:
        return self.data_bits / self.total_cells

    def new_block_state(self) -> MarkAndSpareBlock:
        return MarkAndSpareBlock(self.ms_config, inv_value=self.group.inv_value)

    # TEC view --------------------------------------------------------
    def states_to_tec_bits(self, states: np.ndarray) -> np.ndarray:
        s = np.asarray(states, dtype=np.int64)
        if np.any((s < 0) | (s >= self.group.q_levels)):
            raise ValueError("state index out of range")
        g = self._gray[s]
        shifts = np.arange(self.tec_bits_per_cell - 1, -1, -1)
        return ((g[:, None] >> shifts[None, :]) & 1).astype(np.uint8).reshape(-1)

    def tec_bits_to_states(self, bits: np.ndarray) -> np.ndarray:
        b = np.asarray(bits, dtype=np.int64)
        grouped = b.reshape(-1, self.tec_bits_per_cell)
        shifts = np.arange(self.tec_bits_per_cell - 1, -1, -1)
        codes = np.sum(grouped << shifts[None, :], axis=1)
        states = self._gray_inverse[codes]
        # Codes outside the Gray sequence (multi-error escapes) clamp to
        # the top state, one drift step away on the high side.
        return np.where(states < 0, self.group.q_levels - 1, states)

    # Block paths ------------------------------------------------------
    def encode(
        self, data_bits: np.ndarray, block: MarkAndSpareBlock | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        bits = np.asarray(data_bits).astype(np.uint8)
        if bits.shape != (self.data_bits,):
            raise ValueError(f"expected {self.data_bits} bits, got {bits.shape}")
        block = block or self.new_block_state()
        k = self.group.capacity_bits
        padded = np.zeros(self.n_data_groups * k, dtype=np.uint8)
        padded[: bits.size] = bits
        shifts = (1 << np.arange(k - 1, -1, -1)).astype(np.int64)
        values = padded.reshape(-1, k) @ shifts
        physical = block.layout(values)
        top = np.full(self.group.n_cells, self.group.q_levels - 1, dtype=np.int64)
        states = np.concatenate(
            [
                top if v == self.group.inv_value else self.group.encode_group(int(v))
                for v in physical
            ]
        )
        codeword = self.tec.encode(self.states_to_tec_bits(states))
        return states, codeword[self.tec.k :]

    def decode(
        self, states: np.ndarray, slc_check_bits: np.ndarray
    ) -> DecodedBlock:
        s = np.asarray(states, dtype=np.int64)
        if s.shape != (self.n_cells,):
            raise ValueError(f"expected {self.n_cells} states, got {s.shape}")
        received = np.concatenate(
            [self.states_to_tec_bits(s), np.asarray(slc_check_bits, dtype=np.uint8)]
        )
        try:
            tec_bits, n_corr = self.tec.decode(received)
        except BCHDecodeFailure as exc:
            raise UncorrectableBlock(f"TEC failure: {exc}") from exc
        corrected = self.tec_bits_to_states(tec_bits)
        groups = corrected.reshape(-1, self.group.n_cells)
        values = np.zeros(groups.shape[0], dtype=np.int64)
        for i in range(groups.shape[1]):
            values = values * self.group.q_levels + groups[:, i]
        n_inv = int(np.sum(values == self.group.inv_value))
        data_values = correct_values(
            values, self.ms_config, inv_value=self.group.inv_value
        )
        k = self.group.capacity_bits
        shifts = np.arange(k - 1, -1, -1)
        safe = np.clip(data_values, 0, (1 << k) - 1)
        bits = ((safe[:, None] >> shifts[None, :]) & 1).astype(np.uint8).reshape(-1)
        return DecodedBlock(
            data_bits=bits[: self.data_bits],
            tec_corrected=n_corr,
            hec_pairs_dropped=n_inv,
        )
