"""Gray-code state mapping for MLC cells.

The paper stores 4LC data Gray-coded "so that a drift error manifests as a
one-bit error" (Section 6.6): drift moves a cell to the *adjacent* state,
and adjacent Gray codewords differ in exactly one bit.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "binary_to_gray",
    "gray_to_binary",
    "states_to_bits",
    "bits_to_states",
]


def binary_to_gray(x: np.ndarray | int) -> np.ndarray | int:
    """Standard reflected binary Gray code."""
    x = np.asarray(x)
    out = x ^ (x >> 1)
    return out if out.ndim else int(out)


def gray_to_binary(g: np.ndarray | int) -> np.ndarray | int:
    """Inverse of :func:`binary_to_gray`.

    The Gray inverse is the bitwise prefix-xor, computed as
    ``b = g ^ (g >> 1) ^ (g >> 2) ^ ...`` until the shift exhausts the word.
    """
    g = np.asarray(g, dtype=np.int64)
    out = g.copy()
    shift = 1
    while np.any(g >> shift):
        out = out ^ (g >> shift)
        shift += 1
    return out if out.ndim else int(out)


def states_to_bits(states: np.ndarray, bits_per_cell: int) -> np.ndarray:
    """Cell state indices -> Gray-coded bit array (MSB first per cell)."""
    states = np.asarray(states, dtype=np.int64)
    if np.any((states < 0) | (states >= (1 << bits_per_cell))):
        raise ValueError("state index out of range for bits_per_cell")
    gray = states ^ (states >> 1)
    shifts = np.arange(bits_per_cell - 1, -1, -1)
    return ((gray[:, None] >> shifts[None, :]) & 1).astype(np.uint8).reshape(-1)


def bits_to_states(bits: np.ndarray, bits_per_cell: int) -> np.ndarray:
    """Gray-coded bit array -> cell state indices (inverse of above)."""
    bits = np.asarray(bits, dtype=np.int64)
    if bits.size % bits_per_cell:
        raise ValueError("bit count not a multiple of bits_per_cell")
    grouped = bits.reshape(-1, bits_per_cell)
    shifts = np.arange(bits_per_cell - 1, -1, -1)
    gray = np.sum(grouped << shifts[None, :], axis=1)
    return np.asarray(gray_to_binary(gray))
