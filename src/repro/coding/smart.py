"""Smart cell encoding for the 4LC designs (Section 5.1).

Helmet [40] and symbol-based value encoding [35] reduce the number of
cells programmed to the drift-vulnerable middle states (S2, S3).  We
implement a concrete rotation-based scheme in that family: data cells are
processed in fixed-size groups, and each group is stored under the state
rotation ``s -> (s + r) mod 4`` (r in 0..3) that minimizes the number of
vulnerable cells; the 2-bit rotation tag is stored alongside (in practice
in drift-immune SLC cells, like the paper's BCH check bits).

The achievable occupancy skew depends on data statistics — the paper
notes that random or compressed data defeat such schemes and assumes an
optimistic 35/15/15/35 occupancy for its 4LCs/4LCo analysis; the
``measure_occupancy`` helper quantifies what the scheme actually achieves
on given data, which the ablation benchmarks report.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = [
    "RotationSmartCode",
    "HelmetSmartCode",
    "FrequencySmartCode",
    "measure_occupancy",
]

_N_STATES = 4


@dataclasses.dataclass(frozen=True)
class RotationSmartCode:
    """Per-group state rotation minimizing vulnerable-state occupancy."""

    group_cells: int = 16
    vulnerable: tuple[int, ...] = (1, 2)  # S2, S3

    @property
    def tag_bits_per_group(self) -> int:
        return 2

    def _pad(self, states: np.ndarray) -> tuple[np.ndarray, int]:
        n = states.size
        rem = (-n) % self.group_cells
        if rem:
            states = np.concatenate([states, np.zeros(rem, dtype=states.dtype)])
        return states, n

    def encode(self, states: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Returns ``(rotated_states, tags)`` with one tag per group."""
        s = np.asarray(states, dtype=np.int64)
        if np.any((s < 0) | (s >= _N_STATES)):
            raise ValueError("state indices must be in [0, 4)")
        padded, n = self._pad(s)
        groups = padded.reshape(-1, self.group_cells)
        # Count vulnerable cells for each of the four rotations at once:
        # rotation r puts original state s into (s + r) % 4.
        vuln = np.zeros((groups.shape[0], _N_STATES), dtype=np.int64)
        for r in range(_N_STATES):
            rotated = (groups + r) % _N_STATES
            vuln[:, r] = np.isin(rotated, self.vulnerable).sum(axis=1)
        tags = np.argmin(vuln, axis=1)
        rotated = (groups + tags[:, None]) % _N_STATES
        return rotated.reshape(-1)[: s.size], tags.astype(np.int64)

    def decode(self, states: np.ndarray, tags: np.ndarray) -> np.ndarray:
        """Invert the per-group rotation."""
        s = np.asarray(states, dtype=np.int64)
        padded, n = self._pad(s)
        groups = padded.reshape(-1, self.group_cells)
        tags = np.asarray(tags, dtype=np.int64)
        if tags.shape != (groups.shape[0],):
            raise ValueError(
                f"expected {groups.shape[0]} tags, got {tags.shape}"
            )
        original = (groups - tags[:, None]) % _N_STATES
        return original.reshape(-1)[: s.size]


@dataclasses.dataclass(frozen=True)
class FrequencySmartCode:
    """Symbol-based value encoding (Wang et al. [35]).

    Instead of rotating whole groups, rank the four 2-bit symbols by
    frequency within a block and assign the most frequent symbols to the
    drift-immune end states: rank 0 -> S1, rank 1 -> S4, rank 2 -> S2,
    rank 3 -> S3.  The chosen symbol->state permutation is the per-block
    tag (4! = 24 permutations, 5 bits).  Data with strong value locality
    (zeros, small integers) approach the paper's 35/15/15/35 assumption;
    uniform data gain nothing — the caveat Section 5.1 repeats.
    """

    #: target states by frequency rank: best two ranks to S1/S4.
    rank_to_state: tuple[int, ...] = (0, 3, 1, 2)

    def encode(self, states: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Returns ``(mapped_states, mapping)``; ``mapping[s]`` is the
        physical state storing logical symbol ``s``."""
        s = np.asarray(states, dtype=np.int64)
        if np.any((s < 0) | (s >= _N_STATES)):
            raise ValueError("state indices must be in [0, 4)")
        counts = np.bincount(s, minlength=_N_STATES)
        # Most frequent symbol first; stable order breaks ties.
        ranks = np.argsort(-counts, kind="stable")
        mapping = np.empty(_N_STATES, dtype=np.int64)
        mapping[ranks] = np.asarray(self.rank_to_state)
        return mapping[s], mapping

    def decode(self, states: np.ndarray, mapping: np.ndarray) -> np.ndarray:
        mapping = np.asarray(mapping, dtype=np.int64)
        if sorted(mapping.tolist()) != list(range(_N_STATES)):
            raise ValueError("mapping must be a permutation of 0..3")
        inverse = np.empty(_N_STATES, dtype=np.int64)
        inverse[mapping] = np.arange(_N_STATES)
        s = np.asarray(states, dtype=np.int64)
        return inverse[s]


@dataclasses.dataclass(frozen=True)
class HelmetSmartCode:
    """Helmet-style selective inversion + rotation [40].

    Helmet's observation: S3 is an order of magnitude more error-prone
    than S2 (Figure 3), so the transform should be chosen by *weighted*
    vulnerability, not by count.  Each group picks among eight transforms
    ``s -> (r + s) % 4`` and ``s -> (r - s) % 4`` (rotation x inversion,
    a 3-bit tag) minimizing ``cost = n_S3 + s2_weight * n_S2``.
    """

    group_cells: int = 16
    s2_weight: float = 0.1  # S2/S3 error-rate ratio from Figure 3

    @property
    def tag_bits_per_group(self) -> int:
        return 3

    def _transforms(self) -> np.ndarray:
        """(8, 4) table: transform t maps state s to table[t, s]."""
        base = np.arange(_N_STATES)
        rows = [(r + base) % _N_STATES for r in range(_N_STATES)]
        rows += [(r - base) % _N_STATES for r in range(_N_STATES)]
        return np.stack(rows)

    def _pad(self, states: np.ndarray) -> np.ndarray:
        rem = (-states.size) % self.group_cells
        if rem:
            return np.concatenate([states, np.zeros(rem, dtype=states.dtype)])
        return states

    def encode(self, states: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        s = np.asarray(states, dtype=np.int64)
        if np.any((s < 0) | (s >= _N_STATES)):
            raise ValueError("state indices must be in [0, 4)")
        groups = self._pad(s).reshape(-1, self.group_cells)
        table = self._transforms()
        cost = np.empty((groups.shape[0], table.shape[0]))
        for t in range(table.shape[0]):
            mapped = table[t][groups]
            cost[:, t] = (mapped == 2).sum(axis=1) + self.s2_weight * (
                mapped == 1
            ).sum(axis=1)
        tags = np.argmin(cost, axis=1)
        out = np.take_along_axis(
            table[tags], groups, axis=1
        )
        return out.reshape(-1)[: s.size], tags.astype(np.int64)

    def decode(self, states: np.ndarray, tags: np.ndarray) -> np.ndarray:
        s = np.asarray(states, dtype=np.int64)
        groups = self._pad(s).reshape(-1, self.group_cells)
        tags = np.asarray(tags, dtype=np.int64)
        if tags.shape != (groups.shape[0],):
            raise ValueError(f"expected {groups.shape[0]} tags, got {tags.shape}")
        table = self._transforms()
        inverse = np.argsort(table, axis=1)  # inverse permutation per row
        out = np.take_along_axis(inverse[tags], groups, axis=1)
        return out.reshape(-1)[: s.size]


def measure_occupancy(states: np.ndarray, n_states: int = _N_STATES) -> np.ndarray:
    """Fraction of cells in each state (the occupancy vector of a design)."""
    s = np.asarray(states, dtype=np.int64)
    if s.size == 0:
        raise ValueError("empty state array")
    counts = np.bincount(s, minlength=n_states)
    return counts / s.size
