"""Memory controller with read-priority scheduling and write pausing.

The base :class:`PCMTimingModel` serves requests in arrival order, so a
read arriving behind a 1 us write waits the full write.  Real PCM
controllers exploit that MLC writes are *iterative* (write-and-verify
rounds): Qureshi et al. [25] — cited by the paper as the standard answer
to slow PCM writes — **pause** an in-progress write at the next
iteration boundary to service pending reads, or **cancel** it outright
and retry later.

This controller layers those policies over the bank/window model:

- ``NONE``: reads wait for in-flight writes (the base model's behaviour);
- ``PAUSE``: a read arriving mid-write is served after the current write
  iteration finishes (at most ``iteration_ns``); the write resumes and
  its completion slips by the interruption;
- ``CANCEL``: as PAUSE, but if the write has not yet passed half its
  iterations it is cancelled and reissued after the read, paying its
  full latency again (and another write-window slot).

Refresh writes are pausable exactly like demand writes — this is the
"intelligent refresh" headroom that separates 4LC-REF from 4LC-REF-OPT.
"""

from __future__ import annotations

import dataclasses
from enum import Enum

from repro.sim.config import DesignVariant, MachineConfig
from repro.sim.pcm_timing import PCMTimingModel

__all__ = ["WritePolicy", "ControllerStats", "PCMController"]


class WritePolicy(Enum):
    NONE = "none"
    PAUSE = "pause"
    CANCEL = "cancel"


@dataclasses.dataclass
class ControllerStats:
    reads: int = 0
    writes: int = 0
    write_pauses: int = 0
    write_cancels: int = 0
    read_wait_ns: float = 0.0  # total time reads spent queued


@dataclasses.dataclass
class _InFlightWrite:
    line_addr: int
    start_ns: float
    end_ns: float
    pauses: int = 0


class PCMController:
    """Bank-level scheduler with read priority over iterative writes."""

    def __init__(
        self,
        machine: MachineConfig,
        variant: DesignVariant,
        policy: WritePolicy = WritePolicy.PAUSE,
        iteration_ns: float = 125.0,  # 8 write-and-verify rounds per 1 us
        max_pauses: int = 4,
    ):
        if iteration_ns <= 0 or iteration_ns > machine.pcm_write_ns:
            raise ValueError("iteration must be positive and fit in a write")
        self.machine = machine
        self.variant = variant
        self.policy = policy
        self.iteration_ns = iteration_ns
        self.max_pauses = max_pauses
        self.timing = PCMTimingModel(machine, variant)
        self.stats = ControllerStats()
        self._inflight: dict[int, _InFlightWrite] = {}  # bank -> write

    # ------------------------------------------------------------------
    def _bank(self, line_addr: int) -> int:
        return self.timing.bank_of(line_addr)

    def read(self, line_addr: int, t_arrive: float) -> float:
        """Completion time of a demand read under the write policy."""
        bank = self._bank(line_addr)
        w = self._inflight.get(bank)
        self.stats.reads += 1

        if (
            w is not None
            and self.policy is not WritePolicy.NONE
            and w.start_ns < t_arrive < w.end_ns
            and w.pauses < self.max_pauses
        ):
            # Interrupt at the next iteration boundary.
            elapsed = t_arrive - w.start_ns
            n_iter = int(elapsed // self.iteration_ns) + 1
            boundary = w.start_ns + n_iter * self.iteration_ns
            read_start = min(boundary, w.end_ns)
            done = read_start + self.machine.pcm_read_ns + self.variant.read_adder_ns
            read_busy_until = read_start + self.machine.pcm_read_ns
            progress = n_iter * self.iteration_ns
            total_iters = self.machine.pcm_write_ns / self.iteration_ns
            if (
                self.policy is WritePolicy.CANCEL
                and n_iter < total_iters / 2
            ):
                # Abandon the write; reissue from scratch after the read.
                self.stats.write_cancels += 1
                restart = read_busy_until
                w_start = self.timing.window.earliest_start(restart)
                self.timing.window.commit(w_start)
                w.start_ns = w_start
                w.end_ns = w_start + self.machine.pcm_write_ns
                w.pauses += 1
            else:
                # Pause: remaining iterations resume after the read.
                self.stats.write_pauses += 1
                remaining = self.machine.pcm_write_ns - progress
                w.end_ns = read_busy_until + remaining
                w.pauses += 1
            self.timing.bank_free[bank] = w.end_ns
            self.stats.read_wait_ns += read_start - t_arrive
            # Keep the device-level operation counters consistent with the
            # non-preempting path (energy accounting reads them).
            self.timing.counts.reads += 1
            self.timing.counts.read_stall_ns += read_start - t_arrive
            return done

        if w is not None and t_arrive >= w.end_ns:
            self._inflight.pop(bank, None)
        done = self.timing.schedule_read(line_addr, t_arrive)
        self.stats.read_wait_ns += (
            done - self.machine.pcm_read_ns - self.variant.read_adder_ns - t_arrive
        )
        return done

    def write(self, line_addr: int, t_arrive: float) -> tuple[float, float]:
        """(start, completion) of a demand write; tracked for preemption."""
        bank = self._bank(line_addr)
        w = self._inflight.get(bank)
        if w is not None and t_arrive >= w.end_ns:
            self._inflight.pop(bank, None)
        start, done = self.timing.schedule_write(line_addr, t_arrive)
        self._inflight[bank] = _InFlightWrite(line_addr, start, done)
        self.stats.writes += 1
        return start, done

    def drain(self, t: float) -> None:
        self.timing.drain(t)
