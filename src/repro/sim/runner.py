"""End-to-end Figure 16 runner: workloads x design variants.

Produces the normalized execution time, energy breakdown (RD/WR/REF) and
power of each (workload, variant) pair, normalized to 4LC-REF exactly as
the paper plots them.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence

from repro.sim.config import DesignVariant, MachineConfig, PAPER_VARIANTS
from repro.sim.core import CoreResult, run_trace
from repro.sim.energy import EnergyBreakdown, account_energy
from repro.sim.pcm_timing import OpCounts
from repro.workloads.spec_like import PAPER_WORKLOADS, make_workload

__all__ = ["VariantResult", "Fig16Row", "run_variant", "run_fig16"]


@dataclasses.dataclass(frozen=True)
class VariantResult:
    """Raw results of one (workload, variant) simulation."""

    workload: str
    variant: str
    core: CoreResult
    energy: EnergyBreakdown

    @property
    def power_w(self) -> float:
        return self.energy.power_w(self.core.exec_time_ns)


@dataclasses.dataclass(frozen=True)
class Fig16Row:
    """One workload's bars, normalized to the 4LC-REF baseline."""

    workload: str
    exec_time: Mapping[str, float]
    energy: Mapping[str, float]
    power: Mapping[str, float]
    energy_breakdown: Mapping[str, tuple[float, float, float]]  # RD, WR, REF


def run_variant(
    workload: str,
    variant: DesignVariant,
    machine: MachineConfig | None = None,
    n_accesses: int = 200_000,
    seed: int = 0,
) -> VariantResult:
    machine = machine or MachineConfig()
    trace = make_workload(workload, n_accesses=n_accesses, seed=seed)
    core = run_trace(trace, machine, variant)
    counts = OpCounts(
        reads=core.pcm_reads,
        writes=core.pcm_writes,
        refreshes=core.pcm_refreshes,
    )
    energy = account_energy(counts, machine)
    return VariantResult(
        workload=workload, variant=variant.name, core=core, energy=energy
    )


def run_fig16(
    workloads: Sequence[str] | None = None,
    variants: Mapping[str, DesignVariant] | None = None,
    machine: MachineConfig | None = None,
    n_accesses: int = 200_000,
    seed: int = 0,
    baseline: str = "4LC-REF",
) -> list[Fig16Row]:
    """Run the full Figure 16 grid and normalize to the baseline."""
    workloads = list(workloads) if workloads is not None else list(PAPER_WORKLOADS)
    variants = dict(variants) if variants is not None else dict(PAPER_VARIANTS)
    if baseline not in variants:
        raise ValueError(f"baseline {baseline!r} not among variants")
    machine = machine or MachineConfig()

    rows: list[Fig16Row] = []
    for wl in workloads:
        results = {
            name: run_variant(wl, v, machine, n_accesses, seed)
            for name, v in variants.items()
        }
        base = results[baseline]
        t0 = base.core.exec_time_ns
        e0 = base.energy.total_nj
        p0 = base.power_w
        rows.append(
            Fig16Row(
                workload=wl,
                exec_time={n: r.core.exec_time_ns / t0 for n, r in results.items()},
                energy={n: r.energy.total_nj / e0 for n, r in results.items()},
                power={n: r.power_w / p0 for n, r in results.items()},
                energy_breakdown={
                    n: (
                        r.energy.read_nj / e0,
                        r.energy.write_nj / e0,
                        r.energy.refresh_nj / e0,
                    )
                    for n, r in results.items()
                },
            )
        )
    return rows
