"""PCM device timing: banks, the four-write window, refresh interleaving.

Implements the Section-7 memory-device model:

- per-bank service (one operation at a time; reads 200 ns + ECC adder,
  writes 1 us);
- the global **four-write window**: at most ``writes_per_window`` write
  *starts* inside any rolling ``write_window_ns`` interval — this is the
  40 MB/s sustained write-throughput cap of Table 5 (64B x 4 / 6.4 us =
  40 MB/s);
- a steady-state **refresh stream**: refreshing ``n_blocks`` every
  interval means one block refresh (a 1 us write occupying a bank and a
  write-window slot) every ``interval / n_blocks`` — ~3.9 us device-wide
  at 17 minutes.  BLOCKING mode charges both bank and window; OPTIMIZED
  charges only the window (ideal contention-free scheduling); NONE skips
  refresh entirely.

Demand requests must arrive in non-decreasing time order (the core model
guarantees this); refreshes due before each arrival are retired first.
"""

from __future__ import annotations

import bisect
import dataclasses

from repro.sim.config import DesignVariant, MachineConfig, RefreshMode
from repro.sim.refresh import RefreshStream

__all__ = ["PCMTimingModel", "OpCounts"]


@dataclasses.dataclass
class OpCounts:
    reads: int = 0
    writes: int = 0
    refreshes: int = 0
    read_stall_ns: float = 0.0  # waiting for a busy bank
    write_window_stall_ns: float = 0.0
    row_hits: int = 0
    refreshes_skipped: int = 0  # write-aware scrub cancellations


class _WriteWindow:
    """Rolling limit on write starts (four-write window).

    Only the ``max_writes`` most recent start times can ever constrain a
    future write (the k-th next write must start at least ``window_ns``
    after the k-th most recent), so a sorted list of the largest
    ``max_writes`` starts is sufficient state.  Starts are not guaranteed
    monotone across calls — a bank-conflicted write can be pushed past a
    later-arriving write on another bank — hence the sorted insert.
    """

    def __init__(self, window_ns: float, max_writes: int):
        self.window_ns = window_ns
        self.max_writes = max_writes
        self._starts: list[float] = []  # ascending, length <= max_writes

    def earliest_start(self, t: float) -> float:
        if len(self._starts) < self.max_writes:
            return t
        return max(t, self._starts[0] + self.window_ns)

    def commit(self, start: float) -> None:
        bisect.insort(self._starts, start)
        if len(self._starts) > self.max_writes:
            self._starts.pop(0)


class PCMTimingModel:
    """Bank/window/refresh timing for one PCM device."""

    def __init__(self, machine: MachineConfig, variant: DesignVariant):
        self.machine = machine
        self.variant = variant
        self.bank_free = [0.0] * machine.n_banks
        self.window = _WriteWindow(
            machine.write_window_ns, machine.writes_per_window
        )
        self.counts = OpCounts()
        if variant.refreshes:
            interval = variant.refresh_interval_s
            assert interval is not None
            obligated = machine.n_blocks
            if variant.refresh_mode is RefreshMode.WRITE_AWARE:
                # Blocks the demand stream rewrites each interval carry no
                # refresh obligation (write-aware scrub, after [2]).
                obligated = max(
                    int(round(obligated * (1.0 - variant.refresh_coverage))), 1
                )
            self.refresh_stream: RefreshStream | None = RefreshStream.for_device(
                obligated, interval
            )
        else:
            self.refresh_stream = None
        self._refresh_bank = 0
        # Open row per bank (row index, or None); Section 6.7 notes PCM
        # devices keep DRAM-like row buffers.
        self._open_row: list[int | None] = [None] * machine.n_banks

    # ------------------------------------------------------------------
    def bank_of(self, line_addr: int) -> int:
        return line_addr % self.machine.n_banks

    def _advance_refresh(self, t: float) -> None:
        """Retire refreshes that fell due before ``t``."""
        stream = self.refresh_stream
        if stream is None:
            return
        while stream.due(t):
            due = stream.pop()
            start = self.window.earliest_start(due)
            if self.variant.refresh_mode is RefreshMode.BLOCKING:
                bank = self._refresh_bank
                self._refresh_bank = (bank + 1) % self.machine.n_banks
                start = max(start, self.bank_free[bank])
                self.bank_free[bank] = start + self.machine.pcm_write_ns
                self._open_row[bank] = None  # refresh closes the row
            self.window.commit(start)
            self.counts.refreshes += 1

    # ------------------------------------------------------------------
    def _row_of(self, line_addr: int) -> int | None:
        rb = self.machine.row_buffer_blocks
        if rb <= 0:
            return None
        return (line_addr // self.machine.n_banks) // rb

    def schedule_read(self, line_addr: int, t_arrive: float) -> float:
        """Returns the completion time of a demand read."""
        self._advance_refresh(t_arrive)
        bank = self.bank_of(line_addr)
        start = max(t_arrive, self.bank_free[bank])
        self.counts.read_stall_ns += start - t_arrive
        row = self._row_of(line_addr)
        if row is not None and self._open_row[bank] == row:
            array_ns = self.machine.row_hit_ns
            self.counts.row_hits += 1
        else:
            array_ns = self.machine.pcm_read_ns
            if row is not None:
                self._open_row[bank] = row
        done = start + array_ns + self.variant.read_adder_ns
        self.bank_free[bank] = start + array_ns
        self.counts.reads += 1
        return done

    def schedule_write(self, line_addr: int, t_arrive: float) -> tuple[float, float]:
        """Returns ``(start, completion)`` of a demand write."""
        self._advance_refresh(t_arrive)
        bank = self.bank_of(line_addr)
        start = max(t_arrive, self.bank_free[bank])
        w_start = self.window.earliest_start(start)
        self.counts.write_window_stall_ns += w_start - start
        start = w_start
        self.window.commit(start)
        done = start + self.machine.pcm_write_ns
        self.bank_free[bank] = done
        self.counts.writes += 1
        row = self._row_of(line_addr)
        if row is not None:
            self._open_row[bank] = row
        return start, done

    def drain(self, t: float) -> None:
        """Advance refresh bookkeeping to the end of simulation."""
        self._advance_refresh(t)
