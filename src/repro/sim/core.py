"""Trace-driven core model.

A simple out-of-order abstraction sufficient for the Figure-16 memory
study:

- CPU work between memory accesses advances time directly;
- cache hits add their fixed hit latencies;
- L2-miss **reads** go to the PCM controller; up to
  ``max_outstanding_reads`` overlap (memory-level parallelism), except
  *dependent* reads (pointer chasing), which serialize;
- dirty evictions enter a finite write buffer that drains to PCM; the
  core stalls only when the buffer is full — but PCM's four-write window
  makes that a frequent event for write-heavy workloads, which is
  exactly the contention Figure 16 measures.
"""

from __future__ import annotations

import dataclasses

from repro.sim.cache import Hierarchy
from repro.sim.config import DesignVariant, MachineConfig
from repro.sim.controller import PCMController, WritePolicy
from repro.sim.engine import CompletionTracker
from repro.sim.pcm_timing import PCMTimingModel
from repro.workloads.synthetic import Trace

__all__ = ["CoreResult", "run_trace"]


@dataclasses.dataclass(frozen=True)
class CoreResult:
    """Outcome of executing one trace on one design variant."""

    exec_time_ns: float
    pcm_reads: int
    pcm_writes: int
    pcm_refreshes: int
    read_stall_ns: float
    write_window_stall_ns: float
    l1_miss_rate: float
    l2_miss_rate: float
    row_hits: int = 0
    refreshes_skipped: int = 0

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.pcm_reads if self.pcm_reads else 0.0


def run_trace(
    trace: Trace,
    machine: MachineConfig,
    variant: DesignVariant,
    write_policy: WritePolicy | None = None,
) -> CoreResult:
    """Execute a trace to completion; returns timing and traffic stats.

    ``write_policy`` optionally routes requests through the read-priority
    controller (write pausing/cancellation [25]); the default preserves
    the base arrival-order bank model.
    """
    caches = Hierarchy(
        machine.l1_size_bytes,
        machine.l1_assoc,
        machine.l2_size_bytes,
        machine.l2_assoc,
        machine.line_bytes,
    )
    if write_policy is not None:
        ctrl = PCMController(machine, variant, policy=write_policy)
        pcm = ctrl.timing

        def sched_read(addr, t):
            return ctrl.read(addr, t)

        def sched_write(addr, t):
            return ctrl.write(addr, t)

    else:
        pcm = PCMTimingModel(machine, variant)
        sched_read = pcm.schedule_read
        sched_write = pcm.schedule_write
    reads_in_flight = CompletionTracker(machine.max_outstanding_reads)
    write_buffer = CompletionTracker(machine.write_buffer_entries)

    t = 0.0
    gaps = trace.gap_ns
    writes = trace.is_write
    addrs = trace.line_addr
    deps = trace.dependent
    l1_hit_ns = machine.l1_hit_ns
    l2_hit_ns = machine.l2_hit_ns

    for i in range(len(trace)):
        t += float(gaps[i])
        traffic = caches.access(int(addrs[i]), bool(writes[i]))
        t += l1_hit_ns  # every access probes L1

        for _ in range(traffic.writebacks):
            # Stall only when the write buffer is full.
            t = write_buffer.wait_for_slot(t)
            _, done = sched_write(int(addrs[i]), t)
            write_buffer.add(done)

        if traffic.fill_read:
            t += l2_hit_ns  # L2 lookup before going to memory
            if deps[i]:
                # Dependent miss: the core waits for the data itself.
                done = sched_read(int(addrs[i]), t)
                t = done
            else:
                t = reads_in_flight.wait_for_slot(t)
                done = sched_read(int(addrs[i]), t)
                reads_in_flight.add(done)
        elif not traffic.fill_read and not bool(writes[i]):
            # hit somewhere: L2 hits pay the L2 latency
            pass

    # Retire everything outstanding.
    if len(reads_in_flight):
        t = max(t, reads_in_flight.earliest())
        while len(reads_in_flight):
            t = max(t, reads_in_flight.earliest())
            reads_in_flight.retire_until(t)
    while len(write_buffer):
        t = max(t, write_buffer.earliest())
        write_buffer.retire_until(t)
    pcm.drain(t)

    l1 = caches.l1
    l2 = caches.l2
    return CoreResult(
        exec_time_ns=t,
        pcm_reads=pcm.counts.reads,
        pcm_writes=pcm.counts.writes,
        pcm_refreshes=pcm.counts.refreshes,
        read_stall_ns=pcm.counts.read_stall_ns,
        write_window_stall_ns=pcm.counts.write_window_stall_ns,
        l1_miss_rate=l1.misses / max(l1.hits + l1.misses, 1),
        l2_miss_rate=l2.misses / max(l2.hits + l2.misses, 1),
        row_hits=pcm.counts.row_hits,
        refreshes_skipped=pcm.counts.refreshes_skipped,
    )
