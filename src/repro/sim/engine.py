"""Tiny discrete-event helpers for the system simulation.

The simulator is trace-driven with non-decreasing request times, so a
full event calendar is unnecessary; what the core model needs is a
min-heap of outstanding completion times (reads in flight, write-buffer
entries) with O(log n) retire-earliest.
"""

from __future__ import annotations

import heapq

__all__ = ["CompletionTracker"]


class CompletionTracker:
    """Min-heap of in-flight operation completion times."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._heap: list[float] = []

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def full(self) -> bool:
        return len(self._heap) >= self.capacity

    def add(self, completion_ns: float) -> None:
        heapq.heappush(self._heap, completion_ns)

    def retire_until(self, t: float) -> int:
        """Drop all operations completed by time ``t``; returns count."""
        n = 0
        while self._heap and self._heap[0] <= t:
            heapq.heappop(self._heap)
            n += 1
        return n

    def earliest(self) -> float:
        """Completion time of the oldest in-flight operation."""
        if not self._heap:
            raise IndexError("no operations in flight")
        return self._heap[0]

    def wait_for_slot(self, t: float) -> float:
        """Earliest time a new operation can enter (stall if full)."""
        self.retire_until(t)
        if not self.full:
            return t
        t_free = self.earliest()
        self.retire_until(t_free)
        return max(t, t_free)
