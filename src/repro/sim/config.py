"""Simulation parameters (Table 5) and the four evaluated designs.

The paper evaluates 4LC-REF, 4LC-REF-OPT, 4LC-NO-REF and 3LC on a
cycle-based simulator with the Table 5 machine: a 3.2 GHz out-of-order
core, 16kB L1 / 512kB L2, and a 16GB, 8-bank MLC-PCM with 200 ns reads,
1 us writes and 40 MB/s sustained write throughput (modeled as a
four-write window of 6.4 us, like DDRx's four-activation window).
"""

from __future__ import annotations

import dataclasses
from enum import Enum

from repro.analysis.targets import SEVENTEEN_MINUTES_S
from repro.core.datapath import FOUR_LC_TIMING, THREE_LC_TIMING

__all__ = ["RefreshMode", "MachineConfig", "DesignVariant", "PAPER_VARIANTS", "TABLE5"]


class RefreshMode(Enum):
    BLOCKING = "blocking"  # refresh occupies the bank (4LC-REF)
    OPTIMIZED = "optimized"  # ideal scheduling: only write bandwidth (4LC-REF-OPT)
    #: Write-aware scrub (after [2]): a demand write rewrites the block at
    #: nominal resistance, so it cancels one scheduled refresh.
    WRITE_AWARE = "write-aware"
    NONE = "none"  # no refresh at all (4LC-NO-REF, 3LC)


@dataclasses.dataclass(frozen=True)
class MachineConfig:
    """Table 5 machine parameters (times in nanoseconds unless noted)."""

    core_freq_hz: float = 3.2e9
    # Cache hierarchy (data side; the trace generators emit data accesses).
    l1_size_bytes: int = 16 * 1024
    l1_assoc: int = 4
    l2_size_bytes: int = 512 * 1024
    l2_assoc: int = 8
    line_bytes: int = 64
    l1_hit_ns: float = 0.31  # ~1 cycle
    l2_hit_ns: float = 3.75  # ~12 cycles
    # PCM device.
    device_bytes: int = 16 * 2**30
    n_banks: int = 8
    pcm_read_ns: float = 200.0
    pcm_write_ns: float = 1000.0
    write_window_ns: float = 6400.0
    writes_per_window: int = 4
    # Core memory-level parallelism and write buffering.
    max_outstanding_reads: int = 8
    write_buffer_entries: int = 16
    # Row buffer (Section 6.7: PCM devices keep 512-bit+ row buffers).
    # 0 disables; a row-buffer hit replaces the 200 ns array read.
    row_buffer_blocks: int = 0
    row_hit_ns: float = 20.0
    # Energy per 64B array operation (nJ); PCM idle power is ~0 (Section 1).
    read_energy_nj: float = 2.0
    write_energy_nj: float = 24.0  # MLC iterative write-and-verify
    # A refresh is a read + a write of one block.
    ecc_decode_energy_nj: float = 0.2

    @property
    def n_blocks(self) -> int:
        return self.device_bytes // self.line_bytes

    def refresh_rate_per_s(self, interval_s: float) -> float:
        """Device-wide block-refresh rate sustaining the interval."""
        return self.n_blocks / interval_s


@dataclasses.dataclass(frozen=True)
class DesignVariant:
    """One bar group of Figure 16."""

    name: str
    refresh_mode: RefreshMode
    refresh_interval_s: float | None
    read_adder_ns: float  # ECC/datapath latency on top of the array read
    #: WRITE_AWARE only: fraction of the device's blocks the demand write
    #: stream rewrites within each refresh interval (those need no
    #: refresh).  Steady-state: ~ workload footprint / device size for
    #: any workload that wraps its footprint within the interval.
    refresh_coverage: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.refresh_coverage < 1.0:
            raise ValueError("refresh_coverage must be in [0, 1)")

    @property
    def refreshes(self) -> bool:
        return self.refresh_mode is not RefreshMode.NONE


def paper_variants() -> dict[str, DesignVariant]:
    """The four designs of Figure 16, with Table 5 latency adders."""
    adder_4lc = FOUR_LC_TIMING.adder_ns  # ~36.25 ns (BCH-10)
    adder_3lc = THREE_LC_TIMING.adder_ns  # ~5 ns
    return {
        "4LC-REF": DesignVariant(
            "4LC-REF", RefreshMode.BLOCKING, SEVENTEEN_MINUTES_S, adder_4lc
        ),
        "4LC-REF-OPT": DesignVariant(
            "4LC-REF-OPT", RefreshMode.OPTIMIZED, SEVENTEEN_MINUTES_S, adder_4lc
        ),
        "4LC-NO-REF": DesignVariant(
            "4LC-NO-REF", RefreshMode.NONE, None, adder_4lc
        ),
        "3LC": DesignVariant("3LC", RefreshMode.NONE, None, adder_3lc),
    }


PAPER_VARIANTS = paper_variants()

#: Table 5 rendered as label -> value strings (printed by the Fig 16 bench).
TABLE5: dict[str, str] = {
    "Processor": "an out-of-order core running at 3.2GHz",
    "L1 cache": "16kB instruction and data caches, 64B line size",
    "L2 cache": "512kB unified cache, 64B line size",
    "MLC-PCM": (
        "16GB, 8 banks, 64B blocks; read: 200 ns; write: 1 us; "
        "write throughput: 40MB/s"
    ),
}
