"""Refresh scheduling policies (Section 7).

A device refreshing ``n_blocks`` every ``interval`` sustains one block
refresh per ``interval / n_blocks`` — the steady-state *refresh stream*.
The three policies of Figure 16:

- ``BLOCKING`` (4LC-REF): each refresh occupies its bank for a full
  write and a slot of the four-write window;
- ``OPTIMIZED`` (4LC-REF-OPT): an ideal scheduler hides all bank
  conflicts, but refresh still consumes write bandwidth;
- ``NONE`` (4LC-NO-REF, 3LC): no refresh.
"""

from __future__ import annotations

import dataclasses

__all__ = ["RefreshStream"]


@dataclasses.dataclass
class RefreshStream:
    """Due-time bookkeeping of the steady-state refresh stream."""

    gap_ns: float
    next_due_ns: float = 0.0
    issued: int = 0
    skipped: int = 0

    def __post_init__(self) -> None:
        if self.gap_ns <= 0:
            raise ValueError("refresh gap must be positive")
        if self.next_due_ns == 0.0:
            self.next_due_ns = self.gap_ns

    def due(self, t_ns: float) -> bool:
        return self.next_due_ns <= t_ns

    def pop(self) -> float:
        """Consume the next due refresh; returns its due time."""
        due = self.next_due_ns
        self.next_due_ns += self.gap_ns
        self.issued += 1
        return due

    def skip_one(self) -> None:
        """Cancel one upcoming refresh (write-aware scrub, after [2]):

        a demand write just restored some block's nominal resistance, so
        one block's worth of the refresh obligation disappears for this
        interval."""
        self.next_due_ns += self.gap_ns
        self.skipped += 1

    @classmethod
    def for_device(
        cls, n_blocks: int, interval_s: float
    ) -> "RefreshStream":
        return cls(gap_ns=interval_s * 1e9 / n_blocks)
