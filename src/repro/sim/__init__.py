"""Cycle-based memory-system simulation: caches, PCM timing, refresh policies, energy (Figure 16)."""
