"""Set-associative write-back caches (Table 5's L1/L2).

Straightforward LRU, write-allocate, write-back caches operating on line
addresses.  The hierarchy helper chains L1 -> L2 and reports what reaches
memory: demand fills (reads) and dirty evictions (writes), which is all
the PCM controller sees.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict

__all__ = ["Cache", "AccessResult", "Hierarchy"]


@dataclasses.dataclass
class AccessResult:
    """Outcome of a cache access at one level."""

    hit: bool
    writeback_line: int | None = None  # dirty victim's line address


class Cache:
    """One level: ``sets`` x ``assoc`` lines with true-LRU replacement."""

    def __init__(self, size_bytes: int, assoc: int, line_bytes: int):
        if size_bytes % (assoc * line_bytes):
            raise ValueError("size must be a multiple of assoc * line size")
        self.n_sets = size_bytes // (assoc * line_bytes)
        self.assoc = assoc
        self.line_bytes = line_bytes
        # per-set OrderedDict: tag -> dirty flag; order = LRU (front oldest)
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(self.n_sets)
        ]
        self.hits = 0
        self.misses = 0

    def _locate(self, line_addr: int) -> tuple[OrderedDict[int, bool], int]:
        return self._sets[line_addr % self.n_sets], line_addr // self.n_sets

    def access(self, line_addr: int, is_write: bool) -> AccessResult:
        """Access one line; allocates on miss, returning any dirty victim."""
        s, tag = self._locate(line_addr)
        if tag in s:
            self.hits += 1
            s.move_to_end(tag)
            if is_write:
                s[tag] = True
            return AccessResult(hit=True)
        self.misses += 1
        victim_line = None
        if len(s) >= self.assoc:
            vtag, vdirty = s.popitem(last=False)
            if vdirty:
                victim_line = vtag * self.n_sets + (line_addr % self.n_sets)
        s[tag] = is_write
        return AccessResult(hit=False, writeback_line=victim_line)

    def fill_clean(self, line_addr: int) -> int | None:
        """Install a line without dirtying it; returns dirty victim if any."""
        return self.access(line_addr, is_write=False).writeback_line


@dataclasses.dataclass
class MemoryTraffic:
    """What one core access pushed out to PCM."""

    fill_read: bool = False  # demand line fill from PCM
    writebacks: int = 0  # dirty lines evicted to PCM


class Hierarchy:
    """L1 + unified L2; returns the PCM traffic of each access."""

    def __init__(
        self,
        l1_size: int,
        l1_assoc: int,
        l2_size: int,
        l2_assoc: int,
        line_bytes: int,
    ):
        self.l1 = Cache(l1_size, l1_assoc, line_bytes)
        self.l2 = Cache(l2_size, l2_assoc, line_bytes)
        self.line_bytes = line_bytes

    def access(self, line_addr: int, is_write: bool) -> MemoryTraffic:
        out = MemoryTraffic()
        r1 = self.l1.access(line_addr, is_write)
        if r1.writeback_line is not None:
            # L1 victim lands in L2 (write-back, inclusive-ish handling).
            r2 = self.l2.access(r1.writeback_line, is_write=True)
            if not r2.hit:
                out.fill_read = False  # victim fill does not read PCM data we model
            if r2.writeback_line is not None:
                out.writebacks += 1
        if r1.hit:
            return out
        r2 = self.l2.access(line_addr, is_write=False)
        if r2.writeback_line is not None:
            out.writebacks += 1
        if not r2.hit:
            out.fill_read = True
        return out
