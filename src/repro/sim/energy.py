"""Energy and power accounting (Figure 16's right-hand metrics).

PCM idle power is essentially zero (Section 1), so the memory-subsystem
energy is the sum of per-operation energies:

- demand read:  array read + ECC decode;
- demand write: iterative MLC write-and-verify (dominant);
- refresh:      a read (with ECC correction) plus a write.

Power is energy over execution time — the paper's Figure 16 notes that
3LC's *power* rises slightly with its speedup while total energy drops.
"""

from __future__ import annotations

import dataclasses

from repro.sim.config import MachineConfig
from repro.sim.pcm_timing import OpCounts

__all__ = ["EnergyBreakdown", "account_energy"]


@dataclasses.dataclass(frozen=True)
class EnergyBreakdown:
    """Per-class energy in nanojoules (RD / WR / REF of Figure 16)."""

    read_nj: float
    write_nj: float
    refresh_nj: float

    @property
    def total_nj(self) -> float:
        return self.read_nj + self.write_nj + self.refresh_nj

    def power_w(self, exec_time_ns: float) -> float:
        if exec_time_ns <= 0:
            raise ValueError("execution time must be positive")
        return self.total_nj / exec_time_ns  # nJ/ns == W


def account_energy(counts: OpCounts, machine: MachineConfig) -> EnergyBreakdown:
    """Energy of a finished simulation run."""
    read = counts.reads * (machine.read_energy_nj + machine.ecc_decode_energy_nj)
    write = counts.writes * machine.write_energy_nj
    refresh = counts.refreshes * (
        machine.read_energy_nj
        + machine.ecc_decode_energy_nj
        + machine.write_energy_nj
    )
    return EnergyBreakdown(read_nj=read, write_nj=write, refresh_nj=refresh)
