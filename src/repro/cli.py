"""Command-line interface: quick access to the library's main analyses.

Examples::

    python -m repro designs
    python -m repro cer --design 3LCo --years 1 10 100
    python -m repro cer --design 3LCo --mc-samples 10000000 --jobs 0
    python -m repro retention --design 3LCo --ecc 1 --mc-verify 1000000
    python -m repro sweep --figure fig8 --samples 1000000 --jobs 0
    python -m repro cache info
    python -m repro availability --interval-min 17
    python -m repro capacity
    python -m repro simulate --workload STREAM --accesses 30000

The Monte Carlo commands (``cer --mc-samples``, ``retention
--mc-verify``, ``sweep``) accept ``--jobs N`` (0 = all cores),
``--cache-dir`` and ``--no-cache``; results are cached persistently by
default, so repeating a sweep is free.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis.availability import RefreshModel
from repro.analysis.capacity import TABLE3_CAPACITIES
from repro.analysis.retention import retention_time_s
from repro.analysis.targets import SECONDS_PER_YEAR
from repro.cells.params import T0_SECONDS
from repro.core.designs import all_designs, design_by_name
from repro.montecarlo.analytic import analytic_design_cer

__all__ = ["main"]

#: Cell counts of the full block designs, for the retention command.
_BLOCK_CELLS = {"4LCn": 306, "4LCs": 306, "4LCo": 306, "3LCn": 354, "3LCo": 354}


def _add_mc_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--jobs", type=int, default=1,
        help="Monte Carlo worker processes (0 = all cores)",
    )
    p.add_argument(
        "--cache-dir", default=None,
        help="MC result cache directory (default: $REPRO_MC_CACHE_DIR or ~/.cache/repro-mc)",
    )
    p.add_argument(
        "--no-cache", action="store_true", help="disable the persistent MC result cache"
    )


def _cache_from_args(args: argparse.Namespace):
    if args.no_cache:
        return None
    from repro.montecarlo.results_cache import ResultsCache

    return ResultsCache(cache_dir=args.cache_dir)


def _cmd_designs(_args: argparse.Namespace) -> int:
    print(f"{'name':>6} {'levels':>7} {'nominal log10 R':>28} {'thresholds':>24}")
    for name, d in all_designs().items():
        mus = " ".join(f"{s.mu_lr:.3f}" for s in d.states)
        taus = " ".join(f"{t:.3f}" for t in d.thresholds)
        print(f"{name:>6} {d.n_levels:>7} {mus:>28} {taus:>24}")
    return 0


def _cmd_cer(args: argparse.Namespace) -> int:
    design = design_by_name(args.design)
    times = [y * SECONDS_PER_YEAR for y in args.years]
    if args.mc_samples:
        from repro.montecarlo.cer import design_cer

        res = design_cer(
            design, times, args.mc_samples, seed=args.seed,
            jobs=args.jobs, cache=_cache_from_args(args),
        )
        order = np.argsort(times)
        for y, c in zip(np.asarray(args.years)[order], res.cer):
            print(f"{args.design} MC CER after {y:g} years: {c:.3E}")
        print(f"(Monte Carlo, {res.n_samples:,} cells, floor {res.floor:.1E})")
    else:
        cer = analytic_design_cer(design, times)
        for y, c in zip(args.years, cer):
            print(f"{args.design} CER after {y:g} years: {c:.3E}")
    return 0


def _cmd_retention(args: argparse.Namespace) -> int:
    design = design_by_name(args.design)
    n_cells = args.cells or _BLOCK_CELLS[args.design]
    r = retention_time_s(design, n_cells, args.ecc)
    if r.retention_years >= 1:
        horizon = f"{r.retention_years:.1f} years"
    elif r.retention_s >= 86400:
        horizon = f"{r.retention_s / 86400:.1f} days"
    else:
        horizon = f"{r.retention_minutes:.1f} minutes"
    print(
        f"{args.design} + BCH-{args.ecc} ({n_cells} cells): refresh every "
        f"{horizon} (CER {r.cer_at_retention:.2E}, BLER {r.bler_at_retention:.2E} "
        f"vs target {r.target_bler:.2E})"
    )
    nonvolatile = r.retention_years >= 10.0
    print("nonvolatile (>10 years):", "yes" if nonvolatile else "no")
    if args.mc_verify:
        if r.retention_s < T0_SECONDS:
            print("MC verify skipped: retention below the drift reference time t0")
        else:
            from repro.montecarlo.cer import design_cer

            mc = design_cer(
                design, [r.retention_s], args.mc_verify, seed=args.seed,
                jobs=args.jobs, cache=_cache_from_args(args),
            )
            print(
                f"MC check at retention: CER {mc.cer[0]:.2E} "
                f"({mc.n_samples:,} cells, floor {mc.floor:.1E}) "
                f"vs analytic {r.cer_at_retention:.2E}"
            )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.montecarlo.sweep import (
        PAPER_TIME_LABELS,
        fig3_state_sweep,
        fig8_design_sweep,
    )

    cache = _cache_from_args(args)
    if args.figure == "fig3":
        sweep = fig3_state_sweep(
            n_samples=args.samples, seed=args.seed, jobs=args.jobs, cache=cache
        )
    else:
        sweep = fig8_design_sweep(
            n_samples=args.samples, seed=args.seed, jobs=args.jobs, cache=cache
        )
    names = list(sweep.series)
    print("  ".join(["time".rjust(9)] + [n.rjust(9) for n in names]))
    for i, label in enumerate(PAPER_TIME_LABELS):
        row = [f"{sweep.series[n][i]:.2E}".rjust(9) for n in names]
        print("  ".join([label.rjust(9)] + row))
    print(f"({sweep.n_samples:,} cells/curve, MC floor {sweep.floor:.1E})")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.montecarlo.results_cache import ResultsCache

    cache = ResultsCache(cache_dir=args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"cleared {removed} cached result(s) from {cache.cache_dir}")
    else:
        entries = cache.entries()
        print(f"cache dir: {cache.cache_dir}")
        print(f"entries:   {len(entries)}")
        print(f"size:      {cache.nbytes():,} bytes")
    return 0


def _cmd_availability(args: argparse.Namespace) -> int:
    model = RefreshModel(device_bytes=args.device_gb * 2**30)
    iv = args.interval_min * 60.0
    print(f"device refresh pass: {model.device_refresh_pass_s:.0f} s")
    print(f"device availability: {model.device_availability(iv):.3f}")
    print(f"bank availability:   {model.bank_availability(iv):.3f}")
    print(
        f"write bandwidth left: {1 - model.refresh_write_fraction(iv):.2f} "
        f"of {model.write_throughput_bytes_per_s / 1e6:.0f} MB/s"
    )
    return 0


def _cmd_capacity(_args: argparse.Namespace) -> int:
    for name, c in TABLE3_CAPACITIES.items():
        print(
            f"{name:>12}: {c.data_cells} data + {c.overhead_cells} overhead "
            f"= {c.total_cells} cells -> {c.bits_per_cell:.3f} bits/cell"
        )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.sim.runner import run_fig16

    rows = run_fig16(workloads=[args.workload], n_accesses=args.accesses)
    r = rows[0]
    print(f"workload {r.workload} (normalized to 4LC-REF):")
    for variant in r.exec_time:
        print(
            f"  {variant:>12}: time {r.exec_time[variant]:.3f}  "
            f"energy {r.energy[variant]:.3f}  power {r.power[variant]:.3f}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="MLC-PCM drift/nonvolatility analyses (SC'13 reproduction)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("designs", help="list the canonical cell designs").set_defaults(
        func=_cmd_designs
    )

    c = sub.add_parser("cer", help="drift cell error rate of a design")
    c.add_argument("--design", default="3LCo", choices=sorted(_BLOCK_CELLS))
    c.add_argument("--years", type=float, nargs="+", default=[1.0, 10.0])
    c.add_argument(
        "--mc-samples", type=int, default=0,
        help="use the Monte Carlo engine with this many cells (0 = analytic)",
    )
    c.add_argument("--seed", type=int, default=0, help="MC seed")
    _add_mc_flags(c)
    c.set_defaults(func=_cmd_cer)

    r = sub.add_parser("retention", help="refresh period meeting the target")
    r.add_argument("--design", default="3LCo", choices=sorted(_BLOCK_CELLS))
    r.add_argument("--ecc", type=int, default=1, help="BCH correction strength t")
    r.add_argument("--cells", type=int, default=None, help="block size in cells")
    r.add_argument(
        "--mc-verify", type=int, default=0,
        help="cross-check the retention-point CER with this many MC cells",
    )
    r.add_argument("--seed", type=int, default=0, help="MC seed")
    _add_mc_flags(r)
    r.set_defaults(func=_cmd_retention)

    w = sub.add_parser("sweep", help="Monte Carlo time sweeps (Figures 3 and 8)")
    w.add_argument("--figure", default="fig8", choices=["fig3", "fig8"])
    w.add_argument("--samples", type=int, default=1_000_000, help="MC cells per curve")
    w.add_argument("--seed", type=int, default=0, help="MC seed")
    _add_mc_flags(w)
    w.set_defaults(func=_cmd_sweep)

    k = sub.add_parser("cache", help="inspect or clear the MC result cache")
    k.add_argument("action", choices=["info", "clear"])
    k.add_argument("--cache-dir", default=None, help="cache directory to operate on")
    k.set_defaults(func=_cmd_cache)

    a = sub.add_parser("availability", help="refresh availability model")
    a.add_argument("--device-gb", type=int, default=16)
    a.add_argument("--interval-min", type=float, default=17.0)
    a.set_defaults(func=_cmd_availability)

    sub.add_parser("capacity", help="Table-3 storage densities").set_defaults(
        func=_cmd_capacity
    )

    s = sub.add_parser("simulate", help="run the Figure-16 simulator")
    s.add_argument("--workload", default="STREAM")
    s.add_argument("--accesses", type=int, default=30_000)
    s.set_defaults(func=_cmd_simulate)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
