"""Command-line interface: quick access to the library's main analyses.

Examples::

    python -m repro designs
    python -m repro cer --design 3LCo --years 1 10 100
    python -m repro cer --design 3LCo --mc-samples 10000000 --jobs 0
    python -m repro retention --design 3LCo --ecc 1 --mc-verify 1000000
    python -m repro sweep --figure fig8 --samples 1000000 --jobs 0
    python -m repro bler --cer 1e-3 3e-3 1e-2
    python -m repro bler --cer 1e-3 3e-3 1e-2 --empirical 1000000 --jobs 0
    python -m repro cache info
    python -m repro cache prune --max-bytes 512M
    python -m repro campaign run --spec fig3_fig8 --jobs 0
    python -m repro campaign status --run-dir campaign-runs/fig3_fig8
    python -m repro campaign resume --run-dir campaign-runs/fig3_fig8
    python -m repro campaign report --run-dir campaign-runs/fig3_fig8
    python -m repro availability --interval-min 17
    python -m repro capacity
    python -m repro simulate --workload STREAM --accesses 30000
    python -m repro serve --port 8341 --batch-max 64 --batch-deadline-ms 2

The Monte Carlo commands (``cer --mc-samples``, ``retention
--mc-verify``, ``sweep``, ``bler --empirical``, ``campaign``) accept
``--jobs N`` (0 = all
cores), ``--cache-dir`` and ``--no-cache``; results are cached
persistently by default, so repeating a sweep is free.  The cache grows
without bound unless trimmed — ``cache prune --max-bytes N`` evicts
least-recently-used entries down to the budget.

Failures exit nonzero: 2 for bad arguments (argparse), 1 for runtime
errors and for campaigns that finish with failed/blocked jobs.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis.availability import RefreshModel
from repro.analysis.capacity import TABLE3_CAPACITIES
from repro.analysis.retention import retention_time_s
from repro.analysis.targets import SECONDS_PER_YEAR
from repro.cells.params import T0_SECONDS
from repro.core.designs import all_designs, design_by_name
from repro.montecarlo.analytic import analytic_design_cer

__all__ = ["main"]

#: Cell counts of the full block designs, for the retention command.
_BLOCK_CELLS = {"4LCn": 306, "4LCs": 306, "4LCo": 306, "3LCn": 354, "3LCo": 354}


def _jobs_count(text: str) -> int:
    """``--jobs`` value: a non-negative integer (0 = all cores).

    Rejected here, at parse time, so a bad value yields a one-line usage
    error instead of a ProcessPoolExecutor traceback deep in a sweep.
    """
    try:
        jobs = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"--jobs expects an integer, got {text!r}")
    if jobs < 0:
        raise argparse.ArgumentTypeError(
            f"--jobs must be >= 0 (0 = all cores), got {jobs}"
        )
    return jobs


def _size_bytes(text: str) -> int:
    """Byte count with an optional K/M/G/T suffix (e.g. ``512M``)."""
    s = text.strip().upper().removesuffix("B")
    scale = 1
    if s and s[-1] in "KMGT":
        scale = 1024 ** ("KMGT".index(s[-1]) + 1)
        s = s[:-1]
    try:
        n = int(float(s) * scale)
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad size {text!r} (try 1000000 or 512M)")
    if n < 0:
        raise argparse.ArgumentTypeError("size must be >= 0")
    return n


def _add_mc_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--jobs", type=_jobs_count, default=1,
        help="Monte Carlo worker processes (0 = all cores)",
    )
    p.add_argument(
        "--cache-dir", default=None,
        help="MC result cache directory (default: $REPRO_MC_CACHE_DIR or ~/.cache/repro-mc)",
    )
    p.add_argument(
        "--no-cache", action="store_true", help="disable the persistent MC result cache"
    )


def _cache_from_args(args: argparse.Namespace):
    if args.no_cache:
        return None
    from repro.montecarlo.results_cache import ResultsCache

    return ResultsCache(cache_dir=args.cache_dir)


def _cmd_designs(_args: argparse.Namespace) -> int:
    print(f"{'name':>6} {'levels':>7} {'nominal log10 R':>28} {'thresholds':>24}")
    for name, d in all_designs().items():
        mus = " ".join(f"{s.mu_lr:.3f}" for s in d.states)
        taus = " ".join(f"{t:.3f}" for t in d.thresholds)
        print(f"{name:>6} {d.n_levels:>7} {mus:>28} {taus:>24}")
    return 0


def _cmd_cer(args: argparse.Namespace) -> int:
    design = design_by_name(args.design)
    times = [y * SECONDS_PER_YEAR for y in args.years]
    if args.mc_samples:
        from repro.montecarlo.cer import design_cer

        res = design_cer(
            design, times, args.mc_samples, seed=args.seed,
            jobs=args.jobs, cache=_cache_from_args(args),
        )
        order = np.argsort(times)
        for y, c in zip(np.asarray(args.years)[order], res.cer):
            print(f"{args.design} MC CER after {y:g} years: {c:.3E}")
        print(f"(Monte Carlo, {res.n_samples:,} cells, floor {res.floor:.1E})")
    else:
        cer = analytic_design_cer(design, times)
        for y, c in zip(args.years, cer):
            print(f"{args.design} CER after {y:g} years: {c:.3E}")
    return 0


def _cmd_retention(args: argparse.Namespace) -> int:
    design = design_by_name(args.design)
    n_cells = args.cells or _BLOCK_CELLS[args.design]
    r = retention_time_s(design, n_cells, args.ecc)
    if r.retention_years >= 1:
        horizon = f"{r.retention_years:.1f} years"
    elif r.retention_s >= 86400:
        horizon = f"{r.retention_s / 86400:.1f} days"
    else:
        horizon = f"{r.retention_minutes:.1f} minutes"
    print(
        f"{args.design} + BCH-{args.ecc} ({n_cells} cells): refresh every "
        f"{horizon} (CER {r.cer_at_retention:.2E}, BLER {r.bler_at_retention:.2E} "
        f"vs target {r.target_bler:.2E})"
    )
    nonvolatile = r.retention_years >= 10.0
    print("nonvolatile (>10 years):", "yes" if nonvolatile else "no")
    if args.mc_verify:
        if r.retention_s < T0_SECONDS:
            print("MC verify skipped: retention below the drift reference time t0")
        else:
            from repro.montecarlo.cer import design_cer

            mc = design_cer(
                design, [r.retention_s], args.mc_verify, seed=args.seed,
                jobs=args.jobs, cache=_cache_from_args(args),
            )
            print(
                f"MC check at retention: CER {mc.cer[0]:.2E} "
                f"({mc.n_samples:,} cells, floor {mc.floor:.1E}) "
                f"vs analytic {r.cer_at_retention:.2E}"
            )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.montecarlo.sweep import (
        PAPER_TIME_LABELS,
        fig3_state_sweep,
        fig8_design_sweep,
    )

    cache = _cache_from_args(args)
    if args.figure == "fig3":
        sweep = fig3_state_sweep(
            n_samples=args.samples, seed=args.seed, jobs=args.jobs, cache=cache
        )
    else:
        sweep = fig8_design_sweep(
            n_samples=args.samples, seed=args.seed, jobs=args.jobs, cache=cache
        )
    names = list(sweep.series)
    print("  ".join(["time".rjust(9)] + [n.rjust(9) for n in names]))
    for i, label in enumerate(PAPER_TIME_LABELS):
        row = [f"{sweep.series[n][i]:.2E}".rjust(9) for n in names]
        print("  ".join([label.rjust(9)] + row))
    print(f"({sweep.n_samples:,} cells/curve, MC floor {sweep.floor:.1E})")
    return 0


def _cmd_bler(args: argparse.Namespace) -> int:
    from repro.analysis.bler import block_error_rate

    if args.empirical:
        from repro.coding.blockcodec import ThreeOnTwoBlockCodec
        from repro.montecarlo.bler_mc import bler_mc

        codec = ThreeOnTwoBlockCodec(
            data_bits=args.data_bits, n_spare_pairs=args.spare_pairs
        )
        results = bler_mc(
            args.cer,
            args.empirical,
            seed=args.seed,
            data_bits=args.data_bits,
            n_spare_pairs=args.spare_pairs,
            jobs=args.jobs,
            cache=_cache_from_args(args),
        )
        print(
            f"{'CER':>10} {'empirical':>11} {'95% CI':>26} "
            f"{'analytic':>11} {'in CI':>5}"
        )
        all_in = True
        for r in results:
            lo, hi = r.confidence()
            analytic = block_error_rate(r.cer, codec.n_mlc_cells, 1)
            in_ci = lo <= analytic <= hi
            all_in = all_in and in_ci
            print(
                f"{r.cer:>10.3E} {r.bler:>11.4E} "
                f"[{lo:.4E}, {hi:.4E}] {analytic:>11.4E} "
                f"{'yes' if in_ci else 'NO':>5}"
            )
        print(
            f"({args.empirical:,} blocks/point through the batched 3-ON-2 "
            f"datapath, {codec.n_mlc_cells} MLC cells/block; "
            f"{sum(r.n_silent for r in results):,} silent escapes total)"
        )
        return 0 if all_in else 1
    for c in args.cer:
        bler = block_error_rate(c, args.cells, args.ecc)
        print(
            f"BLER at CER {c:.3E} ({args.cells} cells, BCH-{args.ecc}): "
            f"{bler:.4E}"
        )
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    import json

    from repro.fleet import config_from_params, fleet_mc

    config = config_from_params({"preset": args.preset}, args.devices, args.epochs)
    summary = fleet_mc(
        config, seed=args.seed, jobs=args.jobs, cache=_cache_from_args(args)
    )
    d = summary.to_dict()
    t = d["totals"]
    life = d["lifetime_epochs"]
    print(
        f"fleet: {d['n_devices']:,} devices x {d['n_epochs']} epochs "
        f"({args.preset} preset, seed {args.seed})"
    )
    print(
        f"  demand writes {t['writes']:,}  refreshes {t['refreshes']:,}  "
        f"maintenance reads {t['reads']:,}"
    )
    print(
        f"  wearout marks {t['wearout_marks']:,}  retries {t['write_retries']:,}  "
        f"deaths {d['n_dead']:,} ({d['n_dead'] / d['n_devices']:.1%})"
    )
    print(
        f"  uncorrectable {t['uncorrectable']:,}  silent {t['silent']:,} "
        f"(rate {d['silent_error_rate']:.2E}/read)"
    )
    life_s = "  ".join(
        f"{k}={'>' + str(d['n_epochs'] - 1) if v is None else v}"
        for k, v in life.items()
    )
    print(f"  lifetime epochs: {life_s}")
    print("  hazard/epoch:    " + "  ".join(f"{h:.3f}" for h in d["hazard"]))
    print(
        f"  energy: writes {d['write_energy_nj'] / 1e3:.1f} uJ, "
        f"maintenance {d['refresh_energy_nj'] / 1e3:.1f} uJ"
    )
    if args.out:
        with open(args.out, "w") as f:
            json.dump(d, f, indent=2, sort_keys=True)
        print(f"summary written to {args.out}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.montecarlo.results_cache import ResultsCache

    cache = ResultsCache(cache_dir=args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"cleared {removed} cached result(s) from {cache.cache_dir}")
    elif args.action == "prune":
        if args.max_bytes is None:
            raise SystemExit("cache prune requires --max-bytes")
        removed, freed = cache.prune(args.max_bytes)
        print(
            f"pruned {removed} least-recently-used entr"
            f"{'y' if removed == 1 else 'ies'} ({freed:,} bytes) from "
            f"{cache.cache_dir}; {cache.nbytes():,} bytes remain"
        )
    else:
        entries = cache.entries()
        print(f"cache dir: {cache.cache_dir}")
        print(f"entries:   {len(entries)}")
        print(f"size:      {cache.nbytes():,} bytes")
    return 0


def _load_campaign_spec(spec_arg: str, samples: int | None, seed: int | None):
    """Resolve ``--spec``: a built-in name or a TOML file path."""
    import dataclasses
    import os

    from repro.campaign.spec import (
        BUILTIN_CAMPAIGNS,
        builtin_campaign,
        campaign_from_toml,
    )

    if spec_arg in BUILTIN_CAMPAIGNS:
        return builtin_campaign(spec_arg, n_samples=samples, seed=seed)
    if os.path.exists(spec_arg):
        spec = campaign_from_toml(spec_arg)
        overrides = {}
        if samples is not None:
            overrides["defaults"] = {**spec.defaults, "n_samples": int(samples)}
        if seed is not None:
            overrides["seed"] = int(seed)
        return dataclasses.replace(spec, **overrides) if overrides else spec
    raise SystemExit(
        f"--spec {spec_arg!r} is neither a built-in campaign "
        f"({', '.join(sorted(BUILTIN_CAMPAIGNS))}) nor a TOML file"
    )


def _campaign_scheduler(args: argparse.Namespace, spec):
    from repro.campaign.scheduler import CampaignScheduler
    from repro.campaign.store import RunStore

    run_dir = args.run_dir or f"campaign-runs/{spec.name}"
    store = RunStore(run_dir)
    progress = sys.stderr.isatty() and not getattr(args, "no_progress", False)
    return CampaignScheduler(
        spec,
        store,
        mc_jobs=args.jobs,
        cache=_cache_from_args(args),
        max_parallel=args.max_parallel,
        progress=progress,
    )


def _chaos_plan_from_args(args: argparse.Namespace):
    """The ``--chaos-seed`` fault plan, or ``None`` when chaos is off."""
    seed = getattr(args, "chaos_seed", None)
    if seed is None:
        return None
    from repro.chaos import FaultPlan

    return FaultPlan.random(int(seed), n_faults=args.chaos_faults)


def _finish_campaign(sched, resume: bool, chaos_plan=None) -> int:
    from repro.campaign.report import render_summary

    if chaos_plan is None:
        result = sched.run(resume=resume)
    else:
        from repro.chaos import InjectedCrash, activate

        print(chaos_plan.describe(), file=sys.stderr)
        try:
            with activate(chaos_plan):
                result = sched.run(resume=resume)
        except InjectedCrash as crash:
            print(
                f"injected crash: {crash} [chaos seed {chaos_plan.seed}; "
                f"replay with FaultPlan.random({chaos_plan.seed})]; "
                f"resume with 'repro campaign resume --run-dir "
                f"{sched.store.run_dir}'",
                file=sys.stderr,
            )
            return 1
    print(render_summary(sched.store), end="")
    if not result.ok:
        msg = "campaign finished with failed/blocked jobs"
        if chaos_plan is not None:
            msg += f" [chaos seed {chaos_plan.seed}]"
        print(msg, file=sys.stderr)
    return result.exit_code


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    spec = _load_campaign_spec(args.spec, args.samples, args.seed)
    sched = _campaign_scheduler(args, spec)
    return _finish_campaign(sched, resume=False, chaos_plan=_chaos_plan_from_args(args))


def _cmd_campaign_resume(args: argparse.Namespace) -> int:
    from repro.campaign.spec import campaign_from_dict
    from repro.campaign.store import RunStore

    store = RunStore(args.run_dir)
    if not store.exists():
        raise SystemExit(f"no campaign manifest under {args.run_dir}")
    spec = campaign_from_dict(store.read_manifest()["spec"])
    sched = _campaign_scheduler(args, spec)
    return _finish_campaign(sched, resume=True, chaos_plan=_chaos_plan_from_args(args))


def _cmd_chaos_points(_args: argparse.Namespace) -> int:
    from repro.chaos import FAULT_POINTS

    for name in sorted(FAULT_POINTS):
        info = FAULT_POINTS[name]
        print(name)
        print(f"  {info.description}")
        print(f"  ctx: {', '.join(info.ctx_keys)}")
        print(f"  recoverable: {', '.join(info.recoverable_actions)}")
        targeted = tuple(
            a for a in info.actions if a not in info.recoverable_actions
        )
        if targeted:
            print(f"  targeted-only: {', '.join(targeted)}")
    return 0


def _cmd_chaos_plan(args: argparse.Namespace) -> int:
    from repro.chaos import builtin_plan
    from repro.chaos.plan import FaultPlan

    if args.builtin is not None:
        print(builtin_plan(args.builtin).describe())
    else:
        print(FaultPlan.random(args.seed, n_faults=args.faults).describe())
    return 0


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    from repro.campaign.report import render_summary
    from repro.campaign.store import RunStore

    store = RunStore(args.run_dir)
    if not store.exists():
        raise SystemExit(f"no campaign manifest under {args.run_dir}")
    print(render_summary(store), end="")
    status = store.read_status()
    if status and status.get("finished") and not status.get("ok"):
        return 1
    return 0


def _cmd_campaign_report(args: argparse.Namespace) -> int:
    from repro.campaign.report import write_report
    from repro.campaign.store import RunStore

    store = RunStore(args.run_dir)
    if not store.exists():
        raise SystemExit(f"no campaign manifest under {args.run_dir}")
    written = write_report(store, args.out)
    for path in written:
        print(f"wrote {path}")
    return 0


def _cmd_availability(args: argparse.Namespace) -> int:
    model = RefreshModel(device_bytes=args.device_gb * 2**30)
    iv = args.interval_min * 60.0
    print(f"device refresh pass: {model.device_refresh_pass_s:.0f} s")
    print(f"device availability: {model.device_availability(iv):.3f}")
    print(f"bank availability:   {model.bank_availability(iv):.3f}")
    print(
        f"write bandwidth left: {1 - model.refresh_write_fraction(iv):.2f} "
        f"of {model.write_throughput_bytes_per_s / 1e6:.0f} MB/s"
    )
    return 0


def _cmd_capacity(_args: argparse.Namespace) -> int:
    for name, c in TABLE3_CAPACITIES.items():
        print(
            f"{name:>12}: {c.data_cells} data + {c.overhead_cells} overhead "
            f"= {c.total_cells} cells -> {c.bits_per_cell:.3f} bits/cell"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.app import ServiceApp, ServiceConfig

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        seed=args.seed,
        batch_max=args.batch_max,
        batch_deadline_ms=args.batch_deadline_ms,
        queue_depth=args.queue_depth,
        mc_jobs=args.jobs,
        job_workers=args.job_workers,
        work_dir=args.work_dir,
    )
    if args.asgi:
        from repro.service.asgi import serve_asgi

        try:
            serve_asgi(ServiceApp(config), args.host, args.port)
        except RuntimeError as exc:
            raise SystemExit(str(exc))
        return 0

    import asyncio
    import signal

    async def _serve() -> int:
        app = ServiceApp(config)
        host, port = await app.start()
        print(f"repro service listening on http://{host}:{port}", file=sys.stderr)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, stop.set)
        await stop.wait()
        # Clean-shutdown contract: stop intake, drain in-flight batches
        # and jobs, then exit 0 — a drained server never loses a request.
        print("repro service draining", file=sys.stderr)
        await app.stop()
        print("repro service stopped", file=sys.stderr)
        return 0

    return asyncio.run(_serve())


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.sim.runner import run_fig16

    rows = run_fig16(workloads=[args.workload], n_accesses=args.accesses)
    r = rows[0]
    print(f"workload {r.workload} (normalized to 4LC-REF):")
    for variant in r.exec_time:
        print(
            f"  {variant:>12}: time {r.exec_time[variant]:.3f}  "
            f"energy {r.energy[variant]:.3f}  power {r.power[variant]:.3f}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="MLC-PCM drift/nonvolatility analyses (SC'13 reproduction)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("designs", help="list the canonical cell designs").set_defaults(
        func=_cmd_designs
    )

    c = sub.add_parser("cer", help="drift cell error rate of a design")
    c.add_argument("--design", default="3LCo", choices=sorted(_BLOCK_CELLS))
    c.add_argument("--years", type=float, nargs="+", default=[1.0, 10.0])
    c.add_argument(
        "--mc-samples", type=int, default=0,
        help="use the Monte Carlo engine with this many cells (0 = analytic)",
    )
    c.add_argument("--seed", type=int, default=0, help="MC seed")
    _add_mc_flags(c)
    c.set_defaults(func=_cmd_cer)

    r = sub.add_parser("retention", help="refresh period meeting the target")
    r.add_argument("--design", default="3LCo", choices=sorted(_BLOCK_CELLS))
    r.add_argument("--ecc", type=int, default=1, help="BCH correction strength t")
    r.add_argument("--cells", type=int, default=None, help="block size in cells")
    r.add_argument(
        "--mc-verify", type=int, default=0,
        help="cross-check the retention-point CER with this many MC cells",
    )
    r.add_argument("--seed", type=int, default=0, help="MC seed")
    _add_mc_flags(r)
    r.set_defaults(func=_cmd_retention)

    w = sub.add_parser("sweep", help="Monte Carlo time sweeps (Figures 3 and 8)")
    w.add_argument("--figure", default="fig8", choices=["fig3", "fig8"])
    w.add_argument("--samples", type=int, default=1_000_000, help="MC cells per curve")
    w.add_argument("--seed", type=int, default=0, help="MC seed")
    _add_mc_flags(w)
    w.set_defaults(func=_cmd_sweep)

    b = sub.add_parser(
        "bler",
        help="block error rate: analytic Figure-5 curve or empirical MC",
        description=(
            "Block error rate vs per-cell error rate.  By default, the "
            "exact analytic curve of Figure 5; with --empirical N, "
            "measured by pushing N random blocks per CER point through "
            "the batched 3-ON-2 encode/inject/decode datapath and "
            "cross-checked against the analytic value (exit 1 if any "
            "point's 95% CI excludes it)."
        ),
    )
    b.add_argument(
        "--cer", type=float, nargs="+", default=[1e-3, 3e-3, 1e-2],
        help="per-cell error rate operating points",
    )
    b.add_argument(
        "--cells", type=int, default=354,
        help="block size in cells (analytic mode)",
    )
    b.add_argument(
        "--ecc", type=int, default=1,
        help="BCH correction strength t (analytic mode)",
    )
    b.add_argument(
        "--empirical", type=int, default=0, metavar="N",
        help="measure BLER empirically with N blocks per CER point",
    )
    b.add_argument(
        "--data-bits", type=int, default=512,
        help="data payload per block (empirical mode)",
    )
    b.add_argument(
        "--spare-pairs", type=int, default=6,
        help="mark-and-spare budget (empirical mode)",
    )
    b.add_argument("--seed", type=int, default=0, help="MC seed")
    _add_mc_flags(b)
    b.set_defaults(func=_cmd_bler)

    fl = sub.add_parser(
        "fleet",
        help="population simulation: lifetimes, hazard, energy (docs/FLEET.md)",
        description=(
            "Simulate a heterogeneous population of PCM devices through "
            "epochs of demand writes and scrub-refresh maintenance; "
            "reports lifetime percentiles, the spare-exhaustion hazard "
            "curve, silent-error rates, and the energy split."
        ),
    )
    fl.add_argument(
        "--devices", type=int, default=1000, help="population size (default 1000)"
    )
    fl.add_argument(
        "--epochs", type=int, default=4, help="epochs to simulate (default 4)"
    )
    fl.add_argument(
        "--preset", choices=("default", "stress"), default="stress",
        help="wear model: 'stress' compresses endurance so spare "
        "exhaustion shows within a few epochs (default)",
    )
    fl.add_argument("--seed", type=int, default=0, help="fleet seed (default 0)")
    fl.add_argument(
        "--out", default=None, metavar="FILE", help="also write the summary as JSON"
    )
    _add_mc_flags(fl)
    fl.set_defaults(func=_cmd_fleet)

    k = sub.add_parser(
        "cache",
        help="inspect, clear, or prune the MC result cache",
        description=(
            "Manage the persistent Monte Carlo result cache.  The store "
            "grows without bound as sweeps accumulate; 'prune --max-bytes N' "
            "evicts least-recently-used entries (by mtime) until it fits."
        ),
    )
    k.add_argument("action", choices=["info", "clear", "prune"])
    k.add_argument("--cache-dir", default=None, help="cache directory to operate on")
    k.add_argument(
        "--max-bytes", type=_size_bytes, default=None,
        help="prune: evict LRU entries until the store is at most this "
        "large (accepts suffixes: 512M, 2G, ...)",
    )
    k.set_defaults(func=_cmd_cache)

    g = sub.add_parser(
        "campaign",
        help="declarative experiment campaigns over the MC engine",
        description=(
            "Run a declarative campaign spec (a DAG of sweep/mapping/"
            "retention jobs) with retries, failure isolation, and "
            "crash-safe resume from the run directory."
        ),
    )
    gsub = g.add_subparsers(dest="campaign_cmd", required=True)

    def _add_campaign_exec_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--max-parallel", type=int, default=None,
            help="concurrent campaign jobs (default: the spec's setting)",
        )
        p.add_argument(
            "--no-progress", action="store_true",
            help="suppress the terminal progress line",
        )
        p.add_argument(
            "--chaos-seed", type=int, default=None, metavar="N",
            help="inject a FaultPlan.random(N) fault schedule (testing aid; "
            "the seed is echoed on failure for exact replay)",
        )
        p.add_argument(
            "--chaos-faults", type=int, default=3, metavar="K",
            help="faults drawn into the --chaos-seed plan (default 3)",
        )
        _add_mc_flags(p)

    cr = gsub.add_parser("run", help="start (or continue) a campaign")
    cr.add_argument(
        "--spec", required=True,
        help="built-in campaign name (bler, fig3, fig8, fig3_fig8, "
        "fleet, retention, smoke) or a TOML spec file",
    )
    cr.add_argument(
        "--run-dir", default=None,
        help="run directory (default: campaign-runs/<name>)",
    )
    cr.add_argument(
        "--samples", type=int, default=None,
        help="override the spec's default MC sample count",
    )
    cr.add_argument("--seed", type=int, default=None, help="override the spec seed")
    _add_campaign_exec_flags(cr)
    cr.set_defaults(func=_cmd_campaign_run)

    cm = gsub.add_parser(
        "resume", help="finish a killed/failed campaign; completed jobs are kept"
    )
    cm.add_argument("--run-dir", required=True)
    _add_campaign_exec_flags(cm)
    cm.set_defaults(func=_cmd_campaign_resume)

    cs = gsub.add_parser("status", help="job states and counters of a run")
    cs.add_argument("--run-dir", required=True)
    cs.set_defaults(func=_cmd_campaign_status)

    cp = gsub.add_parser("report", help="render a run into results/ tables")
    cp.add_argument("--run-dir", required=True)
    cp.add_argument("--out", default="results", help="output directory")
    cp.set_defaults(func=_cmd_campaign_report)

    ch = sub.add_parser(
        "chaos",
        help="deterministic fault-injection harness (docs/TESTING.md)",
        description=(
            "Inspect the chaos harness: the fault-point catalog and "
            "reproducible fault plans (random by seed, or built-in)."
        ),
    )
    chsub = ch.add_subparsers(dest="chaos_cmd", required=True)
    cpt = chsub.add_parser("points", help="catalog of instrumented fault points")
    cpt.set_defaults(func=_cmd_chaos_points)
    cpl = chsub.add_parser("plan", help="show a fault plan (random or built-in)")
    which = cpl.add_mutually_exclusive_group(required=True)
    which.add_argument(
        "--seed", type=int, help="derive the random recoverable plan for this seed"
    )
    which.add_argument(
        "--builtin", metavar="NAME",
        help="a named plan from the differential suite (e.g. cache-corruption)",
    )
    cpl.add_argument(
        "--faults", type=int, default=3, help="faults in a random plan (default 3)"
    )
    cpl.set_defaults(func=_cmd_chaos_plan)

    a = sub.add_parser("availability", help="refresh availability model")
    a.add_argument("--device-gb", type=int, default=16)
    a.add_argument("--interval-min", type=float, default=17.0)
    a.set_defaults(func=_cmd_availability)

    sub.add_parser("capacity", help="Table-3 storage densities").set_defaults(
        func=_cmd_capacity
    )

    s = sub.add_parser("simulate", help="run the Figure-16 simulator")
    s.add_argument("--workload", default="STREAM")
    s.add_argument("--accesses", type=int, default=30_000)
    s.set_defaults(func=_cmd_simulate)

    v = sub.add_parser(
        "serve",
        help="run the device-as-a-service HTTP front end",
        description=(
            "Serve simulated PCM devices over HTTP: create devices, "
            "write/read blocks against persistent virtual-time state, "
            "advance device clocks, and submit/poll BLER/campaign jobs. "
            "Block I/O is dynamically batched into the batch kernels "
            "(docs/SERVICE.md).  SIGINT/SIGTERM drain and exit 0."
        ),
    )
    v.add_argument("--host", default="127.0.0.1")
    v.add_argument(
        "--port", type=int, default=8341, help="listen port (0 = ephemeral)"
    )
    v.add_argument(
        "--seed", type=int, default=0,
        help="base seed for devices created without an explicit seed",
    )
    v.add_argument(
        "--batch-max", type=int, default=64,
        help="flush a batch as soon as it holds this many block ops",
    )
    v.add_argument(
        "--batch-deadline-ms", type=float, default=2.0,
        help="flush a partial batch when its oldest op is this old",
    )
    v.add_argument(
        "--queue-depth", type=int, default=1024,
        help="pending-op limit; excess requests get 503 E_QUEUE_FULL",
    )
    v.add_argument(
        "--jobs", type=_jobs_count, default=1,
        help="MC worker processes inside one bler/campaign job (0 = all cores)",
    )
    v.add_argument(
        "--job-workers", type=int, default=2, help="concurrently running jobs"
    )
    v.add_argument(
        "--work-dir", default=None,
        help="campaign job run directories (default: a temp dir)",
    )
    v.add_argument(
        "--asgi", action="store_true",
        help="serve under uvicorn instead of the stdlib server "
        "(requires: pip install 'repro[service]')",
    )
    v.set_defaults(func=_cmd_serve)
    return p


def main(argv: list[str] | None = None) -> int:
    """Parse and dispatch; failed subcommands exit nonzero.

    Runtime failures (bad design names, missing run dirs, spec errors,
    I/O problems) print one ``error:`` line and return 1 instead of a
    traceback; argparse itself exits 2 for malformed arguments.
    """
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except SystemExit:
        raise
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
