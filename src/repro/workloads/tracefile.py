"""Trace persistence: save/load access traces for reproducible runs.

Synthetic traces regenerate from seeds, but pinned trace files make
cross-machine comparisons and regression baselines exact.  The format is
a plain ``.npz`` with the four column arrays plus the name, so traces
are portable and diffable with standard NumPy tooling.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.workloads.synthetic import Trace

__all__ = ["save_trace", "load_trace"]

_FORMAT_VERSION = 1


def save_trace(trace: Trace, path: str | pathlib.Path) -> None:
    """Write a trace to ``path`` (``.npz`` appended if missing)."""
    p = pathlib.Path(path)
    np.savez_compressed(
        p,
        version=np.int64(_FORMAT_VERSION),
        name=np.bytes_(trace.name.encode()),
        gap_ns=trace.gap_ns,
        is_write=trace.is_write,
        line_addr=trace.line_addr,
        dependent=trace.dependent,
    )


def load_trace(path: str | pathlib.Path) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    p = pathlib.Path(path)
    if not p.exists() and p.with_suffix(p.suffix + ".npz").exists():
        p = p.with_suffix(p.suffix + ".npz")
    with np.load(p) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"trace format version {version} unsupported "
                f"(expected {_FORMAT_VERSION})"
            )
        return Trace(
            name=bytes(data["name"]).decode(),
            gap_ns=np.asarray(data["gap_ns"], dtype=float),
            is_write=np.asarray(data["is_write"], dtype=bool),
            line_addr=np.asarray(data["line_addr"], dtype=np.int64),
            dependent=np.asarray(data["dependent"], dtype=bool),
        )
