"""SPEC CPU 2006 / STREAM-like workload profiles (Figure 16's x-axis).

The paper drives McSim with SPEC traces; those are proprietary, so each
benchmark is substituted by a synthetic trace calibrated to its published
memory character (see DESIGN.md).  What Figure 16 actually stresses is
the *memory intensity and read/write mix* of each workload — which these
profiles expose directly:

===========  =====================================================
STREAM       streaming triad, 1/3 writes, tiny compute gaps
bzip2        moderate mixed traffic, part cache-resident
mcf          pointer-chasing dependent reads over a large footprint
namd         compute-bound: cache-resident working set, rare misses
libquantum   streaming reads, very few writes
lbm          streaming stencil, write-heavy (~1/2 writes)
===========  =====================================================
"""

from __future__ import annotations

from typing import Callable

from repro.workloads.synthetic import (
    Trace,
    interleave,
    pointer_chase_trace,
    random_trace,
    stream_trace,
)

__all__ = ["PAPER_WORKLOADS", "make_workload"]

#: 1M lines = 64 MB footprint: far beyond the 512kB L2.
_BIG = 1_000_000
#: 4k lines = 256 kB: fits in L2, mostly misses L1.
_L2_RESIDENT = 4_096
#: 192 lines = 12 kB: fits in the 16 kB L1.
_L1_RESIDENT = 192


def _stream(n: int, seed: int) -> Trace:
    return stream_trace(
        n, footprint_lines=_BIG, write_fraction=1 / 3, gap_ns=10.0,
        name="STREAM", seed=seed,
    )


def _bzip2(n: int, seed: int) -> Trace:
    hot = random_trace(
        int(n * 0.7), _L2_RESIDENT, write_fraction=0.3, gap_ns=6.0,
        name="bzip2-hot", seed=seed,
    )
    cold = stream_trace(
        n - len(hot), footprint_lines=_BIG // 4, write_fraction=0.4,
        gap_ns=25.0, name="bzip2-cold", seed=seed + 1,
    )
    return interleave("bzip2", [(hot, 0.7), (cold, 0.3)], seed=seed)


def _mcf(n: int, seed: int) -> Trace:
    return pointer_chase_trace(
        n, footprint_lines=2 * _BIG, gap_ns=12.0, write_fraction=0.15,
        name="mcf", seed=seed,
    )


def _namd(n: int, seed: int) -> Trace:
    return random_trace(
        n, _L1_RESIDENT, write_fraction=0.25, gap_ns=4.0, name="namd",
        seed=seed,
    )


def _libquantum(n: int, seed: int) -> Trace:
    return stream_trace(
        n, footprint_lines=_BIG, write_fraction=0.1, gap_ns=8.0,
        name="libquantum", seed=seed, n_arrays=10,
    )


def _lbm(n: int, seed: int) -> Trace:
    return stream_trace(
        n, footprint_lines=_BIG, write_fraction=0.5, gap_ns=14.0,
        name="lbm", seed=seed, n_arrays=2,
    )


PAPER_WORKLOADS: dict[str, Callable[[int, int], Trace]] = {
    "STREAM": _stream,
    "bzip2": _bzip2,
    "mcf": _mcf,
    "namd": _namd,
    "libquantum": _libquantum,
    "lbm": _lbm,
}


def make_workload(name: str, n_accesses: int = 200_000, seed: int = 0) -> Trace:
    """Build one of the Figure-16 workloads."""
    if name not in PAPER_WORKLOADS:
        raise KeyError(
            f"unknown workload {name!r}; choose from {sorted(PAPER_WORKLOADS)}"
        )
    return PAPER_WORKLOADS[name](n_accesses, seed)
