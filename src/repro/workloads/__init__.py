"""Access-trace generators (SPEC-like profiles, synthetic patterns) and trace persistence."""
