"""Synthetic memory-trace building blocks.

Traces are line-granular: each record is one data-cache access (a 64B
line touch) annotated with the CPU work preceding it, whether it writes,
and whether it *depends* on the previous memory value (pointer chasing —
the core cannot overlap dependent misses).

The SPEC-like profiles of :mod:`repro.workloads.spec_like` compose these
generators; they are the paper-trace substitution documented in
DESIGN.md.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.montecarlo.rng import make_rng

__all__ = [
    "TRACE_KINDS",
    "Trace",
    "draw_ops",
    "draw_ops_fast",
    "stream_trace",
    "random_trace",
    "pointer_chase_trace",
    "zipfian_trace",
    "interleave",
]

#: Named profiles :func:`draw_ops` accepts (the fleet's traffic mix).
TRACE_KINDS = ("stream", "random", "zipfian")


@dataclasses.dataclass(frozen=True)
class Trace:
    """A line-granular memory access trace."""

    name: str
    gap_ns: np.ndarray  # CPU work before each access (ns)
    is_write: np.ndarray
    line_addr: np.ndarray
    dependent: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.gap_ns)
        for f in ("is_write", "line_addr", "dependent"):
            if len(getattr(self, f)) != n:
                raise ValueError(f"{f} length mismatch")

    def __len__(self) -> int:
        return len(self.gap_ns)

    @property
    def write_fraction(self) -> float:
        return float(np.mean(self.is_write))


def stream_trace(
    n: int,
    footprint_lines: int,
    write_fraction: float = 1 / 3,
    gap_ns: float = 10.0,
    name: str = "stream",
    seed: int = 0,
    n_arrays: int = 3,
) -> Trace:
    """Sequential sweeps over ``n_arrays`` disjoint arrays (STREAM-like).

    With the default three arrays and ``write_fraction=1/3`` this is the
    triad pattern: read a[i], read b[i], write c[i].
    """
    if footprint_lines < n_arrays:
        raise ValueError("footprint too small")
    per_array = footprint_lines // n_arrays
    idx = np.arange(n)
    stream_pos = (idx // n_arrays) % per_array
    which = idx % n_arrays
    addr = which * per_array + stream_pos
    n_writing = max(int(round(n_arrays * write_fraction)), 0)
    is_write = which >= (n_arrays - n_writing) if n_writing else np.zeros(n, bool)
    return Trace(
        name=name,
        gap_ns=np.full(n, float(gap_ns)),
        is_write=np.asarray(is_write, dtype=bool),
        line_addr=addr.astype(np.int64),
        dependent=np.zeros(n, dtype=bool),
    )


def random_trace(
    n: int,
    footprint_lines: int,
    write_fraction: float = 0.2,
    gap_ns: float = 15.0,
    dependent: bool = False,
    name: str = "random",
    seed: int = 0,
) -> Trace:
    """Uniform random accesses over a footprint."""
    rng = make_rng(seed)
    addr = rng.integers(0, footprint_lines, n)
    is_write = rng.random(n) < write_fraction
    dep = np.zeros(n, dtype=bool)
    if dependent:
        dep = ~is_write  # every read chases the previous one
    return Trace(
        name=name,
        gap_ns=np.full(n, float(gap_ns)),
        is_write=is_write,
        line_addr=addr.astype(np.int64),
        dependent=dep,
    )


def pointer_chase_trace(
    n: int,
    footprint_lines: int,
    gap_ns: float = 15.0,
    write_fraction: float = 0.0,
    name: str = "chase",
    seed: int = 0,
) -> Trace:
    """A dependent random walk (mcf-like): each read feeds the next."""
    return random_trace(
        n,
        footprint_lines,
        write_fraction=write_fraction,
        gap_ns=gap_ns,
        dependent=True,
        name=name,
        seed=seed,
    )


def zipfian_trace(
    n: int,
    footprint_lines: int,
    skew: float = 0.99,
    write_fraction: float = 0.1,
    gap_ns: float = 10.0,
    name: str = "zipf",
    seed: int = 0,
) -> Trace:
    """Zipf-distributed accesses (key-value-store / OLTP locality).

    ``skew`` is the Zipf exponent (YCSB's default 0.99): a handful of hot
    lines absorb most traffic, which stresses wear leveling and rewards
    caches very differently from uniform-random access.
    """
    if footprint_lines < 2:
        raise ValueError("footprint too small")
    if skew <= 0:
        raise ValueError("skew must be positive")
    rng = make_rng(seed)
    ranks = np.arange(1, footprint_lines + 1, dtype=float)
    probs = ranks**-skew
    probs /= probs.sum()
    # Shuffle rank->address so hot lines are scattered across banks.
    perm = rng.permutation(footprint_lines)
    addr = perm[rng.choice(footprint_lines, size=n, p=probs)]
    is_write = rng.random(n) < write_fraction
    return Trace(
        name=name,
        gap_ns=np.full(n, float(gap_ns)),
        is_write=is_write,
        line_addr=addr.astype(np.int64),
        dependent=np.zeros(n, dtype=bool),
    )


def draw_ops(
    kind: str,
    n_ops: int,
    footprint_lines: int,
    seed: int | np.random.Generator = 0,
    write_fraction: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """``(is_write, line_addr)`` for ``n_ops`` accesses of a named profile.

    The thin seam between the trace generators and epoch-driven
    consumers (:mod:`repro.fleet`): pass a carried
    :class:`numpy.random.Generator` as ``seed`` and successive calls
    draw successive, reproducible slices of the same traffic stream.
    ``write_fraction=None`` keeps each profile's own default mix.

    Degenerate footprints stay well-defined so heterogeneous device
    populations can mix profiles freely: ``stream`` shrinks its array
    count to the footprint, and ``zipfian`` over a single line falls
    back to the uniform profile (Zipf needs at least two ranks).
    """
    if kind not in TRACE_KINDS:
        raise ValueError(f"unknown trace kind {kind!r} (known: {TRACE_KINDS})")
    if n_ops < 0:
        raise ValueError("n_ops must be >= 0")
    wf = {} if write_fraction is None else {"write_fraction": float(write_fraction)}
    if kind == "stream":
        trace = stream_trace(
            n_ops,
            footprint_lines,
            seed=seed,
            n_arrays=min(3, footprint_lines),
            **wf,
        )
    elif kind == "zipfian" and footprint_lines >= 2:
        trace = zipfian_trace(n_ops, footprint_lines, seed=seed, **wf)
    else:
        trace = random_trace(n_ops, footprint_lines, seed=seed, **wf)
    return trace.is_write.copy(), trace.line_addr.copy()


#: Deterministic stream-pattern results, keyed by every input that shapes
#: them.  The arrays are frozen (writeable=False) because they are shared.
_STREAM_CACHE: dict[
    tuple[int, int, float | None], tuple[np.ndarray, np.ndarray]
] = {}

#: Zipf ``(probs, cdf)`` tables per ``(footprint, skew)``.
_ZIPF_CACHE: dict[tuple[int, float], tuple[np.ndarray, np.ndarray]] = {}

#: One-time self-check result for the ``Generator.choice`` replication.
_FAST_CHOICE_OK: bool | None = None


def _zipf_tables(footprint_lines: int, skew: float) -> tuple[np.ndarray, np.ndarray]:
    key = (footprint_lines, skew)
    hit = _ZIPF_CACHE.get(key)
    if hit is None:
        ranks = np.arange(1, footprint_lines + 1, dtype=float)
        probs = ranks**-skew
        probs /= probs.sum()
        cdf = probs.cumsum()
        cdf /= cdf[-1]
        hit = (probs, cdf)
        _ZIPF_CACHE[key] = hit
    return hit


def _fast_choice_ok() -> bool:
    """Does searchsorted-over-cdf replicate ``Generator.choice`` here?

    ``choice(k, size=n, p=probs)`` is documented behavior but its draw
    strategy is an implementation detail; verify once per process that
    ``cdf.searchsorted(rng.random(n), side="right")`` reproduces both
    the values and the generator end state, and fall back to ``choice``
    itself otherwise.
    """
    global _FAST_CHOICE_OK
    if _FAST_CHOICE_OK is None:
        probs, cdf = _zipf_tables(7, 0.99)
        a = np.random.default_rng(12345)  # repro-lint: disable=RPL001 -- throwaway self-check generator, never enters simulation state
        b = np.random.default_rng(12345)  # repro-lint: disable=RPL001 -- throwaway self-check generator, never enters simulation state
        want = a.choice(7, size=32, p=probs)
        got = cdf.searchsorted(b.random(32), side="right")
        _FAST_CHOICE_OK = bool(
            np.array_equal(want, got)
            and a.bit_generator.state == b.bit_generator.state
        )
    return _FAST_CHOICE_OK


def draw_ops_fast(
    kind: str,
    n_ops: int,
    footprint_lines: int,
    rng: np.random.Generator,
    write_fraction: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Allocation-light twin of :func:`draw_ops` for batch engines.

    Consumes *exactly* the same generator draws in the same order as
    :func:`draw_ops` (the fleet differential suite pins this), but skips
    the :class:`Trace` construction, caches the RNG-free stream pattern
    and the Zipf tables, and replicates ``Generator.choice`` with a
    ``searchsorted`` over the cached CDF (guarded by a one-time
    self-check; see :func:`_fast_choice_ok`).  Returned arrays may be
    cache-shared — treat them as read-only.
    """
    if kind not in TRACE_KINDS:
        raise ValueError(f"unknown trace kind {kind!r} (known: {TRACE_KINDS})")
    if n_ops < 0:
        raise ValueError("n_ops must be >= 0")
    if kind == "stream":
        key = (n_ops, footprint_lines, write_fraction)
        hit = _STREAM_CACHE.get(key)
        if hit is None:
            is_write, addr = draw_ops(
                kind, n_ops, footprint_lines, write_fraction=write_fraction
            )
            is_write.setflags(write=False)
            addr.setflags(write=False)
            hit = (is_write, addr)
            _STREAM_CACHE[key] = hit
        return hit
    if kind == "zipfian" and footprint_lines >= 2:
        wf = 0.1 if write_fraction is None else float(write_fraction)
        probs, cdf = _zipf_tables(footprint_lines, 0.99)
        perm = rng.permutation(footprint_lines)
        if _fast_choice_ok():
            picks = cdf.searchsorted(rng.random(n_ops), side="right")
        else:
            picks = rng.choice(footprint_lines, size=n_ops, p=probs)
        addr = perm[picks]
        is_write = rng.random(n_ops) < wf
        return is_write, addr
    wf = 0.2 if write_fraction is None else float(write_fraction)
    addr = rng.integers(0, footprint_lines, n_ops)
    is_write = rng.random(n_ops) < wf
    return is_write, addr


def interleave(name: str, traces: list[tuple[Trace, float]], seed: int = 0) -> Trace:
    """Mix traces by weight, preserving each component's internal order.

    Address spaces are offset so components do not alias.
    """
    if not traces:
        raise ValueError("need at least one component")
    rng = make_rng(seed)
    weights = np.array([w for _, w in traces], dtype=float)
    weights /= weights.sum()
    total = sum(len(t) for t, _ in traces)
    choice = rng.choice(len(traces), size=total, p=weights)
    cursors = [0] * len(traces)
    offsets = np.cumsum([0] + [int(t.line_addr.max()) + 1 for t, _ in traces[:-1]])

    gaps, writes, addrs, deps = [], [], [], []
    for c in choice:
        t, _ = traces[c]
        i = cursors[c]
        if i >= len(t):
            continue
        cursors[c] = i + 1
        gaps.append(t.gap_ns[i])
        writes.append(t.is_write[i])
        addrs.append(t.line_addr[i] + offsets[c])
        deps.append(t.dependent[i])
    return Trace(
        name=name,
        gap_ns=np.asarray(gaps, dtype=float),
        is_write=np.asarray(writes, dtype=bool),
        line_addr=np.asarray(addrs, dtype=np.int64),
        dependent=np.asarray(deps, dtype=bool),
    )
