"""Deterministic chaos harness: seeded fault injection for the
Monte-Carlo / cache / campaign stack (docs/TESTING.md).

The package has two halves:

- :mod:`repro.chaos.plan` — :class:`FaultPlan` / :class:`FaultSpec`,
  pure-data fault schedules on a dedicated seed stream that never
  perturbs simulation RNG;
- :mod:`repro.chaos.registry` — the fault-point catalog
  (:data:`FAULT_POINTS`), the :func:`activate` context manager, and the
  :func:`fault_point` hook instrumented through every durability
  boundary (results cache, run store, event log, scheduler, executor).

Chaos is off by default and costs one global load per fault point; the
chaos test suite under ``tests/chaos/`` is the intended consumer.
"""

from repro.chaos.plan import (
    BUILTIN_PLANS,
    CHAOS_SPAWN_KEY,
    FaultPlan,
    FaultSpec,
    builtin_plan,
)
from repro.chaos.registry import (
    FAULT_POINTS,
    FaultPointInfo,
    FiredFault,
    InjectedCrash,
    InjectedFault,
    InjectedOSError,
    activate,
    chaos_active,
    fault_point,
)

__all__ = [
    "BUILTIN_PLANS",
    "CHAOS_SPAWN_KEY",
    "FAULT_POINTS",
    "FaultPlan",
    "FaultPointInfo",
    "FaultSpec",
    "FiredFault",
    "InjectedCrash",
    "InjectedFault",
    "InjectedOSError",
    "activate",
    "builtin_plan",
    "chaos_active",
    "fault_point",
]
