"""Fault-point registry: where chaos hooks into the production stack.

A *fault point* is one named call site at a durability boundary —
``fault_point("cache.get", path=..., key=...)`` — that does nothing in
normal operation (one module-global load and a ``None`` check) and,
while a :class:`~repro.chaos.plan.FaultPlan` is activated, consults the
plan: if a scheduled fault's occurrence index matches this call, its
*action* runs — raising an injected exception, corrupting the file the
site is about to read, or simulating a crash mid-write.

The registry is deliberately a module global (not a ``contextvar``):
the campaign scheduler executes jobs on pool threads that must observe
the plan activated by the test thread, and ``contextvar`` values do not
propagate into already-running pool workers.  Monkeypatching
``repro.chaos.registry._ACTIVE`` (or using :func:`activate`) is the
supported way to turn chaos on; production code never does.

Injected exception taxonomy:

- :class:`InjectedFault` (``RuntimeError``) — a transient failure the
  retry machinery is expected to absorb.
- :class:`InjectedOSError` (``OSError``) — an I/O failure from the
  filesystem layer (e.g. ``ENOSPC`` during a cache write).
- :class:`InjectedCrash` (``BaseException``) — simulated process death.
  Deriving from ``BaseException`` is the point: it rips through
  ``except Exception`` retry layers exactly like a real ``SIGKILL``
  would, so recovery must come from persisted state, not from handlers.
"""

from __future__ import annotations

import contextlib
import dataclasses
import pathlib
import threading
from typing import TYPE_CHECKING, Any, Callable, Iterator, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.chaos.plan import FaultPlan, FaultSpec

__all__ = [
    "ACTIONS",
    "FAULT_POINTS",
    "FaultPointInfo",
    "FiredFault",
    "InjectedCrash",
    "InjectedFault",
    "InjectedOSError",
    "activate",
    "chaos_active",
    "fault_point",
]


class InjectedFault(RuntimeError):
    """A transient injected failure; retry/backoff should absorb it."""


class InjectedOSError(OSError):
    """An injected filesystem failure (write error, unreadable blob)."""


class InjectedCrash(BaseException):
    """Simulated process death: passes through ``except Exception``."""


@dataclasses.dataclass(frozen=True)
class FaultPointInfo:
    """Catalog entry: what a fault point guards and how it can fail.

    ``recoverable_actions`` are the actions randomized differential
    plans may draw — every one of them must leave the system able to
    reach a bit-identical final state (via retry, resume, or cache
    regeneration).  ``actions`` may additionally list destructive
    modes only targeted tests use.
    """

    name: str
    description: str
    ctx_keys: tuple[str, ...]
    recoverable_actions: tuple[str, ...]
    actions: tuple[str, ...] = ()

    def all_actions(self) -> tuple[str, ...]:
        return tuple(dict.fromkeys(self.recoverable_actions + self.actions))


#: Every instrumented fault point in the production stack, by name.
FAULT_POINTS: dict[str, FaultPointInfo] = {
    p.name: p
    for p in (
        FaultPointInfo(
            name="cache.get",
            description=(
                "before ResultsCache.get_counts loads an on-disk .npy blob; "
                "file-mutating actions exercise the corruption quarantine"
            ),
            ctx_keys=("path", "key"),
            recoverable_actions=("corrupt_file", "truncate_file", "delete_file"),
        ),
        FaultPointInfo(
            name="cache.put",
            description=(
                "before ResultsCache.put_counts writes a blob; an injected "
                "OSError must degrade to a skipped (best-effort) store"
            ),
            ctx_keys=("path", "key"),
            recoverable_actions=("raise_oserror",),
        ),
        FaultPointInfo(
            name="store.write_manifest",
            description="before RunStore.init persists the campaign manifest",
            ctx_keys=("path",),
            recoverable_actions=("torn_json",),
            actions=("crash",),
        ),
        FaultPointInfo(
            name="store.write_result",
            description=(
                "before RunStore.write_result persists a completed job; "
                "crash here means the job re-executes on resume"
            ),
            ctx_keys=("path", "job"),
            recoverable_actions=("crash", "torn_json"),
        ),
        FaultPointInfo(
            name="store.write_status",
            description="before RunStore.write_status rewrites the snapshot",
            ctx_keys=("path",),
            recoverable_actions=("crash",),
        ),
        FaultPointInfo(
            name="events.append",
            description=(
                "before EventLog.emit appends a line; torn_append writes a "
                "partial line and crashes, leaving the torn tail resume "
                "must tolerate"
            ),
            ctx_keys=("path", "line"),
            recoverable_actions=("torn_append",),
        ),
        FaultPointInfo(
            name="scheduler.job",
            description=(
                "inside the scheduler worker body, before run_job; "
                "raise_transient drives the real retry/backoff path"
            ),
            ctx_keys=("job", "attempt"),
            recoverable_actions=("raise_transient",),
            actions=("crash",),
        ),
        FaultPointInfo(
            name="executor.task",
            description=(
                "inside a Monte Carlo chunk task (in-process execution); "
                "a transient failure aborts the fan-out mid-flight"
            ),
            ctx_keys=("item", "first_block"),
            recoverable_actions=("raise_transient",),
        ),
        FaultPointInfo(
            name="fleet.epoch",
            description=(
                "before a fleet shard task advances one epoch; faults here "
                "abort the shard mid-population, so resume must replay it "
                "from scratch (per-shard cache entries are all-or-nothing)"
            ),
            ctx_keys=("epoch", "first_device"),
            recoverable_actions=("raise_transient",),
            actions=("crash",),
        ),
        FaultPointInfo(
            name="datapath.batch_decode",
            description=(
                "at the entry of a batched Figure-9 block decode; a "
                "transient failure aborts the whole batch before any "
                "outcome arrays exist, so callers must retry the batch"
            ),
            ctx_keys=("n_blocks",),
            recoverable_actions=("raise_transient",),
        ),
    )
}


# ----------------------------------------------------------------------
# Actions
# ----------------------------------------------------------------------

def _ctx_path(ctx: Mapping[str, Any]) -> pathlib.Path:
    return pathlib.Path(ctx["path"])


def _act_raise_transient(spec: "FaultSpec", ctx: Mapping[str, Any],
                         activation: "_Activation") -> None:
    raise InjectedFault(
        f"injected transient fault at {spec.point} (occurrence {spec.occurrence})"
    )


def _act_raise_oserror(spec: "FaultSpec", ctx: Mapping[str, Any],
                       activation: "_Activation") -> None:
    raise InjectedOSError(
        f"injected I/O failure at {spec.point} (occurrence {spec.occurrence})"
    )


def _act_crash(spec: "FaultSpec", ctx: Mapping[str, Any],
               activation: "_Activation") -> None:
    raise InjectedCrash(
        f"injected crash at {spec.point} (occurrence {spec.occurrence})"
    )


def _act_corrupt_file(spec: "FaultSpec", ctx: Mapping[str, Any],
                      activation: "_Activation") -> None:
    """Overwrite a slice of the file with plan-seeded garbage bytes."""
    path = _ctx_path(ctx)
    if not path.is_file():
        return
    size = path.stat().st_size
    if size == 0:
        return
    n = max(1, min(size, int(dict(spec.args).get("n_bytes", 16))))
    offset = int(activation.rng.integers(0, max(size - n, 0) + 1))
    garbage = activation.rng.integers(0, 256, size=n, dtype="uint8").tobytes()
    with open(path, "r+b") as f:
        f.seek(offset)
        f.write(garbage)


def _act_truncate_file(spec: "FaultSpec", ctx: Mapping[str, Any],
                       activation: "_Activation") -> None:
    """Chop the file to a plan-chosen fraction of its size."""
    path = _ctx_path(ctx)
    if not path.is_file():
        return
    size = path.stat().st_size
    keep = int(size * float(dict(spec.args).get("keep_fraction", 0.5)))
    with open(path, "r+b") as f:
        f.truncate(keep)


def _act_delete_file(spec: "FaultSpec", ctx: Mapping[str, Any],
                     activation: "_Activation") -> None:
    _ctx_path(ctx).unlink(missing_ok=True)


def _act_torn_append(spec: "FaultSpec", ctx: Mapping[str, Any],
                     activation: "_Activation") -> None:
    """Append the first half of the pending line (no newline) and crash."""
    path = _ctx_path(ctx)
    line = str(ctx.get("line", '{"event": "torn"}'))
    cut = max(1, len(line) // 2)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a") as f:
        f.write(line[:cut])
        f.flush()
    raise InjectedCrash(f"injected crash mid-append at {spec.point}")


def _act_torn_json(spec: "FaultSpec", ctx: Mapping[str, Any],
                   activation: "_Activation") -> None:
    """Leave a truncated JSON document at the final path and crash."""
    path = _ctx_path(ctx)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text('{"torn": tru')
    raise InjectedCrash(f"injected crash mid-write at {spec.point}")


_ActionFn = Callable[["FaultSpec", Mapping[str, Any], "_Activation"], None]

ACTIONS: dict[str, _ActionFn] = {
    "raise_transient": _act_raise_transient,
    "raise_oserror": _act_raise_oserror,
    "crash": _act_crash,
    "corrupt_file": _act_corrupt_file,
    "truncate_file": _act_truncate_file,
    "delete_file": _act_delete_file,
    "torn_append": _act_torn_append,
    "torn_json": _act_torn_json,
}


# ----------------------------------------------------------------------
# Activation
# ----------------------------------------------------------------------

@dataclasses.dataclass
class FiredFault:
    """One fault that actually fired, for reports and assertions."""

    point: str
    occurrence: int
    action: str
    ctx: dict[str, Any]


class _Activation:
    """Runtime state of one activated plan: counters, rng, fired log."""

    def __init__(self, plan: "FaultPlan"):
        self.plan = plan
        self.rng = plan.make_rng()
        self.lock = threading.Lock()
        # One matching-call counter per FaultSpec (plans may schedule
        # several faults on the same point).
        self.counters = [0] * len(plan.faults)
        self.fired: list[FiredFault] = []

    def visit(self, name: str, ctx: Mapping[str, Any]) -> None:
        due: list["FaultSpec"] = []
        with self.lock:
            for i, spec in enumerate(self.plan.faults):
                if spec.point != name or not spec.matches(ctx):
                    continue
                if self.counters[i] == spec.occurrence:
                    due.append(spec)
                    self.fired.append(
                        FiredFault(
                            point=name,
                            occurrence=spec.occurrence,
                            action=spec.action,
                            ctx={k: ctx[k] for k in ctx if k != "line"},
                        )
                    )
                self.counters[i] += 1
        # Actions run outside the lock: they may touch the filesystem or
        # raise, and fault points can be reached from several threads.
        for spec in due:
            ACTIONS[spec.action](spec, ctx, self)


_ACTIVE: _Activation | None = None
_ACTIVATE_LOCK = threading.Lock()


def fault_point(name: str, **ctx: Any) -> None:
    """Declare one instrumented fault point; a no-op unless chaos is on.

    The off path costs one module-global load and a ``None`` check, so
    production code can call this unconditionally on hot-ish paths.
    May raise an injected exception when an activated plan schedules a
    fault here.
    """
    active = _ACTIVE
    if active is None:
        return
    active.visit(name, ctx)


def chaos_active() -> bool:
    """True while a fault plan is activated."""
    return _ACTIVE is not None


@contextlib.contextmanager
def activate(plan: "FaultPlan") -> Iterator[list[FiredFault]]:
    """Activate ``plan`` for the duration of the block.

    Yields the live list of fired faults (appended to as faults fire).
    Activations do not nest: chaos tests own the whole process while
    they run.
    """
    global _ACTIVE
    unknown = [f.point for f in plan.faults if f.point not in FAULT_POINTS]
    if unknown:
        raise ValueError(f"unknown fault point(s): {sorted(set(unknown))}")
    bad = [f.action for f in plan.faults if f.action not in ACTIONS]
    if bad:
        raise ValueError(f"unknown action(s): {sorted(set(bad))}")
    activation = _Activation(plan)
    with _ACTIVATE_LOCK:
        if _ACTIVE is not None:
            raise RuntimeError("a fault plan is already active")
        _ACTIVE = activation
    try:
        yield activation.fired
    finally:
        with _ACTIVATE_LOCK:
            _ACTIVE = None
