"""Deterministic fault plans: *what* fails, *when*, reproducibly.

A :class:`FaultPlan` is pure data — a tuple of :class:`FaultSpec`
entries scheduling one fault each at a named fault point's Nth matching
call — plus a seed.  The seed feeds a dedicated ``SeedSequence`` stream
(spawn key :data:`CHAOS_SPAWN_KEY`, reusing the engine's
:func:`~repro.montecarlo.rng.block_rng` factory) that supplies garbage
bytes and offsets for file-corrupting actions and drives
:meth:`FaultPlan.random`.  Chaos randomness therefore never touches the
simulation's RNG spawn tree: a faulted run draws exactly the same Monte
Carlo samples as a clean one, which is what makes the differential
chaos tests meaningful.

Replaying a failure is one call: ``FaultPlan.random(seed=<printed
seed>)`` rebuilds the identical plan, and activating it reproduces the
identical fault schedule.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping, Sequence

import numpy as np

from repro.chaos.registry import FAULT_POINTS
from repro.montecarlo.rng import block_rng

__all__ = [
    "BUILTIN_PLANS",
    "CHAOS_SPAWN_KEY",
    "FaultPlan",
    "FaultSpec",
    "builtin_plan",
]

#: Spawn-tree position of the chaos RNG stream.  Simulation streams use
#: small state/block indices; this key is far outside that space, so no
#: chaos draw can ever collide with a simulation draw.
CHAOS_SPAWN_KEY = 0xC7A05


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: ``action`` at ``point``'s Nth matching call.

    ``occurrence`` is 0-based and counts only calls whose context
    matches ``match`` (a sub-dict the call's keyword context must
    contain, e.g. ``match=(("job", "b"),)`` to target one campaign
    job).  ``args`` parameterizes the action (e.g. ``n_bytes`` for
    ``corrupt_file``).  Both are stored as sorted tuples so specs stay
    hashable and plans compare by value.
    """

    point: str
    occurrence: int = 0
    action: str = "raise_transient"
    args: tuple[tuple[str, Any], ...] = ()
    match: tuple[tuple[str, Any], ...] = ()

    @staticmethod
    def make(
        point: str,
        occurrence: int = 0,
        action: str = "raise_transient",
        args: Mapping[str, Any] | None = None,
        match: Mapping[str, Any] | None = None,
    ) -> "FaultSpec":
        """Build a spec from plain dicts (sorted into tuple form)."""
        return FaultSpec(
            point=point,
            occurrence=int(occurrence),
            action=action,
            args=tuple(sorted((args or {}).items())),
            match=tuple(sorted((match or {}).items())),
        )

    def matches(self, ctx: Mapping[str, Any]) -> bool:
        return all(ctx.get(k) == v for k, v in self.match)

    def describe(self) -> str:
        where = f"{self.point}[{self.occurrence}]"
        if self.match:
            sel = ",".join(f"{k}={v!r}" for k, v in self.match)
            where += f"{{{sel}}}"
        return f"{where} -> {self.action}"


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A reproducible fault schedule: specs plus the chaos seed."""

    faults: tuple[FaultSpec, ...]
    seed: int = 0

    def make_rng(self) -> np.random.Generator:
        """The plan's private generator (chaos stream, never simulation's)."""
        return block_rng(self.seed, (CHAOS_SPAWN_KEY,))

    def describe(self) -> str:
        lines = [f"fault plan (seed {self.seed}, {len(self.faults)} fault(s)):"]
        lines += [f"  {spec.describe()}" for spec in self.faults]
        return "\n".join(lines)

    @staticmethod
    def random(
        seed: int,
        n_faults: int = 3,
        points: Sequence[str] | None = None,
        max_occurrence: int = 3,
    ) -> "FaultPlan":
        """Draw a recoverable plan: same seed, same plan, always.

        Faults are drawn uniformly over the catalog's *recoverable*
        actions (each guaranteed to leave a resumable/retryable path to
        a bit-identical final state), with occurrence indices in
        ``[0, max_occurrence]``.  ``points`` restricts the candidate
        fault points.
        """
        if n_faults < 0:
            raise ValueError(f"n_faults must be >= 0, got {n_faults}")
        names = sorted(points if points is not None else FAULT_POINTS)
        unknown = [n for n in names if n not in FAULT_POINTS]
        if unknown:
            raise ValueError(f"unknown fault point(s): {unknown}")
        candidates = [
            (name, action)
            for name in names
            for action in FAULT_POINTS[name].recoverable_actions
        ]
        if not candidates:
            raise ValueError("no recoverable actions among the given points")
        rng = block_rng(seed, (CHAOS_SPAWN_KEY,))
        specs = []
        for _ in range(n_faults):
            name, action = candidates[int(rng.integers(0, len(candidates)))]
            specs.append(
                FaultSpec.make(
                    point=name,
                    occurrence=int(rng.integers(0, max_occurrence + 1)),
                    action=action,
                )
            )
        return FaultPlan(faults=tuple(specs), seed=int(seed))


def _plan(seed: int, *specs: FaultSpec) -> FaultPlan:
    return FaultPlan(faults=tuple(specs), seed=seed)


#: Named plans the differential suite runs — each targets one durability
#: boundary, and each must recover to a bit-identical final state.
BUILTIN_PLANS: dict[str, FaultPlan] = {
    # A cached blob is corrupted before its first read-back: the cache
    # must quarantine it and recompute, never serve garbage.
    "cache-corruption": _plan(
        101,
        FaultSpec.make("cache.get", occurrence=0, action="corrupt_file"),
        FaultSpec.make("cache.get", occurrence=2, action="truncate_file"),
    ),
    # A cache write fails with an I/O error: stores are best-effort, so
    # the run completes (uncached) with identical results.
    "cache-write-eio": _plan(
        102,
        FaultSpec.make("cache.put", occurrence=0, action="raise_oserror"),
        FaultSpec.make("cache.put", occurrence=1, action="raise_oserror"),
    ),
    # The process dies mid-append, leaving a torn events.jsonl tail that
    # resume must tolerate (and repair on its next append).
    "torn-event-tail": _plan(
        103,
        FaultSpec.make("events.append", occurrence=4, action="torn_append"),
    ),
    # A truncated per-job result JSON is left behind: resume must treat
    # the job as incomplete and re-execute it.
    "torn-result": _plan(
        104,
        FaultSpec.make("store.write_result", occurrence=1, action="torn_json"),
    ),
    # The process dies before the first result is persisted at all.
    "crash-before-result": _plan(
        105,
        FaultSpec.make("store.write_result", occurrence=0, action="crash"),
    ),
    # Transient worker failures: the scheduler's retry/backoff absorbs
    # them with no externally visible difference.
    "flaky-workers": _plan(
        106,
        FaultSpec.make("scheduler.job", occurrence=0, action="raise_transient"),
        FaultSpec.make("scheduler.job", occurrence=2, action="raise_transient"),
    ),
    # A Monte Carlo chunk task dies mid-fan-out; the job-level retry
    # re-runs the whole deterministic fan-out.
    "mc-task-crash": _plan(
        107,
        FaultSpec.make("executor.task", occurrence=1, action="raise_transient"),
    ),
}


def builtin_plan(name: str) -> FaultPlan:
    """Look up a built-in plan by name, with a helpful error."""
    try:
        return BUILTIN_PLANS[name]
    except KeyError:
        raise ValueError(
            f"unknown built-in fault plan {name!r} "
            f"(known: {', '.join(sorted(BUILTIN_PLANS))})"
        ) from None
