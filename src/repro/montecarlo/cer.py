"""Monte Carlo cell-error-rate (CER) estimation.

The drift law is linear in ``L = log10(t / t0)``, so every sampled cell has
a *critical log-time* ``L*`` at which its resistance first crosses the
error threshold.  A whole time sweep then reduces to one sort of ``L*`` and
a ``searchsorted`` per RNG block — this, plus the parallel block fan-out in
``repro.montecarlo.executor`` and the persistent result cache in
``repro.montecarlo.results_cache``, is what lets the engine reach the
paper's 1e9-sample scale on a laptop.

Tier escalation (Section 5.3's conservative two-phase drift) is folded into
the closed form: the trajectory is piecewise linear in ``L`` with slopes
``alpha_0, alpha_1, ...`` switching at tier boundaries, so

    L* = sum_k (segment height of phase k) / alpha_k .

Cells programmed above a tier boundary keep their own exponent draw (their
state's distribution already reflects that tier); only cells that drift
across a boundary escalate.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.cells.drift import PAPER_ESCALATION, TieredDrift
from repro.cells.params import T0_SECONDS, WRITE_TRUNCATION_SIGMA, StateParams
from repro.core.levels import LevelDesign
from repro.montecarlo.executor import (
    DEFAULT_CHUNK,
    StateRun,
    apportion_samples,
    run_counts,
)
from repro.montecarlo.results_cache import ResultsCache, state_counts_key
from repro.montecarlo.rng import alpha_samples, seed_entropy, truncated_normal

__all__ = [
    "critical_log_times",
    "sample_state_cells",
    "state_cer",
    "design_cer",
    "CERResult",
    "DEFAULT_CHUNK",
]


def sample_state_cells(
    state: StateParams, n: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sample written cells of one state: ``(lr0, alpha, z)``.

    ``lr0`` is the initial log10 resistance after write-and-verify (truncated
    Gaussian), ``alpha`` the per-cell drift exponent (Gaussian truncated at
    zero), and ``z`` its standardized quantile.
    """
    lr0 = truncated_normal(
        rng,
        state.mu_lr,
        state.sigma_lr,
        -WRITE_TRUNCATION_SIGMA,
        WRITE_TRUNCATION_SIGMA,
        n,
    )
    alpha, z = alpha_samples(rng, state.drift.mu_alpha, state.drift.sigma_alpha, n)
    return lr0, alpha, z


def critical_log_times(
    lr0: np.ndarray,
    alpha0: np.ndarray,
    z0: np.ndarray,
    mu_orig: float,
    tau: float,
    schedule: TieredDrift = PAPER_ESCALATION,
    tier_z: Sequence[np.ndarray] | None = None,
) -> np.ndarray:
    """Per-cell ``L* = log10(t*/t0)`` at which resistance first reaches ``tau``.

    ``inf`` means the cell never errs.  ``tier_z`` supplies one array of
    fresh standard-normal quantiles per schedule tier (only consumed in
    ``"independent"`` mode; tiers the cell does not cross are ignored).
    """
    lr0 = np.asarray(lr0, dtype=float)
    cur_alpha = np.asarray(alpha0, dtype=float).copy()
    z0 = np.asarray(z0, dtype=float)
    if not np.isfinite(tau):
        return np.full(lr0.shape, np.inf)

    tiers = schedule.tiers_between(-np.inf, tau)
    if schedule.mode == "independent" and tiers:
        if tier_z is None or len(tier_z) < len(tiers):
            raise ValueError(
                f"independent escalation across {len(tiers)} tier(s) requires tier_z"
            )

    L_star = np.zeros(lr0.shape)
    cur_lr = lr0.copy()

    for k, tier in enumerate(tiers):
        # Cells below the boundary spend part of their budget reaching it.
        below = cur_lr < tier.lr_break
        seg = np.where(below, tier.lr_break - cur_lr, 0.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            dL = np.where(seg > 0, seg / cur_alpha, 0.0)
        dL = np.where((seg > 0) & (cur_alpha <= 0), np.inf, dL)
        L_star = L_star + dL
        # Only cells that crossed the boundary (finite budget so far and
        # started below it) escalate; cells programmed above keep their draw.
        crossed = below & np.isfinite(L_star)
        if np.any(crossed):
            z_fresh = tier_z[k] if tier_z is not None else None
            esc = schedule.escalated_alpha(tier, cur_alpha, z0, mu_orig, z_fresh)
            cur_alpha = np.where(crossed, esc, cur_alpha)
        cur_lr = np.maximum(cur_lr, tier.lr_break)

    seg = np.maximum(tau - cur_lr, 0.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        dL = np.where(seg > 0, seg / cur_alpha, 0.0)
    dL = np.where((seg > 0) & (cur_alpha <= 0), np.inf, dL)
    L_star = L_star + dL
    # Cells written at/above tau (possible only if tau intrudes into the
    # write window) err immediately.
    return np.where(lr0 >= tau, 0.0, L_star)


@dataclasses.dataclass(frozen=True)
class CERResult:
    """CER estimates over a time grid, with the MC resolution floor."""

    times_s: np.ndarray
    cer: np.ndarray
    n_samples: int

    @property
    def floor(self) -> float:
        """Smallest resolvable nonzero rate (one error in ``n_samples``)."""
        return 1.0 / self.n_samples


def _prepare_grid(times_s: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """Sorted time grid and its log-time image, validated once.

    ``design_cer`` evaluates many states against the same grid; hoisting
    the sort/validation/log here keeps the per-state path free of
    redundant work.
    """
    times = np.sort(np.asarray(times_s, dtype=float))
    if np.any(times < T0_SECONDS):
        raise ValueError("all times must be >= t0")
    return times, np.log10(times / T0_SECONDS)


def _counts_for_runs(
    runs: Sequence[StateRun],
    times: np.ndarray,
    L_grid: np.ndarray,
    schedule: TieredDrift,
    chunk: int,
    jobs: int | None,
    cache: ResultsCache | None,
) -> list[np.ndarray]:
    """Per-run error counts, served from the cache where possible."""
    out: list[np.ndarray | None] = [None] * len(runs)
    keys: list[str | None] = [None] * len(runs)
    pending: list[int] = []
    for i, run in enumerate(runs):
        if cache is not None:
            keys[i] = state_counts_key(run, times, schedule)
            hit = cache.get_counts(keys[i], expected_len=len(times))
            if hit is not None:
                out[i] = hit
                continue
        pending.append(i)
    if pending:
        fresh = run_counts(
            [runs[i] for i in pending], L_grid, schedule=schedule, chunk=chunk, jobs=jobs
        )
        for i, counts in zip(pending, fresh):
            out[i] = counts
            if cache is not None:
                cache.put_counts(keys[i], counts)
    return out  # type: ignore[return-value]


def state_cer(
    state: StateParams,
    tau_up: float,
    times_s: Sequence[float],
    n_samples: int,
    seed: int | np.random.Generator = 0,
    schedule: TieredDrift = PAPER_ESCALATION,
    chunk: int = DEFAULT_CHUNK,
    jobs: int | None = 1,
    cache: ResultsCache | None = None,
) -> CERResult:
    """Monte Carlo CER of one state against its upper threshold.

    Sampling is organized in fixed-size RNG blocks (see
    ``repro.montecarlo.executor``), so arbitrarily large ``n_samples`` fit
    in memory and the result is bit-identical for any ``chunk``/``jobs``
    combination.  ``jobs > 1`` fans blocks over a process pool; ``cache``
    (a :class:`~repro.montecarlo.results_cache.ResultsCache`) serves
    previously computed count vectors without re-sampling.
    """
    times, L_grid = _prepare_grid(times_s)
    run = StateRun(
        state=state,
        tau=float(tau_up),
        n_samples=int(n_samples),
        entropy=seed_entropy(seed),
    )
    counts = _counts_for_runs([run], times, L_grid, schedule, chunk, jobs, cache)[0]
    return CERResult(
        times_s=times, cer=counts / float(n_samples), n_samples=int(n_samples)
    )


def design_cer(
    design: LevelDesign,
    times_s: Sequence[float],
    n_samples: int,
    seed: int | np.random.Generator | None = 0,
    schedule: TieredDrift = PAPER_ESCALATION,
    chunk: int = DEFAULT_CHUNK,
    jobs: int | None = 1,
    cache: ResultsCache | None = None,
) -> CERResult:
    """Occupancy-weighted CER of a whole level design over a time grid.

    ``n_samples`` counts total written cells; states receive exact
    largest-remainder occupancy shares (summing to ``n_samples``, so the
    reported MC resolution ``floor`` is honest), and the design CER is the
    pooled error count over the whole written population.  All states'
    blocks share one process pool when ``jobs > 1``, and each state's
    count vector is cached independently so physically identical states
    are reused across designs.
    """
    times, L_grid = _prepare_grid(times_s)
    entropy = seed_entropy(seed)
    shares = apportion_samples(int(n_samples), design.occupancy)
    runs: list[StateRun] = []
    for i, (state, n_state) in enumerate(zip(design.states, shares)):
        tau = design.upper_threshold(i)
        if not np.isfinite(tau) or n_state == 0:
            continue  # top state never drift-errs
        runs.append(
            StateRun(
                state=state,
                tau=float(tau),
                n_samples=n_state,
                entropy=entropy,
                prefix=(i,),
            )
        )
    total = np.zeros(len(times), dtype=np.int64)
    for counts in _counts_for_runs(runs, times, L_grid, schedule, chunk, jobs, cache):
        total += counts
    return CERResult(
        times_s=times, cer=total / float(n_samples), n_samples=int(n_samples)
    )
