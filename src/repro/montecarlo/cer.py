"""Monte Carlo cell-error-rate (CER) estimation.

The drift law is linear in ``L = log10(t / t0)``, so every sampled cell has
a *critical log-time* ``L*`` at which its resistance first crosses the
error threshold.  A whole time sweep then reduces to one sort of ``L*`` and
a ``searchsorted`` per chunk — this is what lets the engine reach the
paper's 1e9-sample scale on a laptop.

Tier escalation (Section 5.3's conservative two-phase drift) is folded into
the closed form: the trajectory is piecewise linear in ``L`` with slopes
``alpha_0, alpha_1, ...`` switching at tier boundaries, so

    L* = sum_k (segment height of phase k) / alpha_k .

Cells programmed above a tier boundary keep their own exponent draw (their
state's distribution already reflects that tier); only cells that drift
across a boundary escalate.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.cells.drift import PAPER_ESCALATION, TieredDrift
from repro.cells.params import T0_SECONDS, WRITE_TRUNCATION_SIGMA, StateParams
from repro.core.levels import LevelDesign
from repro.montecarlo.rng import alpha_samples, make_rng, truncated_normal

__all__ = [
    "critical_log_times",
    "sample_state_cells",
    "state_cer",
    "design_cer",
    "CERResult",
    "DEFAULT_CHUNK",
]

#: Default chunk size: bounds peak memory to ~a few hundred MB.
DEFAULT_CHUNK = 4_000_000


def sample_state_cells(
    state: StateParams, n: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sample written cells of one state: ``(lr0, alpha, z)``.

    ``lr0`` is the initial log10 resistance after write-and-verify (truncated
    Gaussian), ``alpha`` the per-cell drift exponent (Gaussian truncated at
    zero), and ``z`` its standardized quantile.
    """
    lr0 = truncated_normal(
        rng,
        state.mu_lr,
        state.sigma_lr,
        -WRITE_TRUNCATION_SIGMA,
        WRITE_TRUNCATION_SIGMA,
        n,
    )
    alpha, z = alpha_samples(rng, state.drift.mu_alpha, state.drift.sigma_alpha, n)
    return lr0, alpha, z


def critical_log_times(
    lr0: np.ndarray,
    alpha0: np.ndarray,
    z0: np.ndarray,
    mu_orig: float,
    tau: float,
    schedule: TieredDrift = PAPER_ESCALATION,
    tier_z: Sequence[np.ndarray] | None = None,
) -> np.ndarray:
    """Per-cell ``L* = log10(t*/t0)`` at which resistance first reaches ``tau``.

    ``inf`` means the cell never errs.  ``tier_z`` supplies one array of
    fresh standard-normal quantiles per schedule tier (only consumed in
    ``"independent"`` mode; tiers the cell does not cross are ignored).
    """
    lr0 = np.asarray(lr0, dtype=float)
    cur_alpha = np.asarray(alpha0, dtype=float).copy()
    z0 = np.asarray(z0, dtype=float)
    if not np.isfinite(tau):
        return np.full(lr0.shape, np.inf)

    tiers = schedule.tiers_between(-np.inf, tau)
    if schedule.mode == "independent" and tiers:
        if tier_z is None or len(tier_z) < len(tiers):
            raise ValueError(
                f"independent escalation across {len(tiers)} tier(s) requires tier_z"
            )

    L_star = np.zeros(lr0.shape)
    cur_lr = lr0.copy()

    for k, tier in enumerate(tiers):
        # Cells below the boundary spend part of their budget reaching it.
        below = cur_lr < tier.lr_break
        seg = np.where(below, tier.lr_break - cur_lr, 0.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            dL = np.where(seg > 0, seg / cur_alpha, 0.0)
        dL = np.where((seg > 0) & (cur_alpha <= 0), np.inf, dL)
        L_star = L_star + dL
        # Only cells that crossed the boundary (finite budget so far and
        # started below it) escalate; cells programmed above keep their draw.
        crossed = below & np.isfinite(L_star)
        if np.any(crossed):
            z_fresh = tier_z[k] if tier_z is not None else None
            esc = schedule.escalated_alpha(tier, cur_alpha, z0, mu_orig, z_fresh)
            cur_alpha = np.where(crossed, esc, cur_alpha)
        cur_lr = np.maximum(cur_lr, tier.lr_break)

    seg = np.maximum(tau - cur_lr, 0.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        dL = np.where(seg > 0, seg / cur_alpha, 0.0)
    dL = np.where((seg > 0) & (cur_alpha <= 0), np.inf, dL)
    L_star = L_star + dL
    # Cells written at/above tau (possible only if tau intrudes into the
    # write window) err immediately.
    return np.where(lr0 >= tau, 0.0, L_star)


@dataclasses.dataclass(frozen=True)
class CERResult:
    """CER estimates over a time grid, with the MC resolution floor."""

    times_s: np.ndarray
    cer: np.ndarray
    n_samples: int

    @property
    def floor(self) -> float:
        """Smallest resolvable nonzero rate (one error in ``n_samples``)."""
        return 1.0 / self.n_samples


def state_cer(
    state: StateParams,
    tau_up: float,
    times_s: Sequence[float],
    n_samples: int,
    seed: int | np.random.Generator = 0,
    schedule: TieredDrift = PAPER_ESCALATION,
    chunk: int = DEFAULT_CHUNK,
) -> CERResult:
    """Monte Carlo CER of one state against its upper threshold.

    Chunked so arbitrarily large ``n_samples`` fit in memory; all time
    points are evaluated from a single sorted pass per chunk.
    """
    times = np.asarray(sorted(times_s), dtype=float)
    if np.any(times < T0_SECONDS):
        raise ValueError("all times must be >= t0")
    rng = make_rng(seed)
    L_grid = np.log10(times / T0_SECONDS)
    n_tiers = len(schedule.tiers_between(-np.inf, tau_up)) if np.isfinite(tau_up) else 0

    counts = np.zeros(len(times), dtype=np.int64)
    remaining = int(n_samples)
    while remaining > 0:
        m = min(remaining, chunk)
        lr0, alpha, z = sample_state_cells(state, m, rng)
        tier_z = None
        if schedule.mode == "independent" and n_tiers:
            tier_z = [rng.standard_normal(m) for _ in range(n_tiers)]
        L_star = critical_log_times(
            lr0, alpha, z, state.drift.mu_alpha, tau_up, schedule, tier_z
        )
        L_star = np.sort(L_star)
        # errors by time t  <=>  L* <= L(t)
        counts += np.searchsorted(L_star, L_grid, side="right")
        remaining -= m

    return CERResult(
        times_s=times, cer=counts / float(n_samples), n_samples=int(n_samples)
    )


def design_cer(
    design: LevelDesign,
    times_s: Sequence[float],
    n_samples: int,
    seed: int | None = 0,
    schedule: TieredDrift = PAPER_ESCALATION,
    chunk: int = DEFAULT_CHUNK,
) -> CERResult:
    """Occupancy-weighted CER of a whole level design over a time grid.

    ``n_samples`` counts total written cells; each state receives its
    occupancy share (matching the paper's methodology of sampling from the
    written-cell population).
    """
    times = np.asarray(sorted(times_s), dtype=float)
    total = np.zeros(len(times))
    rng = make_rng(seed)
    for i, (state, p_occ) in enumerate(zip(design.states, design.occupancy)):
        tau = design.upper_threshold(i)
        if not np.isfinite(tau) or p_occ == 0.0:
            continue  # top state never drift-errs
        n_state = max(int(round(n_samples * p_occ)), 1)
        res = state_cer(
            state, tau, times, n_state, seed=rng, schedule=schedule, chunk=chunk
        )
        total += p_occ * res.cer
    return CERResult(times_s=times, cer=total, n_samples=int(n_samples))
