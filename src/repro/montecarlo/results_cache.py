"""Persistent content-addressed cache of Monte Carlo CER results.

Entries are per-state *error count* vectors (integers, not rates): counts
aggregate exactly across states, so one cached state run serves every
design, sweep, optimizer confirmation, or benchmark that evaluates the
same ``(state params, threshold, schedule, time grid, n_samples, seed)``.

Keys are SHA-256 hashes of a canonical JSON payload salted with
:data:`repro.montecarlo.executor.ENGINE_VERSION` — bumping the version
invalidates every stale entry without touching the store.  Chunk size and
worker count are deliberately *absent* from the key: the executor's
fixed-block RNG fan-out makes results invariant to both.  The state's
*name* is also excluded, so physically identical states share entries
across designs.

The cache is two-level: an in-memory LRU front (``memory_entries``
vectors) over an on-disk ``.npy`` store, written atomically so concurrent
processes can share a directory.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import os
import pathlib
from collections import OrderedDict
from typing import Sequence

import numpy as np

from repro.cells.drift import TieredDrift
from repro.chaos.registry import fault_point
from repro.coding.batch import DATAPATH_VERSION
from repro.montecarlo.executor import ENGINE_VERSION, StateRun

__all__ = [
    "CacheStats",
    "ResultsCache",
    "bler_counts_key",
    "default_cache_dir",
    "state_counts_key",
]


def default_cache_dir() -> pathlib.Path:
    """Cache location: ``$REPRO_MC_CACHE_DIR`` or ``~/.cache/repro-mc``."""
    env = os.environ.get("REPRO_MC_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro-mc"


def _cf(x: float) -> str:
    # repr() round-trips doubles exactly, so equal floats hash equally and
    # nearby ones never collide.
    return repr(float(x))


def state_counts_key(
    run: StateRun, times_s: Sequence[float], schedule: TieredDrift
) -> str:
    """Stable content hash for one state run's error-count vector."""
    payload = {
        "engine": ENGINE_VERSION,
        "kind": "state-counts",
        "state": {
            "mu_lr": _cf(run.state.mu_lr),
            "sigma_lr": _cf(run.state.sigma_lr),
            "mu_alpha": _cf(run.state.drift.mu_alpha),
            "sigma_alpha": _cf(run.state.drift.sigma_alpha),
        },
        "tau": _cf(run.tau),
        "schedule": {
            "mode": schedule.mode,
            "tiers": [
                [_cf(t.lr_break), _cf(t.mu_alpha), _cf(t.sigma_alpha)]
                for t in schedule.tiers
            ],
        },
        "times": [_cf(t) for t in np.asarray(times_s, dtype=float)],
        "n_samples": int(run.n_samples),
        "seed": {"entropy": int(run.entropy), "prefix": [int(p) for p in run.prefix]},
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def bler_counts_key(
    cer: float,
    data_bits: int,
    n_spare_pairs: int,
    n_blocks: int,
    entropy: int,
    prefix: Sequence[int],
) -> str:
    """Stable content hash for one empirical BLER operating point.

    The entry holds the ``[n_silent, n_errors]`` pair from pushing
    ``n_blocks`` random blocks through the batched Figure-9 datapath at
    per-cell error rate ``cer`` (:mod:`repro.montecarlo.bler_mc`).  The
    payload is salted with both :data:`ENGINE_VERSION` (RNG fan-out
    contract) and :data:`repro.coding.batch.DATAPATH_VERSION` (batched
    codec semantics), so a change to either invalidates stale entries.
    Chunk size and worker count are absent for the same reason as in
    :func:`state_counts_key`: fixed-block RNG fan-out makes results
    invariant to both.
    """
    payload = {
        "engine": ENGINE_VERSION,
        "datapath": DATAPATH_VERSION,
        "kind": "bler-counts",
        "cer": _cf(cer),
        "geometry": {
            "data_bits": int(data_bits),
            "n_spare_pairs": int(n_spare_pairs),
        },
        "n_blocks": int(n_blocks),
        "seed": {"entropy": int(entropy), "prefix": [int(p) for p in prefix]},
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclasses.dataclass
class CacheStats:
    """Lookup/store counters of one :class:`ResultsCache` instance.

    ``quarantined`` counts on-disk blobs that failed the integrity check
    on load and were moved aside; ``store_errors`` counts best-effort
    writes that failed with an ``OSError`` (the result is still computed
    and returned — only the cache entry is lost).
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    quarantined: int = 0
    store_errors: int = 0


class ResultsCache:
    """In-memory LRU front over an on-disk ``.npy`` result store."""

    def __init__(
        self,
        cache_dir: str | os.PathLike | None = None,
        memory_entries: int = 256,
    ) -> None:
        self.cache_dir = (
            pathlib.Path(cache_dir) if cache_dir is not None else default_cache_dir()
        )
        self.memory_entries = int(memory_entries)
        self._mem: OrderedDict[str, np.ndarray] = OrderedDict()
        self.stats = CacheStats()

    def _path(self, key: str) -> pathlib.Path:
        return self.cache_dir / f"{key}.npy"

    def _sum_path(self, key: str) -> pathlib.Path:
        return self.cache_dir / f"{key}.sum"

    def _remember(self, key: str, counts: np.ndarray) -> None:
        self._mem[key] = counts
        self._mem.move_to_end(key)
        while len(self._mem) > self.memory_entries:
            self._mem.popitem(last=False)

    @staticmethod
    def _valid_counts(arr: object, expected_len: int | None) -> bool:
        """Structural integrity of a count vector.

        Every stored entry is an error-count vector against a *sorted*
        time grid, so a genuine blob is a 1-D array of non-negative,
        non-decreasing integers (of ``expected_len`` when given).
        Anything else is corruption or a foreign file.
        """
        if not isinstance(arr, np.ndarray) or arr.ndim != 1:
            return False
        if not np.issubdtype(arr.dtype, np.integer):
            return False
        if expected_len is not None and arr.shape != (expected_len,):
            return False
        if arr.size and (int(arr[0]) < 0 or np.any(np.diff(arr) < 0)):
            return False
        return True

    def _quarantine(self, key: str) -> None:
        """Move a corrupt blob aside so it is never loaded again.

        The quarantined copy keeps the evidence for debugging without
        matching the ``*.npy`` store glob; a subsequent ``put_counts``
        simply writes a fresh entry at the original path.
        """
        path = self._path(key)
        try:
            os.replace(path, self.cache_dir / f"{key}.quarantined")
        except OSError:
            path.unlink(missing_ok=True)
        try:
            self._sum_path(key).unlink(missing_ok=True)
        except OSError:
            # repro-lint: disable=RPL006 -- best-effort sidecar cleanup;
            # the blob itself is already out of the store
            pass
        self._mem.pop(key, None)
        self.stats.quarantined += 1

    def _load_validated(
        self, key: str, expected_len: int | None
    ) -> np.ndarray | None:
        """Load one blob from disk, quarantining anything corrupt.

        Entries written by this version carry a ``.sum`` sidecar (sha256
        of the blob's bytes), which catches *any* bit damage — including
        garbage that still parses as a plausible count vector.  Blobs
        without a sidecar (legacy entries) fall back to the structural
        check alone.
        """
        path = self._path(key)
        fault_point("cache.get", path=path, key=key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            return None  # a plain miss
        except OSError:
            self._quarantine(key)
            return None
        try:
            want_sum = self._sum_path(key).read_text().strip()
        except OSError:
            want_sum = None
        if want_sum is not None and hashlib.sha256(blob).hexdigest() != want_sum:
            self._quarantine(key)
            return None
        try:
            arr = np.load(io.BytesIO(blob))
        except (OSError, ValueError, EOFError):
            # Unreadable npy header/payload: truncated, garbled, or a
            # pickled file (np.load refuses pickles by default).
            self._quarantine(key)
            return None
        if not self._valid_counts(arr, expected_len):
            self._quarantine(key)
            return None
        return arr

    def get_counts(self, key: str, expected_len: int | None = None) -> np.ndarray | None:
        """Cached count vector for ``key``, or ``None`` on a miss.

        On-disk blobs are integrity-checked before being trusted: an
        unreadable, truncated, wrong-shape, or structurally invalid file
        is *quarantined* (moved aside, counted in ``stats.quarantined``)
        and reported as a miss — a corrupted entry is never served.
        """
        counts = self._mem.get(key)
        if counts is not None and (
            expected_len is not None and counts.shape != (expected_len,)
        ):
            counts = None  # foreign length under this key: do not trust
        elif counts is None:
            counts = self._load_validated(key, expected_len)
        if counts is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        try:
            # Touch the entry so LRU pruning (mtime order) tracks use.
            os.utime(self._path(key))
        except OSError:
            pass
        self._remember(key, counts)
        return counts.copy()

    def put_counts(self, key: str, counts: np.ndarray) -> None:
        """Store one count vector atomically; best-effort on I/O errors.

        The cache is an optimization, so a failed write (disk full,
        permissions, injected fault) must not fail the computation that
        produced the result: the error is counted in
        ``stats.store_errors``, the temp file is cleaned up, and the
        vector is still fronted in memory.
        """
        arr = np.ascontiguousarray(counts, dtype=np.int64)
        tmp = self.cache_dir / f".{key}.{os.getpid()}.tmp"
        try:
            fault_point("cache.put", path=self._path(key), key=key)
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            buf = io.BytesIO()
            np.save(buf, arr)
            blob = buf.getvalue()
            tmp.write_bytes(blob)
            # Sidecar first: content-addressed entries always hold the
            # same bytes, so a reader can never pair a fresh blob with a
            # stale mismatching checksum.
            self._sum_path(key).write_text(hashlib.sha256(blob).hexdigest() + "\n")
            os.replace(tmp, self._path(key))
        except OSError:
            self.stats.store_errors += 1
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                # repro-lint: disable=RPL006 -- cleanup of a best-effort
                # write; the store_errors counter already recorded it
                pass
        else:
            self.stats.stores += 1
        self._remember(key, arr)

    def entries(self) -> list[str]:
        """Keys present on disk."""
        if not self.cache_dir.is_dir():
            return []
        return sorted(p.stem for p in self.cache_dir.glob("*.npy"))

    def quarantined(self) -> list[str]:
        """Keys whose blobs failed integrity checks and were set aside."""
        if not self.cache_dir.is_dir():
            return []
        return sorted(p.stem for p in self.cache_dir.glob("*.quarantined"))

    def nbytes(self) -> int:
        """Total on-disk size of the store."""
        if not self.cache_dir.is_dir():
            return 0
        return sum(p.stat().st_size for p in self.cache_dir.glob("*.npy"))

    def clear(self) -> int:
        """Delete every entry (disk and memory); returns how many.

        Quarantined blobs are removed too (not counted in the total).
        """
        removed = 0
        if self.cache_dir.is_dir():
            for p in self.cache_dir.glob("*.npy"):
                p.unlink(missing_ok=True)
                removed += 1
            for p in self.cache_dir.glob("*.quarantined"):
                p.unlink(missing_ok=True)
            for p in self.cache_dir.glob("*.sum"):
                p.unlink(missing_ok=True)
        self._mem.clear()
        return removed

    def prune(self, max_bytes: int) -> tuple[int, int]:
        """Evict least-recently-used entries until the store fits ``max_bytes``.

        Recency is mtime: ``get_counts``/``put_counts`` touch an entry's
        file, so eviction order tracks actual use even across processes
        sharing the directory.  Returns ``(entries_removed, bytes_freed)``.
        The in-memory front drops evicted keys too, so a pruned entry
        cannot be resurrected from memory with a stale on-disk view.
        """
        max_bytes = int(max_bytes)
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        if not self.cache_dir.is_dir():
            return (0, 0)
        entries = []
        for p in self.cache_dir.glob("*.npy"):
            try:
                st = p.stat()
            except OSError:
                continue  # concurrently removed
            entries.append((st.st_mtime, st.st_size, p))
        total = sum(size for _, size, _ in entries)
        removed = freed = 0
        for _, size, p in sorted(entries):  # oldest mtime first
            if total <= max_bytes:
                break
            p.unlink(missing_ok=True)
            self._sum_path(p.stem).unlink(missing_ok=True)
            self._mem.pop(p.stem, None)
            total -= size
            removed += 1
            freed += size
        return (removed, freed)
