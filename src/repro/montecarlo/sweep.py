"""Time-sweep drivers for the drift-error figures (Figures 3 and 8).

The paper's x-axis runs over powers of two from 2 s to 2**40 s
("34865 years"), sampled every 2**5.  These helpers run the per-state
sweep of Figure 3 and the per-design sweep of Figure 8 and return labeled
results ready for the benchmark harness to print.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence

import numpy as np

from repro.cells.drift import PAPER_ESCALATION, TieredDrift
from repro.core.designs import all_designs, four_level_naive
from repro.core.levels import LevelDesign
from repro.montecarlo.analytic import (
    analytic_design_cer,
    analytic_design_cer_batch,
    analytic_state_cer_batch,
)
from repro.montecarlo.cer import design_cer, state_cer
from repro.montecarlo.results_cache import ResultsCache

__all__ = [
    "PAPER_TIME_GRID_S",
    "PAPER_TIME_LABELS",
    "fig3_state_sweep",
    "fig8_design_sweep",
    "SweepResult",
]

#: 2**1, 2**5, 2**10, ... 2**40 seconds — the nine x-axis points of
#: Figures 3 and 8 ("2s" through "34865year").
PAPER_TIME_GRID_S: tuple[float, ...] = tuple(
    2.0**k for k in (1, 5, 10, 15, 20, 25, 30, 35, 40)
)

PAPER_TIME_LABELS: tuple[str, ...] = (
    "2s",
    "32s",
    "17min",
    "9hour",
    "12day",
    "1year",
    "34year",
    "1089year",
    "34865year",
)


@dataclasses.dataclass(frozen=True)
class SweepResult:
    """CER curves keyed by series name, over a common time grid."""

    times_s: np.ndarray
    series: Mapping[str, np.ndarray]
    n_samples: int

    @property
    def floor(self) -> float:
        return 1.0 / self.n_samples


def fig3_state_sweep(
    n_samples: int = 10_000_000,
    times_s: Sequence[float] = PAPER_TIME_GRID_S,
    seed: int = 0,
    schedule: TieredDrift = PAPER_ESCALATION,
    jobs: int | None = 1,
    cache: ResultsCache | None = None,
    engine: str = "mc",
) -> SweepResult:
    """Figure 3: per-state drift error rates of the naive four-level cell.

    S1 and S4 are included for completeness (the paper notes they are
    "practically zero"); the plotted curves are S2 and S3.  ``jobs`` and
    ``cache`` are forwarded to the Monte Carlo executor (see
    :func:`repro.montecarlo.cer.state_cer`).

    ``engine="analytic"`` replaces the Monte Carlo with one batched
    semi-analytic quadrature over every (state, time) pair
    (:func:`~repro.montecarlo.analytic.analytic_state_cer_batch`) —
    orders of magnitude faster, deterministic, and it resolves error
    rates far below the MC floor of ``1/n_samples``; ``n_samples``,
    ``seed``, ``jobs``, and ``cache`` are then ignored.
    """
    if engine not in ("mc", "analytic"):
        raise ValueError(f"engine must be 'mc' or 'analytic', got {engine!r}")
    design = four_level_naive()
    times = np.asarray(sorted(times_s), dtype=float)
    series: dict[str, np.ndarray] = {}
    if engine == "analytic":
        taus = [design.upper_threshold(i) for i in range(len(design.states))]
        cer = analytic_state_cer_batch(design.states, taus, times, schedule=schedule)
        for state, row in zip(design.states, cer):
            series[state.name] = row
        return SweepResult(times_s=times, series=series, n_samples=n_samples)
    for i, state in enumerate(design.states):
        tau = design.upper_threshold(i)
        if not np.isfinite(tau):
            series[state.name] = np.zeros(len(times_s))
            continue
        res = state_cer(
            state, tau, times_s, n_samples, seed=seed + i, schedule=schedule,
            jobs=jobs, cache=cache,
        )
        series[state.name] = res.cer
    return SweepResult(times_s=times, series=series, n_samples=n_samples)


def fig8_design_sweep(
    n_samples: int = 10_000_000,
    times_s: Sequence[float] = PAPER_TIME_GRID_S,
    seed: int = 0,
    schedule: TieredDrift = PAPER_ESCALATION,
    designs: Mapping[str, LevelDesign] | None = None,
    analytic_floor: bool = True,
    jobs: int | None = 1,
    cache: ResultsCache | None = None,
    engine: str = "mc",
) -> SweepResult:
    """Figure 8: design-level CER of 4LCn/4LCs/4LCo/3LCn/3LCo.

    The paper runs 1e9 Monte Carlo cells; the default here is 1e7 so the
    whole benchmark suite stays fast — pass ``n_samples=1_000_000_000``
    to reproduce at full scale (with ``jobs=0`` to use every core and a
    ``ResultsCache`` so repeats are free).  With ``analytic_floor=True``
    the semi-analytic CER fills in points the MC cannot resolve (below
    ``1/n_samples``), which is how the 3LC curves' deep tails are
    reported.

    ``engine="analytic"`` skips the Monte Carlo entirely and evaluates
    every design in one batched quadrature
    (:func:`~repro.montecarlo.analytic.analytic_design_cer_batch`);
    ``n_samples``, ``seed``, ``analytic_floor``, ``jobs``, and ``cache``
    are then ignored (the analytic curve has no sampling floor).
    """
    if engine not in ("mc", "analytic"):
        raise ValueError(f"engine must be 'mc' or 'analytic', got {engine!r}")
    designs = dict(designs) if designs is not None else all_designs()
    times = np.asarray(sorted(times_s), dtype=float)
    series: dict[str, np.ndarray] = {}
    if engine == "analytic":
        names = list(designs)
        cer = analytic_design_cer_batch(
            [designs[n] for n in names], times, schedule=schedule
        )
        for name, row in zip(names, cer):
            series[name] = row
        return SweepResult(times_s=times, series=series, n_samples=n_samples)
    for j, (name, design) in enumerate(designs.items()):
        mc = design_cer(
            design, times, n_samples, seed=seed + 17 * j, schedule=schedule,
            jobs=jobs, cache=cache,
        )
        curve = mc.cer.copy()
        if analytic_floor:
            an = analytic_design_cer(design, times, schedule=schedule)
            unresolved = curve < (1.0 / n_samples)
            curve[unresolved] = an[unresolved]
        series[name] = curve
    return SweepResult(times_s=times, series=series, n_samples=n_samples)
