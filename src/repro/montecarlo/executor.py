"""Parallel Monte Carlo execution layer with deterministic RNG fan-out.

The engine's unit of randomness is a fixed-size *block* of
:data:`RNG_BLOCK` cells.  Block ``i`` of a population draws from
``SeedSequence(entropy, spawn_key=prefix + (i,))`` — the same child
generator :func:`repro.montecarlo.rng.spawn_rngs` would produce — so a
block's samples are a pure function of ``(entropy, prefix, i)``.  The
``chunk`` parameter only groups whole blocks into pool tasks.  Within a
task, blocks are drawn one generator at a time (preserving the per-block
draw order exactly) but *evaluated fused*: groups of up to
:data:`_FUSE_BLOCKS` blocks are concatenated and pushed through
:func:`~repro.montecarlo.cer.critical_log_times` and a single
bincount/cumsum reduction.  Error counts are sums of per-sample
indicators ``L* <= L(t)``, so any grouping of the samples yields the
same integer counts — results are therefore **bit-identical for any
chunk size, any fuse-group size, and any worker count**, which also
means the persistent result cache never needs chunk/jobs in its keys.

Bump :data:`ENGINE_VERSION` when changing anything that alters a block's
draws (:data:`RNG_BLOCK`, the in-block draw order, the samplers): the
cache salts its keys with the version, so stale entries self-invalidate.
"""

from __future__ import annotations

import dataclasses
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Sequence

import numpy as np

from repro.cells.drift import PAPER_ESCALATION, TieredDrift
from repro.cells.params import StateParams
from repro.chaos.registry import fault_point
from repro.montecarlo.rng import block_rng

__all__ = [
    "ENGINE_VERSION",
    "RNG_BLOCK",
    "DEFAULT_CHUNK",
    "StateRun",
    "apportion_samples",
    "blocks_evaluated",
    "plan_blocks",
    "resolve_jobs",
    "run_counts",
    "shard_ranges",
]

#: Salt for persistent cache keys; bump on any change to the draw scheme.
ENGINE_VERSION = 1

#: Fixed RNG granularity: samples per block (independent of ``chunk``).
RNG_BLOCK = 10_000

#: Default chunk size (samples per pool task): bounds peak memory per
#: worker to ~a few hundred MB.
DEFAULT_CHUNK = 4_000_000

#: RNG blocks concatenated per fused ``critical_log_times`` evaluation.
#: Amortizes the per-block call overhead and replaces 10k-element sorts
#: with one linear bincount/cumsum, while keeping the fused working set
#: (~80k cells, ~640 KB per array) L2-resident: measured on the target
#: box, larger groups run *slower* because the elementwise
#: ``critical_log_times`` passes become DRAM-bound (128 blocks: ~1.6x
#: slower than 8).  Counts are additive over samples, so the value never
#: affects results (see module docstring).
_FUSE_BLOCKS = 8

#: Blocks actually evaluated since import (cache hits do not count).
_BLOCKS_EVALUATED = 0


def blocks_evaluated() -> int:
    """Total RNG blocks evaluated by this process since import.

    Cache hits perform no evaluation, so a warm-cache run leaves this
    counter unchanged — the benchmark/test hook for "zero recomputation".
    """
    return _BLOCKS_EVALUATED


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a worker-count spec: ``None``/``0`` means all CPU cores."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    jobs = int(jobs)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1 (or 0/None for all cores), got {jobs}")
    return jobs


def plan_blocks(n_samples: int, block: int = RNG_BLOCK) -> list[int]:
    """Sizes of the fixed RNG blocks covering ``n_samples`` cells."""
    n_samples = int(n_samples)
    if n_samples < 0:
        raise ValueError(f"n_samples must be >= 0, got {n_samples}")
    n_full, rem = divmod(n_samples, block)
    sizes = [block] * n_full
    if rem:
        sizes.append(rem)
    return sizes


def shard_ranges(n_items: int, shard: int) -> list[tuple[int, int]]:
    """``(first, size)`` shards covering ``[0, n_items)`` at fixed granularity.

    The range-valued sibling of :func:`plan_blocks`, for fan-outs whose
    work units are *indexed* (device populations) rather than merely
    counted: the shard layout — and therefore every per-shard cache key —
    depends only on ``(n_items, shard)``, never on chunking or worker
    count.
    """
    n_items = int(n_items)
    if n_items < 0:
        raise ValueError(f"n_items must be >= 0, got {n_items}")
    shard = int(shard)
    if shard < 1:
        raise ValueError(f"shard must be >= 1, got {shard}")
    return [
        (first, min(shard, n_items - first)) for first in range(0, n_items, shard)
    ]


def apportion_samples(n: int, weights: Sequence[float]) -> list[int]:
    """Largest-remainder apportionment of ``n`` samples over ``weights``.

    Returns non-negative integers that sum *exactly* to ``n`` (unlike
    per-entry rounding, which can over- or under-shoot).  Ties in the
    fractional remainders break toward lower indices, deterministically.
    """
    n = int(n)
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    w = np.asarray(weights, dtype=float)
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    total = w.sum()
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    quota = n * w / total
    base = np.floor(quota).astype(np.int64)
    remainder = n - int(base.sum())
    if remainder:
        order = np.argsort(-(quota - base), kind="stable")
        base[order[:remainder]] += 1
    return [int(x) for x in base]


@dataclasses.dataclass(frozen=True)
class StateRun:
    """One state population to evaluate: ``n_samples`` cells against ``tau``.

    ``entropy``/``prefix`` address the run's position in the seed spawn
    tree; its blocks occupy keys ``prefix + (0,) ... prefix + (n_blocks-1,)``.
    """

    state: StateParams
    tau: float
    n_samples: int
    entropy: int
    prefix: tuple[int, ...] = ()


@dataclasses.dataclass(frozen=True, eq=False)
class _Task:
    """A contiguous range of one run's blocks, evaluated by one worker."""

    item: int
    state: StateParams
    tau: float
    n_tiers: int
    first_block: int
    sizes: tuple[int, ...]
    entropy: int
    prefix: tuple[int, ...]
    L_grid: np.ndarray
    schedule: TieredDrift


def _eval_task(task: _Task) -> np.ndarray:
    """Error counts of one task's blocks against the sorted ``L_grid``."""
    # Imported here (not at module top) so the import graph stays acyclic:
    # cer.py orchestrates through this module.
    from repro.montecarlo.cer import critical_log_times, sample_state_cells

    # Only observable with in-process execution (jobs=1): worker
    # processes do not share the chaos registry's module globals.
    fault_point("executor.task", item=task.item, first_block=task.first_block)

    m = len(task.L_grid)
    counts = np.zeros(m, dtype=np.int64)
    for start in range(0, len(task.sizes), _FUSE_BLOCKS):
        group = task.sizes[start : start + _FUSE_BLOCKS]
        # Draw each block from its own generator, in block order, so the
        # per-block sample stream is untouched (ENGINE_VERSION stays valid).
        lr0s, alphas, zs = [], [], []
        tier_zs: list[list[np.ndarray]] = [[] for _ in range(task.n_tiers)]
        for offset, size in enumerate(group, start=start):
            rng = block_rng(task.entropy, task.prefix + (task.first_block + offset,))
            lr0, alpha, z = sample_state_cells(task.state, size, rng)
            lr0s.append(lr0)
            alphas.append(alpha)
            zs.append(z)
            for k in range(task.n_tiers):
                tier_zs[k].append(rng.standard_normal(size))
        tier_z = None
        if task.n_tiers:
            tier_z = [np.concatenate(parts) for parts in tier_zs]
        L_star = critical_log_times(
            np.concatenate(lr0s),
            np.concatenate(alphas),
            np.concatenate(zs),
            task.state.drift.mu_alpha,
            task.tau,
            task.schedule,
            tier_z,
        )
        # errors by time t  <=>  L* <= L(t).  For each sample, the first
        # grid index j with L_grid[j] >= L* is searchsorted-left; that
        # sample contributes to counts[j:], so a bincount over the indices
        # followed by a cumsum is the fused equivalent of the old
        # per-block sort + searchsorted(L_star, L_grid, "right").
        idx = np.searchsorted(task.L_grid, L_star, side="left")
        counts += np.cumsum(np.bincount(idx, minlength=m + 1)[:m])
    return counts


def run_counts(
    runs: Sequence[StateRun],
    L_grid: np.ndarray,
    schedule: TieredDrift = PAPER_ESCALATION,
    chunk: int = DEFAULT_CHUNK,
    jobs: int | None = 1,
) -> list[np.ndarray]:
    """Evaluate several state populations, fanning blocks over a process pool.

    Returns one ``int64`` error-count vector (aligned with the sorted
    ``L_grid``) per run.  All runs share one pool, so a design's states
    load-balance across workers; with ``jobs=1`` everything runs inline.
    """
    global _BLOCKS_EVALUATED
    L = np.ascontiguousarray(L_grid, dtype=float)
    jobs = resolve_jobs(jobs)
    blocks_per_task = max(1, int(chunk) // RNG_BLOCK)

    tasks: list[_Task] = []
    for item, run in enumerate(runs):
        sizes = plan_blocks(run.n_samples)
        n_tiers = 0
        if schedule.mode == "independent" and np.isfinite(run.tau):
            n_tiers = len(schedule.tiers_between(-np.inf, run.tau))
        for start in range(0, len(sizes), blocks_per_task):
            tasks.append(
                _Task(
                    item=item,
                    state=run.state,
                    tau=float(run.tau),
                    n_tiers=n_tiers,
                    first_block=start,
                    sizes=tuple(sizes[start : start + blocks_per_task]),
                    entropy=run.entropy,
                    prefix=tuple(run.prefix),
                    L_grid=L,
                    schedule=schedule,
                )
            )

    out = [np.zeros(L.size, dtype=np.int64) for _ in runs]
    if jobs <= 1 or len(tasks) <= 1:
        results = [_eval_task(t) for t in tasks]
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
            results = list(pool.map(_eval_task, tasks))
    for task, counts in zip(tasks, results):
        out[task.item] += counts
        _BLOCKS_EVALUATED += len(task.sizes)
    return out
