"""Semi-analytic CER evaluation (deep-tail companion to the Monte Carlo).

For fixed drift-exponent quantiles the drift trajectory is deterministic
and piecewise linear in ``L = log10(t / t0)``, so the minimal initial
resistance ``lr0_min`` that errs by time ``t`` has a closed form per tier
segment.  The error probability is then an exact truncated-normal tail in
``lr0``, and only the exponent quantiles need quadrature:

- modes where the escalated exponent is a deterministic function of the
  original draw (``correlated`` / ``mean`` / ``offset``) need a single
  1-D quadrature over ``z``;
- the default ``independent`` mode draws a fresh exponent at the (single)
  escalation tier, requiring a 2-D quadrature over ``(z0, z2)``.

This resolves rates far below any Monte Carlo floor (1e-30 and beyond) and
is smooth — which is what the Section 5.1 mapping optimizer needs for its
objective.

Vectorization (docs/MODELING.md, "Vectorized CER core"): the time grid is
an array axis of every kernel, and the batched entry points
:func:`analytic_state_cer_batch` / :func:`analytic_design_cer_batch` stack
the ``(mu_r, sg_r, mu_a, sg_a, tau)`` parameter rows of many states —
across many candidate designs — grouping rows that share a z-grid, so a
whole optimizer grid scan reduces to a few broadcasted contractions.  The
kernels evaluate the same nodes, weights, and tail formulas as the old
per-time scalar loop, in the same reduction order, so batching is a pure
reshaping; the scalar API routes through the batch kernels.  The 2-D
independent-mode kernel additionally fills only the narrow band of
quadrature cells where the write tail is strictly between 0 and 1 — the
``np.where`` in :func:`_r_tail` makes saturation *exact*, so skipping the
saturated cells provably cannot change any result.  Intermediate tensors
are chunked along the row axis to bound memory.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.special import ndtr

from repro.cells.drift import DriftTier, PAPER_ESCALATION, TieredDrift
from repro.cells.params import T0_SECONDS, WRITE_TRUNCATION_SIGMA, StateParams
from repro.core.levels import LevelDesign

__all__ = [
    "analytic_state_cer",
    "analytic_design_cer",
    "analytic_state_cer_batch",
    "analytic_design_cer_batch",
]

_TRUNC = WRITE_TRUNCATION_SIGMA

#: Element budget for one broadcasted ``(rows, times, z)`` quadrature
#: tensor (~16 MB of float64); row batches are chunked to stay below it.
_CHUNK_ELEMENTS = 2_000_000


def _r_tail(
    x: np.ndarray | float, mu_r: np.ndarray | float, sg_r: np.ndarray | float
) -> np.ndarray:
    """P(lr0 >= x) for the truncated-Gaussian write distribution (exact).

    Saturation is exact: outside the +-``_TRUNC`` band the ``np.where``
    returns the literals 0.0 / 1.0, which is what lets the banded
    independent-mode kernel skip saturated quadrature cells without
    changing any bit of the result.  ``mu_r``/``sg_r`` may be arrays
    broadcastable against ``x``.
    """
    z_norm = ndtr(_TRUNC) - ndtr(-_TRUNC)
    zz = (np.asarray(x, dtype=float) - mu_r) / sg_r
    tail = (ndtr(_TRUNC) - ndtr(np.clip(zz, -_TRUNC, _TRUNC))) / z_norm
    return np.where(zz >= _TRUNC, 0.0, np.where(zz <= -_TRUNC, 1.0, tail))


def _z_grid(
    z_lo: float, z_hi: float, n: int, renormalize_from: float | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Nodes and trapezoid-weighted standard-normal masses on [z_lo, z_hi].

    When ``renormalize_from`` is given, weights are normalized by the tail
    mass beyond that point (for the alpha >= 0 truncation).
    """
    nodes = np.linspace(z_lo, z_hi, n)
    pdf = np.exp(-0.5 * nodes**2) / np.sqrt(2 * np.pi)
    w = np.zeros_like(nodes)
    dz = np.diff(nodes)
    w[:-1] += dz / 2
    w[1:] += dz / 2
    weights = pdf * w
    if renormalize_from is not None:
        weights = weights / (1.0 - ndtr(renormalize_from))
    return nodes, weights


def _alpha0_grid(
    mu_a: float, sg_a: float, z_points: int, z_max: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Original-exponent quadrature: nodes, weights, clipped alpha values."""
    if sg_a == 0.0:
        z_nodes = np.array([0.0])
        weights = np.array([1.0])
    else:
        z_lo = -mu_a / sg_a  # truncation: alpha >= 0
        z_nodes, weights = _z_grid(z_lo, z_max, z_points, renormalize_from=z_lo)
    return z_nodes, weights, np.maximum(mu_a + z_nodes * sg_a, 0.0)


def _deterministic_rows_cer(
    mu_r: np.ndarray,
    sg_r: np.ndarray,
    taus: np.ndarray,
    tiers: tuple[DriftTier, ...],
    schedule: TieredDrift,
    mu_a: float,
    sg_a: float,
    L: np.ndarray,
    z_points: int,
    z_max: float,
) -> np.ndarray:
    """1-D quadrature rows: escalated alpha is a function of the original z.

    All rows share the drift parameters and the exact tier subset (hence
    one z-grid and one slope table); ``taus`` is the per-row upper
    threshold.  Returns CER of shape ``(n_rows, n_times)``.
    """
    if schedule.mode == "independent" and tiers:
        raise ValueError(
            "deterministic-mode quadrature cannot cross tiers in "
            "'independent' mode: the escalated exponent is a fresh draw, "
            "not a function of z — route through the independent-mode kernel"
        )
    z_nodes, weights, alphas0 = _alpha0_grid(mu_a, sg_a, z_points, z_max)

    K = len(tiers)
    breaks = [t.lr_break for t in tiers]

    # Per-z slope in each segment.  Segment k spans (B[k], B[k+1]); a cell
    # programmed in segment k drifts with its own draw there, then
    # escalates at each boundary it crosses.  For the deterministic modes
    # the escalated exponent is the same function of z regardless of the
    # starting segment, so slopes are shared across rows too.
    slopes = [alphas0] + [
        schedule.escalated_alpha(tier, alphas0, z_nodes, mu_a, z_fresh=None)
        for tier in tiers
    ]

    # T[k] = log-time to climb from B[k+1] to tau through later segments.
    # Only the topmost segment's height (tau - breaks[-1]) is row-dependent.
    n_z = z_nodes.size
    T: list[np.ndarray] = [np.zeros((1, n_z)) for _ in range(K + 1)]
    for k in range(K - 1, -1, -1):
        if k == K - 1:
            seg_h: np.ndarray | float = taus[:, None] - breaks[K - 1]
        else:
            seg_h = breaks[k + 1] - breaks[k]
        with np.errstate(divide="ignore"):
            dT = np.where(slopes[k + 1] > 0, seg_h / slopes[k + 1], np.inf)
        T[k] = T[k + 1] + dT

    R = mu_r.size
    out = np.empty((R, L.size))
    Lb = L[None, :, None]
    chunk = max(1, _CHUNK_ELEMENTS // max(1, L.size * n_z))
    for r0 in range(0, R, chunk):
        rows = slice(r0, min(r0 + chunk, R))
        tau_b = taus[rows, None, None]
        shape = (tau_b.shape[0], L.size, n_z)
        lr0_min = np.broadcast_to(tau_b, shape).copy()
        settled = np.zeros(shape, dtype=bool)
        for k in range(K, -1, -1):
            Tk = T[k][:, None, :] if T[k].shape[0] == 1 else T[k][rows, None, :]
            upper = tau_b if k == K else breaks[k]
            lower = -np.inf if k == 0 else breaks[k - 1]
            feasible = Lb >= Tk
            with np.errstate(invalid="ignore"):
                cand = upper - slopes[k] * np.maximum(Lb - Tk, 0.0)
            cand = np.where(slopes[k] > 0, cand, upper)
            take = feasible & (cand >= lower) & ~settled
            lr0_min = np.where(take, cand, lr0_min)
            settled |= take
        tail = _r_tail(lr0_min, mu_r[rows, None, None], sg_r[rows, None, None])
        out[rows] = np.sum(weights * tail, axis=-1)
    return out


def _p_below_banded(
    mu_r: float,
    sg_r: float,
    b: float,
    tail_b: float,
    alpha0: np.ndarray,
    w0: np.ndarray,
    budget_ok: np.ndarray,
    w2_ok: np.ndarray,
) -> float:
    """Below-boundary error mass at one time, via a band-limited fill.

    The dense ``(n0, n_ok)`` crossing matrix has exactly three regimes per
    column: small ``alpha0`` puts the crossing level above the truncated
    write support (tail exactly 0), large ``alpha0`` puts it below (tail
    exactly 1, contribution exactly ``max(1 - tail_b, 0)``), and only the
    band in between needs ndtr.  The band bounds are widened by a relative
    guard, so boundary rounding can only move an exactly-saturated entry
    *into* the band — where the full formula reproduces the same exact
    value.  The final contraction is the same dense ``w0 @ frac @ w2``
    as the pre-vectorization implementation.
    """
    u = b - mu_r
    lo_level = u - _TRUNC * sg_r  # alpha0 * budget <= this  =>  tail == 0
    hi_level = u + _TRUNC * sg_r  # alpha0 * budget >= this  =>  tail == 1
    with np.errstate(divide="ignore", over="ignore"):
        a_lo = lo_level / budget_ok
        a_hi = hi_level / budget_ok
    a_lo = a_lo - np.abs(a_lo) * 1e-9 - 1e-12
    a_hi = a_hi + np.abs(a_hi) * 1e-9 + 1e-12
    i1 = np.searchsorted(alpha0, a_lo, side="left")
    i2 = np.maximum(np.searchsorted(alpha0, a_hi, side="right"), i1)

    n0 = alpha0.size
    lens = i2 - i1
    total = int(lens.sum())
    if total > 0.25 * n0 * budget_ok.size:
        # Wide band: the gather/scatter bookkeeping costs more than it
        # saves — evaluate the dense matrix directly (same values).
        lo = b - alpha0[:, None] * budget_ok[None, :]
        frac = np.maximum(_r_tail(lo, mu_r, sg_r) - tail_b, 0.0)
        return float(w0 @ frac @ w2_ok)
    frac = np.zeros((n0, budget_ok.size))
    sat = np.maximum(1.0 - tail_b, 0.0)
    if sat > 0.0:
        frac[np.arange(n0)[:, None] >= i2[None, :]] = sat
    if total:
        col = np.repeat(np.arange(budget_ok.size), lens)
        starts = np.concatenate(([0], np.cumsum(lens)[:-1]))
        ii = i1[col] + (np.arange(total) - np.repeat(starts, lens))
        lo = b - alpha0[ii] * budget_ok[col]
        frac[ii, col] = np.maximum(_r_tail(lo, mu_r, sg_r) - tail_b, 0.0)
    return float(w0 @ frac @ w2_ok)


def _independent_rows_cer(
    mu_r: np.ndarray,
    sg_r: np.ndarray,
    taus: np.ndarray,
    tier: DriftTier,
    mu_a: float,
    sg_a: float,
    L: np.ndarray,
    z_points: int,
    z_max: float,
) -> np.ndarray:
    """2-D quadrature rows for a single independent escalation tier."""
    b = tier.lr_break
    _, w0, alpha0 = _alpha0_grid(mu_a, sg_a, z_points, z_max)

    # Fresh tier draw: untruncated standard normal, exponent clipped at 0
    # (matching the MC implementation).
    z2_nodes, w2 = _z_grid(-z_max, z_max, z_points)
    alpha2 = np.maximum(tier.mu_alpha + z2_nodes * tier.sigma_alpha, 0.0)

    R = taus.size
    out = np.empty((R, L.size))
    # Cells programmed at/above the tier boundary: no escalation, error
    # iff lr0 >= max(b, tau - alpha0 * L).
    chunk = max(1, _CHUNK_ELEMENTS // max(1, L.size * alpha0.size))
    for r0 in range(0, R, chunk):
        rows = slice(r0, min(r0 + chunk, R))
        lvl = np.maximum(
            b, taus[rows, None, None] - alpha0[None, None, :] * L[None, :, None]
        )
        hi_start = _r_tail(lvl, mu_r[rows, None, None], sg_r[rows, None, None])
        out[rows] = np.sum(w0 * hi_start, axis=-1)

    # Cells programmed below the boundary: cross with budget to spare.
    for r in range(R):
        tail_b = float(_r_tail(b, float(mu_r[r]), float(sg_r[r])))
        if tail_b >= 1.0:
            # Boundary at/below the write support: a crossed cell errs
            # with probability max(tail - 1, 0) = 0 exactly — skip.
            continue
        with np.errstate(divide="ignore"):
            c2 = np.where(alpha2 > 0, (taus[r] - b) / alpha2, np.inf)  # climb b->tau
        for it in range(L.size):
            budget = L[it] - c2  # (n2,)
            ok = budget > 0
            if np.any(ok):
                out[r, it] += _p_below_banded(
                    float(mu_r[r]), float(sg_r[r]), b, tail_b,
                    alpha0, w0, budget[ok], w2[ok],
                )
    return out


def analytic_state_cer_batch(
    states: Sequence[StateParams],
    taus_up: Sequence[float],
    times_s: Sequence[float],
    schedule: TieredDrift = PAPER_ESCALATION,
    z_points: int = 1201,
    z_max: float = 8.5,
) -> np.ndarray:
    """CER rows for many ``(state, tau)`` pairs over one time grid.

    Row ``r`` equals ``analytic_state_cer(states[r], taus_up[r], times_s,
    ...)``: duplicate rows are evaluated once, and rows sharing a z-grid
    (same drift parameters and tier subset) are evaluated as one
    broadcasted contraction.  Returns shape ``(len(states), len(times))``.
    """
    states = list(states)
    taus_arr = np.asarray([float(t) for t in taus_up], dtype=float)
    if len(states) != taus_arr.size:
        raise ValueError("states and taus_up must have equal length")
    times = np.asarray(times_s, dtype=float)
    if np.any(times < T0_SECONDS):
        raise ValueError("all times must be >= t0")
    L = np.log10(times / T0_SECONDS)

    # A row's CER depends only on these five numbers (plus the schedule).
    unique: dict[tuple[float, float, float, float, float], int] = {}
    row_of = np.empty(len(states), dtype=np.intp)
    params: list[tuple[float, float, float, float, float]] = []
    for r, (state, tau) in enumerate(zip(states, taus_arr)):
        key = (
            state.mu_lr,
            state.sigma_lr,
            state.drift.mu_alpha,
            state.drift.sigma_alpha,
            float(tau),
        )
        if key not in unique:
            unique[key] = len(params)
            params.append(key)
        row_of[r] = unique[key]

    det_groups: dict[tuple, list[int]] = {}
    ind_groups: dict[tuple, list[int]] = {}
    for uidx, (_, _, mu_a, sg_a, tau) in enumerate(params):
        if not np.isfinite(tau):
            continue  # top state: stays exactly zero
        tiers = tuple(schedule.tiers_between(-np.inf, tau))
        if schedule.mode == "independent" and tiers:
            if len(tiers) > 1:
                raise NotImplementedError(
                    "independent escalation is implemented for a single tier "
                    "(the paper's schedule); use MC for multi-tier schedules"
                )
            ind_groups.setdefault((mu_a, sg_a, tiers[0]), []).append(uidx)
        else:
            det_groups.setdefault((mu_a, sg_a, tiers), []).append(uidx)

    uniq_cer = np.zeros((len(params), times.size))
    arr = np.asarray(params, dtype=float).reshape(len(params), 5)
    for (mu_a, sg_a, tiers), idxs in det_groups.items():
        sel = np.asarray(idxs, dtype=np.intp)
        uniq_cer[sel] = _deterministic_rows_cer(
            arr[sel, 0], arr[sel, 1], arr[sel, 4],
            tiers, schedule, mu_a, sg_a, L, z_points, z_max,
        )
    for (mu_a, sg_a, tier), idxs in ind_groups.items():
        sel = np.asarray(idxs, dtype=np.intp)
        uniq_cer[sel] = _independent_rows_cer(
            arr[sel, 0], arr[sel, 1], arr[sel, 4],
            tier, mu_a, sg_a, L, z_points, z_max,
        )
    return uniq_cer[row_of]


def analytic_state_cer(
    state: StateParams,
    tau_up: float,
    times_s: Sequence[float],
    schedule: TieredDrift = PAPER_ESCALATION,
    z_points: int = 1201,
    z_max: float = 8.5,
) -> np.ndarray:
    """CER of one state at each time, by quadrature + exact lr0 tail."""
    return analytic_state_cer_batch(
        [state], [tau_up], times_s,
        schedule=schedule, z_points=z_points, z_max=z_max,
    )[0]


def analytic_design_cer_batch(
    designs: Sequence[LevelDesign],
    times_s: Sequence[float],
    schedule: TieredDrift = PAPER_ESCALATION,
    z_points: int = 1201,
    z_max: float = 8.5,
) -> np.ndarray:
    """Occupancy-weighted CER curves of many designs in one batched call.

    Stacks every active ``(state, tau)`` row of every design into one
    :func:`analytic_state_cer_batch` evaluation — candidate designs from
    an optimizer grid share most of their rows, so the whole scan costs a
    few contractions.  Returns shape ``(len(designs), len(times))``.
    """
    designs = list(designs)
    times = np.asarray(times_s, dtype=float)
    row_states: list[StateParams] = []
    row_taus: list[float] = []
    row_w: list[float] = []
    row_owner: list[int] = []
    for j, design in enumerate(designs):
        for i, (state, p_occ) in enumerate(zip(design.states, design.occupancy)):
            tau = design.upper_threshold(i)
            if not np.isfinite(tau) or p_occ == 0.0:
                continue
            row_states.append(state)
            row_taus.append(float(tau))
            row_w.append(float(p_occ))
            row_owner.append(j)
    out = np.zeros((len(designs), times.size))
    if not row_states:
        return out
    cer = analytic_state_cer_batch(
        row_states, row_taus, times,
        schedule=schedule, z_points=z_points, z_max=z_max,
    )
    # Accumulate in per-design state order, matching the scalar loop.
    for j, w, row in zip(row_owner, row_w, cer):
        out[j] += w * row
    return out


def analytic_design_cer(
    design: LevelDesign,
    times_s: Sequence[float],
    schedule: TieredDrift = PAPER_ESCALATION,
    z_points: int = 1201,
) -> np.ndarray:
    """Occupancy-weighted semi-analytic CER of a level design."""
    return analytic_design_cer_batch(
        [design], times_s, schedule=schedule, z_points=z_points
    )[0]
