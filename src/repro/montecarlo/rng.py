"""Reproducible random sampling utilities for the Monte Carlo engine."""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.special import ndtr, ndtri

__all__ = [
    "make_rng",
    "spawn_rngs",
    "block_rng",
    "seed_entropy",
    "truncated_normal",
    "truncated_normal_from_uniform",
    "alpha_samples",
]


def make_rng(seed: int | np.random.Generator | None = 0) -> np.random.Generator:
    """Return a Generator; pass through if one is given already."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None, n: int) -> list[np.random.Generator]:
    """n independent generators from one seed (for chunked / parallel MC)."""
    ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


def block_rng(entropy: int | None, key: Sequence[int]) -> np.random.Generator:
    """Child generator at spawn-tree position ``key`` under root ``entropy``.

    ``block_rng(seed, (i,))`` draws the same stream as ``spawn_rngs(seed,
    n)[i]`` for any ``n > i``: a ``SeedSequence`` child is fully addressed
    by ``(entropy, spawn_key)``, so parallel workers can build exactly the
    generator their block needs without materializing the whole spawn list.
    """
    ss = np.random.SeedSequence(entropy, spawn_key=tuple(int(k) for k in key))
    return np.random.default_rng(ss)


def seed_entropy(seed: int | np.random.Generator | None = 0) -> int:
    """Root entropy of a deterministic spawn tree, from any seed spec.

    Integers pass through unchanged; ``None`` draws fresh OS entropy; a
    Generator contributes one draw from its own stream (reproducible given
    the generator's state).
    """
    if isinstance(seed, np.random.Generator):
        return int(seed.integers(0, 2**63))
    if seed is None:
        return int(np.random.SeedSequence().entropy)
    return int(seed)


def truncated_normal(
    rng: np.random.Generator,
    mu: float,
    sigma: float,
    z_lo: float,
    z_hi: float,
    size: int,
) -> np.ndarray:
    """Samples from N(mu, sigma) truncated to ``[mu + z_lo*sigma, mu + z_hi*sigma]``.

    Uses the inverse-CDF method (vectorized, no rejection loop), which is
    exact and fast for the mild truncations used here.
    """
    if sigma == 0.0:
        return np.full(size, mu)
    if z_lo >= z_hi:
        raise ValueError("z_lo must be < z_hi")
    u = rng.random(size)
    return truncated_normal_from_uniform(u, mu, sigma, z_lo, z_hi)


def truncated_normal_from_uniform(
    u: np.ndarray,
    mu: float,
    sigma: float,
    z_lo: float,
    z_hi: float,
) -> np.ndarray:
    """The deterministic tail of :func:`truncated_normal`.

    Maps already-drawn uniforms through the inverse CDF.  Batch engines
    (``repro.fleet.soa``) draw per-device uniforms in stream order and
    push the whole wave through this in one call; sharing the expression
    with :func:`truncated_normal` keeps the two paths bit-identical.
    """
    if z_lo >= z_hi:
        raise ValueError("z_lo must be < z_hi")
    p_lo, p_hi = ndtr(z_lo), ndtr(z_hi)
    z = ndtri(p_lo + np.asarray(u) * (p_hi - p_lo))
    return mu + sigma * z


def alpha_samples(
    rng: np.random.Generator, mu_alpha: float, sigma_alpha: float, size: int
) -> tuple[np.ndarray, np.ndarray]:
    """Drift exponents truncated at zero, plus their standardized quantiles.

    Returns ``(alpha, z)`` where ``alpha = mu + z * sigma`` and ``z`` is used
    by correlated tier escalation (a fast cell stays fast after escalation).
    """
    if mu_alpha == 0.0 or sigma_alpha == 0.0:
        return np.full(size, mu_alpha), np.zeros(size)
    z_lo = -mu_alpha / sigma_alpha  # alpha >= 0
    p_lo = ndtr(z_lo)
    u = rng.random(size)
    z = ndtri(p_lo + u * (1.0 - p_lo))
    return mu_alpha + sigma_alpha * z, z
