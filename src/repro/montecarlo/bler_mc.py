"""Empirical end-to-end BLER via the batched Figure-9 datapath.

The analytic Figure 5 curves (:func:`repro.analysis.bler.block_error_rate`)
assume one erring cell is exactly one correctable bit error.  This engine
*measures* the block error rate instead: it encodes random data through
the 3-ON-2 pipeline, flips cells at a given per-cell error rate (CER),
decodes with the vectorized :class:`repro.coding.batch.BatchThreeOnTwoCodec`,
and counts blocks whose recovered data differs from what was written or
whose decode flagged an uncorrectable condition.  At matched operating
points the analytic value must fall inside the empirical Clopper-Pearson
interval (:func:`repro.analysis.bler.binom_confidence`) — the
cross-validation the acceptance tests and ``repro bler --empirical`` run.

Error injection model: an erring cell moves to the adjacent state
(S1→S2, S2→S4, S4→S2).  Each such move flips exactly one bit of the
cell's Gray-coded TEC pair, so the number of TEC bit errors per block is
``Binomial(n_cells, cer)`` — precisely the analytic model's assumption,
which makes the comparison apples-to-apples.

Determinism contract (same as :mod:`repro.montecarlo.executor`): work is
split into fixed :data:`~repro.montecarlo.executor.RNG_BLOCK`-sized RNG
blocks, each seeded as a pure function of ``(entropy, BLER_SPAWN_KEY,
block index)``.  Results are bit-identical for any ``chunk``/``jobs``
setting, which is also why those knobs are absent from the cache key
(:func:`repro.montecarlo.results_cache.bler_counts_key`).

All CER points share *common random numbers*: one uniform draw per cell
is compared against each threshold, so the empirical curve is monotone
in ``cer`` by construction and point-to-point differences have far lower
variance than independent runs would.
"""

from __future__ import annotations

import dataclasses
import functools
from concurrent.futures import ProcessPoolExecutor
from typing import Sequence

import numpy as np

from repro.analysis.bler import binom_confidence
from repro.chaos.registry import fault_point
from repro.coding.batch import BatchThreeOnTwoCodec
from repro.coding.blockcodec import ThreeOnTwoBlockCodec
from repro.montecarlo.executor import RNG_BLOCK, plan_blocks, resolve_jobs
from repro.montecarlo.results_cache import ResultsCache, bler_counts_key
from repro.montecarlo.rng import block_rng, seed_entropy

__all__ = [
    "BLER_SPAWN_KEY",
    "DEFAULT_CHUNK_BLOCKS",
    "BlerResult",
    "bler_mc",
]

#: Spawn-key namespace separating BLER draws from every other consumer of
#: the shared entropy (CER engines use bare block indices; campaign jobs
#: use their own prefixes).
BLER_SPAWN_KEY = 0xB1E6

#: Blocks per worker task: 10 RNG blocks, ~36 MB of peak temporaries in
#: the batched decode — large enough to amortize process dispatch, small
#: enough that a dozen workers fit comfortably in memory.
DEFAULT_CHUNK_BLOCKS = 100_000

#: Adjacent-state error injection LUT: S1->S2, S2->S4, S4->S2.  Each move
#: flips exactly one Gray-coded TEC bit (00->01, 01->11, 11->01), keeping
#: the per-block error count Binomial(n_cells, cer) like the analytic model.
ERR_STATE = np.array([1, 2, 1], dtype=np.uint8)
ERR_STATE.setflags(write=False)


@functools.lru_cache(maxsize=8)
def _batch_codec(data_bits: int, n_spare_pairs: int) -> BatchThreeOnTwoCodec:
    # Cached per geometry: building the codec precomputes packed GF(2)
    # check-matrix masks and the discrete-log locator, which every task
    # in a pool worker reuses.
    return BatchThreeOnTwoCodec(
        ThreeOnTwoBlockCodec(data_bits=data_bits, n_spare_pairs=n_spare_pairs)
    )


@dataclasses.dataclass(frozen=True)
class _BlerTask:
    """One picklable unit of work: a run of RNG blocks, all missing CERs."""

    item: int
    data_bits: int
    n_spare_pairs: int
    cers: tuple[float, ...]
    first_block: int
    sizes: tuple[int, ...]
    entropy: int


def _eval_bler_task(task: _BlerTask) -> np.ndarray:
    """Evaluate one task; returns ``(len(cers), 2)`` silent/error counts.

    Each RNG block draws its data and uniforms once and reuses them for
    every CER (common random numbers): the encode — the expensive half of
    the round trip — runs once per block regardless of how many operating
    points are being filled in.
    """
    fault_point("executor.task", item=task.item, first_block=task.first_block)
    bc = _batch_codec(task.data_bits, task.n_spare_pairs)
    n_cells = bc.codec.n_mlc_cells
    counts = np.zeros((len(task.cers), 2), dtype=np.int64)
    for offset, size in enumerate(task.sizes):
        rng = block_rng(task.entropy, (BLER_SPAWN_KEY, task.first_block + offset))
        # Draw order is part of the determinism contract: data first,
        # then one uniform per cell.
        data = rng.integers(0, 2, size=(size, task.data_bits), dtype=np.uint8)
        u = rng.random((size, n_cells))
        states, checks = bc.encode(data)
        for j, cer in enumerate(task.cers):
            err = u < cer
            read = np.where(err, ERR_STATE[states], states)
            out = bc.decode(read, checks)
            mismatch = np.any(out.data_bits != data, axis=1)
            silent = mismatch & ~out.uncorrectable
            errors = out.uncorrectable | mismatch
            counts[j, 0] += int(silent.sum())
            counts[j, 1] += int(errors.sum())
    return counts


@dataclasses.dataclass(frozen=True)
class BlerResult:
    """Empirical outcome of one (CER, n_blocks) operating point.

    ``n_errors`` counts blocks that failed in *any* way — a decode that
    raised a failure flag or returned wrong data.  ``n_silent`` is the
    subset that returned wrong data without flagging (multi-error escapes
    past the invalid-pattern check); always ``<= n_errors``.
    """

    cer: float
    n_blocks: int
    n_silent: int
    n_errors: int

    @property
    def n_detected(self) -> int:
        """Blocks that failed and said so."""
        return self.n_errors - self.n_silent

    @property
    def bler(self) -> float:
        """Point estimate of the block error rate."""
        if self.n_blocks == 0:
            return 0.0
        return self.n_errors / self.n_blocks

    def confidence(self, level: float = 0.95) -> tuple[float, float]:
        """Exact two-sided binomial CI on the block error rate."""
        return binom_confidence(self.n_errors, self.n_blocks, level)


def bler_mc(
    cers: float | Sequence[float],
    n_blocks: int,
    seed: int | np.random.Generator | None = 0,
    *,
    data_bits: int = 512,
    n_spare_pairs: int = 6,
    chunk: int = DEFAULT_CHUNK_BLOCKS,
    jobs: int | None = 1,
    cache: ResultsCache | None = None,
) -> list[BlerResult]:
    """Measure end-to-end BLER at one or more CER points.

    Pushes ``n_blocks`` random 3-ON-2 blocks through encode, adjacent-state
    error injection at each ``cer``, and the batched Figure-9 decode,
    returning one :class:`BlerResult` per requested point (in input
    order).  Results are bit-identical for any ``chunk``/``jobs``
    combination; with a :class:`ResultsCache`, previously measured points
    are served without recomputation.
    """
    cer_list = [float(c) for c in np.atleast_1d(np.asarray(cers, dtype=float))]
    if not cer_list:
        raise ValueError("need at least one CER point")
    for c in cer_list:
        if not 0.0 <= c <= 1.0:
            raise ValueError(f"cer must be in [0, 1], got {c}")
    n_blocks = int(n_blocks)
    if n_blocks < 1:
        raise ValueError(f"need at least one block, got {n_blocks}")
    entropy = seed_entropy(seed)

    totals: dict[float, np.ndarray] = {}
    missing: list[float] = []
    for c in dict.fromkeys(cer_list):  # unique, order-preserving
        cached = None
        if cache is not None:
            key = bler_counts_key(
                c, data_bits, n_spare_pairs, n_blocks, entropy, (BLER_SPAWN_KEY,)
            )
            cached = cache.get_counts(key, expected_len=2)
        if cached is not None:
            totals[c] = cached
        else:
            missing.append(c)

    if missing:
        sizes = plan_blocks(n_blocks)
        blocks_per_task = max(1, int(chunk) // RNG_BLOCK)
        tasks = [
            _BlerTask(
                item=i,
                data_bits=data_bits,
                n_spare_pairs=n_spare_pairs,
                cers=tuple(missing),
                first_block=lo,
                sizes=tuple(sizes[lo : lo + blocks_per_task]),
                entropy=entropy,
            )
            for i, lo in enumerate(range(0, len(sizes), blocks_per_task))
        ]
        n_jobs = resolve_jobs(jobs)
        if n_jobs <= 1 or len(tasks) <= 1:
            parts = [_eval_bler_task(t) for t in tasks]
        else:
            with ProcessPoolExecutor(max_workers=min(n_jobs, len(tasks))) as pool:
                parts = list(pool.map(_eval_bler_task, tasks))
        summed = np.sum(parts, axis=0, dtype=np.int64)
        for j, c in enumerate(missing):
            totals[c] = summed[j]
            if cache is not None:
                key = bler_counts_key(
                    c, data_bits, n_spare_pairs, n_blocks, entropy, (BLER_SPAWN_KEY,)
                )
                cache.put_counts(key, summed[j])

    return [
        BlerResult(
            cer=c,
            n_blocks=n_blocks,
            n_silent=int(totals[c][0]),
            n_errors=int(totals[c][1]),
        )
        for c in cer_list
    ]
