"""Drift cell-error-rate engines: chunked Monte Carlo (with a parallel
block executor and a persistent result cache) and semi-analytic deep-tail
evaluation."""
