"""Drift cell-error-rate engines: chunked Monte Carlo and semi-analytic deep-tail evaluation."""
