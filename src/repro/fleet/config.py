"""Fleet population model: configuration and per-device heterogeneity.

A fleet is ``n_devices`` independent :class:`~repro.core.device.PCMDevice`
instances, each with its own drawn operating conditions.  The Table-1
drift exponent is not one constant in the field: cryogenic-drift
measurements (Talukder et al., arXiv 2401.04909) and high-field-stress
results (Khan et al., arXiv 2002.12487) both show alpha shifting with the
cell's environment, so the minimal honest population model spreads
devices over heterogeneity axes:

- **temperature bucket** — a weighted categorical draw; each bucket
  scales every drift-exponent distribution (states *and* the escalation
  schedule) by a common factor;
- **alpha jitter** — a per-device lognormal factor on top of the bucket
  (process spread between dies);
- **endurance scale** — a per-device lognormal factor on the wearout
  model's mean endurance;
- **workload** — a weighted choice of :data:`repro.workloads.synthetic.TRACE_KINDS`
  profile driving that device's write-traffic mix.

Heterogeneity deliberately touches only drift *rates* and wear budgets —
never the level positions or sensing thresholds — so every device shares
one codec geometry and one threshold set, and the population read path
batches through :class:`~repro.coding.batch.BatchThreeOnTwoCodec`.

All draws come from a dedicated per-device SeedSequence stream
(:func:`device_params`), so device ``i``'s parameters are a pure function
of ``(entropy, i)`` — independent of shard layout, chunking, and worker
count.  The single-device differential suite rebuilds the same parameters
through this module and drives a plain :class:`PCMDevice`, which is what
pins the fleet physics to the existing path.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping

import numpy as np

from repro.cells.drift import DriftTier, TieredDrift
from repro.cells.faults import WearoutModel
from repro.cells.params import DriftParams
from repro.core.designs import design_by_name
from repro.core.levels import LevelDesign
from repro.montecarlo.rng import block_rng
from repro.workloads.synthetic import TRACE_KINDS

__all__ = [
    "FLEET_SPAWN_KEY",
    "KEY_DEVICE",
    "KEY_HETERO",
    "KEY_DATA",
    "DeviceParams",
    "FleetConfig",
    "config_from_params",
    "device_params",
    "hetero_draws",
    "stress_config",
]

#: Root of the fleet's SeedSequence spawn-key domain.  Disjoint from the
#: MC executor's block fan-out, the service's device streams, and the
#: chaos stream, so fleet draws can never collide with any of them.
FLEET_SPAWN_KEY = 0xF1EE

#: Sub-domains under :data:`FLEET_SPAWN_KEY`, one triple of independent
#: streams per device index:
#: device physics (endurance/mode init + every program draw).
KEY_DEVICE = 0
#: heterogeneity (temperature bucket, jitters, workload choice).
KEY_HETERO = 1
#: data plane (per-epoch trace slices + payload bits).
KEY_DATA = 2


@dataclasses.dataclass(frozen=True)
class FleetConfig:
    """Everything that defines a fleet run except the seed.

    ``temp_buckets`` is ``((weight, alpha_scale), ...)``;
    ``workload_mix`` is ``((weight, kind), ...)`` over
    :data:`~repro.workloads.synthetic.TRACE_KINDS`.  ``write_fraction=None``
    keeps each profile's own default mix.  Epochs are virtual time: all
    demand writes of epoch ``e`` land at ``e * epoch_seconds``; the
    scrub pass reads, error-checks, and refreshes every written block at
    ``(e + 1) * epoch_seconds``.
    """

    n_devices: int = 1_000
    n_epochs: int = 4
    n_blocks: int = 3
    ops_per_epoch: int = 6
    epoch_seconds: float = 1e6
    design: str = "3LCo"
    data_bits: int = 512
    # Base wearout model (per-device mean endurance is scaled from this).
    mean_endurance: float = 1e5
    endurance_sigma: float = 0.25
    p_stuck_reset: float = 0.5
    p_revive: float = 0.9
    # Heterogeneity axes.
    temp_buckets: tuple[tuple[float, float], ...] = (
        (0.25, 0.8),
        (0.50, 1.0),
        (0.25, 1.3),
    )
    alpha_jitter_sigma: float = 0.10
    endurance_jitter_sigma: float = 0.20
    workload_mix: tuple[tuple[float, str], ...] = (
        (0.40, "stream"),
        (0.35, "random"),
        (0.25, "zipfian"),
    )
    write_fraction: float | None = None

    def __post_init__(self) -> None:
        if self.n_devices < 1:
            raise ValueError("n_devices must be >= 1")
        if self.n_epochs < 1:
            raise ValueError("n_epochs must be >= 1")
        if self.n_blocks < 1:
            raise ValueError("n_blocks must be >= 1")
        if self.ops_per_epoch < 0:
            raise ValueError("ops_per_epoch must be >= 0")
        if self.epoch_seconds <= 0:
            raise ValueError("epoch_seconds must be positive")
        if not self.temp_buckets:
            raise ValueError("need at least one temperature bucket")
        if not self.workload_mix:
            raise ValueError("need at least one workload in the mix")
        for weight, scale in self.temp_buckets:
            if weight < 0 or scale <= 0:
                raise ValueError("temp buckets need weight >= 0, scale > 0")
        if sum(w for w, _ in self.temp_buckets) <= 0:
            raise ValueError("temp bucket weights must sum to > 0")
        for weight, kind in self.workload_mix:
            if weight < 0:
                raise ValueError("workload weights must be >= 0")
            if kind not in TRACE_KINDS:
                raise ValueError(
                    f"unknown workload kind {kind!r} (known: {TRACE_KINDS})"
                )
        if sum(w for w, _ in self.workload_mix) <= 0:
            raise ValueError("workload weights must sum to > 0")
        design_by_name(self.design)  # raises on unknown names

    def key_payload(self) -> dict[str, Any]:
        """Canonical JSON-safe form for cache-key hashing.

        Floats go through ``repr`` (shortest round-trip form) so the
        payload is bit-stable across processes, like every other
        results-cache key.
        """

        def _cf(x: float) -> str:
            return repr(float(x))

        return {
            "n_devices": int(self.n_devices),
            "n_epochs": int(self.n_epochs),
            "n_blocks": int(self.n_blocks),
            "ops_per_epoch": int(self.ops_per_epoch),
            "epoch_seconds": _cf(self.epoch_seconds),
            "design": str(self.design),
            "data_bits": int(self.data_bits),
            "wearout": {
                "mean_endurance": _cf(self.mean_endurance),
                "endurance_sigma": _cf(self.endurance_sigma),
                "p_stuck_reset": _cf(self.p_stuck_reset),
                "p_revive": _cf(self.p_revive),
            },
            "temp_buckets": [[_cf(w), _cf(s)] for w, s in self.temp_buckets],
            "alpha_jitter_sigma": _cf(self.alpha_jitter_sigma),
            "endurance_jitter_sigma": _cf(self.endurance_jitter_sigma),
            "workload_mix": [[_cf(w), str(k)] for w, k in self.workload_mix],
            "write_fraction": (
                None if self.write_fraction is None else _cf(self.write_fraction)
            ),
        }


def stress_config(**overrides: Any) -> FleetConfig:
    """A wear-accelerated preset: devices die within a handful of epochs.

    The paper-faithful endurance (~1e5 writes/cell) would need tens of
    thousands of epochs before the first spare-exhaustion; tests, the CI
    smoke campaign, and hazard-curve demos use this compressed budget
    instead.  Physics is unchanged — only the wearout model's scale.
    """
    params: dict[str, Any] = {
        "mean_endurance": 80.0,
        "endurance_sigma": 0.4,
        "p_stuck_reset": 1.0,
        "p_revive": 0.0,
    }
    params.update(overrides)
    return FleetConfig(**params)


#: Params ``config_from_params`` forwards verbatim to :class:`FleetConfig`.
_CONFIG_PARAMS = (
    "n_blocks",
    "ops_per_epoch",
    "epoch_seconds",
    "design",
    "mean_endurance",
    "endurance_sigma",
    "p_stuck_reset",
    "p_revive",
    "alpha_jitter_sigma",
    "endurance_jitter_sigma",
    "write_fraction",
)


def config_from_params(
    params: Mapping[str, Any], n_devices: int, n_epochs: int
) -> FleetConfig:
    """Build a :class:`FleetConfig` from loosely-typed job/CLI params.

    The shared front door for the campaign job kind, the service job
    manager, and the CLI subcommand, so all three construct identical
    configs (and therefore identical cache keys) from the same inputs.
    ``preset="stress"`` starts from :func:`stress_config` defaults.
    """
    preset = params.get("preset", "default")
    if preset not in ("default", "stress"):
        raise ValueError(f"unknown fleet preset {preset!r}")
    kwargs: dict[str, Any] = {
        "n_devices": int(n_devices),
        "n_epochs": int(n_epochs),
    }
    for name in _CONFIG_PARAMS:
        if name in params and params[name] is not None:
            kwargs[name] = params[name]
    if preset == "stress":
        return stress_config(**kwargs)
    return FleetConfig(**kwargs)


@dataclasses.dataclass(frozen=True)
class DeviceParams:
    """One device's drawn operating point."""

    index: int
    design: LevelDesign
    schedule: TieredDrift
    wearout: WearoutModel
    workload: str
    temp_scale: float
    alpha_jitter: float
    endurance_scale: float


def _weighted_choice(u: float, weights: list[float]) -> int:
    """Index drawn by one uniform variate over (unnormalized) weights."""
    cum = np.cumsum(np.asarray(weights, dtype=float))
    return int(np.searchsorted(cum / cum[-1], u, side="right").clip(0, len(weights) - 1))


def _scale_drift(design: LevelDesign, factor: float) -> LevelDesign:
    """Scale every state's drift-exponent distribution by ``factor``."""
    states = tuple(
        dataclasses.replace(
            s,
            drift=DriftParams(
                mu_alpha=s.drift.mu_alpha * factor,
                sigma_alpha=s.drift.sigma_alpha * factor,
            ),
        )
        for s in design.states
    )
    return dataclasses.replace(design, states=states)


def _scale_schedule(schedule: TieredDrift, factor: float) -> TieredDrift:
    tiers = tuple(
        DriftTier(
            lr_break=t.lr_break,
            mu_alpha=t.mu_alpha * factor,
            sigma_alpha=t.sigma_alpha * factor,
        )
        for t in schedule.tiers
    )
    return dataclasses.replace(schedule, tiers=tiers)


def hetero_draws(
    config: FleetConfig, g: np.random.Generator
) -> tuple[int, float, float, str]:
    """The four heterogeneity draws, in frozen stream order.

    Returns ``(bucket, alpha_jitter, endurance_scale, workload)``.  Draw
    order (fixed forever; reordering is a
    :data:`~repro.fleet.engine.FLEET_VERSION` bump): temperature-bucket
    uniform, alpha-jitter normal, endurance-scale normal, workload
    uniform.  Shared by :func:`device_params` and the
    structure-of-arrays engine's population init, which skips the
    per-device dataclass construction but must consume the identical
    draws.
    """
    bucket = _weighted_choice(float(g.random()), [w for w, _ in config.temp_buckets])
    alpha_jitter = float(np.exp(config.alpha_jitter_sigma * g.standard_normal()))
    endurance_scale = float(
        np.exp(config.endurance_jitter_sigma * g.standard_normal())
    )
    workload = config.workload_mix[
        _weighted_choice(float(g.random()), [w for w, _ in config.workload_mix])
    ][1]
    return bucket, alpha_jitter, endurance_scale, workload


def device_params(config: FleetConfig, entropy: int, index: int) -> DeviceParams:
    """Draw device ``index``'s operating point from its hetero stream.

    See :func:`hetero_draws` for the frozen draw order.
    """
    from repro.cells.drift import PAPER_ESCALATION

    g = block_rng(entropy, (FLEET_SPAWN_KEY, KEY_HETERO, index))
    bucket, alpha_jitter, endurance_scale, workload = hetero_draws(config, g)

    temp_scale = float(config.temp_buckets[bucket][1])
    factor = temp_scale * alpha_jitter
    wearout = WearoutModel(
        mean_endurance=config.mean_endurance * endurance_scale,
        endurance_sigma=config.endurance_sigma,
        p_stuck_reset=config.p_stuck_reset,
        p_revive=config.p_revive,
    )
    return DeviceParams(
        index=index,
        design=_scale_drift(design_by_name(config.design), factor),
        schedule=_scale_schedule(PAPER_ESCALATION, factor),
        wearout=wearout,
        workload=workload,
        temp_scale=temp_scale,
        alpha_jitter=alpha_jitter,
        endurance_scale=endurance_scale,
    )
