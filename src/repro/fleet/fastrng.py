"""Batched construction of the fleet's per-device generator streams.

Device ``i`` of a fleet draws from three :class:`numpy.random.Generator`
streams addressed ``SeedSequence(entropy, spawn_key=(FLEET_SPAWN_KEY,
key, i))`` (see :mod:`repro.fleet.config`).  Building those one at a
time costs ~17us each — two SeedSequence constructions plus the pool
mixing — which dominates engine construction for large populations.

This module replicates the two expensive pieces with array math across
the device axis:

- **Pool mixing / ``generate_state``** — the SeedSequence hash schedule
  (``hashmix``/``mix`` over a 4-word entropy pool) is data-independent
  in its multiplier chain, so a population whose spawn keys differ only
  in the trailing device-index word vectorizes directly.
- **PCG64 seeding** — ``PCG64(seedseq)`` maps the four ``uint64`` words
  ``w`` of ``generate_state(4)`` to its 128-bit LCG state through an
  affine ``state = (inc + seed) * A + inc`` with ``seed = w0<<64 | w1``
  and ``inc = ((w2<<64 | w3) << 1) | 1``.  The multiplier ``A`` is an
  implementation detail that has differed between numpy builds, so it is
  *solved from reference constructions at import of the fast path* and
  the whole pipeline is verified against ``np.random.PCG64`` on fresh
  samples.  Any mismatch disables the fast path.

Everything here is guarded by one-time self-checks against the real
numpy implementations; on failure callers transparently fall back to
:func:`repro.montecarlo.rng.block_rng` and per-write ``integers`` draws,
trading speed for the identical bit streams.
"""

from __future__ import annotations

import numpy as np

from repro.montecarlo.rng import block_rng

__all__ = [
    "FastSeeder",
    "draw_payloads",
    "merged_normals_ok",
    "payload_fast_ok",
]

# SeedSequence hash constants (Melissa O'Neill's seed-sequence design, as
# shipped in numpy's _seed_seq; verified by the self-check below).
_INIT_A = np.uint64(0x43B0D7E5)
_MULT_A = np.uint64(0x931E8875)
_INIT_B = np.uint64(0x8B51F9DD)
_MULT_B = np.uint64(0x58F38DED)
_MIX_L = np.uint64(0xCA01F9DD)
_MIX_R = np.uint64(0x4973F715)
_XSHIFT = np.uint64(16)
_POOL_SIZE = 4
_M32 = np.uint64(0xFFFFFFFF)
_MASK32 = (1 << 32) - 1
_MASK128 = (1 << 128) - 1


def _words_of(value: int) -> list[int]:
    """Little-endian 32-bit limbs of a non-negative int (``[0]`` for 0)."""
    if value == 0:
        return [0]
    out = []
    while value:
        out.append(value & _MASK32)
        value >>= 32
    return out


def _padded_entropy_words(entropy: int) -> list[int]:
    """The run-entropy words as SeedSequence hashes them before a spawn key.

    The entropy is zero-padded to the pool size when a spawn key follows
    (SeedSequence does this so sibling spawn trees with short entropies
    cannot collide); fleet keys always carry a spawn key.
    """
    words = _words_of(entropy)
    if len(words) < _POOL_SIZE:
        words = words + [0] * (_POOL_SIZE - len(words))
    return words


def _hashmix(v: np.ndarray, hash_const: np.uint64) -> tuple[np.ndarray, np.uint64]:
    v = (v ^ hash_const) & _M32
    hash_const = (hash_const * _MULT_A) & _M32
    v = (v * hash_const) & _M32
    v ^= v >> _XSHIFT
    return v & _M32, hash_const


def _mix(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    r = (x * _MIX_L - y * _MIX_R) & _M32
    r ^= r >> _XSHIFT
    return r & _M32


def _batched_state_words(prefix: list[int], last: np.ndarray) -> list[np.ndarray]:
    """``generate_state(4, uint64)`` for many keys ``prefix + [last[j]]``.

    The hash-constant chain is data-independent, so the pool schedule
    runs once with the per-key entropy words broadcast along axis 0.
    Returns four ``uint64`` arrays (the state words, in order).
    """
    n = last.size
    n_words = len(prefix) + 1
    words = np.empty((n, n_words), dtype=np.uint64)
    words[:, :-1] = np.asarray(prefix, dtype=np.uint64)
    words[:, -1] = last

    hc = _INIT_A
    pool: list[np.ndarray] = []
    for i in range(_POOL_SIZE):
        v, hc = _hashmix(words[:, i], hc)
        pool.append(v)
    for i_src in range(_POOL_SIZE):
        for i_dst in range(_POOL_SIZE):
            if i_src != i_dst:
                h, hc = _hashmix(pool[i_src], hc)
                pool[i_dst] = _mix(pool[i_dst], h)
    for i_src in range(_POOL_SIZE, n_words):
        # One hashmix per (word, pool slot): the hash constant advances
        # on every call, so the four mixes see four different hashes.
        for i_dst in range(_POOL_SIZE):
            h, hc = _hashmix(words[:, i_src], hc)
            pool[i_dst] = _mix(pool[i_dst], h)

    hcb = _INIT_B
    out32: list[np.ndarray] = []
    for i in range(8):
        v = pool[i % _POOL_SIZE]
        v = (v ^ hcb) & _M32
        hcb = (hcb * _MULT_B) & _M32
        v = (v * hcb) & _M32
        v ^= v >> _XSHIFT
        out32.append(v & _M32)
    return [out32[2 * j] | (out32[2 * j + 1] << np.uint64(32)) for j in range(4)]


def _solve_pcg_multiplier() -> int | None:
    """Recover PCG64's seeding multiplier ``A`` from reference states.

    ``state = ((inc + seed) * A + inc) mod 2**128`` with ``inc + seed``
    odd is invertible, so one reference construction determines ``A``;
    the remaining samples verify the structural assumption.  Returns
    ``None`` when the installed numpy does not follow this form.
    """
    samples = []
    for entropy, key in ((12345, (7, 0)), (987654321, (3, 1)), (0, (9, 2)), (2**61 - 1, (5, 3))):
        ss = np.random.SeedSequence(entropy, spawn_key=key)
        w = [int(v) for v in ss.generate_state(4, np.uint64)]
        seed = (w[0] << 64) | w[1]
        inc_in = (w[2] << 64) | w[3]
        inc = ((inc_in << 1) | 1) & _MASK128
        state = int(np.random.PCG64(ss).state["state"]["state"])
        samples.append((seed, inc, state))

    mult = None
    for seed, inc, state in samples:
        base = (inc + seed) & _MASK128
        if base % 2 == 1:
            mult = ((state - inc) * pow(base, -1, 1 << 128)) & _MASK128
            break
    if mult is None:
        return None
    for seed, inc, state in samples:
        if ((inc + seed) * mult + inc) & _MASK128 != state:
            return None
    return mult


_DUMMY_SEEDSEQ = np.random.SeedSequence(0)


def _make_generator(state: int, inc: int) -> np.random.Generator:
    bg = np.random.PCG64(_DUMMY_SEEDSEQ)
    bg.state = {
        "bit_generator": "PCG64",
        "state": {"state": state, "inc": inc},
        "has_uint32": 0,
        "uinteger": 0,
    }
    return np.random.Generator(bg)


class FastSeeder:
    """Population-batched replacement for per-device :func:`block_rng`.

    ``generators(entropy, prefix, indices)`` returns the same streams as
    ``[block_rng(entropy, prefix + (i,)) for i in indices]``.  One shared
    instance runs the multiplier solve and an end-to-end verification
    once per process; when either fails, ``generators`` falls back to
    the scalar path (identical output, just slower).
    """

    _shared: "FastSeeder | None" = None

    def __init__(self) -> None:
        self._mult = _solve_pcg_multiplier()
        self._ok = self._mult is not None and self._verify()

    @classmethod
    def shared(cls) -> "FastSeeder":
        if cls._shared is None:
            cls._shared = cls()
        return cls._shared

    @property
    def fast(self) -> bool:
        return self._ok

    def _verify(self) -> bool:
        idx = np.array([0, 1, 2, 1023, 99999], dtype=np.int64)
        for entropy, prefix in ((424242, (0xF1EE, 1)), (2**62 + 11, (0xF1EE, 2))):
            fastened = self._batched(entropy, prefix, idx)
            for j, i in enumerate(idx):
                ref = np.random.PCG64(
                    np.random.SeedSequence(entropy, spawn_key=(*prefix, int(i)))
                ).state["state"]
                if fastened[j] != (ref["state"], ref["inc"]):
                    return False
        return True

    def _batched(
        self, entropy: int, prefix_key: tuple[int, ...], indices: np.ndarray
    ) -> list[tuple[int, int]]:
        """Per-index ``(state, inc)`` pairs of the seeded PCG64s."""
        prefix_words = _padded_entropy_words(int(entropy))
        for k in prefix_key:
            prefix_words += _words_of(int(k))
        w = _batched_state_words(prefix_words, indices.astype(np.uint64))
        mult = self._mult
        assert mult is not None
        out: list[tuple[int, int]] = []
        w0, w1, w2, w3 = (x.tolist() for x in w)
        for j in range(indices.size):
            seed = (w0[j] << 64) | w1[j]
            inc = ((((w2[j] << 64) | w3[j]) << 1) | 1) & _MASK128
            out.append((((inc + seed) * mult + inc) & _MASK128, inc))
        return out

    def generators(
        self, entropy: int, prefix_key: tuple[int, ...], indices: np.ndarray
    ) -> list[np.random.Generator]:
        """One generator per device index, in ``indices`` order."""
        indices = np.asarray(indices, dtype=np.int64)
        if (
            not self._ok
            or indices.size == 0
            or int(indices.max(initial=0)) >= 2**32
            or int(indices.min(initial=0)) < 0
        ):
            return [
                block_rng(entropy, (*prefix_key, int(i))) for i in indices
            ]
        return [
            _make_generator(state, inc)
            for state, inc in self._batched(entropy, prefix_key, indices)
        ]


# ----------------------------------------------------------------------
# Payload and normal-draw batching self-checks.
_PAYLOAD_OK: bool | None = None
_MERGED_NORMALS_OK: bool | None = None


def payload_fast_ok() -> bool:
    """Can ``integers(0, 2, bits, uint8)`` payload draws be batched?

    The fast path draws the same bits as ``m`` successive per-write
    calls from one full-range ``uint64`` draw (bit 7 of each byte, which
    is where Lemire's bounded sampler leaves the 0/1 outcome).  Verified
    once per process — values, generator end state, and the absence of a
    buffered half-word (``has_uint32``) all must match, otherwise the
    caller keeps the scalar calls.
    """
    global _PAYLOAD_OK
    if _PAYLOAD_OK is None:
        a = np.random.default_rng(999)
        b = np.random.default_rng(999)
        want = np.stack([a.integers(0, 2, 512, dtype=np.uint8) for _ in range(3)])
        got = _payload_words(b, 3, 512)
        sa, sb = a.bit_generator.state, b.bit_generator.state
        _PAYLOAD_OK = bool(
            np.array_equal(want, got)
            and sa["state"] == sb["state"]
            and sa["has_uint32"] == sb["has_uint32"] == 0
        )
    return _PAYLOAD_OK


def _payload_words(g: np.random.Generator, m: int, data_bits: int) -> np.ndarray:
    # The masked-rejection sampler consumes one byte of raw output per
    # 0/1 draw and keeps its high bit, so bits = data_bits buffered bytes.
    words = g.integers(0, 2**64, size=m * data_bits // 8, dtype=np.uint64)
    return (words.view(np.uint8) >> 7).reshape(m, data_bits)


def draw_payloads(g: np.random.Generator, m: int, data_bits: int) -> np.ndarray:
    """``m`` write payloads from ``g`` — bit-identical to ``m`` scalar draws.

    Callers must gate on :func:`payload_fast_ok` and ``data_bits % 8 == 0``
    (the fleet default 512 qualifies); the bounded-sampler replication is
    only exact for generators with no buffered half-word, which holds for
    streams that are *only* ever used through this function.
    """
    return _payload_words(g, m, data_bits)


def merged_normals_ok() -> bool:
    """Is ``standard_normal(a + b)`` equal to two successive draws?

    The ziggurat sampler fills output sequentially with independent
    draws, so batching holds structurally; this pins it against the
    installed numpy once per process before the wave engine merges the
    per-program exponent draws into one call.
    """
    global _MERGED_NORMALS_OK
    if _MERGED_NORMALS_OK is None:
        a = np.random.default_rng(2024)
        b = np.random.default_rng(2024)
        want = np.concatenate([a.standard_normal(354), a.standard_normal(354)])
        got = b.standard_normal(708)
        _MERGED_NORMALS_OK = bool(
            np.array_equal(want, got)
            and a.bit_generator.state == b.bit_generator.state
        )
    return _MERGED_NORMALS_OK
