"""Sharded fleet campaigns: deterministic fan-out, caching, summaries.

The fleet's unit of work is a fixed-size *device shard*
(:data:`FLEET_SHARD_DEVICES` devices, via
:func:`repro.montecarlo.executor.shard_ranges`).  A shard's count matrix
is a pure function of ``(config, entropy, first_device, n_devices)``:
every device stream is addressed by global index under
:data:`~repro.fleet.config.FLEET_SPAWN_KEY`, so results are
**bit-identical for any worker count and any shard size** — and shard
granularity, like chunk/jobs everywhere else in the Monte Carlo stack,
is deliberately absent from the cache key.

Per-shard entries live in the PR-1 :class:`ResultsCache`, keyed by
:func:`fleet_counts_key` (salted with ``ENGINE_VERSION``,
``DATAPATH_VERSION``, and :data:`~repro.fleet.engine.FLEET_VERSION`).
The stored vector is the *flattened running total* of the
``(n_epochs, N_COUNTERS)`` matrix: per-epoch counters are non-negative,
so the flat cumulative sum is non-decreasing — the structural shape the
cache's integrity check expects — and ``np.diff(..., prepend=0)``
inverts it exactly.

Shards only hold device state while they compute (~25 kB/device), so a
1e5-device fleet never materializes at once; the reduction keeps just
one count matrix per shard.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from concurrent.futures import ProcessPoolExecutor
from typing import Any

import numpy as np

from repro.analysis.fleet import hazard_curve, lifetime_percentiles, survival_curve
from repro.chaos.registry import fault_point
from repro.coding.batch import DATAPATH_VERSION
from repro.fleet.config import FleetConfig
from repro.fleet.engine import (
    COUNTERS,
    FLEET_VERSION,
    N_COUNTERS,
    PROGRAM_NJ_PER_CELL,
    SENSE_NJ_PER_CELL,
    FleetEngine,
    counter_index,
)
from repro.montecarlo.executor import ENGINE_VERSION, resolve_jobs, shard_ranges
from repro.montecarlo.results_cache import ResultsCache
from repro.montecarlo.rng import seed_entropy

__all__ = [
    "FLEET_SHARD_DEVICES",
    "FleetSummary",
    "fleet_counts_key",
    "fleet_mc",
]

#: Devices per shard: the caching/fan-out granularity.  ~25 kB of device
#: state each, so a shard peaks around 25 MB per worker; at ~100-200 us
#: per device-epoch a shard is seconds of work — plenty to amortize
#: process dispatch.
FLEET_SHARD_DEVICES = 1024


def fleet_counts_key(
    config: FleetConfig, entropy: int, first_device: int, n_devices: int
) -> str:
    """Stable content hash for one device shard's count matrix.

    Salted with :data:`ENGINE_VERSION` (RNG fan-out contract),
    :data:`DATAPATH_VERSION` (batched codec semantics), and
    :data:`FLEET_VERSION` (epoch phases, heterogeneity draws, counter
    layout): changing any of the three orphans stale entries.  Worker
    count and shard grouping are absent — results are invariant to both.
    """
    payload = {
        "engine": ENGINE_VERSION,
        "datapath": DATAPATH_VERSION,
        "fleet": FLEET_VERSION,
        "kind": "fleet-counts",
        "config": config.key_payload(),
        "shard": {"first": int(first_device), "n": int(n_devices)},
        "seed": {"entropy": int(entropy)},
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _encode_counts(counts: np.ndarray) -> np.ndarray:
    """Flatten ``(n_epochs, N_COUNTERS)`` to the cache's cumsum form."""
    return np.cumsum(counts.reshape(-1), dtype=np.int64)


def _decode_counts(vec: np.ndarray, n_epochs: int) -> np.ndarray:
    """Invert :func:`_encode_counts`."""
    flat = np.diff(vec, prepend=np.int64(0))
    return flat.reshape(n_epochs, N_COUNTERS)


@dataclasses.dataclass(frozen=True)
class _FleetTask:
    """One picklable unit: a run of consecutive device shards."""

    item: int
    config: FleetConfig
    entropy: int
    shards: tuple[tuple[int, int], ...]
    engine: str | None = None


def _eval_fleet_task(task: _FleetTask) -> list[np.ndarray]:
    """Count matrices of the task's shards, epoch by epoch.

    Epochs advance one at a time with a fault point between, so chaos
    plans can kill a campaign mid-population; the engine itself stays
    chaos-free.
    """
    fault_point("executor.task", item=task.item, first_block=task.shards[0][0])
    out = []
    for first, n in task.shards:
        engine = FleetEngine(task.config, task.entropy, first, n, engine=task.engine)
        counts = np.zeros((task.config.n_epochs, N_COUNTERS), dtype=np.int64)
        for e in range(task.config.n_epochs):
            fault_point("fleet.epoch", epoch=e, first_device=first)
            counts[e] = engine.advance(1)[0]
        out.append(counts)
    return out


@dataclasses.dataclass(frozen=True)
class FleetSummary:
    """Reduced outcome of one fleet run.

    ``counts`` is the fleet-total ``(n_epochs, N_COUNTERS)`` matrix (see
    :data:`~repro.fleet.engine.COUNTERS`); everything else is derived
    from it, so two runs with equal ``counts`` summarize identically.
    """

    config: FleetConfig
    entropy: int
    counts: np.ndarray

    def per_epoch(self, name: str) -> np.ndarray:
        """One counter's per-epoch vector."""
        return self.counts[:, counter_index(name)].copy()

    def total(self, name: str) -> int:
        """One counter summed over all epochs."""
        return int(self.counts[:, counter_index(name)].sum())

    @property
    def deaths_per_epoch(self) -> np.ndarray:
        return self.per_epoch("deaths")

    @property
    def n_dead(self) -> int:
        return self.total("deaths")

    @property
    def refresh_energy_nj(self) -> float:
        """Energy charged to maintenance: scrub sensing + refresh programs."""
        return (
            self.total("cell_programs_refresh") * PROGRAM_NJ_PER_CELL
            + self.total("cells_sensed") * SENSE_NJ_PER_CELL
        )

    @property
    def write_energy_nj(self) -> float:
        """Energy charged to demand writes."""
        return self.total("cell_programs_write") * PROGRAM_NJ_PER_CELL

    @property
    def silent_error_rate(self) -> float:
        """Silent corruptions per maintenance read."""
        reads = self.total("reads")
        return self.total("silent") / reads if reads else 0.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready summary: totals, distributions, energy, hazard."""
        d = self.deaths_per_epoch
        n = self.config.n_devices
        return {
            "n_devices": n,
            "n_epochs": int(self.config.n_epochs),
            "entropy": int(self.entropy),
            "fleet_version": FLEET_VERSION,
            "totals": {name: self.total(name) for name in COUNTERS},
            "per_epoch": {
                name: [int(x) for x in self.per_epoch(name)] for name in COUNTERS
            },
            "lifetime_epochs": lifetime_percentiles(d, n),
            "hazard": hazard_curve(d, n),
            "survival": survival_curve(d, n),
            "n_dead": self.n_dead,
            "silent_error_rate": self.silent_error_rate,
            "refresh_energy_nj": self.refresh_energy_nj,
            "write_energy_nj": self.write_energy_nj,
        }


def fleet_mc(
    config: FleetConfig,
    seed: int | np.random.Generator | None = 0,
    *,
    jobs: int | None = 1,
    cache: ResultsCache | None = None,
    shard_devices: int = FLEET_SHARD_DEVICES,
    shards_per_task: int = 1,
    engine: str | None = None,
) -> FleetSummary:
    """Simulate the whole fleet, sharded over a process pool.

    With a :class:`ResultsCache`, each shard's count matrix round-trips
    through a :func:`fleet_counts_key` entry: a warm rerun of the same
    ``(config, seed)`` recomputes nothing.  ``shard_devices`` and
    ``shards_per_task`` never change the result (only the fan-out), and
    only ``shard_devices`` changes which cache entries serve it.

    ``engine`` picks the epoch-loop implementation (see
    :func:`~repro.fleet.engine.FleetEngine`); both produce bit-identical
    counts, so it is deliberately absent from the cache key.
    """
    entropy = seed_entropy(seed)
    shards = shard_ranges(config.n_devices, shard_devices)
    expected_len = config.n_epochs * N_COUNTERS

    per_shard: dict[tuple[int, int], np.ndarray] = {}
    missing: list[tuple[int, int]] = []
    for first, n in shards:
        cached = None
        if cache is not None:
            key = fleet_counts_key(config, entropy, first, n)
            cached = cache.get_counts(key, expected_len=expected_len)
        if cached is not None:
            per_shard[(first, n)] = _decode_counts(cached, config.n_epochs)
        else:
            missing.append((first, n))

    if missing:
        group = max(1, int(shards_per_task))
        tasks = [
            _FleetTask(
                item=i,
                config=config,
                entropy=entropy,
                shards=tuple(missing[lo : lo + group]),
                engine=engine,
            )
            for i, lo in enumerate(range(0, len(missing), group))
        ]
        n_jobs = resolve_jobs(jobs)
        if n_jobs <= 1 or len(tasks) <= 1:
            parts = [_eval_fleet_task(t) for t in tasks]
        else:
            with ProcessPoolExecutor(max_workers=min(n_jobs, len(tasks))) as pool:
                parts = list(pool.map(_eval_fleet_task, tasks))
        for task, matrices in zip(tasks, parts):
            for shard, counts in zip(task.shards, matrices):
                per_shard[shard] = counts
                if cache is not None:
                    key = fleet_counts_key(config, entropy, shard[0], shard[1])
                    cache.put_counts(key, _encode_counts(counts))

    total = np.zeros((config.n_epochs, N_COUNTERS), dtype=np.int64)
    for shard in shards:
        total += per_shard[shard]
    return FleetSummary(config=config, entropy=entropy, counts=total)
