"""Structure-of-arrays fleet engine: the epoch loop as array programs.

:class:`SoaFleetEngine` is the vectorized twin of
:class:`~repro.fleet.engine.ObjectFleetEngine`.  It holds the whole
population's state in the flat arrays of
:class:`~repro.fleet.state.SoaFleetState` and advances an epoch with
array operations end to end — batched traffic and payload draws, fused
drift + sense over every scrubbed block at once, and wave-vectorized
program passes — while remaining **bit-identical** to the object engine:
same per-device RNG streams, consumed in the same per-device order, same
counters, same state digests.

Two facts make the vectorization sound:

- Devices are independent.  Each owns its three generator streams, so
  work may be *reordered across devices* freely as long as each device's
  own draw order is preserved.  The engine exploits this with *waves*:
  wave ``w`` programs the ``w``-th write of every device concurrently —
  within a device, writes still happen in trace order.
- Sensing draws no randomness, so phase D's fused drift/threshold pass
  over all ``(device, block)`` rows touches no stream at all.

**Fast/slow epoch split.**  While no cell in the population has reached
its endurance budget (tracked with a cheap wear upper bound against the
population's minimum endurance), an epoch provably cannot produce
faults, verify failures, retries, marks, or deaths — so the per-write
retry loop collapses to straight-line array code.  Once wear makes
faults possible, the engine switches to a scalar-exact port of the
object engine's retry/mark/death semantics operating on the same arrays
(:meth:`_write_encoded` and friends), so stress configs and end-of-life
fleets take the identical code path decisions.  Mixed histories are
fine: the split is decided per epoch from state alone, which keeps
``advance(a); advance(b)`` equal to ``advance(a + b)``.

The batched generator seeding and payload draws come from
:mod:`repro.fleet.fastrng`; each is verified against numpy once per
process and silently falls back to the scalar constructions when the
installed numpy disagrees.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.cells.cell_array import (
    cell_state_digest,
    drifted_log_resistance,
    programmed_alpha,
    programmed_log_resistance,
)
from repro.cells.drift import PAPER_ESCALATION, independent_escalated_alpha
from repro.cells.faults import FaultMode
from repro.cells.params import T0_SECONDS, WRITE_TRUNCATION_SIGMA
from repro.core.designs import design_by_name
from repro.core.device import DeviceStats, SpareExhausted, device_state_digest
from repro.fleet.config import (
    FLEET_SPAWN_KEY,
    KEY_DATA,
    KEY_DEVICE,
    KEY_HETERO,
    DeviceParams,
    FleetConfig,
    device_params,
    hetero_draws,
)
from repro.fleet.engine import N_COUNTERS, _batch_codec, counter_index
from repro.fleet.fastrng import (
    FastSeeder,
    draw_payloads,
    merged_normals_ok,
    payload_fast_ok,
)
from repro.fleet.state import SoaFleetState, alive_indices
from repro.montecarlo.rng import truncated_normal, truncated_normal_from_uniform
from repro.wearout.mark_and_spare import MarkAndSpareBlock
from repro.workloads.synthetic import draw_ops_fast

__all__ = ["SoaDeviceView", "SoaFleetEngine"]

_HEALTHY = FaultMode.HEALTHY.value
_STUCK_RESET = FaultMode.STUCK_RESET.value
_STUCK_SET = FaultMode.STUCK_SET.value

_C_WRITES = counter_index("writes")
_C_READS_REQ = counter_index("reads_requested")
_C_READS = counter_index("reads")
_C_REFRESHES = counter_index("refreshes")
_C_TEC = counter_index("tec_corrections")
_C_UNCORRECTABLE = counter_index("uncorrectable")
_C_SILENT = counter_index("silent")
_C_MARKS = counter_index("wearout_marks")
_C_RETRIES = counter_index("write_retries")
_C_DEATHS = counter_index("deaths")
_C_CELL_WRITE = counter_index("cell_programs_write")
_C_CELL_REFRESH = counter_index("cell_programs_refresh")
_C_SENSED = counter_index("cells_sensed")


class SoaDeviceView:
    """Read-only :class:`PCMDevice`-shaped view of one fleet device.

    What the differential suites (and summaries) need from a device:
    its :class:`DeviceStats` and its canonical state digest, both built
    from the population arrays on demand.
    """

    def __init__(self, engine: "SoaFleetEngine", k: int) -> None:
        self._engine = engine
        self._k = k

    @property
    def stats(self) -> DeviceStats:
        s = self._engine._s
        k = self._k
        return DeviceStats(
            writes=int(s.st_writes[k]),
            reads=int(s.st_reads[k]),
            refreshes=0,
            tec_corrections=int(s.st_tec[k]),
            wearout_marks=int(s.st_marks[k]),
            write_retries=int(s.st_retries[k]),
        )

    def state_digest(self) -> str:
        return self._engine._device_digest(self._k)

    def written_mask(self) -> np.ndarray:
        return self._engine._s.written[self._k].copy()

    def check_bits(self, block: int) -> np.ndarray:
        return self._engine._s.slc[self._k, block].copy()


class SoaFleetEngine:
    """A contiguous device range, advanced as one structure of arrays.

    Drop-in for :class:`~repro.fleet.engine.ObjectFleetEngine` (same
    constructor, ``advance``, counters, digests); construct via the
    :func:`~repro.fleet.engine.FleetEngine` factory.
    """

    def __init__(
        self,
        config: FleetConfig,
        entropy: int,
        first_device: int = 0,
        n_devices: int | None = None,
    ) -> None:
        self.config = config
        self.entropy = int(entropy)
        self.first_device = int(first_device)
        n = (
            config.n_devices - self.first_device
            if n_devices is None
            else int(n_devices)
        )
        if self.first_device < 0 or n < 1 or self.first_device + n > config.n_devices:
            raise ValueError(
                f"device range [{first_device}, {first_device}+{n_devices}) "
                f"outside fleet of {config.n_devices}"
            )
        self.n_devices = n
        self._epoch = 0
        self._batch = _batch_codec(config.data_bits)
        codec = self._batch.codec
        self._ms_config = codec.ms_config
        self._n_mlc = codec.n_mlc_cells
        self._n_spare_pairs = self._ms_config.n_spare_pairs

        base = design_by_name(config.design)
        if base.n_levels != 3:
            raise ValueError("the fleet engines model 3LC devices")
        schedule = PAPER_ESCALATION
        tier = schedule.tiers[0]
        self._n_levels = base.n_levels
        self._top = base.n_levels - 1
        self._thresholds = np.asarray(base.thresholds)
        self._top_lr = base.states[-1].mu_lr
        self._bot_lr = base.states[0].mu_lr
        # Write distributions are heterogeneity-free (only drift rates
        # and wear budgets vary per device; see repro.fleet.config).
        self._mu_lr = np.array([s.mu_lr for s in base.states])
        self._sg_lr = np.array([s.sigma_lr for s in base.states])
        base_mu_a = np.array([s.drift.mu_alpha for s in base.states])
        base_sg_a = np.array([s.drift.sigma_alpha for s in base.states])
        self._lr_break = tier.lr_break

        self._s = SoaFleetState(
            n,
            config.n_blocks,
            self._n_mlc,
            codec.n_slc_cells,
            self._ms_config.n_pairs,
            config.data_bits,
        )
        s = self._s
        self._alive = np.ones(n, dtype=bool)

        seeder = FastSeeder.shared()
        idx = np.arange(self.first_device, self.first_device + n, dtype=np.int64)
        g_het = seeder.generators(self.entropy, (FLEET_SPAWN_KEY, KEY_HETERO), idx)
        self._g_dev = seeder.generators(self.entropy, (FLEET_SPAWN_KEY, KEY_DEVICE), idx)
        self._g_data = seeder.generators(self.entropy, (FLEET_SPAWN_KEY, KEY_DATA), idx)

        # Per-device drawn operating points (the hetero stream's four
        # draws, in the frozen order of config.hetero_draws).
        self._mu_a = np.empty((n, self._n_levels))
        self._sg_a = np.empty((n, self._n_levels))
        self._mu_esc = np.empty(n)
        self._sg_esc = np.empty(n)
        self._workload: list[str] = []
        payload_fast = payload_fast_ok() and config.data_bits % 8 == 0
        self._payload_fast: list[bool] = []
        nc = config.n_blocks * self._n_mlc
        for k in range(n):
            bucket, alpha_jitter, endurance_scale, workload = hetero_draws(
                config, g_het[k]
            )
            factor = float(config.temp_buckets[bucket][1]) * alpha_jitter
            self._mu_a[k] = base_mu_a * factor
            self._sg_a[k] = base_sg_a * factor
            self._mu_esc[k] = tier.mu_alpha * factor
            self._sg_esc[k] = tier.sigma_alpha * factor
            self._workload.append(workload)
            self._payload_fast.append(payload_fast and workload == "stream")
            # CellArray init draws, from the device stream in its order:
            # endurance budgets first, then pending failure modes.
            g = self._g_dev[k]
            lg = g.normal(
                np.log10(config.mean_endurance * endurance_scale),
                config.endurance_sigma,
                nc,
            )
            s.endurance[k] = np.power(10.0, lg)
            reset = g.random(nc) < config.p_stuck_reset
            s.pending_mode[k] = np.where(reset, _STUCK_RESET, _STUCK_SET).astype(
                np.int8
            )
        s.lr0[:] = self._bot_lr  # fresh cells sit at the lowest level

        # Fast-epoch machinery: a cheap per-cell wear upper bound against
        # the population's minimum endurance proves fault-freeness; a
        # per-(device, block) program time serves fused sensing while
        # every block was programmed whole (always true before the first
        # slow epoch).
        self._min_endurance = float(s.endurance.min())
        self._writes_bound = 0
        self._any_fault = False
        self._tprog_uniform = True
        self._tprog_row = np.zeros((n, config.n_blocks))
        self._merged_normals = merged_normals_ok()

    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Epochs advanced so far (also the next epoch's index)."""
        return self._epoch

    def device(self, index: int) -> SoaDeviceView:
        """The device at *global* fleet index ``index``."""
        k = index - self.first_device
        if not 0 <= k < self.n_devices:
            raise IndexError(f"device {index} not in this engine's range")
        return SoaDeviceView(self, k)

    def params(self, index: int) -> DeviceParams:
        """Drawn operating point of global device ``index``."""
        k = index - self.first_device
        if not 0 <= k < self.n_devices:
            raise IndexError(f"device {index} not in this engine's range")
        return device_params(self.config, self.entropy, index)

    def alive_mask(self) -> np.ndarray:
        """Which of this engine's devices still have spare budget."""
        return self._alive.copy()

    @property
    def state_nbytes(self) -> int:
        """Bytes held by the population state arrays (telemetry)."""
        return self._s.nbytes

    def _device_digest(self, k: int) -> str:
        s = self._s
        cell = cell_state_digest(
            s.lr0[k],
            s.alpha[k],
            s.alpha_esc[k],
            s.t_prog[k],
            s.target[k],
            s.writes[k],
            s.endurance[k],
            s.fault[k],
            s.pending_mode[k],
        )
        payloads = [
            np.ascontiguousarray(s.marked[k, b]).tobytes()
            for b in range(self.config.n_blocks)
        ]
        return device_state_digest(cell, s.slc[k], s.written[k], payloads)

    def state_digest(self) -> str:
        """SHA-256 over every device's full state plus fleet bookkeeping."""
        h = hashlib.sha256()
        h.update(self._epoch.to_bytes(8, "little"))
        h.update(np.ascontiguousarray(self._alive).tobytes())
        s = self._s
        for k in range(self.n_devices):
            h.update(self._device_digest(k).encode("ascii"))
            for b in np.flatnonzero(s.has_stored[k]):
                h.update(int(b).to_bytes(4, "little"))
                h.update(np.ascontiguousarray(s.stored[k, b]).tobytes())
        return h.hexdigest()

    # ------------------------------------------------------------------
    def advance(self, n_epochs: int = 1) -> np.ndarray:
        """Run ``n_epochs`` epochs; returns ``(n_epochs, N_COUNTERS)`` counts.

        Splitting a run over successive calls is exact:
        ``advance(a); advance(b)`` produces the same device states and
        (concatenated) counts as ``advance(a + b)``.
        """
        n_epochs = int(n_epochs)
        if n_epochs < 0:
            raise ValueError(f"n_epochs must be >= 0, got {n_epochs}")
        out = np.zeros((n_epochs, N_COUNTERS), dtype=np.int64)
        for e in range(n_epochs):
            out[e] = self._advance_one()
        return out

    def _advance_one(self) -> np.ndarray:
        cfg = self.config
        c = np.zeros(N_COUNTERS, dtype=np.int64)
        t0 = self._epoch * cfg.epoch_seconds
        t1 = t0 + cfg.epoch_seconds
        alive = alive_indices(self._alive)
        # An epoch adds at most ops_per_epoch + 1 writes to any cell, so
        # while the wear bound stays below the population's minimum
        # endurance no fault (hence no retry, mark, or death) can occur.
        fast = (
            not self._any_fault
            and self._writes_bound + cfg.ops_per_epoch + 1 < self._min_endurance
        )
        if fast:
            self._fast_epoch(alive, t0, t1, c)
        else:
            self._slow_epoch(alive, t0, t1, c)
        self._writes_bound += cfg.ops_per_epoch + 1
        self._epoch += 1
        return c

    # ------------------------------------------------------------------
    # Phase A (shared): traffic + payload draws, per device in order.
    def _draw_epoch_plan(
        self, alive: np.ndarray, c: np.ndarray
    ) -> list[tuple[int, np.ndarray, np.ndarray]]:
        """Per-device ``(k, blocks, bits)`` demand-write segments.

        Consumes exactly the draws the object engine's phase A consumes:
        the trace slice from the data stream, then one payload per write
        op in trace order (reads are counted, never served).
        """
        cfg = self.config
        n_ops = cfg.ops_per_epoch
        plan: list[tuple[int, np.ndarray, np.ndarray]] = []
        reads_req = 0
        for kk in alive:
            k = int(kk)
            g = self._g_data[k]
            is_write, addr = draw_ops_fast(
                self._workload[k], n_ops, cfg.n_blocks, g, cfg.write_fraction
            )
            w = np.flatnonzero(is_write)
            m = w.size
            reads_req += n_ops - m
            if m == 0:
                continue
            if self._payload_fast[k]:
                bits = draw_payloads(g, m, cfg.data_bits)
            else:
                bits = np.empty((m, cfg.data_bits), dtype=np.uint8)
                for j in range(m):
                    bits[j] = g.integers(0, 2, cfg.data_bits, dtype=np.uint8)
            plan.append((k, addr[w], bits))
        c[_C_READS_REQ] += reads_req
        return plan

    # ------------------------------------------------------------------
    # Fast path: provably fault-free epoch, straight-line array code.
    def _fast_epoch(
        self, alive: np.ndarray, t0: float, t1: float, c: np.ndarray
    ) -> None:
        cfg = self.config
        s = self._s
        plan = self._draw_epoch_plan(alive, c)

        if plan:
            sizes = [blocks.size for _, blocks, _ in plan]
            dev_rows = np.repeat(
                np.array([k for k, _, _ in plan], dtype=np.int64), sizes
            )
            blk_rows = np.concatenate([blocks for _, blocks, _ in plan])
            bits_mat = np.vstack([bits for _, _, bits in plan])
            # Phase B: one batch encode of the epoch's demand writes.
            w_states, w_checks = self._batch.encode(
                bits_mat, s.marked[dev_rows, blk_rows]
            )
            # Phase C: program in waves (wave w = write slot w of every
            # device; within-device trace order is preserved).
            slots = np.concatenate([np.arange(m) for m in sizes])
            for w in range(max(sizes)):
                sel = np.flatnonzero(slots == w)
                devs = dev_rows[sel]
                blks = blk_rows[sel]
                self._program_wave(devs, blks, w_states[sel], t0)
                s.slc[devs, blks] = w_checks[sel]
                s.written[devs, blks] = True
                s.stored[devs, blks] = bits_mat[sel]
                s.has_stored[devs, blks] = True
                s.st_writes[devs] += 1
            r = dev_rows.size
            c[_C_WRITES] += r
            c[_C_CELL_WRITE] += r * self._n_mlc

        # Phase D: scrub every written block of every device — fused
        # drift + sense (no RNG), one batch decode, one batch re-encode,
        # refresh in waves.
        wr = s.written[alive]
        per_dev = wr.sum(axis=1)
        sdevs = np.repeat(alive, per_dev)
        sblks = np.nonzero(wr)[1]
        r2 = sdevs.size
        if r2 == 0:
            return
        sensed = self._sense_rows(sdevs, sblks, t1, pin=False)
        dec = self._batch.decode(sensed, s.slc[sdevs, sblks])
        c[_C_READS] += r2
        c[_C_SENSED] += r2 * self._n_mlc
        np.add.at(s.st_reads, sdevs, 1)
        unc = dec.uncorrectable
        c[_C_UNCORRECTABLE] += int(unc.sum())
        ok = np.flatnonzero(~unc)
        if ok.size == 0:
            return
        okd = sdevs[ok]
        okb = sblks[ok]
        tec = dec.tec_corrected[ok]
        c[_C_TEC] += int(tec.sum())
        np.add.at(s.st_tec, okd, tec)
        data = dec.data_bits[ok]
        silent = ~np.all(data == s.stored[okd, okb], axis=1)
        c[_C_SILENT] += int(silent.sum())
        f_states, f_checks = self._batch.encode(data, s.marked[okd, okb])
        # Refresh waves: slot w = each device's w-th scrubbed-ok block
        # (block-ascending within a device, as the object engine's loop).
        starts = np.flatnonzero(np.r_[True, okd[1:] != okd[:-1]])
        seg_len = np.diff(np.r_[starts, okd.size])
        slots = np.arange(okd.size) - np.repeat(starts, seg_len)
        for w in range(int(seg_len.max())):
            sel = np.flatnonzero(slots == w)
            devs = okd[sel]
            blks = okb[sel]
            self._program_wave(devs, blks, f_states[sel], t1)
            s.slc[devs, blks] = f_checks[sel]
            s.stored[devs, blks] = data[sel]
            s.st_writes[devs] += 1
        c[_C_REFRESHES] += ok.size
        c[_C_CELL_REFRESH] += ok.size * self._n_mlc

    def _program_wave(
        self,
        devs: np.ndarray,
        blks: np.ndarray,
        states: np.ndarray,
        t_now: float,
    ) -> None:
        """Program one whole block per device, all devices at once.

        Per device this consumes exactly the draws
        :meth:`CellArray.program` consumes for a fully healthy block —
        the truncated-normal uniforms, then the exponent normal, then
        the escalation normal (the two normal calls merge into one when
        the ziggurat self-check passed) — so the streams stay aligned
        with the object engine's.
        """
        nm = self._n_mlc
        w = devs.size
        u = np.empty((w, nm))
        zz = np.empty((w, 2 * nm))
        if self._merged_normals:
            for j in range(w):
                g = self._g_dev[int(devs[j])]
                u[j] = g.random(nm)
                zz[j] = g.standard_normal(2 * nm)
        else:
            for j in range(w):
                g = self._g_dev[int(devs[j])]
                u[j] = g.random(nm)
                zz[j, :nm] = g.standard_normal(nm)
                zz[j, nm:] = g.standard_normal(nm)
        z_r = truncated_normal_from_uniform(
            u, 0.0, 1.0, -WRITE_TRUNCATION_SIGMA, WRITE_TRUNCATION_SIGMA
        )
        st = states.astype(np.int64)
        lr0 = programmed_log_resistance(self._mu_lr[st], self._sg_lr[st], z_r)
        alpha = programmed_alpha(
            self._mu_a[devs[:, None], st], self._sg_a[devs[:, None], st], zz[:, :nm]
        )
        esc = independent_escalated_alpha(
            zz[:, nm:], self._mu_esc[devs][:, None], self._sg_esc[devs][:, None]
        )
        s = self._s
        s.lr0_3[devs, blks] = lr0
        s.alpha_3[devs, blks] = alpha
        s.alpha_esc_3[devs, blks] = esc
        s.t_prog_3[devs, blks] = t_now
        s.target_3[devs, blks] = st
        s.writes_3[devs, blks] += 1
        self._tprog_row[devs, blks] = t_now

    def _sense_rows(
        self, sdevs: np.ndarray, sblks: np.ndarray, t_now: float, *, pin: bool
    ) -> np.ndarray:
        """Fused drift + threshold for many ``(device, block)`` rows.

        Row-uniform program times (every block so far programmed in one
        shot) let the log-time factor collapse to one value per row;
        after any slow epoch partial programs exist and the per-cell
        times and fault pinning take over.  Either way this is the same
        arithmetic :meth:`CellArray.log_resistance` runs per block.
        """
        s = self._s
        if self._tprog_uniform:
            dt = np.maximum(t_now - self._tprog_row[sdevs, sblks], 0.0) + T0_SECONDS
            ell: np.ndarray = np.log10(dt / T0_SECONDS)[:, None]
        else:
            dt = np.maximum(t_now - s.t_prog_3[sdevs, sblks], 0.0) + T0_SECONDS
            ell = np.log10(dt / T0_SECONDS)
        lr = drifted_log_resistance(
            s.lr0_3[sdevs, sblks],
            s.alpha_3[sdevs, sblks],
            s.alpha_esc_3[sdevs, sblks],
            ell,
            self._lr_break,
        )
        if pin:
            fault = s.fault_3[sdevs, sblks]
            lr = np.where(fault == _STUCK_RESET, self._top_lr, lr)
            lr = np.where(fault == _STUCK_SET, self._bot_lr, lr)
        return np.searchsorted(self._thresholds, lr, side="right")

    # ------------------------------------------------------------------
    # Slow path: scalar-exact port of the object engine's epoch with
    # faults, retries, marks, and deaths, operating on the SoA arrays.
    def _slow_epoch(
        self, alive: np.ndarray, t0: float, t1: float, c: np.ndarray
    ) -> None:
        cfg = self.config
        s = self._s
        # Phase C below may partial-program cells (retries, force-highest
        # on marked pairs) without touching ``_tprog_row``, so this very
        # epoch's scrub must already read per-cell program times.
        self._tprog_uniform = False
        marks0 = s.st_marks.copy()
        retries0 = s.st_retries.copy()
        tec0 = s.st_tec.copy()
        cells0 = s.writes.sum(axis=1)

        plan = self._draw_epoch_plan(alive, c)

        # Phase B: batch encode against each block's current layout.
        w_states = w_checks = None
        if plan:
            dev_rows = np.repeat(
                np.array([k for k, _, _ in plan], dtype=np.int64),
                [blocks.size for _, blocks, _ in plan],
            )
            blk_rows = np.concatenate([blocks for _, blocks, _ in plan])
            w_states, w_checks = self._batch.encode(
                np.vstack([bits for _, _, bits in plan]),
                s.marked[dev_rows, blk_rows],
            )

        # Phase C: program device by device, trace order within each.
        writes0 = s.st_writes.copy()
        r = 0
        for k, blocks, bits in plan:
            dirty: set[int] = set()
            dead = False
            for j in range(blocks.size):
                if dead:
                    r += 1
                    continue
                b = int(blocks[j])
                mk0 = int(s.st_marks[k])
                try:
                    if b in dirty:
                        # Layout changed since the batch encode: the
                        # pre-encoded row is stale; take the scalar path.
                        self._write_encoded(k, b, bits[j], t0)
                    else:
                        assert w_states is not None and w_checks is not None
                        self._write_encoded(
                            k, b, bits[j], t0, states=w_states[r], check=w_checks[r]
                        )
                except SpareExhausted:
                    self._alive[k] = False
                    c[_C_DEATHS] += 1
                    dead = True
                    r += 1
                    continue
                if int(s.st_marks[k]) != mk0:
                    dirty.add(b)
                s.stored[k, b] = bits[j]
                s.has_stored[k, b] = True
                r += 1
        c[_C_WRITES] += int((s.st_writes - writes0)[alive].sum())
        cells_after_c = s.writes.sum(axis=1)
        c[_C_CELL_WRITE] += int((cells_after_c - cells0)[alive].sum())

        # Phase D: scrub — sense everything, decode in one batch, refresh.
        survivors = alive[self._alive[alive]]
        refresh0 = s.st_writes.copy()
        wr = s.written[survivors]
        sdevs = np.repeat(survivors, wr.sum(axis=1))
        sblks = np.nonzero(wr)[1]
        r2 = sdevs.size
        if r2:
            sensed = self._sense_rows(sdevs, sblks, t1, pin=True)
            dec = self._batch.decode(sensed, s.slc[sdevs, sblks])
            ok = np.flatnonzero(~dec.uncorrectable)
            f_states = f_checks = None
            if ok.size:
                f_states, f_checks = self._batch.encode(
                    dec.data_bits[ok], s.marked[sdevs[ok], sblks[ok]]
                )
            enc_row = {int(j): pos for pos, j in enumerate(ok)}
            j = 0
            while j < r2:
                k = int(sdevs[j])
                dead = False
                while j < r2 and int(sdevs[j]) == k:
                    b = int(sblks[j])
                    if dead:
                        j += 1
                        continue
                    s.st_reads[k] += 1
                    c[_C_READS] += 1
                    c[_C_SENSED] += self._n_mlc
                    if dec.uncorrectable[j]:
                        c[_C_UNCORRECTABLE] += 1
                        j += 1
                        continue
                    s.st_tec[k] += int(dec.tec_corrected[j])
                    data = dec.data_bits[j]
                    if s.has_stored[k, b] and not np.array_equal(
                        data, s.stored[k, b]
                    ):
                        c[_C_SILENT] += 1
                    pos = enc_row[j]
                    assert f_states is not None and f_checks is not None
                    try:
                        self._write_encoded(
                            k, b, data, t1, states=f_states[pos], check=f_checks[pos]
                        )
                    except SpareExhausted:
                        self._alive[k] = False
                        c[_C_DEATHS] += 1
                        dead = True
                        j += 1
                        continue
                    s.stored[k, b] = data
                    j += 1
        c[_C_REFRESHES] += int((s.st_writes - refresh0)[survivors].sum())
        c[_C_CELL_REFRESH] += int(
            (s.writes.sum(axis=1) - cells_after_c)[survivors].sum()
        )
        c[_C_MARKS] += int((s.st_marks - marks0)[alive].sum())
        c[_C_RETRIES] += int((s.st_retries - retries0)[alive].sum())
        c[_C_TEC] += int((s.st_tec - tec0)[alive].sum())

        self._any_fault = bool(s.fault.any())

    # ------------------------------------------------------------------
    # Scalar per-device primitives (ports of PCMDevice/CellArray methods
    # over rows of the population arrays; draw orders are identical).
    def _block_view(self, k: int, b: int) -> MarkAndSpareBlock:
        """A MarkAndSpareBlock whose marked mask *is* the SoA row."""
        blk = MarkAndSpareBlock(self._ms_config)
        blk._marked = self._s.marked[k, b]
        return blk

    def _write_encoded(
        self,
        k: int,
        b: int,
        data_bits: np.ndarray,
        t_now: float,
        states: np.ndarray | None = None,
        check: np.ndarray | None = None,
    ) -> None:
        """Port of :meth:`PCMDevice.write_encoded` for device row ``k``."""
        s = self._s
        s.st_writes[k] += 1
        blk = self._block_view(k, b)
        bits = np.asarray(data_bits).astype(np.uint8)
        base = b * self._n_mlc
        idx = np.arange(base, base + self._n_mlc)
        codec = self._batch.codec
        for attempt in range(self._n_spare_pairs + 1):
            if attempt or states is None or check is None:
                states, check = codec.encode(bits, blk)
            ok = self._cell_program(k, idx, np.asarray(states, dtype=np.int64), t_now)
            s.slc[k, b] = check
            bad = np.nonzero(~ok)[0]
            if bad.size == 0:
                s.written[k, b] = True
                return
            s.st_retries[k] += 1
            pair = int(bad[0]) // 2
            already = pair in set(blk.marked_pairs.tolist())
            if not already:
                blk.mark(pair)  # raises SpareExhausted when out
                s.st_marks[k] += 1
            # Force both cells of the marked pair toward S4 (INV).
            pc = idx[2 * pair : 2 * pair + 2]
            self._cell_force_highest(k, pc, t_now)
        raise SpareExhausted(f"block {b}: wearout beyond spare budget")

    def _cell_program(
        self, k: int, idx: np.ndarray, st: np.ndarray, t_now: float
    ) -> np.ndarray:
        """Port of :meth:`CellArray.program` on device ``k``'s row."""
        s = self._s
        writes = s.writes[k]
        fault = s.fault[k]
        writes[idx] += 1
        newly_dead = (writes[idx] >= s.endurance[k][idx]) & (fault[idx] == _HEALTHY)
        if np.any(newly_dead):
            dead = idx[newly_dead]
            fault[dead] = s.pending_mode[k][dead]

        healthy = fault[idx] == _HEALTHY
        ok_idx = idx[healthy]
        ok_st = st[healthy]
        if ok_idx.size:
            g = self._g_dev[k]
            z_r = truncated_normal(
                g, 0.0, 1.0, -WRITE_TRUNCATION_SIGMA, WRITE_TRUNCATION_SIGMA,
                ok_idx.size,
            )
            s.lr0[k][ok_idx] = programmed_log_resistance(
                self._mu_lr[ok_st], self._sg_lr[ok_st], z_r
            )
            z = g.standard_normal(ok_idx.size)
            alpha = programmed_alpha(self._mu_a[k][ok_st], self._sg_a[k][ok_st], z)
            s.alpha[k][ok_idx] = alpha
            fresh = g.standard_normal(ok_idx.size)
            s.alpha_esc[k][ok_idx] = independent_escalated_alpha(
                fresh, self._mu_esc[k], self._sg_esc[k]
            )
            s.t_prog[k][ok_idx] = t_now
            s.target[k][ok_idx] = ok_st

        verify_ok = healthy.copy()
        # A stuck-reset cell passes verify iff the target is the top state.
        stuck_reset = fault[idx] == _STUCK_RESET
        verify_ok |= stuck_reset & (st == self._top)
        return verify_ok

    def _cell_force_highest(self, k: int, idx: np.ndarray, t_now: float) -> np.ndarray:
        """Port of :meth:`CellArray.force_highest` on device ``k``'s row."""
        s = self._s
        fault = s.fault[k]
        stuck_set = fault[idx] == _STUCK_SET
        if np.any(stuck_set):
            revived = self._g_dev[k].random(int(stuck_set.sum())) < self.config.p_revive
            tgt = idx[stuck_set][revived]
            fault[tgt] = _STUCK_RESET
        stuck_reset = fault[idx] == _STUCK_RESET
        healthy = fault[idx] == _HEALTHY
        h_idx = idx[healthy]
        if h_idx.size:
            self._cell_program(k, h_idx, np.full(h_idx.size, self._top), t_now)
        return healthy | stuck_reset
