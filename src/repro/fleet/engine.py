"""Epoch-driven population engine over real :class:`PCMDevice` instances.

One :class:`ObjectFleetEngine` owns a contiguous range of the fleet's
devices and advances them through *epochs* of virtual time.  It is the
semantic reference: one :class:`PCMDevice` object per device, every
physics call through the device's own :class:`CellArray`.  The
:func:`FleetEngine` factory returns either this engine or its
bit-identical vectorized twin :class:`~repro.fleet.soa.SoaFleetEngine`
(the default; see docs/FLEET.md).  Each epoch runs four phases:

A. **Traffic** — every alive device draws ``ops_per_epoch`` accesses
   from its assigned workload profile (:func:`repro.workloads.synthetic.draw_ops`)
   plus fresh payload bits for each write, all from its own carried data
   generator.  Reads in the trace are only *counted* (``reads_requested``)
   — the functional fleet model serves demand reads from the controller
   cache; what it measures is the cost of writes and maintenance.
B. **Batch encode** — all demand-write payloads of the epoch, across
   every device, go through one
   :class:`~repro.coding.batch.BatchThreeOnTwoCodec.encode` pass against
   each block's current marked layout.
C. **Program** — each device executes its writes in trace order via
   :meth:`PCMDevice.write_encoded`, seeded with its pre-encoded row.
   When a write marks a new pair, that block's pre-encoded rows are
   stale, so its remaining writes this epoch fall back to the scalar
   re-encode path (``states=None``) — exactly what a lone device would
   do.  :class:`~repro.core.device.SpareExhausted` kills the device.
D. **Scrub** — at the epoch's end every written block of every surviving
   device is sensed scalarly (no RNG draws) and the whole stack is
   decoded in one batch pass; successful decodes are re-encoded in a
   second batch pass and rewritten (drift-resetting refresh).
   Uncorrectable blocks and silent corruptions (decode succeeded, data
   differs from what was last written) are counted per epoch.

**Bit-identity contract.**  Every physics interaction goes through the
device's own :class:`~repro.cells.cell_array.CellArray` in the same call
order a sequential single-device driver would use, and the batch codec
passes are bit-identical to the scalar codec by the PR-6 differential
suite.  Sensing draws no randomness, so phase D's sense-everything-then-
decode schedule leaves each device's RNG stream exactly where a
read-then-rewrite loop would.  ``tests/fleet/test_fleet_differential.py``
holds an ``n_devices=1`` fleet to the plain :class:`PCMDevice` path —
state digest, stats, and decode outcomes all equal.

Bump :data:`FLEET_VERSION` when changing anything observable here or in
:mod:`repro.fleet.config` (draw orders, phase structure, counter
semantics): per-shard cache keys are salted with it.
"""

from __future__ import annotations

import functools
import hashlib
import os
from typing import TYPE_CHECKING

import numpy as np

from repro.coding.batch import BatchThreeOnTwoCodec
from repro.coding.blockcodec import ThreeOnTwoBlockCodec
from repro.core.device import PCMDevice, SpareExhausted
from repro.fleet.config import (
    FLEET_SPAWN_KEY,
    KEY_DATA,
    KEY_DEVICE,
    DeviceParams,
    FleetConfig,
    device_params,
)
from repro.fleet.state import alive_indices
from repro.montecarlo.rng import block_rng
from repro.workloads.synthetic import draw_ops

if TYPE_CHECKING:
    from repro.fleet.soa import SoaFleetEngine

__all__ = [
    "FLEET_VERSION",
    "COUNTERS",
    "N_COUNTERS",
    "PROGRAM_NJ_PER_CELL",
    "SENSE_NJ_PER_CELL",
    "FleetEngine",
    "ObjectFleetEngine",
    "counter_index",
]

#: Salt for per-shard fleet cache keys; bump on any change to the epoch
#: phases, draw orders, heterogeneity model, or counter semantics.
FLEET_VERSION = 1

#: Rough programming energy per cell-write, nJ.  RESET pulses in
#: contemporary PCM parts run tens of pJ to ~100 pJ per cell; a 64B block
#: write programs 354 cells with iterative write-and-verify, so 50 pJ per
#: charged cell-program is a round mid-range figure.  Only *relative*
#: energy between policies is meaningful here.
PROGRAM_NJ_PER_CELL = 0.05

#: Rough sensing energy per cell-read, nJ (current-mode sense of a
#: resistance is ~an order below a partial-SET pulse; 2 pJ per cell).
SENSE_NJ_PER_CELL = 0.002

#: Per-epoch fleet counters, in storage order.  ``reads_requested``
#: counts trace read ops (served upstream, never sensed); ``reads``
#: counts maintenance reads that actually sensed and decoded a block.
#: ``refreshes`` counts maintenance rewrites.  ``deaths`` counts devices
#: whose spare budget ran out this epoch.  The ``cell_programs_*`` /
#: ``cells_sensed`` counters drive the energy model.
COUNTERS = (
    "writes",
    "reads_requested",
    "reads",
    "refreshes",
    "tec_corrections",
    "uncorrectable",
    "silent",
    "wearout_marks",
    "write_retries",
    "deaths",
    "cell_programs_write",
    "cell_programs_refresh",
    "cells_sensed",
)
N_COUNTERS = len(COUNTERS)
_C = {name: i for i, name in enumerate(COUNTERS)}


def counter_index(name: str) -> int:
    """Column of ``name`` in the ``(n_epochs, N_COUNTERS)`` count matrix."""
    try:
        return _C[name]
    except KeyError:
        raise ValueError(f"unknown counter {name!r} (known: {COUNTERS})") from None


@functools.lru_cache(maxsize=4)
def _batch_codec(data_bits: int) -> BatchThreeOnTwoCodec:
    # One codec per geometry per process: building it precomputes the
    # packed GF(2) masks and discrete-log locator every shard reuses.
    return BatchThreeOnTwoCodec(ThreeOnTwoBlockCodec(data_bits=data_bits))


class ObjectFleetEngine:
    """A contiguous device range ``[first_device, first_device + n_devices)``.

    Device index ``i`` (global, fleet-wide) is a pure function of
    ``(config, entropy, i)``: its heterogeneity, physics stream, and data
    stream are all addressed by spawn keys under
    :data:`~repro.fleet.config.FLEET_SPAWN_KEY` — so any sharding of the
    fleet over engines and processes reproduces the same devices.
    """

    def __init__(
        self,
        config: FleetConfig,
        entropy: int,
        first_device: int = 0,
        n_devices: int | None = None,
    ) -> None:
        self.config = config
        self.entropy = int(entropy)
        self.first_device = int(first_device)
        n = (
            config.n_devices - self.first_device
            if n_devices is None
            else int(n_devices)
        )
        if self.first_device < 0 or n < 1 or self.first_device + n > config.n_devices:
            raise ValueError(
                f"device range [{first_device}, {first_device}+{n_devices}) "
                f"outside fleet of {config.n_devices}"
            )
        self.n_devices = n
        self._batch = _batch_codec(config.data_bits)
        scalar = self._batch.codec
        self._epoch = 0
        self._alive = np.ones(n, dtype=bool)
        self._params: list[DeviceParams] = []
        self._devices: list[PCMDevice] = []
        self._g_data: list[np.random.Generator] = []
        #: last data known written per (device, block) — silent-error oracle.
        self._stored: list[dict[int, np.ndarray]] = [dict() for _ in range(n)]
        for k in range(n):
            i = self.first_device + k
            p = device_params(config, self.entropy, i)
            self._params.append(p)
            self._devices.append(
                PCMDevice(
                    n_blocks=config.n_blocks,
                    cell_kind="3LC",
                    design=p.design,
                    seed=block_rng(self.entropy, (FLEET_SPAWN_KEY, KEY_DEVICE, i)),
                    wearout=p.wearout,
                    schedule=p.schedule,
                    data_bits=config.data_bits,
                    codec=scalar,
                )
            )
            self._g_data.append(
                block_rng(self.entropy, (FLEET_SPAWN_KEY, KEY_DATA, i))
            )

    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Epochs advanced so far (also the next epoch's index)."""
        return self._epoch

    def device(self, index: int) -> PCMDevice:
        """The device at *global* fleet index ``index``."""
        k = index - self.first_device
        if not 0 <= k < self.n_devices:
            raise IndexError(f"device {index} not in this engine's range")
        return self._devices[k]

    def params(self, index: int) -> DeviceParams:
        """Drawn operating point of global device ``index``."""
        k = index - self.first_device
        if not 0 <= k < self.n_devices:
            raise IndexError(f"device {index} not in this engine's range")
        return self._params[k]

    def alive_mask(self) -> np.ndarray:
        """Which of this engine's devices still have spare budget."""
        return self._alive.copy()

    def state_digest(self) -> str:
        """SHA-256 over every device's full state plus fleet bookkeeping."""
        h = hashlib.sha256()
        h.update(self._epoch.to_bytes(8, "little"))
        h.update(np.ascontiguousarray(self._alive).tobytes())
        for k, dev in enumerate(self._devices):
            h.update(dev.state_digest().encode("ascii"))
            for b in sorted(self._stored[k]):
                h.update(int(b).to_bytes(4, "little"))
                h.update(np.ascontiguousarray(self._stored[k][b]).tobytes())
        return h.hexdigest()

    # ------------------------------------------------------------------
    def advance(self, n_epochs: int = 1) -> np.ndarray:
        """Run ``n_epochs`` epochs; returns ``(n_epochs, N_COUNTERS)`` counts.

        Splitting a run over successive calls is exact:
        ``advance(a); advance(b)`` produces the same device states and
        (concatenated) counts as ``advance(a + b)``.
        """
        n_epochs = int(n_epochs)
        if n_epochs < 0:
            raise ValueError(f"n_epochs must be >= 0, got {n_epochs}")
        out = np.zeros((n_epochs, N_COUNTERS), dtype=np.int64)
        for e in range(n_epochs):
            out[e] = self._advance_one()
        return out

    # ------------------------------------------------------------------
    def _advance_one(self) -> np.ndarray:
        cfg = self.config
        c = np.zeros(N_COUNTERS, dtype=np.int64)
        t0 = self._epoch * cfg.epoch_seconds
        t1 = t0 + cfg.epoch_seconds
        alive = [int(k) for k in alive_indices(self._alive)]
        stats0 = {
            k: (
                self._devices[k].stats.wearout_marks,
                self._devices[k].stats.write_retries,
                self._devices[k].stats.tec_corrections,
            )
            for k in alive
        }
        cells0 = {k: self._devices[k].array.total_writes() for k in alive}

        # Phase A: draw the epoch's traffic and payloads per device.
        plan: list[tuple[int, list[tuple[int, np.ndarray]]]] = []
        for k in alive:
            p = self._params[k]
            g = self._g_data[k]
            is_write, addr = draw_ops(
                p.workload,
                cfg.ops_per_epoch,
                cfg.n_blocks,
                seed=g,
                write_fraction=cfg.write_fraction,
            )
            ops: list[tuple[int, np.ndarray]] = []
            for w, b in zip(is_write, addr):
                if w:
                    bits = g.integers(0, 2, cfg.data_bits, dtype=np.uint8)
                    ops.append((int(b), bits))
                else:
                    c[_C["reads_requested"]] += 1
            plan.append((k, ops))

        # Phase B: one batch encode of every demand write in the epoch.
        rows = [(k, b, bits) for k, ops in plan for b, bits in ops]
        if rows:
            w_states, w_checks = self._batch.encode(
                np.stack([bits for _, _, bits in rows]),
                [self._devices[k].block_state(b) for k, b, _ in rows],
            )

        # Phase C: program, device by device, trace order within each.
        writes0 = {k: self._devices[k].stats.writes for k in alive}
        r = 0
        for k, ops in plan:
            dev = self._devices[k]
            dirty: set[int] = set()
            dead = False
            for b, bits in ops:
                if dead:
                    r += 1
                    continue
                marks0 = dev.stats.wearout_marks
                try:
                    if b in dirty:
                        # Layout changed since the batch encode: the
                        # pre-encoded row is stale; take the scalar path.
                        dev.write_encoded(b, bits, t0)
                    else:
                        dev.write_encoded(
                            b, bits, t0, states=w_states[r], check=w_checks[r]
                        )
                except SpareExhausted:
                    self._alive[k] = False
                    c[_C["deaths"]] += 1
                    dead = True
                    r += 1
                    continue
                if dev.stats.wearout_marks != marks0:
                    dirty.add(b)
                self._stored[k][b] = bits.copy()
                r += 1
        for k in alive:
            c[_C["writes"]] += self._devices[k].stats.writes - writes0[k]
            delta = self._devices[k].array.total_writes() - cells0[k]
            c[_C["cell_programs_write"]] += delta
            cells0[k] = self._devices[k].array.total_writes()

        # Phase D: scrub — sense everything, decode in one batch, refresh.
        # Deaths are permanent, so the remaining alive mask (ascending, as
        # alive was) is exactly the surviving subset in its original order.
        survivors = [int(k) for k in alive_indices(self._alive)]
        scrub: list[tuple[int, int]] = []
        for k in survivors:
            mask = self._devices[k].written_mask()
            scrub.extend((k, int(b)) for b in np.nonzero(mask)[0])
        refresh0 = {k: self._devices[k].stats.writes for k in survivors}
        if scrub:
            dec = self._batch.decode(
                np.stack([self._devices[k].sense_states(b, t1) for k, b in scrub]),
                np.stack([self._devices[k].check_bits(b) for k, b in scrub]),
            )
            ok = np.nonzero(~dec.uncorrectable)[0]
            if ok.size:
                f_states, f_checks = self._batch.encode(
                    dec.data_bits[ok],
                    [
                        self._devices[scrub[int(j)][0]].block_state(scrub[int(j)][1])
                        for j in ok
                    ],
                )
            enc_row = {int(j): pos for pos, j in enumerate(ok)}
            n_mlc = self._batch.codec.n_mlc_cells
            j = 0
            while j < len(scrub):
                k, _ = scrub[j]
                dev = self._devices[k]
                dead = False
                while j < len(scrub) and scrub[j][0] == k:
                    b = scrub[j][1]
                    if dead:
                        j += 1
                        continue
                    dev.stats.reads += 1
                    c[_C["reads"]] += 1
                    c[_C["cells_sensed"]] += n_mlc
                    if dec.uncorrectable[j]:
                        c[_C["uncorrectable"]] += 1
                        j += 1
                        continue
                    dev.stats.tec_corrections += int(dec.tec_corrected[j])
                    data = dec.data_bits[j]
                    want = self._stored[k].get(b)
                    if want is not None and not np.array_equal(data, want):
                        c[_C["silent"]] += 1
                    pos = enc_row[j]
                    try:
                        dev.write_encoded(
                            b, data, t1, states=f_states[pos], check=f_checks[pos]
                        )
                    except SpareExhausted:
                        self._alive[k] = False
                        c[_C["deaths"]] += 1
                        dead = True
                        j += 1
                        continue
                    self._stored[k][b] = data.copy()
                    j += 1
        for k in survivors:
            c[_C["refreshes"]] += self._devices[k].stats.writes - refresh0[k]
            c[_C["cell_programs_refresh"]] += (
                self._devices[k].array.total_writes() - cells0[k]
            )
        for k in alive:
            m0, rt0, tec0 = stats0[k]
            dev = self._devices[k]
            c[_C["wearout_marks"]] += dev.stats.wearout_marks - m0
            c[_C["write_retries"]] += dev.stats.write_retries - rt0
            c[_C["tec_corrections"]] += dev.stats.tec_corrections - tec0

        self._epoch += 1
        return c


#: Environment knob the factory consults when no ``engine=`` is given.
FLEET_ENGINE_ENV = "REPRO_FLEET_ENGINE"


def FleetEngine(
    config: FleetConfig,
    entropy: int,
    first_device: int = 0,
    n_devices: int | None = None,
    *,
    engine: str | None = None,
) -> "ObjectFleetEngine | SoaFleetEngine":
    """Build a fleet engine for a contiguous device range.

    ``engine`` selects the execution strategy — ``"soa"`` (default) for
    the structure-of-arrays engine, ``"object"`` for the
    device-per-object reference.  Both are bit-identical (same streams,
    counters, and state digests; the fleet differential suite pins
    this), so the choice never shows up in results or cache keys — only
    in throughput.  When ``engine`` is ``None`` the
    :data:`FLEET_ENGINE_ENV` environment variable is consulted, then the
    default applies.

    This factory keeps the historical ``FleetEngine(...)`` constructor
    call signature working unchanged for existing callers.
    """
    if engine is None:
        engine = os.environ.get(FLEET_ENGINE_ENV) or "soa"
    if engine == "object":
        return ObjectFleetEngine(config, entropy, first_device, n_devices)
    if engine == "soa":
        from repro.fleet.soa import SoaFleetEngine

        return SoaFleetEngine(config, entropy, first_device, n_devices)
    raise ValueError(f"unknown fleet engine {engine!r} (known: 'soa', 'object')")
