"""Fleet-scale device population simulation (docs/FLEET.md).

Draws a heterogeneous population of :class:`~repro.core.device.PCMDevice`
instances (per-device drift/endurance/temperature/workload), advances
them through epochs of demand writes and scrub-refresh maintenance with
the batched datapath kernels, and reduces the population to lifetime
percentiles, spare-exhaustion hazard curves, refresh-energy totals, and
silent-error rates.
"""

from repro.fleet.config import (
    FLEET_SPAWN_KEY,
    DeviceParams,
    FleetConfig,
    config_from_params,
    device_params,
    stress_config,
)
from repro.fleet.engine import (
    COUNTERS,
    FLEET_ENGINE_ENV,
    FLEET_VERSION,
    N_COUNTERS,
    PROGRAM_NJ_PER_CELL,
    SENSE_NJ_PER_CELL,
    FleetEngine,
    ObjectFleetEngine,
    counter_index,
)
from repro.fleet.mc import (
    FLEET_SHARD_DEVICES,
    FleetSummary,
    fleet_counts_key,
    fleet_mc,
)
from repro.fleet.soa import SoaFleetEngine
from repro.fleet.state import SoaFleetState, alive_indices

__all__ = [
    "COUNTERS",
    "FLEET_ENGINE_ENV",
    "FLEET_SHARD_DEVICES",
    "FLEET_SPAWN_KEY",
    "FLEET_VERSION",
    "N_COUNTERS",
    "PROGRAM_NJ_PER_CELL",
    "SENSE_NJ_PER_CELL",
    "DeviceParams",
    "FleetConfig",
    "FleetEngine",
    "FleetSummary",
    "ObjectFleetEngine",
    "SoaFleetEngine",
    "SoaFleetState",
    "alive_indices",
    "config_from_params",
    "counter_index",
    "device_params",
    "fleet_counts_key",
    "fleet_mc",
    "stress_config",
]
