"""Structure-of-arrays state for the vectorized fleet engine.

One :class:`SoaFleetState` holds everything ``n`` devices' worth of
:class:`~repro.core.device.PCMDevice` state would hold, laid out as flat
arrays with the device as the leading axis: per-cell physics as
``(n, n_blocks * cells_per_block)``, per-block controller state as
``(n, n_blocks, ...)``.  Dtypes mirror :class:`~repro.cells.cell_array.CellArray`
field-for-field — the canonical digests hash raw bytes, so an ``int8``
where the object engine keeps ``int64`` would already break the
bit-identity contract.

The container is deliberately dumb: all epoch semantics live in
:class:`repro.fleet.soa.SoaFleetEngine`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SoaFleetState", "alive_indices"]


def alive_indices(mask: np.ndarray) -> np.ndarray:
    """Indices of set entries of a boolean mask, ascending.

    The one helper both fleet engines (and the summary layer) use to
    turn an alive/survivor mask into an iteration order, instead of
    per-call Python list comprehensions over ``range(n)``.
    """
    return np.flatnonzero(mask)


class SoaFleetState:
    """Flat per-device arrays for a population of 3LC PCM devices."""

    def __init__(
        self,
        n_devices: int,
        n_blocks: int,
        cells_per_block: int,
        n_slc: int,
        n_pairs: int,
        data_bits: int,
    ) -> None:
        n = int(n_devices)
        nc = int(n_blocks) * int(cells_per_block)
        self.n_devices = n
        self.n_blocks = int(n_blocks)
        self.cells_per_block = int(cells_per_block)

        # Per-cell physics state; one row per device, CellArray dtypes.
        self.lr0 = np.zeros((n, nc))
        self.alpha = np.zeros((n, nc))
        self.alpha_esc = np.zeros((n, nc))
        self.t_prog = np.zeros((n, nc))
        self.target = np.zeros((n, nc), dtype=np.int64)
        self.writes = np.zeros((n, nc), dtype=np.int64)
        self.endurance = np.zeros((n, nc))
        self.fault = np.zeros((n, nc), dtype=np.int8)
        self.pending_mode = np.zeros((n, nc), dtype=np.int8)

        # Per-block controller state.
        self.slc = np.zeros((n, n_blocks, n_slc), dtype=np.uint8)
        self.written = np.zeros((n, n_blocks), dtype=bool)
        self.marked = np.zeros((n, n_blocks, n_pairs), dtype=bool)
        #: last data known written per (device, block) — silent-error oracle.
        self.stored = np.zeros((n, n_blocks, data_bits), dtype=np.uint8)
        self.has_stored = np.zeros((n, n_blocks), dtype=bool)

        # Per-device cumulative stats (DeviceStats columns; ``refreshes``
        # stays zero in the fleet path, same as the object engine).
        self.st_writes = np.zeros(n, dtype=np.int64)
        self.st_reads = np.zeros(n, dtype=np.int64)
        self.st_tec = np.zeros(n, dtype=np.int64)
        self.st_marks = np.zeros(n, dtype=np.int64)
        self.st_retries = np.zeros(n, dtype=np.int64)

        # (n, n_blocks, cells_per_block) views of the per-cell arrays,
        # for scatter/gather addressed by (device, block).
        shape3 = (n, int(n_blocks), int(cells_per_block))
        self.lr0_3 = self.lr0.reshape(shape3)
        self.alpha_3 = self.alpha.reshape(shape3)
        self.alpha_esc_3 = self.alpha_esc.reshape(shape3)
        self.t_prog_3 = self.t_prog.reshape(shape3)
        self.target_3 = self.target.reshape(shape3)
        self.writes_3 = self.writes.reshape(shape3)
        self.fault_3 = self.fault.reshape(shape3)

    @property
    def nbytes(self) -> int:
        """Total bytes held by the population arrays (views excluded)."""
        return sum(
            a.nbytes
            for a in (
                self.lr0,
                self.alpha,
                self.alpha_esc,
                self.t_prog,
                self.target,
                self.writes,
                self.endurance,
                self.fault,
                self.pending_mode,
                self.slc,
                self.written,
                self.marked,
                self.stored,
                self.has_stored,
                self.st_writes,
                self.st_reads,
                self.st_tec,
                self.st_marks,
                self.st_retries,
            )
        )
