"""Campaign execution: bounded concurrency, retry, isolation, resume.

The scheduler walks the :class:`~repro.campaign.plan.Plan` with a thread
pool of at most ``max_parallel`` campaign jobs (each job may itself fan
Monte Carlo blocks over ``mc_jobs`` worker *processes* — the thread here
only orchestrates).  Robustness properties, each covered by tests:

- **Retry with backoff** — a failing job is re-attempted up to its
  configured ``retries`` with exponentially growing delays
  (``backoff_s * backoff_factor**k``, capped at ``backoff_max_s``).
- **Failure isolation** — a job that exhausts its retries marks its
  transitive dependents ``blocked``; every independent job still runs,
  and the campaign exit status reports the partial failure.
- **Crash-safe resume** — results are persisted per job the moment they
  complete, so re-running a killed campaign restores them (``cached``
  state, ``job_cached`` event) and executes only unfinished jobs; JSON
  float round-tripping makes the final numbers bit-identical to an
  uninterrupted run.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from typing import Any, Callable

from repro.campaign.events import EventLog, Metrics, ProgressLine
from repro.campaign.jobs import JobContext, run_job
from repro.campaign.plan import Plan, build_plan
from repro.campaign.spec import CampaignSpec, JobSpec
from repro.campaign.store import RunStore
from repro.chaos.registry import fault_point

__all__ = [
    "CampaignResult",
    "CampaignScheduler",
    "DONE_STATES",
    "JOB_STATES",
]

#: Every state a job can be in (``pending`` and ``running`` are transient).
JOB_STATES = ("pending", "running", "done", "cached", "failed", "blocked")

#: States that satisfy a dependency.
DONE_STATES = ("done", "cached")


@dataclasses.dataclass
class CampaignResult:
    """Final outcome of one scheduler run."""

    states: dict[str, str]
    results: dict[str, dict]
    metrics: dict[str, Any]

    @property
    def ok(self) -> bool:
        return all(s in DONE_STATES for s in self.states.values())

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1


class CampaignScheduler:
    """Executes one campaign spec against a run directory.

    ``sleep`` and ``after_job`` are test seams: ``sleep`` receives the
    backoff delays (inject a recorder to assert on them without waiting),
    and ``after_job(job_id, state)`` runs in the scheduler thread after
    each job settles (raise from it to simulate a mid-campaign crash).
    """

    def __init__(
        self,
        spec: CampaignSpec,
        store: RunStore,
        *,
        mc_jobs: int | None = 1,
        cache=None,
        max_parallel: int | None = None,
        progress: bool = False,
        sleep: Callable[[float], None] = time.sleep,
        after_job: Callable[[str, str], None] | None = None,
    ):
        self.spec = spec
        self.plan: Plan = build_plan(spec)
        self.store = store
        self.mc_jobs = mc_jobs
        self.cache = cache
        self.max_parallel = max_parallel or spec.max_parallel_jobs
        self.progress = progress
        self._sleep = sleep
        self._after_job = after_job
        self.events = EventLog(store.events_path)
        self.results: dict[str, dict] = {}
        self.states: dict[str, str] = {}
        # Guards states/results: worker threads snapshot dependency
        # results while the scheduler thread mutates both maps (RPL004).
        self._lock = threading.Lock()

    # -- helpers --------------------------------------------------------
    def _backoff(self, attempt: int) -> float:
        raw = self.spec.backoff_s * self.spec.backoff_factor ** (attempt - 1)
        return min(raw, self.spec.backoff_max_s)

    def _retries_for(self, job: JobSpec) -> int:
        return self.spec.retries if job.retries is None else job.retries

    def _execute(self, job: JobSpec) -> tuple[dict, int, float]:
        """Worker-thread body: attempt the job with retry + backoff."""
        retries = self._retries_for(job)
        attempt = 0
        while True:
            attempt += 1
            self.events.emit("job_start", job=job.id, attempt=attempt)
            t0 = time.perf_counter()
            try:
                fault_point("scheduler.job", job=job.id, attempt=attempt)
                with self._lock:
                    dep_results = {
                        dep: self.results[dep] for dep in self.plan.needs[job.id]
                    }
                ctx = JobContext(
                    seed=self.spec.seed,
                    defaults=self.spec.defaults,
                    mc_jobs=self.mc_jobs,
                    cache=self.cache,
                    dep_results=dep_results,
                )
                result = run_job(job, ctx)
                return result, attempt, time.perf_counter() - t0
            except Exception as exc:
                if attempt > retries:
                    raise
                delay = self._backoff(attempt)
                self.events.emit(
                    "job_retry",
                    job=job.id,
                    attempt=attempt,
                    delay_s=delay,
                    error=repr(exc),
                )
                self._sleep(delay)

    def _write_status(self, metrics: Metrics, finished: bool) -> None:
        ok = all(s in DONE_STATES for s in self.states.values()) if finished else None
        self.store.write_status(
            {
                "campaign": self.spec.name,
                "states": dict(self.states),
                "metrics": metrics.snapshot(self.cache),
                "finished": finished,
                "ok": ok,
            }
        )

    def _block_dependents(self, job_id: str, metrics: Metrics) -> None:
        for dep in self.plan.transitive_dependents(job_id):
            if self.states[dep] == "pending":
                with self._lock:
                    self.states[dep] = "blocked"
                metrics.blocked += 1
                self.events.emit("job_blocked", job=dep, cause=job_id)

    # -- main loop ------------------------------------------------------
    def run(self, resume: bool = False) -> CampaignResult:
        """Execute (or finish) the campaign; returns the final outcome.

        ``resume=True`` requires an existing run directory; either way,
        persisted per-job results are honored and never re-executed.
        """
        if resume and not self.store.exists():
            raise FileNotFoundError(
                f"no campaign manifest under {self.store.run_dir}; "
                "start it with 'campaign run' first"
            )
        self.store.init(self.spec.to_dict(), list(self.plan.order))

        metrics = Metrics(total=len(self.plan.order))
        with self._lock:
            self.states = {job_id: "pending" for job_id in self.plan.order}
        restored = self.store.completed_jobs()
        for job_id in self.plan.order:
            if job_id in restored:
                with self._lock:
                    self.states[job_id] = "cached"
                    self.results[job_id] = restored[job_id]
                metrics.cached += 1
                self.events.emit("job_cached", job=job_id)
        self.events.emit(
            "campaign_start",
            campaign=self.spec.name,
            jobs=len(self.plan.order),
            resumed=bool(restored),
            restored=len(restored),
        )

        progress = ProgressLine(self.spec.name, enabled=self.progress)
        futures: dict[Future, str] = {}

        def submit_ready(pool: ThreadPoolExecutor) -> None:
            for job_id in self.plan.order:
                if self.states[job_id] != "pending":
                    continue
                if all(self.states[d] in DONE_STATES for d in self.plan.needs[job_id]):
                    with self._lock:
                        self.states[job_id] = "running"
                    metrics.running += 1
                    futures[pool.submit(self._execute, self.plan.job(job_id))] = job_id

        pool = ThreadPoolExecutor(
            max_workers=self.max_parallel, thread_name_prefix="campaign"
        )
        try:
            submit_ready(pool)
            self._write_status(metrics, finished=False)
            progress.update(metrics, self.cache)
            while futures:
                settled, _ = wait(futures, return_when=FIRST_COMPLETED)
                for fut in settled:
                    job_id = futures.pop(fut)
                    metrics.running -= 1
                    try:
                        result, attempts, elapsed = fut.result()
                    except Exception as exc:
                        attempts = self._retries_for(self.plan.job(job_id)) + 1
                        with self._lock:
                            self.states[job_id] = "failed"
                        metrics.failed += 1
                        metrics.retries += attempts - 1
                        self.events.emit(
                            "job_failed",
                            job=job_id,
                            attempts=attempts,
                            error=repr(exc),
                        )
                        self._block_dependents(job_id, metrics)
                    else:
                        self.store.write_result(job_id, result)
                        with self._lock:
                            self.results[job_id] = result
                            self.states[job_id] = "done"
                        metrics.done += 1
                        metrics.retries += attempts - 1
                        n_samples = int(result.get("n_samples", 0) or 0)
                        metrics.samples += n_samples
                        self.events.emit(
                            "job_done",
                            job=job_id,
                            attempts=attempts,
                            elapsed_s=round(elapsed, 4),
                            n_samples=n_samples,
                        )
                    self._write_status(metrics, finished=False)
                    progress.update(metrics, self.cache)
                    if self._after_job is not None:
                        self._after_job(job_id, self.states[job_id])
                submit_ready(pool)
                progress.update(metrics, self.cache)
        finally:
            # On a crash (an exception out of after_job, or Ctrl-C) drop
            # queued work; in-flight jobs finish but are not persisted, so
            # resume re-executes only what never completed.
            pool.shutdown(wait=True, cancel_futures=True)
            progress.close()

        self._write_status(metrics, finished=True)
        snapshot = metrics.snapshot(self.cache)
        result = CampaignResult(
            states=dict(self.states), results=dict(self.results), metrics=snapshot
        )
        self.events.emit("campaign_end", ok=result.ok, **snapshot)
        return result
