"""Campaign planning: spec -> validated job DAG.

Dependencies come from each job's explicit ``needs`` plus the implicit
edge a ``design_from`` param creates (a job consuming another job's
optimized design must run after it).  Planning validates that every
referenced job exists and that the graph is acyclic, and fixes a
deterministic topological order (Kahn's algorithm with lexicographic
tie-breaking) so scheduling, event logs, and reports are reproducible
run to run.
"""

from __future__ import annotations

import dataclasses
from collections import deque

from repro.campaign.spec import CampaignSpec, JobSpec, SpecError

__all__ = ["Plan", "build_plan"]


@dataclasses.dataclass(frozen=True)
class Plan:
    """Validated DAG of a campaign's jobs.

    ``needs`` / ``dependents`` are the closed edge maps (explicit plus
    implicit edges); ``order`` is the deterministic topological order.
    """

    spec: CampaignSpec
    needs: dict[str, tuple[str, ...]]
    dependents: dict[str, tuple[str, ...]]
    order: tuple[str, ...]

    def job(self, job_id: str) -> JobSpec:
        return self.spec.job(job_id)

    def transitive_dependents(self, job_id: str) -> tuple[str, ...]:
        """Every job downstream of ``job_id``, in topological order."""
        hit: set[str] = set()
        frontier = deque(self.dependents[job_id])
        while frontier:
            j = frontier.popleft()
            if j in hit:
                continue
            hit.add(j)
            frontier.extend(self.dependents[j])
        return tuple(j for j in self.order if j in hit)


def _edges(spec: CampaignSpec) -> dict[str, set[str]]:
    ids = {j.id for j in spec.jobs}
    needs: dict[str, set[str]] = {}
    for job in spec.jobs:
        deps = set(job.needs)
        src = job.params.get("design_from")
        if src is not None:
            if not isinstance(src, str):
                raise SpecError(f"job {job.id!r}: 'design_from' must be a job id")
            deps.add(src)
        unknown = deps - ids
        if unknown:
            raise SpecError(
                f"job {job.id!r} depends on unknown job(s) {sorted(unknown)}"
            )
        if job.id in deps:
            raise SpecError(f"job {job.id!r} depends on itself")
        needs[job.id] = deps
    return needs


def build_plan(spec: CampaignSpec) -> Plan:
    """Expand and validate ``spec`` into an executable :class:`Plan`."""
    needs = _edges(spec)
    dependents: dict[str, set[str]] = {j.id: set() for j in spec.jobs}
    for job_id, deps in needs.items():
        for dep in deps:
            dependents[dep].add(job_id)

    # Kahn's algorithm; the ready set is kept sorted so the order is a
    # pure function of the spec.
    in_deg = {job_id: len(deps) for job_id, deps in needs.items()}
    ready = sorted(job_id for job_id, d in in_deg.items() if d == 0)
    order: list[str] = []
    while ready:
        job_id = ready.pop(0)
        order.append(job_id)
        newly = []
        for dep in dependents[job_id]:
            in_deg[dep] -= 1
            if in_deg[dep] == 0:
                newly.append(dep)
        if newly:
            ready = sorted(ready + newly)
    if len(order) != len(spec.jobs):
        stuck = sorted(job_id for job_id, d in in_deg.items() if d > 0)
        raise SpecError(f"dependency cycle among job(s) {stuck}")

    return Plan(
        spec=spec,
        needs={job_id: tuple(sorted(deps)) for job_id, deps in needs.items()},
        dependents={job_id: tuple(sorted(d)) for job_id, d in dependents.items()},
        order=tuple(order),
    )
