"""Render a completed campaign run into ``results/`` tables.

Reads the run directory (manifest + persisted job results + event log)
and writes one plain-text table per job plus a campaign ``SUMMARY.txt``
under ``<out_dir>/campaign_<name>/`` — the same artifact style as the
``benchmarks/`` harness, so EXPERIMENTS.md can be refreshed from either
path.  Also used by ``repro campaign report`` / ``status`` for terminal
output.
"""

from __future__ import annotations

import pathlib
from typing import Any, Mapping, Sequence

from repro.campaign.events import read_events
from repro.campaign.store import RunStore

__all__ = ["render_job", "render_summary", "write_report"]


def _sci(x: float) -> str:
    if x == 0.0:
        return "0"
    return f"{x:.2E}"


def _table(
    title: str, header: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    rows = [[str(c) for c in row] for row in rows]
    header = [str(h) for h in header]
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines) + "\n"


def _time_labels(times_s: Sequence[float]) -> list[str]:
    from repro.montecarlo.sweep import PAPER_TIME_GRID_S, PAPER_TIME_LABELS

    if list(times_s) == list(PAPER_TIME_GRID_S):
        return list(PAPER_TIME_LABELS)
    return [f"{t:.3G}s" for t in times_s]


def _render_sweep(job_id: str, result: Mapping[str, Any]) -> str:
    labels = _time_labels(result["times_s"])
    names = list(result["series"])
    rows = [
        [label] + [_sci(result["series"][n][i]) for n in names]
        for i, label in enumerate(labels)
    ]
    return _table(f"{job_id}: CER vs time", ["time"] + names, rows)


def _render_cer(job_id: str, result: Mapping[str, Any]) -> str:
    labels = _time_labels(result["times_s"])
    rows = [[label, _sci(c)] for label, c in zip(labels, result["cer"])]
    design = result["design"]["name"]
    title = f"{job_id}: {design} CER ({result['n_samples']:,} MC cells)"
    if "state" in result:
        title = f"{job_id}: {design}/{result['state']} state CER"
    return _table(title, ["time", "CER"], rows)


def _render_mapping(job_id: str, result: Mapping[str, Any]) -> str:
    d = result["design"]
    lines = [
        f"{job_id}: optimized mapping {d['name']}",
        f"  levels:     {' '.join(f'{m:.4f}' for m in d['mu_lrs'])}",
        f"  thresholds: {' '.join(f'{t:.4f}' for t in d['thresholds'])}",
        f"  occupancy:  {' '.join(f'{p:.2f}' for p in d['occupancy'])}",
        f"  CER at eval times: {_sci(result['cer_at_eval'])} "
        f"(naive start {_sci(result['start_cer'])}, "
        f"improvement x{result['improvement']:.3G})",
    ]
    if result.get("mc_cer_at_eval") is not None:
        lines.append(f"  MC confirmation: {_sci(result['mc_cer_at_eval'])}")
    return "\n".join(lines) + "\n"


def _render_retention(job_id: str, result: Mapping[str, Any]) -> str:
    years = result["retention_years"]
    if years >= 1:
        horizon = f"{years:.1f} years"
    elif result["retention_s"] >= 86400:
        horizon = f"{result['retention_s'] / 86400:.1f} days"
    else:
        horizon = f"{result['retention_s'] / 60:.1f} minutes"
    lines = [
        f"{job_id}: {result['design']['name']} + BCH-{result['ecc_t']} "
        f"({result['n_cells']} cells): refresh every {horizon}",
        f"  CER {_sci(result['cer_at_retention'])}, "
        f"BLER {_sci(result['bler_at_retention'])} "
        f"vs target {_sci(result['target_bler'])}",
        f"  nonvolatile (>10 years): "
        f"{'yes' if result['nonvolatile'] else 'no'}",
    ]
    if "mc_cer_at_retention" in result:
        lines.append(f"  MC check: {_sci(result['mc_cer_at_retention'])}")
    return "\n".join(lines) + "\n"


def _render_capacity(job_id: str, result: Mapping[str, Any]) -> str:
    rows = [
        [name, c["data_cells"], c["overhead_cells"], c["total_cells"],
         f"{c['bits_per_cell']:.3f}"]
        for name, c in result["capacities"].items()
    ]
    return _table(
        f"{job_id}: Table-3 storage densities",
        ["design", "data", "overhead", "total", "bits/cell"],
        rows,
    )


def render_job(job_id: str, kind: str, result: Mapping[str, Any]) -> str:
    """Human-readable rendering of one completed job's result."""
    if kind in ("fig3_sweep", "fig8_sweep"):
        return _render_sweep(job_id, result)
    if kind in ("design_cer", "state_cer"):
        return _render_cer(job_id, result)
    if kind == "mapping_opt":
        return _render_mapping(job_id, result)
    if kind == "retention":
        return _render_retention(job_id, result)
    if kind == "capacity":
        return _render_capacity(job_id, result)
    import json

    return f"{job_id} ({kind}):\n{json.dumps(dict(result), indent=2, sort_keys=True)}\n"


def render_summary(store: RunStore) -> str:
    """Campaign-level summary: job states, counters, throughput."""
    manifest = store.read_manifest()
    status = store.read_status() or {}
    states: Mapping[str, str] = status.get("states", {})
    kinds = {j["id"]: j["kind"] for j in manifest["spec"]["job"]}
    rows = [
        [job_id, kinds.get(job_id, "?"), states.get(job_id, "pending")]
        for job_id in manifest["order"]
    ]
    text = _table(
        f"campaign {manifest['spec']['name']} — {store.run_dir}",
        ["job", "kind", "state"],
        rows,
    )
    metrics = status.get("metrics")
    if metrics:
        text += (
            f"\njobs: {metrics.get('done', 0)} done, "
            f"{metrics.get('cached', 0)} cached, "
            f"{metrics.get('failed', 0)} failed, "
            f"{metrics.get('blocked', 0)} blocked of {metrics.get('total', 0)}"
            f" | {metrics.get('samples', 0):,} MC samples"
            f" ({metrics.get('samples_per_s', 0):,.0f}/s)"
        )
        if metrics.get("cache_hit_rate") is not None:
            text += f" | cache hit rate {100 * metrics['cache_hit_rate']:.0f}%"
        text += "\n"
    n_events = sum(1 for _ in read_events(store.events_path))
    text += f"event log: {n_events} events in {store.events_path}\n"
    return text


def write_report(
    store: RunStore, out_dir: str | pathlib.Path = "results"
) -> list[pathlib.Path]:
    """Write per-job tables + SUMMARY.txt; returns the written paths."""
    manifest = store.read_manifest()
    name = manifest["spec"]["name"]
    kinds = {j["id"]: j["kind"] for j in manifest["spec"]["job"]}
    target = pathlib.Path(out_dir) / f"campaign_{name}"
    target.mkdir(parents=True, exist_ok=True)
    written: list[pathlib.Path] = []
    for job_id, result in store.completed_jobs().items():
        path = target / f"{job_id}.txt"
        path.write_text(render_job(job_id, kinds.get(job_id, "?"), result))
        written.append(path)
    summary = target / "SUMMARY.txt"
    summary.write_text(render_summary(store))
    written.append(summary)
    return written
