"""Campaign job kinds: the bridge from declarative params to the engines.

Each kind is a function ``(job, ctx) -> dict`` that resolves its params
against the campaign defaults and calls the existing analysis code —
:func:`repro.montecarlo.sweep.fig3_state_sweep`,
:func:`repro.montecarlo.cer.design_cer`,
:func:`repro.mapping.optimizer.optimize_mapping`,
:func:`repro.analysis.retention.retention_time_s` — with the campaign's
seed, worker count, and shared :class:`ResultsCache`.  Because the calls
and seeds are identical to the direct code paths, campaign results (and
persistent cache keys) are bit-identical to running the figures by hand.

Results must be JSON-serializable dicts: they are persisted per job under
the run directory and fed to dependent jobs (``design_from`` lets a
``design_cer``/``retention`` job consume the design a ``mapping_opt`` job
produced).  Include an ``n_samples`` entry when the job draws Monte Carlo
samples — the scheduler aggregates it into the samples/sec metric.

``register_job_kind`` exists so tests and downstream users can add kinds;
the built-in ``fail`` kind always raises, for retry/failure drills.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Mapping

import numpy as np

__all__ = [
    "JobContext",
    "design_to_dict",
    "design_from_dict",
    "known_kinds",
    "register_job_kind",
    "run_job",
]


@dataclasses.dataclass
class JobContext:
    """Execution-time context handed to every job runner.

    ``dep_results`` maps each dependency's job id to its (already
    completed) result dict.  ``mc_jobs`` is the Monte Carlo worker count
    forwarded to the executor; ``cache`` the shared results cache (or
    ``None``).
    """

    seed: int = 0
    defaults: Mapping[str, Any] = dataclasses.field(default_factory=dict)
    mc_jobs: int | None = 1
    cache: Any = None
    dep_results: Mapping[str, Mapping[str, Any]] = dataclasses.field(
        default_factory=dict
    )


_REGISTRY: dict[str, Callable[[Any, JobContext], dict]] = {}


def register_job_kind(name: str, fn: Callable[[Any, JobContext], dict]) -> None:
    """Register (or override) a job kind; ``fn`` is ``(job, ctx) -> dict``."""
    _REGISTRY[name] = fn


def known_kinds() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def run_job(job, ctx: JobContext) -> dict:
    """Execute one job spec under ``ctx`` and return its result dict."""
    return _REGISTRY[job.kind](job, ctx)


# ----------------------------------------------------------------------
# Param resolution helpers
# ----------------------------------------------------------------------

def _jsonable(x):
    """Recursively convert numpy containers/scalars to plain Python."""
    if isinstance(x, np.ndarray):
        return [_jsonable(v) for v in x.tolist()]
    if isinstance(x, (np.floating, np.integer, np.bool_)):
        return x.item()
    if isinstance(x, Mapping):
        return {k: _jsonable(v) for k, v in x.items()}
    if isinstance(x, (list, tuple)):
        return [_jsonable(v) for v in x]
    return x


def _n_samples(job, ctx: JobContext) -> int:
    n = job.params.get("n_samples", ctx.defaults.get("n_samples", 1_000_000))
    return int(n)


def _times_s(job, ctx: JobContext) -> list[float]:
    from repro.montecarlo.sweep import PAPER_TIME_GRID_S

    times = job.params.get("times_s", ctx.defaults.get("times_s", PAPER_TIME_GRID_S))
    return [float(t) for t in times]


def design_to_dict(design) -> dict:
    """JSON form of a :class:`~repro.core.levels.LevelDesign`."""
    return {
        "name": design.name,
        "state_names": list(design.state_names),
        "mu_lrs": [float(s.mu_lr) for s in design.states],
        "thresholds": [float(t) for t in design.thresholds],
        "occupancy": [float(p) for p in design.occupancy],
    }


def design_from_dict(d: Mapping[str, Any]):
    """Rebuild a :class:`LevelDesign` from :func:`design_to_dict` output."""
    from repro.core.levels import LevelDesign

    return LevelDesign.from_levels(
        d["name"],
        list(d["state_names"]),
        [float(m) for m in d["mu_lrs"]],
        thresholds=[float(t) for t in d["thresholds"]],
        occupancy=[float(p) for p in d["occupancy"]],
    )


def _design_for(job, ctx: JobContext):
    """The job's target design: a canonical name or an upstream job's output."""
    from repro.core.designs import design_by_name

    src = job.params.get("design_from")
    if src is not None:
        result = ctx.dep_results.get(src)
        if result is None or "design" not in result:
            raise ValueError(
                f"job {job.id!r}: dependency {src!r} produced no design"
            )
        return design_from_dict(result["design"])
    name = job.params.get("design")
    if name is None:
        raise ValueError(f"job {job.id!r} needs a 'design' or 'design_from' param")
    return design_by_name(name)


# ----------------------------------------------------------------------
# Built-in kinds
# ----------------------------------------------------------------------

def _run_fig3_sweep(job, ctx: JobContext) -> dict:
    from repro.montecarlo.sweep import fig3_state_sweep

    n = _n_samples(job, ctx)
    sweep = fig3_state_sweep(
        n_samples=n,
        times_s=_times_s(job, ctx),
        seed=ctx.seed + int(job.params.get("seed_offset", 0)),
        jobs=ctx.mc_jobs,
        cache=ctx.cache,
    )
    return _jsonable(
        {
            "times_s": sweep.times_s,
            "series": dict(sweep.series),
            "n_samples": n * len(sweep.series),
        }
    )


def _run_fig8_sweep(job, ctx: JobContext) -> dict:
    from repro.core.designs import all_designs
    from repro.montecarlo.sweep import fig8_design_sweep

    designs = None
    if "designs" in job.params:
        catalog = all_designs()
        designs = {name: catalog[name] for name in job.params["designs"]}
    n = _n_samples(job, ctx)
    sweep = fig8_design_sweep(
        n_samples=n,
        times_s=_times_s(job, ctx),
        seed=ctx.seed + int(job.params.get("seed_offset", 0)),
        designs=designs,
        analytic_floor=bool(job.params.get("analytic_floor", True)),
        jobs=ctx.mc_jobs,
        cache=ctx.cache,
    )
    return _jsonable(
        {
            "times_s": sweep.times_s,
            "series": dict(sweep.series),
            "n_samples": n * len(sweep.series),
        }
    )


def _run_state_cer(job, ctx: JobContext) -> dict:
    from repro.montecarlo.cer import state_cer

    design = _design_for(job, ctx)
    idx = int(job.params["state_index"])
    tau = design.upper_threshold(idx)
    if not np.isfinite(tau):
        raise ValueError(f"job {job.id!r}: top state {idx} never drift-errs")
    n = _n_samples(job, ctx)
    res = state_cer(
        design.states[idx],
        tau,
        _times_s(job, ctx),
        n,
        seed=ctx.seed + int(job.params.get("seed_offset", 0)),
        jobs=ctx.mc_jobs,
        cache=ctx.cache,
    )
    return _jsonable(
        {
            "design": design_to_dict(design),
            "state": design.states[idx].name,
            "times_s": res.times_s,
            "cer": res.cer,
            "n_samples": res.n_samples,
        }
    )


def _run_design_cer(job, ctx: JobContext) -> dict:
    from repro.montecarlo.cer import design_cer

    design = _design_for(job, ctx)
    n = _n_samples(job, ctx)
    res = design_cer(
        design,
        _times_s(job, ctx),
        n,
        seed=ctx.seed + int(job.params.get("seed_offset", 0)),
        jobs=ctx.mc_jobs,
        cache=ctx.cache,
    )
    return _jsonable(
        {
            "design": design_to_dict(design),
            "times_s": res.times_s,
            "cer": res.cer,
            "n_samples": res.n_samples,
        }
    )


def _run_mapping_opt(job, ctx: JobContext) -> dict:
    from repro.mapping.optimizer import DEFAULT_EVAL_TIME_S, optimize_mapping

    eval_times = job.params.get("eval_times_s", [DEFAULT_EVAL_TIME_S])
    mc_confirm = int(job.params.get("mc_confirm_samples", 0))
    result = optimize_mapping(
        int(job.params["n_levels"]),
        eval_time_s=[float(t) for t in eval_times],
        occupancy=job.params.get("occupancy"),
        name=job.params.get("name"),
        mc_confirm_samples=mc_confirm,
        mc_seed=ctx.seed + int(job.params.get("seed_offset", 0)),
        mc_jobs=ctx.mc_jobs,
        mc_cache=ctx.cache,
    )
    out = {
        "design": design_to_dict(result.design),
        "cer_at_eval": result.cer_at_eval,
        "eval_times_s": result.eval_times_s,
        "start_cer": result.start_cer,
        "improvement": result.improvement,
        "n_evaluations": result.n_evaluations,
        "mc_cer_at_eval": result.mc_cer_at_eval,
    }
    if mc_confirm:
        out["n_samples"] = mc_confirm
    return _jsonable(out)


def _run_retention(job, ctx: JobContext) -> dict:
    from repro.analysis.retention import retention_time_s
    from repro.cells.params import T0_SECONDS

    design = _design_for(job, ctx)
    n_cells = int(job.params["n_cells"])
    ecc_t = int(job.params.get("ecc_t", 1))
    r = retention_time_s(design, n_cells, ecc_t)
    out: dict[str, Any] = {
        "design": design_to_dict(design),
        "n_cells": n_cells,
        "ecc_t": ecc_t,
        "retention_s": r.retention_s,
        "retention_years": r.retention_years,
        "cer_at_retention": r.cer_at_retention,
        "bler_at_retention": r.bler_at_retention,
        "target_bler": r.target_bler,
        "nonvolatile": r.retention_years >= 10.0,
    }
    mc_verify = int(job.params.get("mc_verify", 0))
    if mc_verify and r.retention_s >= T0_SECONDS:
        from repro.montecarlo.cer import design_cer

        mc = design_cer(
            design,
            [min(r.retention_s, 1e12)],
            mc_verify,
            seed=ctx.seed + int(job.params.get("seed_offset", 0)),
            jobs=ctx.mc_jobs,
            cache=ctx.cache,
        )
        out["mc_cer_at_retention"] = mc.cer[0]
        out["n_samples"] = mc_verify
    return _jsonable(out)


def _run_bler_mc(job, ctx: JobContext) -> dict:
    from repro.analysis.bler import block_error_rate
    from repro.coding.blockcodec import ThreeOnTwoBlockCodec
    from repro.montecarlo.bler_mc import bler_mc

    cers = [float(c) for c in job.params.get("cers", [1e-3, 3e-3, 1e-2])]
    # --samples scales the built-in campaign: fall back n_blocks -> the
    # campaign-wide n_samples default.
    n_blocks = int(
        job.params.get(
            "n_blocks",
            ctx.defaults.get("n_blocks", ctx.defaults.get("n_samples", 1_000_000)),
        )
    )
    data_bits = int(job.params.get("data_bits", 512))
    n_spare_pairs = int(job.params.get("n_spare_pairs", 6))
    results = bler_mc(
        cers,
        n_blocks,
        seed=ctx.seed + int(job.params.get("seed_offset", 0)),
        data_bits=data_bits,
        n_spare_pairs=n_spare_pairs,
        jobs=ctx.mc_jobs,
        cache=ctx.cache,
    )
    n_cells = ThreeOnTwoBlockCodec(
        data_bits=data_bits, n_spare_pairs=n_spare_pairs
    ).n_mlc_cells
    points = []
    for r in results:
        lo, hi = r.confidence()
        analytic = block_error_rate(r.cer, n_cells, 1)
        points.append(
            {
                "cer": r.cer,
                "bler": r.bler,
                "n_errors": r.n_errors,
                "n_silent": r.n_silent,
                "ci95": [lo, hi],
                "analytic": analytic,
                "analytic_in_ci": bool(lo <= analytic <= hi),
            }
        )
    return _jsonable(
        {
            "n_blocks": n_blocks,
            "n_mlc_cells": n_cells,
            "points": points,
            "n_samples": n_blocks * len(cers),
        }
    )


def _run_fleet(job, ctx: JobContext) -> dict:
    from repro.fleet.config import config_from_params
    from repro.fleet.mc import fleet_mc

    # --samples scales the built-in campaign: the device count falls back
    # n_devices -> the campaign-wide n_samples default.
    n_devices = int(
        job.params.get(
            "n_devices",
            ctx.defaults.get("n_devices", ctx.defaults.get("n_samples", 10_000)),
        )
    )
    n_epochs = int(job.params.get("n_epochs", ctx.defaults.get("n_epochs", 4)))
    config = config_from_params(job.params, n_devices, n_epochs)
    summary = fleet_mc(
        config,
        seed=ctx.seed + int(job.params.get("seed_offset", 0)),
        jobs=ctx.mc_jobs,
        cache=ctx.cache,
    )
    return _jsonable(
        {
            **summary.to_dict(),
            "n_samples": n_devices * n_epochs,  # device-epochs simulated
        }
    )


def _run_capacity(job, ctx: JobContext) -> dict:
    from repro.analysis.capacity import TABLE3_CAPACITIES

    rows = {
        name: {
            "data_cells": c.data_cells,
            "overhead_cells": c.overhead_cells,
            "total_cells": c.total_cells,
            "bits_per_cell": c.bits_per_cell,
        }
        for name, c in TABLE3_CAPACITIES.items()
    }
    return _jsonable({"capacities": rows})


def _run_fail(job, ctx: JobContext) -> dict:
    """Always fails — the built-in failure-injection / retry drill kind."""
    raise RuntimeError(str(job.params.get("message", "injected failure")))


register_job_kind("fig3_sweep", _run_fig3_sweep)
register_job_kind("fig8_sweep", _run_fig8_sweep)
register_job_kind("state_cer", _run_state_cer)
register_job_kind("design_cer", _run_design_cer)
register_job_kind("mapping_opt", _run_mapping_opt)
register_job_kind("retention", _run_retention)
register_job_kind("bler_mc", _run_bler_mc)
register_job_kind("fleet", _run_fleet)
register_job_kind("capacity", _run_capacity)
register_job_kind("fail", _run_fail)
