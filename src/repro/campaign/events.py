"""Structured campaign events: JSONL log, metrics, terminal progress.

Every state transition the scheduler makes is appended to
``events.jsonl`` as one self-describing JSON object — ``campaign_start``,
``job_start``, ``job_retry``, ``job_done``, ``job_failed``,
``job_blocked``, ``job_cached``, ``campaign_end`` — with a wall-clock
``ts``.  The log is the audit trail the resume tests rely on: a job that
was restored from a previous run emits ``job_cached`` and *no* second
``job_start``, so "zero re-executed jobs" is checkable from the file
alone.

:class:`Metrics` folds transitions into the counters surfaced in the
``campaign_end`` event and the live progress line: jobs by state,
cumulative Monte Carlo samples, samples/sec, and the result-cache hit
rate.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import sys
import threading
import time
from typing import Any, Iterator

from repro.chaos.registry import fault_point

__all__ = ["EventLog", "Metrics", "ProgressLine", "read_events"]


class EventLog:
    """Append-only JSONL event writer (thread-safe, crash-tolerant).

    Each ``emit`` writes one line and flushes, so a killed campaign's log
    is complete up to the crash point; appending on resume preserves the
    full history of the run directory.  A crash *mid-append* can leave a
    torn final line (no trailing newline); the first ``emit`` of a new
    writer repairs it by terminating the fragment, so the resumed run's
    events never merge into the torn one.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = pathlib.Path(path)
        self._lock = threading.Lock()
        self._tail_checked = False

    def _repair_torn_tail(self) -> None:
        """Terminate a torn final line left by a crash mid-append."""
        try:
            with open(self.path, "rb") as f:
                f.seek(-1, os.SEEK_END)
                torn = f.read(1) != b"\n"
        except (OSError, ValueError):
            return  # missing or empty log: nothing to repair
        if torn:
            with open(self.path, "a") as f:
                f.write("\n")

    def emit(self, event: str, **fields: Any) -> dict[str, Any]:
        record = {
            # repro-lint: disable=RPL003 -- audit-trail timestamp; never enters job results or cache keys
            "ts": time.time(),
            "event": event,
            **fields,
        }
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            if not self._tail_checked:
                self._tail_checked = True
                self._repair_torn_tail()
            fault_point("events.append", path=self.path, line=line)
            with open(self.path, "a") as f:
                f.write(line + "\n")
                f.flush()
        return record


def read_events(
    path: str | os.PathLike, strict: bool = False
) -> Iterator[dict[str, Any]]:
    """Parse an event log, tolerating a torn final line.

    A crash mid-append legitimately leaves an unparseable fragment *at
    the end* of the file (no trailing newline); that is always skipped.
    An unparseable line anywhere else means real corruption: with
    ``strict=True`` it raises ``ValueError``, otherwise it is skipped —
    the historical behavior the status/report paths rely on.
    """
    p = pathlib.Path(path)
    if not p.is_file():
        return
    raw = p.read_text()
    ends_complete = raw.endswith("\n")
    lines = raw.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            yield json.loads(line)
        except json.JSONDecodeError:
            if i == len(lines) - 1 and not ends_complete:
                return  # torn tail from a crash mid-append
            if strict:
                raise ValueError(
                    f"corrupt event log line {i + 1} in {p}"
                ) from None
            continue


@dataclasses.dataclass
class Metrics:
    """Live counters of one campaign execution."""

    total: int = 0
    done: int = 0
    cached: int = 0
    failed: int = 0
    blocked: int = 0
    running: int = 0
    retries: int = 0
    samples: int = 0
    started_at: float = dataclasses.field(
        # repro-lint: disable=RPL003 -- throughput-metric epoch; reported, never part of results
        default_factory=time.time
    )

    @property
    def finished(self) -> int:
        return self.done + self.cached + self.failed + self.blocked

    @property
    def elapsed_s(self) -> float:
        # repro-lint: disable=RPL003 -- elapsed-time metric for samples/s display only
        return max(time.time() - self.started_at, 1e-9)

    @property
    def samples_per_s(self) -> float:
        return self.samples / self.elapsed_s

    def snapshot(self, cache=None) -> dict[str, Any]:
        """JSON counters, including cache hit rate when a cache is live."""
        snap: dict[str, Any] = {
            "total": self.total,
            "done": self.done,
            "cached": self.cached,
            "failed": self.failed,
            "blocked": self.blocked,
            "running": self.running,
            "retries": self.retries,
            "samples": self.samples,
            "elapsed_s": round(self.elapsed_s, 3),
            "samples_per_s": round(self.samples_per_s, 1),
        }
        if cache is not None:
            hits, misses = cache.stats.hits, cache.stats.misses
            snap["cache_hits"] = hits
            snap["cache_misses"] = misses
            lookups = hits + misses
            snap["cache_hit_rate"] = round(hits / lookups, 4) if lookups else None
        return snap


class ProgressLine:
    """One-line terminal progress indicator (stderr, ``\\r``-refreshed)."""

    def __init__(self, name: str, enabled: bool = True, stream=None):
        self.name = name
        self.enabled = enabled
        self.stream = stream if stream is not None else sys.stderr
        self._dirty = False

    def update(self, metrics: Metrics, cache=None) -> None:
        if not self.enabled:
            return
        parts = [
            f"campaign {self.name}:",
            f"{metrics.done + metrics.cached}/{metrics.total} done",
            f"{metrics.running} running",
        ]
        if metrics.failed or metrics.blocked:
            parts.append(f"{metrics.failed} failed {metrics.blocked} blocked")
        if metrics.samples:
            parts.append(f"{metrics.samples_per_s:,.0f} samples/s")
        if cache is not None:
            lookups = cache.stats.hits + cache.stats.misses
            if lookups:
                parts.append(f"cache {100 * cache.stats.hits / lookups:.0f}% hit")
        self.stream.write("\r" + " | ".join(parts).ljust(78))
        self.stream.flush()
        self._dirty = True

    def close(self) -> None:
        if self.enabled and self._dirty:
            self.stream.write("\n")
            self.stream.flush()
            self._dirty = False
