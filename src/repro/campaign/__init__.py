"""Declarative, resumable experiment-campaign orchestration.

A *campaign* is the unit of a full paper reproduction: hundreds of
(design x time-grid x sample-count) Monte Carlo jobs plus the analytic
steps that consume them, expressed once as a declarative spec instead of
thirty ad-hoc scripts.  The package splits the problem into:

- :mod:`repro.campaign.spec` — the declarative spec (dict / TOML) and the
  built-in campaigns (``fig3``, ``fig8``, ``fig3_fig8``, ``retention``,
  ``smoke``);
- :mod:`repro.campaign.plan` — expansion of a spec into a validated DAG
  of jobs with a deterministic topological order;
- :mod:`repro.campaign.jobs` — the job-kind registry: each kind maps its
  params onto the existing engines (``state_cer``/``design_cer``/sweeps/
  ``optimize_mapping``/``retention_time_s``);
- :mod:`repro.campaign.scheduler` — bounded-concurrency execution with
  per-job retry + exponential backoff, failure isolation (failed jobs
  block their dependents, everything else completes), and crash-safe
  resume;
- :mod:`repro.campaign.store` — the run directory: atomic JSON manifest,
  per-job result files, status snapshot;
- :mod:`repro.campaign.events` — the append-only JSONL event log and the
  live progress line / throughput metrics;
- :mod:`repro.campaign.report` — rendering a completed run into
  ``results/`` tables.

Campaign jobs call straight into :func:`repro.montecarlo.cer.state_cer` /
:func:`~repro.montecarlo.cer.design_cer` with the spec's seeds, so their
numbers — and their persistent cache keys — are bit-identical to the
direct ``sweep`` code paths.
"""

from repro.campaign.plan import Plan, build_plan
from repro.campaign.scheduler import CampaignResult, CampaignScheduler
from repro.campaign.spec import (
    BUILTIN_CAMPAIGNS,
    CampaignSpec,
    JobSpec,
    builtin_campaign,
    campaign_from_dict,
    campaign_from_toml,
)
from repro.campaign.store import RunStore

__all__ = [
    "BUILTIN_CAMPAIGNS",
    "CampaignResult",
    "CampaignScheduler",
    "CampaignSpec",
    "JobSpec",
    "Plan",
    "RunStore",
    "build_plan",
    "builtin_campaign",
    "campaign_from_dict",
    "campaign_from_toml",
]
