"""Run-directory persistence: the crash-safe state of one campaign run.

Layout of a run directory::

    manifest.json   # the full spec + plan order, written once at start
    status.json     # latest job-state snapshot (rewritten atomically)
    events.jsonl    # append-only event log (see repro.campaign.events)
    jobs/<id>.json  # one result file per *completed* job

Every JSON file is written via a temp file + ``os.replace`` so a crash
never leaves a half-written file.  The per-job result files are the
ground truth for resume: a job counts as done if and only if its result
file parses — ``status.json`` is merely the latest convenience snapshot,
so a crash between a result write and a status write loses nothing.
JSON floats round-trip exactly (``repr``-based), which is what makes a
resumed campaign's final numbers bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Mapping

from repro.chaos.registry import fault_point

__all__ = ["RunStore"]

_MANIFEST_VERSION = 1


def _atomic_write_json(path: pathlib.Path, payload: Any) -> None:
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)


class RunStore:
    """Filesystem state of one campaign run under ``run_dir``."""

    def __init__(self, run_dir: str | os.PathLike):
        self.run_dir = pathlib.Path(run_dir)

    # -- paths ----------------------------------------------------------
    @property
    def manifest_path(self) -> pathlib.Path:
        return self.run_dir / "manifest.json"

    @property
    def status_path(self) -> pathlib.Path:
        return self.run_dir / "status.json"

    @property
    def events_path(self) -> pathlib.Path:
        return self.run_dir / "events.jsonl"

    @property
    def jobs_dir(self) -> pathlib.Path:
        return self.run_dir / "jobs"

    def result_path(self, job_id: str) -> pathlib.Path:
        return self.jobs_dir / f"{job_id}.json"

    # -- lifecycle ------------------------------------------------------
    def exists(self) -> bool:
        return self.manifest_path.is_file()

    def init(self, spec_dict: Mapping[str, Any], order: list[str] | tuple) -> None:
        """Create the run directory and persist the manifest (idempotent
        only for an identical spec — a differing manifest is an error)."""
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.jobs_dir.mkdir(exist_ok=True)
        manifest = {
            "version": _MANIFEST_VERSION,
            "spec": dict(spec_dict),
            "order": list(order),
        }
        if self.exists():
            try:
                existing = self.read_manifest()
            except (OSError, json.JSONDecodeError):
                # A torn/unreadable manifest (crash or disk corruption):
                # the caller is re-supplying the full spec, so rewrite it
                # rather than wedging the run directory forever.
                existing = None
            if existing is not None:
                if existing != manifest:
                    raise ValueError(
                        f"run dir {self.run_dir} already holds a different "
                        "campaign (manifest mismatch); choose another "
                        "--run-dir or remove it"
                    )
                return
        fault_point("store.write_manifest", path=self.manifest_path)
        _atomic_write_json(self.manifest_path, manifest)

    def read_manifest(self) -> dict[str, Any]:
        return json.loads(self.manifest_path.read_text())

    # -- job results ----------------------------------------------------
    def write_result(self, job_id: str, result: Mapping[str, Any]) -> None:
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        fault_point("store.write_result", path=self.result_path(job_id), job=job_id)
        _atomic_write_json(self.result_path(job_id), dict(result))

    def read_result(self, job_id: str) -> dict[str, Any] | None:
        """The job's persisted result, or ``None`` if absent/corrupt."""
        try:
            return json.loads(self.result_path(job_id).read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def completed_jobs(self) -> dict[str, dict[str, Any]]:
        """All parseable persisted results — the resume ground truth."""
        out: dict[str, dict[str, Any]] = {}
        if not self.jobs_dir.is_dir():
            return out
        for p in sorted(self.jobs_dir.glob("*.json")):
            result = self.read_result(p.stem)
            if result is not None:
                out[p.stem] = result
        return out

    # -- status snapshot ------------------------------------------------
    def write_status(self, status: Mapping[str, Any]) -> None:
        fault_point("store.write_status", path=self.status_path)
        _atomic_write_json(self.status_path, dict(status))

    def read_status(self) -> dict[str, Any] | None:
        try:
            return json.loads(self.status_path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
