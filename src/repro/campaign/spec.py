"""Declarative campaign specs: what to run, not how to run it.

A spec is a plain dict (TOML-compatible) naming the campaign, the RNG
seed, campaign-wide defaults, the retry policy, and a list of jobs.  Each
job has a unique ``id``, a ``kind`` from the registry in
:mod:`repro.campaign.jobs`, free-form ``params``, and explicit
dependencies via ``needs`` (plus the implicit dependency created by a
``design_from`` param — see :mod:`repro.campaign.plan`).

TOML form::

    name = "fig3_fig8"
    seed = 0

    [defaults]
    n_samples = 1000000

    [[job]]
    id = "fig8"
    kind = "fig8_sweep"

    [[job]]
    id = "retention-3LCo"
    kind = "retention"
    needs = ["fig8"]
    [job.params]
    design = "3LCo"
    ecc_t = 1
    n_cells = 354

The built-in campaigns (:data:`BUILTIN_CAMPAIGNS`) cover the paper's
Figure 3 and Figure 8 sweeps, the mapping-optimization -> design-CER ->
retention chain, the empirical end-to-end ``bler`` cross-validation of
the Figure 5 curves, a wear-accelerated ``fleet`` population run
(docs/FLEET.md), and a seconds-scale ``smoke`` spec for CI.
"""

from __future__ import annotations

import dataclasses
import tomllib
from typing import Any, Mapping, Sequence

from repro.campaign.jobs import known_kinds

__all__ = [
    "BUILTIN_CAMPAIGNS",
    "CampaignSpec",
    "JobSpec",
    "builtin_campaign",
    "campaign_from_dict",
    "campaign_from_toml",
]


class SpecError(ValueError):
    """A campaign spec failed validation."""


@dataclasses.dataclass(frozen=True)
class JobSpec:
    """One node of the campaign DAG."""

    id: str
    kind: str
    params: Mapping[str, Any] = dataclasses.field(default_factory=dict)
    needs: tuple[str, ...] = ()
    retries: int | None = None  #: overrides the campaign-wide retry count

    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {"id": self.id, "kind": self.kind}
        if self.params:
            d["params"] = dict(self.params)
        if self.needs:
            d["needs"] = list(self.needs)
        if self.retries is not None:
            d["retries"] = self.retries
        return d


@dataclasses.dataclass(frozen=True)
class CampaignSpec:
    """A whole campaign: jobs plus seeds, defaults, and retry policy.

    ``defaults`` supplies fall-back job params (``n_samples``,
    ``times_s``); a job's own ``params`` win.  ``retries`` is the number
    of *re-attempts* after a failure (0 = run once); the delay before
    re-attempt ``k`` is ``backoff_s * backoff_factor**(k-1)`` capped at
    ``backoff_max_s``.
    """

    name: str
    jobs: tuple[JobSpec, ...]
    seed: int = 0
    defaults: Mapping[str, Any] = dataclasses.field(default_factory=dict)
    retries: int = 0
    backoff_s: float = 0.5
    backoff_factor: float = 2.0
    backoff_max_s: float = 30.0
    max_parallel_jobs: int = 1

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form that :func:`campaign_from_dict` round-trips."""
        return {
            "name": self.name,
            "seed": self.seed,
            "defaults": dict(self.defaults),
            "retries": self.retries,
            "backoff_s": self.backoff_s,
            "backoff_factor": self.backoff_factor,
            "backoff_max_s": self.backoff_max_s,
            "max_parallel_jobs": self.max_parallel_jobs,
            "job": [j.to_dict() for j in self.jobs],
        }

    def job(self, job_id: str) -> JobSpec:
        for j in self.jobs:
            if j.id == job_id:
                return j
        raise KeyError(job_id)


_SPEC_KEYS = {
    "name", "seed", "defaults", "retries", "backoff_s", "backoff_factor",
    "backoff_max_s", "max_parallel_jobs", "job",
}
_JOB_KEYS = {"id", "kind", "params", "needs", "retries"}


def _job_from_dict(d: Mapping[str, Any], index: int) -> JobSpec:
    if not isinstance(d, Mapping):
        raise SpecError(f"job #{index} must be a table/dict, got {type(d).__name__}")
    unknown = set(d) - _JOB_KEYS
    if unknown:
        raise SpecError(f"job #{index}: unknown key(s) {sorted(unknown)}")
    job_id = d.get("id")
    if not isinstance(job_id, str) or not job_id:
        raise SpecError(f"job #{index} needs a non-empty string 'id'")
    kind = d.get("kind")
    if kind not in known_kinds():
        raise SpecError(
            f"job {job_id!r}: unknown kind {kind!r} "
            f"(known: {', '.join(sorted(known_kinds()))})"
        )
    needs = d.get("needs", ())
    if isinstance(needs, str) or not all(isinstance(n, str) for n in needs):
        raise SpecError(f"job {job_id!r}: 'needs' must be a list of job ids")
    params = d.get("params", {})
    if not isinstance(params, Mapping):
        raise SpecError(f"job {job_id!r}: 'params' must be a table/dict")
    retries = d.get("retries")
    if retries is not None and (not isinstance(retries, int) or retries < 0):
        raise SpecError(f"job {job_id!r}: 'retries' must be a non-negative integer")
    return JobSpec(
        id=job_id, kind=kind, params=dict(params), needs=tuple(needs), retries=retries
    )


def campaign_from_dict(d: Mapping[str, Any]) -> CampaignSpec:
    """Validate a plain dict (parsed TOML) into a :class:`CampaignSpec`."""
    unknown = set(d) - _SPEC_KEYS
    if unknown:
        raise SpecError(f"unknown campaign key(s) {sorted(unknown)}")
    name = d.get("name")
    if not isinstance(name, str) or not name:
        raise SpecError("campaign needs a non-empty string 'name'")
    raw_jobs = d.get("job", [])
    if not isinstance(raw_jobs, Sequence) or isinstance(raw_jobs, (str, bytes)):
        raise SpecError("'job' must be an array of tables")
    if not raw_jobs:
        raise SpecError("campaign has no jobs")
    jobs = tuple(_job_from_dict(j, i) for i, j in enumerate(raw_jobs))
    seen: set[str] = set()
    for j in jobs:
        if j.id in seen:
            raise SpecError(f"duplicate job id {j.id!r}")
        seen.add(j.id)
    retries = int(d.get("retries", 0))
    if retries < 0:
        raise SpecError("'retries' must be >= 0")
    max_parallel = int(d.get("max_parallel_jobs", 1))
    if max_parallel < 1:
        raise SpecError("'max_parallel_jobs' must be >= 1")
    return CampaignSpec(
        name=name,
        jobs=jobs,
        seed=int(d.get("seed", 0)),
        defaults=dict(d.get("defaults", {})),
        retries=retries,
        backoff_s=float(d.get("backoff_s", 0.5)),
        backoff_factor=float(d.get("backoff_factor", 2.0)),
        backoff_max_s=float(d.get("backoff_max_s", 30.0)),
        max_parallel_jobs=max_parallel,
    )


def campaign_from_toml(path: str) -> CampaignSpec:
    """Load and validate a campaign spec from a TOML file."""
    with open(path, "rb") as f:
        return campaign_from_dict(tomllib.load(f))


# ----------------------------------------------------------------------
# Built-in campaigns
# ----------------------------------------------------------------------

def _fig3_fig8_jobs() -> list[dict[str, Any]]:
    return [
        {"id": "fig3", "kind": "fig3_sweep"},
        {"id": "fig8", "kind": "fig8_sweep"},
        {
            "id": "retention-4LCo",
            "kind": "retention",
            "needs": ["fig8"],
            "params": {"design": "4LCo", "ecc_t": 1, "n_cells": 306},
        },
        {
            "id": "retention-3LCo",
            "kind": "retention",
            "needs": ["fig8"],
            "params": {"design": "3LCo", "ecc_t": 1, "n_cells": 354},
        },
        {
            "id": "capacity",
            "kind": "capacity",
            "needs": ["retention-4LCo", "retention-3LCo"],
        },
    ]


def _retention_chain_jobs() -> list[dict[str, Any]]:
    # The full measurement-campaign shape: optimize the mapping, confirm
    # its CER by Monte Carlo, then solve retention for the winner.
    return [
        {
            "id": "mapping-4lc",
            "kind": "mapping_opt",
            "params": {
                "n_levels": 4,
                "occupancy": [0.35, 0.15, 0.15, 0.35],
                "name": "4LCo",
            },
        },
        {
            "id": "mapping-3lc",
            "kind": "mapping_opt",
            "params": {
                "n_levels": 3,
                "eval_times_s": [2.0**15, 2.0**25, 2.0**30],
                "name": "3LCo",
            },
        },
        {"id": "cer-4lc", "kind": "design_cer", "params": {"design_from": "mapping-4lc"}},
        {"id": "cer-3lc", "kind": "design_cer", "params": {"design_from": "mapping-3lc"}},
        {
            "id": "retention-4lc",
            "kind": "retention",
            "needs": ["cer-4lc"],
            "params": {"design_from": "mapping-4lc", "ecc_t": 1, "n_cells": 306},
        },
        {
            "id": "retention-3lc",
            "kind": "retention",
            "needs": ["cer-3lc"],
            "params": {"design_from": "mapping-3lc", "ecc_t": 1, "n_cells": 354},
        },
    ]


def _smoke_jobs() -> list[dict[str, Any]]:
    return [
        {"id": "fig3", "kind": "fig3_sweep"},
        {"id": "fig8", "kind": "fig8_sweep", "params": {"designs": ["4LCn", "3LCo"]}},
        {"id": "mapping-3lc", "kind": "mapping_opt", "params": {"n_levels": 3}},
        {
            "id": "cer-opt",
            "kind": "design_cer",
            "params": {"design_from": "mapping-3lc", "times_s": [2.0**15, 2.0**30]},
        },
        {
            "id": "retention-opt",
            "kind": "retention",
            "needs": ["cer-opt"],
            "params": {"design_from": "mapping-3lc", "ecc_t": 1, "n_cells": 354},
        },
    ]


#: Built-in campaign templates, keyed by the name ``--spec`` accepts.
BUILTIN_CAMPAIGNS: dict[str, dict[str, Any]] = {
    "fig3": {
        "name": "fig3",
        "defaults": {"n_samples": 1_000_000},
        "job": [{"id": "fig3", "kind": "fig3_sweep"}],
    },
    "fig8": {
        "name": "fig8",
        "defaults": {"n_samples": 1_000_000},
        "job": [{"id": "fig8", "kind": "fig8_sweep"}],
    },
    "fig3_fig8": {
        "name": "fig3_fig8",
        "defaults": {"n_samples": 1_000_000},
        "job": _fig3_fig8_jobs(),
    },
    "retention": {
        "name": "retention",
        "defaults": {"n_samples": 1_000_000},
        "job": _retention_chain_jobs(),
    },
    "bler": {
        "name": "bler",
        # n_samples doubles as the block count here, so --samples scales
        # the empirical run like every other built-in.
        "defaults": {"n_samples": 1_000_000},
        "job": [
            {
                "id": "bler-empirical",
                "kind": "bler_mc",
                "params": {"cers": [1e-3, 3e-3, 1e-2]},
            }
        ],
    },
    "fleet": {
        "name": "fleet",
        # n_samples doubles as the device count, so --samples scales the
        # population like every other built-in.  The stress preset
        # compresses wear so spare-exhaustion shows within a few epochs.
        "defaults": {"n_samples": 10_000},
        "job": [
            {
                "id": "fleet-population",
                "kind": "fleet",
                "params": {"n_epochs": 3, "preset": "stress"},
            }
        ],
    },
    "smoke": {
        "name": "smoke",
        "defaults": {"n_samples": 20_000},
        "max_parallel_jobs": 2,
        "job": _smoke_jobs(),
    },
}


def builtin_campaign(
    name: str, n_samples: int | None = None, seed: int | None = None
) -> CampaignSpec:
    """Instantiate a built-in campaign, optionally scaling its samples.

    ``n_samples``/``seed`` override the template's defaults — the hook the
    CLI uses for ``--samples``/``--seed`` without editing specs.
    """
    try:
        template = BUILTIN_CAMPAIGNS[name]
    except KeyError:
        raise SpecError(
            f"unknown built-in campaign {name!r} "
            f"(known: {', '.join(sorted(BUILTIN_CAMPAIGNS))})"
        ) from None
    d = {**template, "defaults": dict(template.get("defaults", {}))}
    if n_samples is not None:
        d["defaults"]["n_samples"] = int(n_samples)
    if seed is not None:
        d["seed"] = int(seed)
    return campaign_from_dict(d)
