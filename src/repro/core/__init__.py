"""The paper's contribution: canonical cell designs, 3-ON-2, datapath timing, functional devices."""
