"""Read-datapath timing (Figure 9, Table 5).

The read pipeline is: PCM array read -> transient error correction ->
hard error correction -> symbol decoding.  This module derives the
per-design latency adders from the FO4 model of
:mod:`repro.analysis.latency` and exposes the canonical constants the
system simulation uses (Table 5 charges +36.25 ns for the 4LC design's
BCH-10 decode and +5 ns for the full 3LC pipeline on top of the 200 ns
array read).
"""

from __future__ import annotations

import dataclasses
import math

from repro.analysis.latency import PAPER_LATENCY_MODEL, BCHLatencyModel

__all__ = [
    "FO4_PS",
    "PCM_READ_NS",
    "PCM_WRITE_NS",
    "DatapathTiming",
    "FOUR_LC_TIMING",
    "THREE_LC_TIMING",
    "mark_and_spare_fo4",
]

#: Array-read and MLC-write latencies (Table 5).
PCM_READ_NS: float = 200.0
PCM_WRITE_NS: float = 1000.0

#: FO4 delay assumed by the paper's timing: 36.25 ns / 569 FO4 ~ 63.7 ps.
FO4_PS: float = 36.25e3 / 569.0


def mark_and_spare_fo4(
    n_pairs: int = 177, n_spares: int = 6, network: str = "sklansky"
) -> float:
    """FO4 depth of the cascaded mark-and-spare corrector (Figure 12).

    Each of the ``n_spares`` stages evaluates a prefix-OR over the INV
    flags (depth ``ceil(log2 n)`` OR2 levels for the Sklansky/Kogge-Stone
    forms, ``n - 1`` for the ripple chain) and one MUX level.
    """
    if network == "ripple":
        or_depth = n_pairs - 1
    elif network in ("sklansky", "kogge-stone"):
        or_depth = math.ceil(math.log2(n_pairs))
    else:
        raise ValueError(f"unknown network {network!r}")
    per_stage = or_depth * 2.0 + 2.0  # OR2 ~ 2 FO4, MUX ~ 2 FO4
    return n_spares * per_stage


@dataclasses.dataclass(frozen=True)
class DatapathTiming:
    """Per-stage read-path latencies of one design, in nanoseconds."""

    name: str
    array_read_ns: float
    tec_decode_ns: float
    hec_ns: float
    symbol_decode_ns: float

    @property
    def adder_ns(self) -> float:
        """Latency added on top of the raw array read."""
        return self.tec_decode_ns + self.hec_ns + self.symbol_decode_ns

    @property
    def total_read_ns(self) -> float:
        return self.array_read_ns + self.adder_ns


def _four_lc_timing(model: BCHLatencyModel = PAPER_LATENCY_MODEL) -> DatapathTiming:
    # BCH-10 over the 612-bit codeword dominates; ECP substitution is a
    # single MUX level and symbol decode one XOR level.
    tec = model.decode_fo4(612, 10) * FO4_PS / 1e3
    return DatapathTiming(
        name="4LC",
        array_read_ns=PCM_READ_NS,
        tec_decode_ns=tec,
        hec_ns=2.0 * FO4_PS / 1e3,
        symbol_decode_ns=2.0 * FO4_PS / 1e3,
    )


def _three_lc_timing(model: BCHLatencyModel = PAPER_LATENCY_MODEL) -> DatapathTiming:
    # BCH-1 over the 718-bit TEC view, then the (log-depth) mark-and-spare
    # compaction folded into a single rank-based select, then 3-ON-2
    # symbol decode.  Totals ~5 ns, the paper's Table 5 adder.
    tec = model.decode_fo4(718, 1) * FO4_PS / 1e3
    hec = (math.ceil(math.log2(177)) * 2.0 + 2.0) * FO4_PS / 1e3
    return DatapathTiming(
        name="3LC",
        array_read_ns=PCM_READ_NS,
        tec_decode_ns=tec,
        hec_ns=hec,
        symbol_decode_ns=2.0 * FO4_PS / 1e3,
    )


FOUR_LC_TIMING = _four_lc_timing()
THREE_LC_TIMING = _three_lc_timing()
