"""Cell level designs: nominal states plus sensing thresholds.

A :class:`LevelDesign` is the paper's notion of a "state mapping"
(Figures 1, 6 and 7): an ordered list of programmed states, each a
truncated Gaussian in log10-resistance, separated by sensing thresholds.
A cell whose log-resistance falls in ``(tau[i-1], tau[i]]`` is sensed as
state ``i``.

The module is deliberately agnostic of *how many* levels there are, so the
same machinery supports 4LC, 3LC and the generalized 5LC/6LC designs of
Section 8.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Sequence

import numpy as np

from repro.cells.params import (
    GUARD_BAND_DELTA,
    SIGMA_R,
    WRITE_TRUNCATION_SIGMA,
    StateParams,
    state_params_for_levels,
)

__all__ = ["LevelDesign", "uniform_thresholds"]


def uniform_thresholds(mu_lrs: Sequence[float]) -> list[float]:
    """Midpoint thresholds between consecutive nominal levels (naive mapping)."""
    mus = [float(m) for m in mu_lrs]
    if sorted(mus) != mus:
        raise ValueError("nominal levels must be increasing")
    return [(a + b) / 2.0 for a, b in zip(mus[:-1], mus[1:])]


@dataclasses.dataclass(frozen=True)
class LevelDesign:
    """An n-level cell design: states, thresholds, and occupancy weights.

    Parameters
    ----------
    name:
        Identifier such as ``"4LCn"`` or ``"3LCo"``.
    states:
        Programmed states in increasing nominal resistance.
    thresholds:
        ``n - 1`` sensing thresholds in log10-resistance; ``thresholds[i]``
        separates ``states[i]`` from ``states[i + 1]``.
    occupancy:
        Probability that a written cell is programmed to each state.  The
        naive designs use the uniform distribution; the "smart encoding"
        design 4LCs biases occupancy away from the vulnerable middle states
        (Section 5.1).
    """

    name: str
    states: tuple[StateParams, ...]
    thresholds: tuple[float, ...]
    occupancy: tuple[float, ...]

    def __post_init__(self) -> None:
        n = len(self.states)
        if n < 2:
            raise ValueError("a level design needs at least two states")
        if len(self.thresholds) != n - 1:
            raise ValueError(
                f"{n} states require {n - 1} thresholds, got {len(self.thresholds)}"
            )
        if len(self.occupancy) != n:
            raise ValueError("occupancy must have one entry per state")
        if abs(sum(self.occupancy) - 1.0) > 1e-9:
            raise ValueError(f"occupancy must sum to 1, got {sum(self.occupancy)}")
        if any(p < 0 for p in self.occupancy):
            raise ValueError("occupancy probabilities must be non-negative")
        mus = [s.mu_lr for s in self.states]
        if sorted(mus) != mus:
            raise ValueError("states must be in increasing nominal resistance")
        taus = list(self.thresholds)
        if sorted(taus) != taus:
            raise ValueError("thresholds must be increasing")
        for i, tau in enumerate(taus):
            if not (mus[i] < tau < mus[i + 1]):
                raise ValueError(
                    f"threshold {tau} must lie between nominal levels "
                    f"{mus[i]} and {mus[i + 1]}"
                )

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def n_levels(self) -> int:
        return len(self.states)

    @property
    def bits_per_cell_ideal(self) -> float:
        """Ideal information capacity ``log2(n_levels)`` of one cell."""
        return float(np.log2(self.n_levels))

    @property
    def state_names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self.states)

    def upper_threshold(self, state_index: int) -> float:
        """Threshold a drifting cell in ``states[state_index]`` must cross to
        be mis-sensed as the next state, or ``inf`` for the top state."""
        if state_index == self.n_levels - 1:
            return float("inf")
        return self.thresholds[state_index]

    def drift_margin(self, state_index: int) -> float:
        """Gap between the write window's upper edge and the upper threshold
        (the "drift error margin" of Figure 2)."""
        hi = self.states[state_index].write_window[1]
        return self.upper_threshold(state_index) - hi

    def margin_violations(self, delta: float = GUARD_BAND_DELTA) -> list[str]:
        """Check the Section-5.1 feasibility constraints.

        Every threshold must clear the write-window tails of both adjacent
        states by at least ``delta``.  Returns a list of human-readable
        violation descriptions (empty when the design is feasible).
        """
        problems: list[str] = []
        for i, tau in enumerate(self.thresholds):
            lo_state, hi_state = self.states[i], self.states[i + 1]
            if tau < lo_state.write_window[1] + delta:
                problems.append(
                    f"tau{i + 1}={tau:.4f} intrudes into {lo_state.name}'s "
                    f"write window (needs > {lo_state.write_window[1] + delta:.4f})"
                )
            if tau > hi_state.write_window[0] - delta:
                problems.append(
                    f"tau{i + 1}={tau:.4f} intrudes into {hi_state.name}'s "
                    f"write window (needs < {hi_state.write_window[0] - delta:.4f})"
                )
        return problems

    def sense(self, lr: np.ndarray) -> np.ndarray:
        """Map log10-resistances to sensed state indices (vectorized).

        A cell exactly at a threshold reads as the *higher* state,
        consistent with the drift-error convention (crossing tau is an
        error).
        """
        return np.searchsorted(np.asarray(self.thresholds), lr, side="right")

    def pdf(self, lr: np.ndarray) -> np.ndarray:
        """Occupancy-weighted probability density of written log-resistance.

        Reproduces the truncated-Gaussian mixture curves of Figures 1/6/7.
        """
        from scipy.stats import truncnorm

        lr = np.asarray(lr, dtype=float)
        total = np.zeros_like(lr)
        a = -WRITE_TRUNCATION_SIGMA
        b = WRITE_TRUNCATION_SIGMA
        for weight, state in zip(self.occupancy, self.states):
            total += weight * truncnorm.pdf(
                lr, a, b, loc=state.mu_lr, scale=state.sigma_lr
            )
        return total

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_levels(
        cls,
        name: str,
        names: Sequence[str],
        mu_lrs: Sequence[float],
        thresholds: Iterable[float] | None = None,
        occupancy: Sequence[float] | None = None,
        sigma_lr: float | None = None,
    ) -> "LevelDesign":
        """Build a design from nominal levels; thresholds default to midpoints,
        occupancy defaults to uniform, drift params follow the tier map.
        ``sigma_lr`` overrides the write spread (Section-8 tight writes)."""
        from repro.cells.params import SIGMA_R

        states = tuple(
            state_params_for_levels(names, mu_lrs, sigma_lr or SIGMA_R)
        )
        taus = tuple(thresholds) if thresholds is not None else tuple(
            uniform_thresholds(mu_lrs)
        )
        occ = (
            tuple(occupancy)
            if occupancy is not None
            else tuple([1.0 / len(states)] * len(states))
        )
        return cls(name=name, states=states, thresholds=taus, occupancy=occ)

    def with_(
        self,
        name: str | None = None,
        thresholds: Sequence[float] | None = None,
        occupancy: Sequence[float] | None = None,
    ) -> "LevelDesign":
        """Functional update returning a new design."""
        return LevelDesign(
            name=name if name is not None else self.name,
            states=self.states,
            thresholds=tuple(thresholds) if thresholds is not None else self.thresholds,
            occupancy=tuple(occupancy) if occupancy is not None else self.occupancy,
        )


# Re-export for convenience so callers need only one import site.
SIGMA = SIGMA_R
