"""3-ON-2 information encoding: three bits on two ternary cells (Table 2).

A pair of three-level cells has nine states; eight encode 3 bits of data
and the ninth — ``[S4, S4]``, both cells at the highest resistance — is
the INV (invalid) marker reserved for the mark-and-spare wearout
mechanism (Section 6.2).

Two *views* of a cell coexist (Section 6.3):

- the symbol view used for data: pair state = ``3 * first + second``;
- the transient-error-correction (TEC) view: each cell is read as two
  bits — S1: ``00``, S2: ``01``, S4: ``11`` — so a drift error (always a
  move to the *adjacent higher* state) flips exactly one bit, and the INV
  state remains representable.  The block ECC (BCH-1) is computed over
  this view.

State indices here are the three-level design's: 0 = S1, 1 = S2, 2 = S4.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "BITS_PER_PAIR",
    "CELLS_PER_PAIR",
    "INV_VALUE",
    "INV_PAIR",
    "INVALID_TEC_VALUE",
    "STATE_TO_TEC_BITS",
    "TEC_VALUE_TO_STATE",
    "PAIR_VALUE_TO_STATES",
    "encode_values",
    "decode_values",
    "values_to_bits",
    "bits_to_values",
    "encode_bits",
    "decode_bits",
    "states_to_tec_bits",
    "tec_bits_to_states",
    "pairs_needed",
]

BITS_PER_PAIR = 3
CELLS_PER_PAIR = 2

#: Pair value (0..8) of the INV marker: both cells at S4.
INV_VALUE = 8
INV_PAIR = (2, 2)

#: TEC view of each three-level state (Section 6.3): S1=00, S2=01, S4=11.
#: Exported for the batch kernels (:mod:`repro.coding.batch`), which
#: gather through these tables over whole ``(n_blocks, n_cells)`` arrays.
STATE_TO_TEC_BITS = np.array([[0, 0], [0, 1], [1, 1]], dtype=np.uint8)
STATE_TO_TEC_BITS.setflags(write=False)
#: Inverse map from the 2-bit TEC value (b1*2 + b0) to state index.  The
#: value 2 (bits "10") is not produced by any state nor by a single drift
#: step; if ECC leaves it behind (multi-error escape) we conservatively
#: read it as S4, the state one bit-flip away on the high side.
TEC_VALUE_TO_STATE = np.array([0, 1, 2, 2], dtype=np.int64)
TEC_VALUE_TO_STATE.setflags(write=False)
#: The one 2-bit TEC value ("10") no valid encoding or single drift step
#: produces; seeing it after ECC marks a multi-error escape.
INVALID_TEC_VALUE = 2
#: Pair value (0..8) -> the two cell states storing it (Table 2 rows).
PAIR_VALUE_TO_STATES = np.stack(
    [np.arange(9) // 3, np.arange(9) % 3], axis=-1
).astype(np.int64)
PAIR_VALUE_TO_STATES.setflags(write=False)

_STATE_TO_TEC = STATE_TO_TEC_BITS
_TEC_TO_STATE = TEC_VALUE_TO_STATE


def pairs_needed(n_bits: int) -> int:
    """Cell pairs required to store ``n_bits`` (3 bits per pair)."""
    return -(-n_bits // BITS_PER_PAIR)


def encode_values(values: np.ndarray) -> np.ndarray:
    """Pair values (0..7 data, 8 = INV) -> flat state array (2 per pair)."""
    v = np.asarray(values, dtype=np.int64)
    if np.any((v < 0) | (v > INV_VALUE)):
        raise ValueError("pair values must be in [0, 8]")
    first, second = v // 3, v % 3
    return np.stack([first, second], axis=-1).reshape(-1)


def decode_values(states: np.ndarray) -> np.ndarray:
    """Flat state array -> pair values (0..8); 8 marks an INV pair."""
    s = np.asarray(states, dtype=np.int64)
    if s.size % CELLS_PER_PAIR:
        raise ValueError("state array must hold whole pairs")
    if np.any((s < 0) | (s > 2)):
        raise ValueError("three-level state indices must be in [0, 2]")
    pairs = s.reshape(-1, 2)
    return pairs[:, 0] * 3 + pairs[:, 1]


def values_to_bits(values: np.ndarray) -> np.ndarray:
    """Data pair values (0..7) -> bit array (3 bits per value, MSB first)."""
    v = np.asarray(values, dtype=np.int64)
    if np.any((v < 0) | (v > 7)):
        raise ValueError("data pair values must be in [0, 7] (8 is INV)")
    shifts = np.array([2, 1, 0])
    return ((v[:, None] >> shifts[None, :]) & 1).astype(np.uint8).reshape(-1)


def bits_to_values(bits: np.ndarray) -> np.ndarray:
    """Bit array (multiple of 3) -> data pair values (0..7)."""
    b = np.asarray(bits, dtype=np.int64)
    if b.size % BITS_PER_PAIR:
        raise ValueError("bit count must be a multiple of 3")
    grouped = b.reshape(-1, 3)
    return grouped[:, 0] * 4 + grouped[:, 1] * 2 + grouped[:, 2]


def encode_bits(bits: np.ndarray, n_pairs: int | None = None) -> np.ndarray:
    """Data bits -> cell states, zero-padding to fill the last pair.

    ``n_pairs`` may request extra capacity (padded with value 0).
    """
    b = np.asarray(bits).astype(np.int64)
    need = pairs_needed(b.size)
    total = need if n_pairs is None else n_pairs
    if total < need:
        raise ValueError(f"{b.size} bits need {need} pairs, got {total}")
    padded = np.zeros(total * BITS_PER_PAIR, dtype=np.int64)
    padded[: b.size] = b
    return encode_values(bits_to_values(padded))


def decode_bits(states: np.ndarray, n_bits: int) -> tuple[np.ndarray, np.ndarray]:
    """Cell states -> ``(data bits, inv_flags)``.

    INV pairs decode as value 0; callers use ``inv_flags`` (one per pair)
    to drive mark-and-spare correction before trusting the bits.
    """
    values = decode_values(states)
    inv = values == INV_VALUE
    safe = np.where(inv, 0, values)
    bits = values_to_bits(safe)
    if n_bits > bits.size:
        raise ValueError(f"only {bits.size} bits stored, requested {n_bits}")
    return bits[:n_bits].astype(np.uint8), inv


def states_to_tec_bits(states: np.ndarray) -> np.ndarray:
    """Cell states -> TEC bit view (2 bits per cell: S1=00, S2=01, S4=11)."""
    s = np.asarray(states, dtype=np.int64)
    if np.any((s < 0) | (s > 2)):
        raise ValueError("three-level state indices must be in [0, 2]")
    return _STATE_TO_TEC[s].reshape(-1)


def tec_bits_to_states(bits: np.ndarray) -> np.ndarray:
    """TEC bit view -> cell states (inverse of :func:`states_to_tec_bits`)."""
    b = np.asarray(bits, dtype=np.int64)
    if b.size % 2:
        raise ValueError("TEC bit array must hold whole cells")
    grouped = b.reshape(-1, 2)
    return _TEC_TO_STATE[grouped[:, 0] * 2 + grouped[:, 1]]
