"""Functional PCM device: blocks of drifting, wearing cells (Figure 9).

:class:`PCMDevice` ties together the cell physics (:class:`CellArray`),
the block codecs, and the controller-side wearout state, exposing the
block-level API the examples and integration tests drive:

- ``write(block, data, t)``  — encode, program with write-and-verify, and
  handle wearout failures (mark-and-spare for 3LC, ECP for 4LC);
- ``read(block, t)``         — sense, run the Figure-9 pipeline, return data;
- ``refresh(block, t)``      — read-correct-rewrite (Section 1);
- ``scrub(t)``               — refresh every block, as the refresh
  scheduler would over one interval.

Check bits of the 3LC design live in SLC cells; SLC is drift-immune in
the paper's model, so they are stored directly.  This is a *functional*
model (what data comes back); timing/energy belong to :mod:`repro.sim`.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Literal

import numpy as np

from repro.cells.cell_array import CellArray
from repro.cells.drift import PAPER_ESCALATION, TieredDrift
from repro.cells.faults import WearoutModel
from repro.coding.blockcodec import (
    DecodedBlock,
    FourLevelBlockCodec,
    ThreeOnTwoBlockCodec,
    UncorrectableBlock,
)
from repro.core.designs import four_level_optimal, three_level_optimal
from repro.core.levels import LevelDesign
from repro.montecarlo.rng import make_rng
from repro.wearout.mark_and_spare import SpareExhausted

__all__ = [
    "PCMDevice",
    "DeviceStats",
    "UncorrectableBlock",
    "SpareExhausted",
    "device_state_digest",
]


def device_state_digest(
    cell_digest: str,
    slc: np.ndarray | None,
    written: np.ndarray,
    block_payloads: list[bytes],
) -> str:
    """Canonical SHA-256 over one device's controller-visible state.

    ``cell_digest`` is the :meth:`CellArray.state_digest` hex string,
    ``block_payloads`` the per-block wearout-layout bytes (marked mask
    for 3LC mark-and-spare, ``repr`` of the entry table for 4LC ECP).
    The byte stream is frozen so the object engine and the
    structure-of-arrays fleet engine hash identically.
    """
    h = hashlib.sha256()
    h.update(cell_digest.encode("ascii"))
    if slc is not None:
        h.update(np.ascontiguousarray(slc).tobytes())
    h.update(np.ascontiguousarray(written).tobytes())
    for payload in block_payloads:
        h.update(payload)
    return h.hexdigest()


@dataclasses.dataclass
class DeviceStats:
    """Cumulative event counters of a device."""

    writes: int = 0
    reads: int = 0
    refreshes: int = 0
    tec_corrections: int = 0
    wearout_marks: int = 0
    write_retries: int = 0


class PCMDevice:
    """A small functional PCM device of ``n_blocks`` 64-byte blocks."""

    def __init__(
        self,
        n_blocks: int,
        cell_kind: Literal["3LC", "4LC"] = "3LC",
        design: LevelDesign | None = None,
        seed: int | np.random.Generator = 0,
        wearout: WearoutModel | None = None,
        schedule: TieredDrift = PAPER_ESCALATION,
        data_bits: int = 512,
        codec: ThreeOnTwoBlockCodec | None = None,
    ) -> None:
        if n_blocks < 1:
            raise ValueError("need at least one block")
        self.n_blocks = n_blocks
        self.cell_kind = cell_kind
        self.data_bits = data_bits
        rng = make_rng(seed)

        if cell_kind == "3LC":
            self.design = design or three_level_optimal()
            if codec is not None and codec.data_bits != data_bits:
                raise ValueError(
                    f"shared codec is for {codec.data_bits} data bits, "
                    f"device wants {data_bits}"
                )
            self.codec3 = codec or ThreeOnTwoBlockCodec(data_bits=data_bits)
            self.codec4 = None
            cells_per_block = self.codec3.n_mlc_cells
            self._block_state = [self.codec3.new_block_state() for _ in range(n_blocks)]
            self._slc = np.zeros((n_blocks, self.codec3.n_slc_cells), dtype=np.uint8)
        elif cell_kind == "4LC":
            if codec is not None:
                raise ValueError("shared 3-ON-2 codec only applies to 3LC devices")
            self.design = design or four_level_optimal()
            self.codec3 = None
            self.codec4 = FourLevelBlockCodec(data_bits=data_bits)
            cells_per_block = self.codec4.n_codeword_cells
            self._block_state = [self.codec4.new_block_state() for _ in range(n_blocks)]
            self._slc = None
        else:
            raise ValueError(f"unknown cell kind {cell_kind!r}")

        if self.design.n_levels != (3 if cell_kind == "3LC" else 4):
            raise ValueError("design level count does not match cell kind")
        self.cells_per_block = cells_per_block
        self.array = CellArray(
            n_blocks * cells_per_block,
            self.design,
            rng=rng,
            wearout=wearout,
            schedule=schedule,
        )
        self.stats = DeviceStats()
        self._written = np.zeros(n_blocks, dtype=bool)

    # ------------------------------------------------------------------
    def _cell_range(self, block: int) -> np.ndarray:
        if not 0 <= block < self.n_blocks:
            raise IndexError(f"block {block} out of range")
        base = block * self.cells_per_block
        return np.arange(base, base + self.cells_per_block)

    def block_state(self, block: int) -> object:
        """Controller-side wearout state (MarkAndSpareBlock or ECPTable)."""
        self._cell_range(block)  # bounds check
        return self._block_state[block]

    # ------------------------------------------------------------------
    def write(self, block: int, data_bits: np.ndarray, t_now: float) -> None:
        """Encode and program a block, tolerating wearout failures."""
        bits = np.asarray(data_bits).astype(np.uint8)
        if bits.shape != (self.data_bits,):
            raise ValueError(f"expected {self.data_bits} bits, got {bits.shape}")

        if self.cell_kind == "3LC":
            self.write_encoded(block, bits, t_now)
            return

        idx = self._cell_range(block)
        self.stats.writes += 1
        # 4LC path: ECP entries absorb failed cells.
        ecp = self._block_state[block]
        states, _tags = self.codec4.encode(bits)
        ok = self.array.program(idx, states, t_now)
        bad = np.nonzero(~ok)[0]
        for cell in bad:
            cell = int(cell)
            if cell >= self.codec4.n_data_cells:
                continue  # check-cell wearout is left to the BCH budget
            if ecp.covers(cell):
                ecp.update(cell, int(states[cell]))
            elif not ecp.allocate(cell, int(states[cell])):
                raise SpareExhausted(f"block {block}: ECP table full")
            else:
                self.stats.wearout_marks += 1
        # Refresh replacement values of previously covered cells.
        for pointer, _ in list(getattr(ecp, "_entries", [])):
            ecp.update(pointer, int(states[pointer]))
        self._written[block] = True

    def write_encoded(
        self,
        block: int,
        data_bits: np.ndarray,
        t_now: float,
        states: np.ndarray | None = None,
        check: np.ndarray | None = None,
    ) -> None:
        """The 3LC program path, optionally seeded with a pre-encoded attempt.

        ``states``/``check`` — when given together — must equal
        ``codec3.encode(data_bits, block_state)`` under the block's
        *current* marked layout; batch callers (:mod:`repro.fleet`)
        encode many blocks in one :class:`BatchThreeOnTwoCodec` pass and
        hand each row here.  The write-and-verify retry loop re-encodes
        scalarly whenever wearout reshuffles the layout, so supplying a
        pre-encoded first attempt is bit-identical to :meth:`write`.
        """
        if self.cell_kind != "3LC" or self.codec3 is None:
            raise ValueError("write_encoded is the 3LC program path")
        bits = np.asarray(data_bits).astype(np.uint8)
        if bits.shape != (self.data_bits,):
            raise ValueError(f"expected {self.data_bits} bits, got {bits.shape}")
        if (states is None) != (check is None):
            raise ValueError("states and check must be supplied together")
        idx = self._cell_range(block)
        self.stats.writes += 1
        state = self._block_state[block]
        # Write-and-verify loop: each failed pair is marked INV and the
        # layout reshuffled around it; two spare cells per failure.
        for attempt in range(state.config.n_spare_pairs + 1):
            if attempt or states is None or check is None:
                states, check = self.codec3.encode(bits, state)
            ok = self.array.program(idx, states, t_now)
            self._slc[block] = check
            bad = np.nonzero(~ok)[0]
            if bad.size == 0:
                self._written[block] = True
                return
            self.stats.write_retries += 1
            pair = int(bad[0]) // 2
            already = pair in set(state.marked_pairs.tolist())
            if not already:
                state.mark(pair)  # raises SpareExhausted when out
                self.stats.wearout_marks += 1
            # Force both cells of the marked pair toward S4 (INV).
            pc = idx[2 * pair : 2 * pair + 2]
            self.array.force_highest(pc, t_now)
            if not already and bad.size == 1:
                continue
            # Multiple simultaneous failures: loop handles them one
            # mark per iteration.
        raise SpareExhausted(f"block {block}: wearout beyond spare budget")

    # ------------------------------------------------------------------
    def written_mask(self) -> np.ndarray:
        """Which blocks hold data (have completed at least one write)."""
        return self._written.copy()

    def sense_states(self, block: int, t_now: float) -> np.ndarray:
        """Raw sensed cell states of a block, without decoding or stats.

        The seam batch readers use: sense every block scalarly (cheap,
        and bit-identical to :meth:`read` by construction), then decode
        the stack in one :class:`BatchThreeOnTwoCodec` pass.
        """
        if not self._written[block]:
            raise ValueError(f"block {block} was never written")
        idx = self._cell_range(block)
        return self.array.sense(t_now, idx)

    def check_bits(self, block: int) -> np.ndarray:
        """The block's SLC-stored check bits (3LC only)."""
        if self._slc is None:
            raise ValueError("4LC blocks keep no SLC check bits")
        return self._slc[block].copy()

    def state_digest(self) -> str:
        """SHA-256 over the device's full simulated state.

        Covers the cell array (resistances, drift exponents, wear,
        faults), the SLC check bits, the written mask, and the
        controller-side wearout layout — everything that determines
        future reads.  Differential suites compare digests to prove two
        execution strategies left bit-identical devices.
        """
        payloads: list[bytes] = []
        for st in self._block_state:
            marked = getattr(st, "_marked", None)
            if marked is not None:  # 3LC mark-and-spare layout
                payloads.append(np.ascontiguousarray(marked).tobytes())
            else:  # 4LC ECP table
                entries = [
                    [int(p), int(v)] for p, v in getattr(st, "_entries", [])
                ]
                payloads.append(repr(entries).encode("ascii"))
        return device_state_digest(
            self.array.state_digest(), self._slc, self._written, payloads
        )

    # ------------------------------------------------------------------
    def read(self, block: int, t_now: float) -> DecodedBlock:
        """Sense and decode a block through the Figure-9 pipeline."""
        if not self._written[block]:
            raise ValueError(f"block {block} was never written")
        idx = self._cell_range(block)
        sensed = self.array.sense(t_now, idx)
        self.stats.reads += 1
        if self.cell_kind == "3LC":
            out = self.codec3.decode(sensed, self._slc[block])
        else:
            out = self.codec4.decode(sensed, ecp=self._block_state[block])
        self.stats.tec_corrections += out.tec_corrected
        return out

    def refresh(self, block: int, t_now: float) -> DecodedBlock:
        """Read-correct-rewrite: restores nominal resistance (Section 1)."""
        out = self.read(block, t_now)
        self.write(block, out.data_bits, t_now)
        self.stats.refreshes += 1
        self.stats.writes -= 1  # count as refresh, not demand write
        return out

    def scrub(self, t_now: float) -> int:
        """Refresh every written block; returns blocks refreshed."""
        n = 0
        for b in range(self.n_blocks):
            if self._written[b]:
                self.refresh(b, t_now)
                n += 1
        return n
