"""Managed PCM device: mark-and-spare + block remapping, end to end.

The paper's answer to wearout is layered (Section 6.4): mark-and-spare
absorbs up to six cell failures per block, and blocks that exceed the
budget are remapped FREE-p style [39] "to provide end-to-end
protection".  :class:`ManagedPCMDevice` composes the functional
:class:`PCMDevice` with a :class:`RemapDirectory` so logical blocks
survive past spare exhaustion, until the spare-block pool itself runs
dry.
"""

from __future__ import annotations

import numpy as np

from repro.cells.drift import PAPER_ESCALATION, TieredDrift
from repro.cells.faults import WearoutModel
from repro.coding.blockcodec import DecodedBlock
from repro.core.device import DeviceStats, PCMDevice
from repro.wearout.mark_and_spare import SpareExhausted
from repro.wearout.remap import PoolExhausted, RemapDirectory

__all__ = ["ManagedPCMDevice", "PoolExhausted"]


class ManagedPCMDevice:
    """Logical block space backed by a PCM device plus a spare-block pool."""

    def __init__(
        self,
        n_logical_blocks: int,
        n_spare_blocks: int,
        cell_kind: str = "3LC",
        seed: int = 0,
        wearout: WearoutModel | None = None,
        schedule: TieredDrift = PAPER_ESCALATION,
    ) -> None:
        self.directory = RemapDirectory(n_logical_blocks, n_spare_blocks)
        self.device = PCMDevice(
            n_logical_blocks + n_spare_blocks,
            cell_kind,  # type: ignore[arg-type]
            seed=seed,
            wearout=wearout,
            schedule=schedule,
        )
        self.retired_blocks = 0

    # ------------------------------------------------------------------
    def write(self, logical: int, data_bits: np.ndarray, t_now: float) -> None:
        """Write through the remap directory, retiring exhausted blocks.

        A block whose mark-and-spare budget (or ECP table) fills raises
        :class:`SpareExhausted`; the directory retires it to a fresh
        physical block and the write retries there.  Raises
        :class:`PoolExhausted` when the pool is empty — device end of
        life.
        """
        while True:
            phys = self.directory.translate(logical)
            try:
                self.device.write(phys, data_bits, t_now)
                return
            except SpareExhausted:
                self.directory.retire(logical)  # may raise PoolExhausted
                self.retired_blocks += 1

    def read(self, logical: int, t_now: float) -> DecodedBlock:
        return self.device.read(self.directory.translate(logical), t_now)

    def refresh(self, logical: int, t_now: float) -> DecodedBlock:
        out = self.read(logical, t_now)
        self.write(logical, out.data_bits, t_now)
        # Account as a refresh, not a demand write (as PCMDevice.refresh does).
        self.device.stats.refreshes += 1
        self.device.stats.writes -= 1
        return out

    @property
    def spares_left(self) -> int:
        return self.directory.spares_left

    @property
    def stats(self) -> DeviceStats:
        return self.device.stats
