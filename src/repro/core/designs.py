"""Canonical cell designs studied in the paper (Figures 1, 6, 7, 8).

- ``4LCn`` — naive four-level cell: evenly spaced nominal levels with
  midpoint thresholds, uniform state occupancy (Figure 1).
- ``4LCs`` — naive mapping plus *smart encoding*: occupancy skewed away
  from the vulnerable middle states (Section 5.1; the paper assumes
  35% / 15% / 15% / 35%).
- ``4LCo`` — optimal mapping plus smart encoding (Figure 6).
- ``3LCn`` — naive three-level cell: S3 removed from the 4LCn mapping
  (Figure 7, "simple mapping").
- ``3LCo`` — optimal three-level mapping (Figure 7, "optimal mapping").

The optimal mappings are baked in as constants (regenerable via
:func:`repro.mapping.optimizer.optimize_mapping`; see ``recompute=True``).
Both have the threshold-pinned structure ``tau_i = mu_{i+1} - margin``:
for 4LCo the optimizer pushes S2/S3 left and tau3 right exactly as the
paper's Figure 6 shows; for 3LCo the single free level balances S1's
early-time errors against S2's escalated late-time errors.

The canonical 3LCo objective sums the semi-analytic CER at
``t = 2**15, 2**25, 2**30 s``: at the paper's single evaluation time
(2**15 s) every feasible 3LC mapping has CER below ~1e-30, so the paper's
stated procedure (1e6-sample MC at 2**15 s) is degenerate for 3LC — an
observation recorded in EXPERIMENTS.md.
"""

from __future__ import annotations


from repro.core.levels import LevelDesign
from repro.mapping.constraints import MARGIN

__all__ = [
    "SMART_OCCUPANCY",
    "four_level_naive",
    "four_level_smart",
    "four_level_optimal",
    "three_level_naive",
    "three_level_optimal",
    "all_designs",
    "design_by_name",
]

#: Occupancy assumed for the smart-encoding designs (Section 5.1): 35% in
#: the drift-immune end states, 15% in each vulnerable middle state.
SMART_OCCUPANCY: tuple[float, ...] = (0.35, 0.15, 0.15, 0.35)

#: Interior level of the canonical optimal 3LC mapping (optimizer output,
#: objective summed over t = 2**15, 2**25, 2**30 s).
_3LCO_MU2: float = 3.9507

#: Canonical optimal 4LC interior levels: the corner of the feasible box
#: (every level and threshold packed as far left as the margins allow,
#: maximizing S3's drift margin) — the optimizer lands exactly here.
_4LCO_MU2: float = 3.0 + 2 * MARGIN
_4LCO_MU3: float = 3.0 + 4 * MARGIN


def four_level_naive() -> LevelDesign:
    """4LCn: the conventional four-level cell of Figure 1."""
    return LevelDesign.from_levels(
        "4LCn", ["S1", "S2", "S3", "S4"], [3.0, 4.0, 5.0, 6.0]
    )


def four_level_smart() -> LevelDesign:
    """4LCs: naive mapping with smart-encoding occupancy skew."""
    return LevelDesign.from_levels(
        "4LCs",
        ["S1", "S2", "S3", "S4"],
        [3.0, 4.0, 5.0, 6.0],
        occupancy=SMART_OCCUPANCY,
    )


def four_level_optimal(recompute: bool = False) -> LevelDesign:
    """4LCo: optimal mapping + smart encoding (Figure 6)."""
    if recompute:
        from repro.mapping.optimizer import optimize_mapping

        return optimize_mapping(
            4, occupancy=SMART_OCCUPANCY, name="4LCo"
        ).design
    mus = [3.0, _4LCO_MU2, _4LCO_MU3, 6.0]
    taus = [mus[1] - MARGIN, mus[2] - MARGIN, 6.0 - MARGIN]
    return LevelDesign.from_levels(
        "4LCo", ["S1", "S2", "S3", "S4"], mus, thresholds=taus,
        occupancy=SMART_OCCUPANCY,
    )


def three_level_naive() -> LevelDesign:
    """3LCn: S3 removed from the naive 4LC mapping (Figure 7).

    State names keep the paper's convention: the top state is called S4
    because it is the same fully-amorphous state as in the 4LC design.
    """
    return LevelDesign.from_levels(
        "3LCn", ["S1", "S2", "S4"], [3.0, 4.0, 6.0], thresholds=[3.5, 5.0]
    )


def three_level_optimal(recompute: bool = False) -> LevelDesign:
    """3LCo: the optimal three-level mapping (Figure 7)."""
    if recompute:
        from repro.mapping.optimizer import optimize_mapping

        return optimize_mapping(
            3, eval_time_s=[2.0**15, 2.0**25, 2.0**30], name="3LCo"
        ).design
    mus = [3.0, _3LCO_MU2, 6.0]
    taus = [mus[1] - MARGIN, 6.0 - MARGIN]
    return LevelDesign.from_levels(
        "3LCo", ["S1", "S2", "S4"], mus, thresholds=taus
    )


def all_designs() -> dict[str, LevelDesign]:
    """The five designs of Figure 8, keyed by name."""
    return {
        d.name: d
        for d in (
            four_level_naive(),
            four_level_smart(),
            four_level_optimal(),
            three_level_naive(),
            three_level_optimal(),
        )
    }


def design_by_name(name: str) -> LevelDesign:
    designs = all_designs()
    if name not in designs:
        raise KeyError(f"unknown design {name!r}; choose from {sorted(designs)}")
    return designs[name]
