"""PCM device-as-a-service: an async HTTP front end over the datapath.

The batch kernels of :mod:`repro.coding.batch` turned the Figure-9 read
path into a throughput engine; this package stands a *long-running
service* in front of it — the ROADMAP's "heavy traffic from millions of
users" slice.  A service owns what the offline layers never had to:
persistent simulated devices whose **drift advances in virtual time**
and whose **mark-and-spare wear accumulates across requests**, plus the
machinery to take those requests concurrently:

- :mod:`repro.service.device` — the virtual-time device engine: a
  registry of simulated PCM devices, each a vectorized drifting cell
  array with per-write counter-based RNG (every write draws from a
  ``SeedSequence`` addressed by ``(device seed, block, epoch)``, so
  results are independent of request interleaving);
- :mod:`repro.service.batching` — the dynamic batching queue: concurrent
  read/write requests coalesce into single
  :class:`~repro.coding.batch.BatchThreeOnTwoCodec` calls, flushed by
  size or deadline under an injectable clock, provably bit-identical to
  sequential execution;
- :mod:`repro.service.http` — a dependency-free asyncio HTTP/1.1 server
  (keep-alive, routing, JSON bodies); the optional ``repro[service]``
  extra swaps in a production ASGI stack (:mod:`repro.service.asgi`);
- :mod:`repro.service.app` — the endpoint layer: device CRUD, block
  read/write, virtual-clock control, campaign/BLER job submission and
  polling, ``/metrics``;
- :mod:`repro.service.codes` — the structured event-code catalog every
  response carries;
- :mod:`repro.service.telemetry` — per-endpoint latency/error counters
  and the batch-size histogram exported on ``/metrics``;
- :mod:`repro.service.jobs` — background submit/poll execution of
  campaign and BLER-MC jobs over the existing engines;
- :mod:`repro.service.loadgen` — the synthetic-client load harness
  behind ``results/BENCH_service.json``.

Start one from the command line with ``python -m repro serve``; see
``docs/SERVICE.md`` for the endpoint reference, batching semantics, and
the determinism contract.
"""

from repro.service.app import ServiceApp, ServiceConfig, ServiceRunner
from repro.service.batching import BatchQueue, DynamicBatcher, QueueFull
from repro.service.clock import ManualClock, VirtualClock
from repro.service.codes import CODES, EventCode, ServiceError
from repro.service.device import DeviceRegistry, VirtualDevice
from repro.service.jobs import JobManager
from repro.service.telemetry import Telemetry

__all__ = [
    "BatchQueue",
    "CODES",
    "DeviceRegistry",
    "DynamicBatcher",
    "EventCode",
    "JobManager",
    "ManualClock",
    "QueueFull",
    "ServiceApp",
    "ServiceConfig",
    "ServiceError",
    "ServiceRunner",
    "Telemetry",
    "VirtualClock",
    "VirtualDevice",
]
