"""The service application: routes, handlers, and lifecycle.

Wires the pieces together: a :class:`~repro.service.device.DeviceRegistry`
of virtual-time devices, the :class:`~repro.service.batching.DynamicBatcher`
hot path for block I/O, a :class:`~repro.service.jobs.JobManager` for
BLER/campaign jobs, and :class:`~repro.service.telemetry.Telemetry` on
``/metrics`` — all served by the stdlib HTTP layer.

Threading contract: HTTP handlers run on the event loop; *every*
operation that touches simulated device state (I/O, describe, digest,
clock) executes on the batcher's single engine thread, either inside a
batch or via ``run_serialized``.  Jobs run on their own pool and never
touch device state.

Endpoints (see ``docs/SERVICE.md`` for the full contract):

- ``GET  /healthz`` — liveness
- ``GET  /v1/codes`` — the structured event-code catalog
- ``GET  /metrics`` — per-endpoint latency/errors + batching stats
- ``POST /v1/devices`` / ``GET /v1/devices`` — create / list
- ``GET|DELETE /v1/devices/{device_id}`` — describe / tear down
- ``POST /v1/devices/{device_id}/clock`` — advance virtual time
- ``GET  /v1/devices/{device_id}/digest`` — state digest (differential)
- ``POST /v1/devices/{device_id}/blocks/{block}/write|read`` — block I/O
- ``POST /v1/jobs`` / ``GET /v1/jobs[/{job_id}]`` — submit / poll jobs
"""

from __future__ import annotations

import asyncio
import dataclasses
import pathlib
import tempfile
import threading

from repro.cells.faults import WearoutModel
from repro.service.batching import BatchQueue, DynamicBatcher, IoOp
from repro.service.codes import CODES, ServiceError
from repro.service.device import DeviceRegistry
from repro.service.http import HttpServer, Router
from repro.service.jobs import JobManager
from repro.service.telemetry import Telemetry
from repro.service.wire import hex_to_bits

__all__ = ["ServiceApp", "ServiceConfig", "ServiceRunner"]


@dataclasses.dataclass
class ServiceConfig:
    """Everything the ``serve`` subcommand can set."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port is reported at start
    seed: int = 0  # base seed for devices created without an explicit one
    batch_max: int = 64
    batch_deadline_ms: float = 2.0
    queue_depth: int = 1024
    mc_jobs: int | None = 1  # parallelism inside one BLER/campaign job
    job_workers: int = 2  # concurrent jobs
    work_dir: str | None = None  # campaign run dirs; default: a temp dir

    def __post_init__(self) -> None:
        if self.batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        if self.batch_deadline_ms < 0:
            raise ValueError("batch_deadline_ms must be >= 0")
        if self.queue_depth < self.batch_max:
            raise ValueError("queue_depth must be >= batch_max")


def _require_int(body: dict, key: str, default: int | None = None,
                 minimum: int = 0, maximum: int = 2**31) -> int:
    value = body.get(key, default)
    if value is None:
        raise ServiceError("E_BAD_REQUEST", f"missing required field {key!r}")
    if not isinstance(value, int) or isinstance(value, bool):
        raise ServiceError("E_BAD_REQUEST", f"{key!r} must be an integer")
    if not minimum <= value <= maximum:
        raise ServiceError(
            "E_BAD_REQUEST", f"{key!r} must be in [{minimum}, {maximum}], got {value}"
        )
    return value


def _path_int(params: dict[str, str], key: str) -> int:
    try:
        return int(params[key])
    except ValueError:
        raise ServiceError("E_BAD_REQUEST", f"path segment {key!r} must be an integer")


def _parse_wearout(spec: object) -> WearoutModel | None:
    if spec is None:
        return None
    if not isinstance(spec, dict):
        raise ServiceError("E_BAD_REQUEST", "'wearout' must be an object")
    defaults = WearoutModel()
    allowed = {"mean_endurance", "endurance_sigma", "p_stuck_reset", "p_revive"}
    unknown = set(spec) - allowed
    if unknown:
        raise ServiceError(
            "E_BAD_REQUEST", f"unknown wearout fields {sorted(unknown)}"
        )
    try:
        return WearoutModel(
            mean_endurance=float(spec.get("mean_endurance", defaults.mean_endurance)),
            endurance_sigma=float(spec.get("endurance_sigma", defaults.endurance_sigma)),
            p_stuck_reset=float(spec.get("p_stuck_reset", defaults.p_stuck_reset)),
            p_revive=float(spec.get("p_revive", defaults.p_revive)),
        )
    except (TypeError, ValueError) as exc:
        raise ServiceError("E_BAD_REQUEST", f"bad wearout model: {exc}")


class ServiceApp:
    """Handlers plus the object graph behind them (one per server)."""

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        self.registry = DeviceRegistry()
        self.telemetry = Telemetry()
        queue = BatchQueue(
            max_batch=self.config.batch_max,
            deadline_s=self.config.batch_deadline_ms / 1e3,
            max_depth=self.config.queue_depth,
        )
        self.batcher = DynamicBatcher(queue)
        work_dir = self.config.work_dir or tempfile.mkdtemp(prefix="repro-service-")
        self.jobs = JobManager(
            pathlib.Path(work_dir),
            max_workers=self.config.job_workers,
            mc_jobs=self.config.mc_jobs,
        )
        self._device_ordinal = 0
        self._ordinal_lock = threading.Lock()
        self.server = HttpServer(self._build_router(), self.telemetry)
        self.bound: tuple[str, int] | None = None

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> tuple[str, int]:
        self.bound = await self.server.start(self.config.host, self.config.port)
        return self.bound

    async def stop(self) -> None:
        """Clean-shutdown contract: stop intake, drain, then tear down."""
        await self.server.stop()
        await self.batcher.close()
        self.jobs.close()

    # -- routing -------------------------------------------------------
    def _build_router(self) -> Router:
        router = Router()
        router.add("GET", "/healthz", self._healthz)
        router.add("GET", "/v1/codes", self._codes)
        router.add("GET", "/metrics", self._metrics)
        router.add("POST", "/v1/devices", self._create_device)
        router.add("GET", "/v1/devices", self._list_devices)
        router.add("GET", "/v1/devices/{device_id}", self._describe_device)
        router.add("DELETE", "/v1/devices/{device_id}", self._delete_device)
        router.add("POST", "/v1/devices/{device_id}/clock", self._advance_clock)
        router.add("GET", "/v1/devices/{device_id}/digest", self._digest)
        router.add(
            "POST", "/v1/devices/{device_id}/blocks/{block}/write", self._write_block
        )
        router.add(
            "POST", "/v1/devices/{device_id}/blocks/{block}/read", self._read_block
        )
        router.add("POST", "/v1/jobs", self._submit_job)
        router.add("GET", "/v1/jobs", self._list_jobs)
        router.add("GET", "/v1/jobs/{job_id}", self._get_job)
        return router

    # -- meta handlers -------------------------------------------------
    async def _healthz(self, params: dict, body: object) -> tuple[int, dict]:
        return 200, {"code": "OK", "status": "healthy"}

    async def _codes(self, params: dict, body: object) -> tuple[int, dict]:
        return 200, {
            "code": "OK",
            "codes": [dataclasses.asdict(c) for c in CODES.values()],
        }

    async def _metrics(self, params: dict, body: object) -> tuple[int, dict]:
        return 200, {
            "code": "OK",
            "http": self.telemetry.snapshot(),
            "batching": self.batcher.queue.stats.snapshot(),
            "devices": len(self.registry),
            "jobs": {
                "total": len(self.jobs.list()),
            },
        }

    # -- device handlers -----------------------------------------------
    async def _create_device(self, params: dict, body: object) -> tuple[int, dict]:
        body = body if isinstance(body, dict) else {}
        n_blocks = _require_int(body, "n_blocks", default=64, minimum=1,
                                maximum=1_000_000)
        data_bits = _require_int(body, "data_bits", default=512, minimum=8,
                                 maximum=4096)
        if data_bits % 8:
            raise ServiceError("E_BAD_REQUEST", "'data_bits' must be a multiple of 8")
        n_spare_pairs = _require_int(body, "n_spare_pairs", default=6, minimum=0,
                                     maximum=64)
        wearout = _parse_wearout(body.get("wearout"))
        if "seed" in body:
            seed = _require_int(body, "seed", minimum=0, maximum=2**63)
        else:
            with self._ordinal_lock:
                seed = self.config.seed + self._device_ordinal
                self._device_ordinal += 1

        def create():
            device = self.registry.create(
                seed,
                n_blocks,
                data_bits=data_bits,
                n_spare_pairs=n_spare_pairs,
                wearout=wearout,
            )
            return device.describe()

        described = await self.batcher.run_serialized(create)
        return 201, {"code": "CREATED", "device": described}

    async def _list_devices(self, params: dict, body: object) -> tuple[int, dict]:
        def describe_all():
            return [d.describe() for d in self.registry]

        return 200, {"code": "OK", "devices": await self.batcher.run_serialized(describe_all)}

    async def _describe_device(self, params: dict, body: object) -> tuple[int, dict]:
        device = self.registry.get(params["device_id"])
        described = await self.batcher.run_serialized(device.describe)
        return 200, {"code": "OK", "device": described}

    async def _delete_device(self, params: dict, body: object) -> tuple[int, dict]:
        device_id = params["device_id"]
        self.registry.get(device_id)  # 404 before queueing the delete
        await self.batcher.run_serialized(lambda: self.registry.delete(device_id))
        return 200, {"code": "OK", "deleted": device_id}

    async def _advance_clock(self, params: dict, body: object) -> tuple[int, dict]:
        device = self.registry.get(params["device_id"])
        if not isinstance(body, dict) or ("advance" in body) == ("advance_to" in body):
            raise ServiceError(
                "E_BAD_REQUEST", "body must set exactly one of 'advance'/'advance_to'"
            )
        key = "advance" if "advance" in body else "advance_to"
        value = body[key]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ServiceError("E_BAD_REQUEST", f"{key!r} must be a number")

        def advance():
            try:
                if key == "advance":
                    return device.clock.advance(float(value))
                return device.clock.advance_to(float(value))
            except ValueError as exc:
                raise ServiceError("E_TIME_REGRESSION", str(exc))

        now = await self.batcher.run_serialized(advance)
        return 200, {"code": "OK", "device": device.device_id, "virtual_time": now}

    async def _digest(self, params: dict, body: object) -> tuple[int, dict]:
        device = self.registry.get(params["device_id"])
        digest = await self.batcher.run_serialized(device.state_digest)
        return 200, {"code": "OK", "device": device.device_id, "digest": digest}

    # -- block I/O (the batched hot path) ------------------------------
    async def _write_block(self, params: dict, body: object) -> tuple[int, dict]:
        device = self.registry.get(params["device_id"])
        block = device.check_block(_path_int(params, "block"))
        if not isinstance(body, dict) or "data" not in body:
            raise ServiceError("E_BAD_REQUEST", "write body needs a 'data' hex field")
        bits = hex_to_bits(body["data"], device.data_bits)
        t = device.bind_time(body.get("t"))
        op = IoOp("write", device, block, t, bits=bits)
        return 200, await self.batcher.submit(op)

    async def _read_block(self, params: dict, body: object) -> tuple[int, dict]:
        device = self.registry.get(params["device_id"])
        block = device.check_block(_path_int(params, "block"))
        body = body if isinstance(body, dict) else {}
        t = device.bind_time(body.get("t"))
        op = IoOp("read", device, block, t)
        return 200, await self.batcher.submit(op)

    # -- job handlers ---------------------------------------------------
    async def _submit_job(self, params: dict, body: object) -> tuple[int, dict]:
        if not isinstance(body, dict) or "kind" not in body:
            raise ServiceError("E_BAD_REQUEST", "job body needs a 'kind' field")
        job_params = body.get("params", {})
        if not isinstance(job_params, dict):
            raise ServiceError("E_BAD_REQUEST", "'params' must be an object")
        return 202, self.jobs.submit(body["kind"], job_params)

    async def _list_jobs(self, params: dict, body: object) -> tuple[int, dict]:
        return 200, {"code": "OK", "jobs": self.jobs.list()}

    async def _get_job(self, params: dict, body: object) -> tuple[int, dict]:
        return 200, self.jobs.get(params["job_id"])


class ServiceRunner:
    """Runs a :class:`ServiceApp` on a background thread's event loop.

    The in-process harness for tests and benchmarks: ``start()`` returns
    once the socket is bound (port 0 gives an ephemeral port), and
    ``stop()`` performs the full clean-shutdown sequence.  The CLI path
    (:func:`repro.cli` ``serve``) runs the loop in the foreground
    instead; this class exists so tests never need a subprocess.
    """

    def __init__(self, config: ServiceConfig | None = None):
        self.app = ServiceApp(config)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._bound: tuple[str, int] | None = None
        self._boot_error: BaseException | None = None

    @property
    def address(self) -> tuple[str, int]:
        if self._bound is None:
            raise RuntimeError("server is not running")
        return self._bound

    @property
    def base_url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> tuple[str, int]:
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._serve, name="repro-service", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=30.0)
        if self._boot_error is not None:
            raise RuntimeError("service failed to start") from self._boot_error
        if self._bound is None:
            raise RuntimeError("service did not bind within 30s")
        return self._bound

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is None or self._thread is None:
            return
        future = asyncio.run_coroutine_threadsafe(self._shutdown(), self._loop)
        future.result(timeout=timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=timeout)
        self._thread = None
        self._loop = None
        self._bound = None

    def run_async(self, coro_factory):
        """Run ``coro_factory()`` on the server loop (test hook)."""
        if self._loop is None:
            raise RuntimeError("server is not running")
        return asyncio.run_coroutine_threadsafe(coro_factory(), self._loop).result(
            timeout=30.0
        )

    # -- internals -----------------------------------------------------
    def _serve(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            self._bound = loop.run_until_complete(self.app.start())
        except BaseException as exc:
            self._boot_error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    async def _shutdown(self) -> None:
        await self.app.stop()
