"""Structured event codes: every service response names its outcome.

One catalog serves three purposes: HTTP handlers map exceptions to
responses through it, clients branch on the stable ``code`` field
instead of parsing messages, and ``GET /v1/codes`` publishes the whole
table so the contract is discoverable at runtime.  Codes are *stable
API*: new ones may be added, existing ones never change meaning.

The convention mirrors the campaign event log's structured-event style:
``OK``/``ACCEPTED`` for successes, ``E_*`` for failures, each bound to
exactly one HTTP status.  Datapath failures carry the decode stage
(:data:`repro.coding.batch.FAIL_TEC` et al.) in the response detail.
"""

from __future__ import annotations

import dataclasses

__all__ = ["CODES", "EventCode", "ServiceError", "code_for_fail_stage"]


@dataclasses.dataclass(frozen=True)
class EventCode:
    """One entry of the catalog: a stable name bound to an HTTP status."""

    name: str
    http_status: int
    description: str


_CATALOG = (
    EventCode("OK", 200, "request completed"),
    EventCode("CREATED", 201, "resource created"),
    EventCode("ACCEPTED", 202, "job accepted; poll its URL for progress"),
    EventCode("E_BAD_REQUEST", 400, "malformed body, parameter, or payload encoding"),
    EventCode("E_NOT_FOUND", 404, "no route at this path"),
    EventCode("E_DEVICE_NOT_FOUND", 404, "unknown device id"),
    EventCode("E_JOB_NOT_FOUND", 404, "unknown job id"),
    EventCode("E_METHOD", 405, "route exists but not for this HTTP method"),
    EventCode("E_BLOCK_RANGE", 400, "block index outside the device geometry"),
    EventCode("E_BLOCK_NOT_WRITTEN", 409, "read of a block that was never written"),
    EventCode("E_TIME_REGRESSION", 409, "virtual timestamp behind the device clock"),
    EventCode(
        "E_UNCORRECTABLE",
        422,
        "block decode failed; detail carries the Figure-9 stage "
        "(TEC / INVALID_PATTERN / HEC)",
    ),
    EventCode(
        "E_SPARE_EXHAUSTED",
        507,
        "write needed more marked pairs than the block's spare budget; "
        "the block must be rewritten after remapping",
    ),
    EventCode("E_QUEUE_FULL", 503, "batching queue at capacity; retry with backoff"),
    EventCode("E_SHUTTING_DOWN", 503, "server is draining; no new work accepted"),
    EventCode("E_JOB_KIND", 400, "unknown job kind or invalid job parameters"),
    EventCode("E_PAYLOAD_TOO_LARGE", 413, "request body exceeds the server limit"),
    EventCode("E_INTERNAL", 500, "unexpected server error"),
)

#: The catalog by name (insertion order is the documentation order).
CODES: dict[str, EventCode] = {c.name: c for c in _CATALOG}

#: Decode ``fail_stage`` values -> human-readable stage names (the
#: numeric codes are :data:`repro.coding.batch.FAIL_TEC` and friends).
_FAIL_STAGE_NAMES = {1: "TEC", 2: "INVALID_PATTERN", 3: "HEC"}


def code_for_fail_stage(fail_stage: int) -> tuple[str, str]:
    """Map a batch-decode ``fail_stage`` to ``(code name, stage name)``."""
    stage = _FAIL_STAGE_NAMES.get(int(fail_stage), f"STAGE_{int(fail_stage)}")
    return "E_UNCORRECTABLE", stage


class ServiceError(Exception):
    """An error with a catalog code; handlers render it as JSON.

    ``detail`` is an optional JSON-safe payload merged into the error
    response (e.g. the failing decode stage, or the queue depth).
    """

    def __init__(self, code: str, message: str, detail: dict | None = None):
        if code not in CODES:
            raise ValueError(f"unknown event code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message
        self.detail = detail or {}

    @property
    def http_status(self) -> int:
        return CODES[self.code].http_status

    def payload(self) -> dict:
        out = {"code": self.code, "message": self.message}
        if self.detail:
            out["detail"] = self.detail
        return out
