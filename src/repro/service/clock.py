"""Clocks for the service: virtual device time and injectable deadlines.

Two different notions of time coexist in the service and must never be
conflated:

- **Virtual time** (:class:`VirtualClock`) is *simulation* time — the
  ``t`` of the drift law ``lr(t) = lr0 + alpha * log10(t / t0)``.  It
  advances only by explicit request (``POST /v1/devices/<id>/clock``),
  so device state is a pure function of the request history and never of
  when the server happened to run.  One instance lives per device.
- **Deadline time** is the monotonic clock the dynamic batcher uses to
  decide when a partially filled batch must flush.  It is injectable
  (:class:`ManualClock` in tests, ``time.monotonic`` in production) and
  never enters any simulation result — it only shapes *when* work runs,
  and the per-write counter RNG makes results independent of that.
"""

from __future__ import annotations

import time

__all__ = ["ManualClock", "VirtualClock"]


class VirtualClock:
    """Monotonically advancing simulation time, in seconds.

    Starts at ``start`` (default 0.0) and only moves forward: drift is
    irreversible, so rewinding a device's clock would break the device
    invariant that every cell's program time is in the clock's past.
    """

    def __init__(self, start: float = 0.0):
        if start < 0.0:
            raise ValueError(f"virtual time must be >= 0, got {start}")
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Move forward ``dt`` seconds; returns the new virtual time."""
        if dt < 0.0:
            raise ValueError(f"cannot advance by a negative dt ({dt})")
        self._now += float(dt)
        return self._now

    def advance_to(self, t: float) -> float:
        """Move forward to absolute virtual time ``t`` (>= current)."""
        if t < self._now:
            raise ValueError(
                f"virtual time cannot rewind: now={self._now}, requested {t}"
            )
        self._now = float(t)
        return self._now


class ManualClock:
    """A hand-cranked monotonic clock for deterministic batcher tests.

    Call it like ``time.monotonic``; advance it explicitly.  The batch
    queue takes any zero-argument callable returning seconds, so tests
    pass an instance where production passes ``time.monotonic``.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        if dt < 0.0:
            raise ValueError(f"cannot advance by a negative dt ({dt})")
        self._now += float(dt)
        return self._now


#: The production deadline clock (re-exported so call sites read
#: ``clock=MONOTONIC`` instead of a bare ``time.monotonic``).
MONOTONIC = time.monotonic
