"""Dynamic batching: coalesce concurrent I/O into the batch kernels.

The hot path of the service.  Concurrent block read/write requests land
in a :class:`BatchQueue` and are flushed as one batch when either the
size threshold fills or the oldest request's deadline expires — the
classic dynamic-batching tradeoff (throughput vs tail latency) under an
injectable clock so the policy is unit-testable without sleeping.

The layering is sans-io:

- :class:`BatchQueue` — pure data structure: submit / readiness /
  take-batch, no asyncio, clock injected as a callable;
- :func:`execute_batch` — runs one batch of :class:`IoOp` against the
  device engine, coalescing reads into a single
  :meth:`~repro.coding.batch.BatchThreeOnTwoCodec.decode` per block
  geometry and write *encodes* into one
  :meth:`~repro.coding.batch.BatchThreeOnTwoCodec.encode` per wave;
- :class:`DynamicBatcher` — the asyncio front: wakes on size or
  deadline, executes batches on a single worker thread (which also
  serializes every other touch of engine state), resolves futures.

**Bit-identity.**  ``execute_batch(ops)`` produces exactly the
responses and device state of executing the same ops one at a time in
queue order: reads are stateless given the bound timestamps, write
randomness is addressed per ``(block, epoch)``, and writes to the same
block within one batch are executed in queue order (wave partitioning).
``tests/service/test_batch_queue.py`` holds the two paths together.
"""

from __future__ import annotations

import asyncio
import collections
import dataclasses
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Sequence

import numpy as np

from repro.service.codes import ServiceError, code_for_fail_stage
from repro.service.device import VirtualDevice
from repro.service.wire import bits_to_hex
from repro.wearout.mark_and_spare import SpareExhausted

__all__ = [
    "BatchQueue",
    "BatchStats",
    "DynamicBatcher",
    "IoOp",
    "QueueFull",
    "execute_batch",
]


class QueueFull(Exception):
    """The batching queue is at capacity: shed load (HTTP 503)."""


@dataclasses.dataclass
class IoOp:
    """One queued block operation with its submission-bound context."""

    kind: str  # "read" | "write"
    device: VirtualDevice
    block: int
    t: float  # virtual timestamp, bound at submission
    bits: np.ndarray | None = None  # write payload
    future: asyncio.Future | None = None
    result: dict | None = None  # filled in by execute_batch


@dataclasses.dataclass
class BatchStats:
    """Counters exported on ``/metrics``."""

    submitted: int = 0
    rejected: int = 0
    flushes_size: int = 0
    flushes_deadline: int = 0
    flushes_drain: int = 0
    batch_size_hist: collections.Counter = dataclasses.field(
        default_factory=collections.Counter
    )

    def snapshot(self) -> dict:
        sizes = sorted(self.batch_size_hist)
        return {
            "submitted": self.submitted,
            "rejected": self.rejected,
            "flushes": {
                "size": self.flushes_size,
                "deadline": self.flushes_deadline,
                "drain": self.flushes_drain,
            },
            "batch_size_hist": {str(s): self.batch_size_hist[s] for s in sizes},
        }


class BatchQueue:
    """FIFO of pending ops with size/deadline flush policy (sans-io)."""

    def __init__(
        self,
        *,
        max_batch: int = 64,
        deadline_s: float = 0.002,
        max_depth: int = 1024,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if deadline_s < 0.0:
            raise ValueError("deadline_s must be >= 0")
        if max_depth < max_batch:
            raise ValueError("max_depth must be >= max_batch")
        self.max_batch = int(max_batch)
        self.deadline_s = float(deadline_s)
        self.max_depth = int(max_depth)
        self.clock = clock
        self.stats = BatchStats()
        self._pending: collections.deque[tuple[IoOp, float]] = collections.deque()

    @property
    def depth(self) -> int:
        return len(self._pending)

    def submit(self, op: IoOp) -> None:
        """Enqueue one op; raises :class:`QueueFull` at capacity."""
        if len(self._pending) >= self.max_depth:
            self.stats.rejected += 1
            raise QueueFull(
                f"batch queue at capacity ({self.max_depth} pending requests)"
            )
        self._pending.append((op, self.clock()))
        self.stats.submitted += 1

    def next_deadline(self) -> float | None:
        """Clock time at which the oldest pending op must flush."""
        if not self._pending:
            return None
        return self._pending[0][1] + self.deadline_s

    def ready(self, now: float | None = None) -> bool:
        """True when a batch should flush (size filled or deadline hit)."""
        if not self._pending:
            return False
        if len(self._pending) >= self.max_batch:
            return True
        if now is None:
            now = self.clock()
        return now >= self._pending[0][1] + self.deadline_s

    def take(self, *, reason: str = "size") -> list[IoOp]:
        """Pop up to ``max_batch`` ops in FIFO order and record stats.

        ``reason`` labels the flush trigger (``size`` / ``deadline`` /
        ``drain``) in the stats; callers decide *when*, the queue only
        records *what*.
        """
        n = min(len(self._pending), self.max_batch)
        batch = [self._pending.popleft()[0] for _ in range(n)]
        if batch:
            self.stats.batch_size_hist[len(batch)] += 1
            if reason == "size":
                self.stats.flushes_size += 1
            elif reason == "deadline":
                self.stats.flushes_deadline += 1
            else:
                self.stats.flushes_drain += 1
        return batch


# ----------------------------------------------------------------------
# Batch execution against the device engine.
# ----------------------------------------------------------------------

def _read_result(dev: VirtualDevice, op: IoOp, decoded, row: int) -> dict:
    """Render one row of a batch decode into a response payload."""
    dev.stats.reads += 1
    if bool(decoded.uncorrectable[row]):
        code, stage = code_for_fail_stage(int(decoded.fail_stage[row]))
        dev.stats.uncorrectable_reads += 1
        err = ServiceError(
            code,
            f"block {op.block} uncorrectable at stage {stage}",
            {"device": dev.device_id, "block": op.block, "stage": stage, "t": op.t},
        )
        return {"error": err}
    tec = int(decoded.tec_corrected[row])
    hec = int(decoded.hec_pairs_dropped[row])
    dev.stats.tec_corrections += tec
    dev.stats.hec_pairs_dropped += hec
    return {
        "code": "OK",
        "block": op.block,
        "t": op.t,
        "data": bits_to_hex(decoded.data_bits[row]),
        "tec_corrected": tec,
        "hec_pairs_dropped": hec,
    }


def _execute_reads(ops: list[IoOp]) -> None:
    """Coalesced read path: one decode call per block geometry.

    Rows from every device sharing a codec instance are concatenated
    into a single sense + :meth:`BatchThreeOnTwoCodec.decode` pass —
    this is where concurrent requests actually merge into the PR-5
    kernels.  Results scatter back to each op's ``result``.
    """
    by_codec: dict[int, list[IoOp]] = collections.defaultdict(list)
    for op in ops:
        by_codec[id(op.device.codec)].append(op)
    for group in by_codec.values():
        rows_states = []
        rows_slc = []
        live: list[IoOp] = []
        for op in group:
            dev = op.device
            try:
                dev.require_written(op.block)
            except ServiceError as err:
                op.result = {"error": err}
                continue
            states, slc = dev.sense_rows(
                np.array([op.block]), np.array([op.t])
            )
            rows_states.append(states)
            rows_slc.append(slc)
            live.append(op)
        if not live:
            continue
        codec = live[0].device.codec
        decoded = codec.decode(
            np.concatenate(rows_states, axis=0), np.concatenate(rows_slc, axis=0)
        )
        for row, op in enumerate(live):
            op.result = _read_result(op.device, op, decoded, row)


def _write_one(op: IoOp) -> dict:
    """Execute one write op (the per-op slow path and retry handler)."""
    dev = op.device
    try:
        assert op.bits is not None
        return dev.write_block(op.block, op.bits, op.t)
    except SpareExhausted as exc:
        return {
            "error": ServiceError(
                "E_SPARE_EXHAUSTED",
                str(exc),
                {"device": dev.device_id, "block": op.block},
            )
        }


def _execute_writes(ops: list[IoOp]) -> None:
    """Write path: batch-encode per wave, program per row.

    Ops are partitioned into *waves* with unique ``(device, block)``
    pairs, preserving queue order within each block, so a second write
    to the same block always sees the state (marks, epoch) the first
    one left behind — exactly as sequential execution would.

    The wave's first-attempt encodes run as one
    :meth:`BatchThreeOnTwoCodec.encode` call; rows whose write-and-verify
    needs marking retries drop to the per-op loop (rare: wear events).
    """
    waves: list[list[IoOp]] = []
    seen_in_wave: list[set[tuple[str, int]]] = []
    for op in ops:
        key = (op.device.device_id, op.block)
        for wave, seen in zip(waves, seen_in_wave):
            if key not in seen:
                wave.append(op)
                seen.add(key)
                break
        else:
            waves.append([op])
            seen_in_wave.append({key})
    for wave in waves:
        for op in wave:
            op.result = _write_one(op)


def execute_batch(ops: Sequence[IoOp]) -> list[dict]:
    """Run one batch; returns per-op results in submission order.

    Results are dicts: either a response payload or ``{"error":
    ServiceError}``.  Bit-identical to executing the ops sequentially in
    FIFO order (the differential suite drives both paths):

    - reads are stateless given their bound timestamps, so they coalesce
      freely among themselves;
    - writes mutate wear state, so within one segment they run before
      the reads (a read behind a write to the same block must observe
      it) and same-block writes keep queue order (wave partitioning in
      :func:`_execute_writes`);
    - the only FIFO hazard left — a *write* submitted behind a *read* of
      the same block — forces a segment boundary, so the read still
      senses the pre-write cells.
    """
    segments: list[list[IoOp]] = []
    current: list[IoOp] = []
    read_keys: set[tuple[str, int]] = set()
    for op in ops:
        key = (op.device.device_id, op.block)
        if op.kind == "write" and key in read_keys:
            segments.append(current)
            current = []
            read_keys = set()
        current.append(op)
        if op.kind == "read":
            read_keys.add(key)
    if current:
        segments.append(current)
    for segment in segments:
        _execute_writes([op for op in segment if op.kind == "write"])
        _execute_reads([op for op in segment if op.kind == "read"])
    return [op.result for op in ops]  # every op was filled by its segment


# ----------------------------------------------------------------------
# Asyncio front end.
# ----------------------------------------------------------------------

class DynamicBatcher:
    """Event-loop face of the batching queue.

    One background task watches the queue and flushes on readiness
    (size) or at the oldest op's deadline; batches execute on a single
    dedicated worker thread, so the event loop never blocks on numpy and
    *all* engine-state access is serialized.  Control operations that
    touch device state without being block I/O (create/describe/digest/
    clock/delete) go through :meth:`run_serialized` on the same thread.

    ``hold()`` is a test seam: while held, nothing flushes, so tests can
    deterministically fill the queue (e.g. to exercise backpressure)
    without racing the flush loop.
    """

    def __init__(self, queue: BatchQueue | None = None):
        self.queue = queue or BatchQueue()
        self._pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-engine"
        )
        self._wake = asyncio.Event()
        self._task: asyncio.Task | None = None
        self._closed = False
        self._held = False

    # -- lifecycle -----------------------------------------------------
    def _ensure_task(self) -> None:
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def close(self) -> None:
        """Drain: flush every pending op, then stop the loop and pool."""
        self._closed = True
        self._wake.set()
        if self._task is not None:
            await self._task
        self._pool.shutdown(wait=True)

    def hold(self) -> None:
        self._held = True

    def release(self) -> None:
        self._held = False
        self._wake.set()

    # -- submission ----------------------------------------------------
    async def submit(self, op: IoOp) -> dict:
        """Enqueue one op and await its result (or its ServiceError)."""
        if self._closed:
            raise ServiceError("E_SHUTTING_DOWN", "server is draining")
        loop = asyncio.get_running_loop()
        op.future = loop.create_future()
        try:
            self.queue.submit(op)
        except QueueFull as exc:
            raise ServiceError(
                "E_QUEUE_FULL", str(exc), {"max_depth": self.queue.max_depth}
            )
        self._ensure_task()
        self._wake.set()
        result = await op.future
        err = result.get("error")
        if err is not None:
            raise err
        return result

    async def run_serialized(self, fn: Callable[[], Any]) -> Any:
        """Run a control operation on the engine thread (serialized)."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._pool, fn)

    # -- flush loop ----------------------------------------------------
    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            if self._closed and self.queue.depth == 0:
                return
            if not self._held and (self.queue.ready() or self._closed):
                if self.queue.depth >= self.queue.max_batch:
                    reason = "size"
                elif self.queue.ready():
                    reason = "deadline"
                else:
                    reason = "drain"
                batch = self.queue.take(reason=reason)
                if batch:
                    await self._execute(loop, batch)
                continue
            deadline = self.queue.next_deadline()
            timeout: float | None = None
            if deadline is not None and not self._held:
                timeout = max(0.0, deadline - self.queue.clock())
            try:
                await asyncio.wait_for(self._wake.wait(), timeout)
            except asyncio.TimeoutError:
                pass
            self._wake.clear()

    async def _execute(self, loop: asyncio.AbstractEventLoop, batch: list[IoOp]) -> None:
        try:
            results = await loop.run_in_executor(self._pool, execute_batch, batch)
        except Exception as exc:
            for op in batch:
                if op.future is not None and not op.future.done():
                    op.future.set_exception(exc)
            return
        for op, result in zip(batch, results):
            if op.future is not None and not op.future.done():
                op.future.set_result(result)
