"""Per-endpoint latency and error telemetry for ``/metrics``.

Telemetry measures the *server*, not the simulation: latencies are
wall-clock (``time.perf_counter``) by design and never feed back into
any simulated result.  That is the one sanctioned use of wall time in
the service — everything the physics sees runs on the virtual clock
(see :mod:`repro.service.clock`).

Percentiles are computed over a bounded reservoir of the most recent
samples per endpoint, so a long-lived server's ``/metrics`` stays O(1)
in memory and reflects recent behaviour rather than the boot spike.
"""

from __future__ import annotations

import collections
import threading
import time

__all__ = ["Telemetry"]

#: Samples kept per endpoint for percentile estimation.
_RESERVOIR = 4096


def _percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty sorted list."""
    idx = min(len(samples) - 1, max(0, round(q * (len(samples) - 1))))
    return samples[idx]


class _EndpointStats:
    __slots__ = ("count", "errors", "samples", "total_s")

    def __init__(self) -> None:
        self.count = 0
        self.errors = 0
        self.total_s = 0.0
        self.samples: collections.deque[float] = collections.deque(maxlen=_RESERVOIR)

    def record(self, elapsed_s: float, *, error: bool) -> None:
        self.count += 1
        self.errors += 1 if error else 0
        self.total_s += elapsed_s
        self.samples.append(elapsed_s)

    def snapshot(self) -> dict:
        ordered = sorted(self.samples)
        out = {
            "count": self.count,
            "errors": self.errors,
            "mean_ms": 1e3 * self.total_s / self.count if self.count else 0.0,
        }
        if ordered:
            out["p50_ms"] = 1e3 * _percentile(ordered, 0.50)
            out["p99_ms"] = 1e3 * _percentile(ordered, 0.99)
        return out


class Telemetry:
    """Thread-safe request counters keyed by endpoint label.

    Labels are route *templates* (``POST /v1/devices/{id}/blocks/{block}/read``),
    not raw paths, so cardinality stays bounded by the route table.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._endpoints: dict[str, _EndpointStats] = {}
        # Server start time is reporting metadata, not simulation state.
        self.started_at = time.time()  # repro-lint: disable=RPL003 -- /metrics uptime is telemetry, never enters simulation results

    def observe(self, endpoint: str, elapsed_s: float, *, error: bool = False) -> None:
        with self._lock:
            stats = self._endpoints.get(endpoint)
            if stats is None:
                stats = self._endpoints[endpoint] = _EndpointStats()
            stats.record(elapsed_s, error=error)

    def timer(self) -> float:
        """Start a latency measurement; pair with :meth:`observe`."""
        return time.perf_counter()

    def elapsed(self, start: float) -> float:
        return time.perf_counter() - start

    def snapshot(self) -> dict:
        with self._lock:
            endpoints = {
                name: stats.snapshot()
                for name, stats in sorted(self._endpoints.items())
            }
        uptime = time.time() - self.started_at  # repro-lint: disable=RPL003 -- /metrics uptime is telemetry, never enters simulation results
        return {"uptime_s": uptime, "endpoints": endpoints}
