"""Wire encoding helpers shared by the server, client, and load harness.

Block payloads travel as hex strings (a 512-bit block is 128 hex chars):
compact enough for JSON, trivially diffable in logs, and bit-exact — the
MSB-first bit order below is part of the service contract and is pinned
by the round-trip tests.
"""

from __future__ import annotations

import numpy as np

from repro.service.codes import ServiceError

__all__ = ["bits_to_hex", "hex_to_bits"]


def bits_to_hex(bits: np.ndarray) -> str:
    """Pack a 0/1 bit vector (MSB first) into a lowercase hex string."""
    b = np.asarray(bits, dtype=np.uint8).ravel()
    if b.size % 8:
        raise ValueError(f"bit count must be a multiple of 8, got {b.size}")
    return bytes(np.packbits(b)).hex()


def hex_to_bits(text: str, n_bits: int) -> np.ndarray:
    """Decode a hex payload into exactly ``n_bits`` bits (MSB first).

    Raises :class:`ServiceError` (``E_BAD_REQUEST``) on malformed hex or
    a length mismatch — this is the server-side validation path.
    """
    if not isinstance(text, str):
        raise ServiceError("E_BAD_REQUEST", "data payload must be a hex string")
    try:
        raw = bytes.fromhex(text)
    except ValueError:
        raise ServiceError("E_BAD_REQUEST", f"invalid hex payload: {text[:32]!r}...")
    if 8 * len(raw) != n_bits:
        raise ServiceError(
            "E_BAD_REQUEST",
            f"payload holds {8 * len(raw)} bits, device block is {n_bits}",
        )
    return np.unpackbits(np.frombuffer(raw, dtype=np.uint8))
