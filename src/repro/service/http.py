"""A minimal asyncio HTTP/1.1 server — stdlib only, JSON in/out.

The service must run with zero hard dependencies beyond the scientific
stack the repo already requires, so this module implements just enough
HTTP on ``asyncio.start_server``: request-line + header parsing with
hard size limits, ``Content-Length`` bodies, keep-alive, and JSON
responses.  It is deliberately not a framework — routes are template
paths (``/v1/devices/{device_id}``) bound to async handlers returning
``(status, payload)``, and everything else (devices, batching, jobs)
lives in :mod:`repro.service.app`.

Production deployments that want a real ASGI stack can mount
:func:`repro.service.asgi.create_asgi_app` under uvicorn instead; this
server exists so tests, CI, and the default CLI path need nothing.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Awaitable, Callable

from repro.service.codes import CODES, ServiceError
from repro.service.telemetry import Telemetry

__all__ = ["HttpServer", "Router"]

#: Request hard limits: generous for block payloads (a 512-bit block is
#: 128 hex chars), hostile to abuse.
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 1024 * 1024

#: Reason phrases for the statuses the code catalog uses.
_REASONS = {
    200: "OK", 201: "Created", 202: "Accepted", 400: "Bad Request",
    404: "Not Found", 405: "Method Not Allowed", 409: "Conflict",
    413: "Payload Too Large", 422: "Unprocessable Entity",
    500: "Internal Server Error", 503: "Service Unavailable",
    507: "Insufficient Storage",
}

#: ``async handler(path_params, body) -> (status, json_payload)``
Handler = Callable[[dict[str, str], Any], Awaitable[tuple[int, dict]]]


class Router:
    """Template-path router: ``{name}`` segments capture path params."""

    def __init__(self) -> None:
        self._routes: list[tuple[str, list[str], str, Handler]] = []

    def add(self, method: str, template: str, handler: Handler) -> None:
        segments = template.strip("/").split("/")
        self._routes.append((method.upper(), segments, f"{method.upper()} {template}", handler))

    def resolve(self, method: str, path: str) -> tuple[str, Handler, dict[str, str]]:
        """Match a request; returns ``(endpoint label, handler, params)``.

        Raises ``E_NOT_FOUND`` for unknown paths and ``E_METHOD`` when
        the path exists but not for this method.
        """
        segments = path.strip("/").split("/")
        path_matched = False
        for route_method, template, label, handler in self._routes:
            params = _match(template, segments)
            if params is None:
                continue
            path_matched = True
            if route_method == method.upper():
                return label, handler, params
        if path_matched:
            raise ServiceError("E_METHOD", f"{method} not allowed on {path}")
        raise ServiceError("E_NOT_FOUND", f"no route at {path}")


def _match(template: list[str], segments: list[str]) -> dict[str, str] | None:
    if len(template) != len(segments):
        return None
    params: dict[str, str] = {}
    for part, seg in zip(template, segments):
        if part.startswith("{") and part.endswith("}"):
            if not seg:
                return None
            params[part[1:-1]] = seg
        elif part != seg:
            return None
    return params


class HttpServer:
    """Serves a :class:`Router` over asyncio with per-endpoint telemetry."""

    def __init__(self, router: Router, telemetry: Telemetry | None = None):
        self.router = router
        self.telemetry = telemetry or Telemetry()
        self._server: asyncio.base_events.Server | None = None

    # -- lifecycle -----------------------------------------------------
    async def start(self, host: str, port: int) -> tuple[str, int]:
        """Bind and start serving; returns the actual (host, port)."""
        self._server = await asyncio.start_server(self._handle_conn, host, port)
        sock = self._server.sockets[0]
        addr = sock.getsockname()
        return addr[0], addr[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling -------------------------------------------
    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                keep_alive = await self._handle_one(reader, writer)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            pass  # peer went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass  # already torn down; close is best-effort

    async def _handle_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        request_line = await reader.readline()
        if not request_line:
            return False
        try:
            method, target, version = request_line.decode("latin-1").split()
        except ValueError:
            await self._send_error(
                writer, "HTTP/1.1", ServiceError("E_BAD_REQUEST", "malformed request line")
            )
            return False
        headers, overflow = await _read_headers(reader)
        if overflow:
            await self._send_error(
                writer, version, ServiceError("E_PAYLOAD_TOO_LARGE", "headers too large")
            )
            return False
        keep_alive = _wants_keep_alive(version, headers)

        start = self.telemetry.timer()
        endpoint = f"{method} {target.split('?', 1)[0]}"
        try:
            body = await _read_body(reader, headers)
            path = target.split("?", 1)[0]
            endpoint, handler, params = self.router.resolve(method, path)
            status, payload = await handler(params, body)
        except ServiceError as exc:
            self.telemetry.observe(endpoint, self.telemetry.elapsed(start), error=True)
            await self._send_json(writer, version, exc.http_status, exc.payload(), keep_alive)
            return keep_alive
        except Exception as exc:
            self.telemetry.observe(endpoint, self.telemetry.elapsed(start), error=True)
            err = ServiceError("E_INTERNAL", f"{type(exc).__name__}: {exc}")
            await self._send_json(writer, version, err.http_status, err.payload(), keep_alive)
            return keep_alive
        self.telemetry.observe(endpoint, self.telemetry.elapsed(start))
        await self._send_json(writer, version, status, payload, keep_alive)
        return keep_alive

    # -- responses -----------------------------------------------------
    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        version: str,
        status: int,
        payload: dict,
        keep_alive: bool = False,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"{version if version.startswith('HTTP/') else 'HTTP/1.1'} {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    async def _send_error(
        self, writer: asyncio.StreamWriter, version: str, exc: ServiceError
    ) -> None:
        await self._send_json(writer, version, exc.http_status, exc.payload())


async def _read_headers(reader: asyncio.StreamReader) -> tuple[dict[str, str], bool]:
    headers: dict[str, str] = {}
    total = 0
    while True:
        line = await reader.readline()
        total += len(line)
        if total > MAX_HEADER_BYTES:
            return headers, True
        if line in (b"\r\n", b"\n", b""):
            return headers, False
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()


async def _read_body(reader: asyncio.StreamReader, headers: dict[str, str]) -> Any:
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ServiceError("E_BAD_REQUEST", f"bad Content-Length {length_text!r}")
    if length < 0:
        raise ServiceError("E_BAD_REQUEST", "negative Content-Length")
    if length > MAX_BODY_BYTES:
        raise ServiceError(
            "E_PAYLOAD_TOO_LARGE",
            f"body of {length} bytes exceeds the {MAX_BODY_BYTES} byte limit",
        )
    if length == 0:
        return None
    raw = await reader.readexactly(length)
    try:
        return json.loads(raw)
    except ValueError:
        raise ServiceError("E_BAD_REQUEST", "request body is not valid JSON")


def _wants_keep_alive(version: str, headers: dict[str, str]) -> bool:
    connection = headers.get("connection", "").lower()
    if "close" in connection:
        return False
    if version == "HTTP/1.0":
        return "keep-alive" in connection
    return True


def status_for_code(code: str) -> int:
    """HTTP status for a catalog code (convenience for handlers)."""
    return CODES[code].http_status
