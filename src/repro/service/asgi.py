"""ASGI adapter: the same app under a production server stack.

The adapter itself is pure stdlib — it maps ASGI ``scope``/``receive``/
``send`` onto the :class:`~repro.service.app.ServiceApp` handlers, so
any ASGI server can host the service.  Only :func:`serve_asgi` (actually
*running* uvicorn) needs the optional dependency group::

    pip install 'repro[service]'

Everything else in the service — the default stdlib server, the CLI,
tests, benchmarks — works without it.
"""

from __future__ import annotations

import json
from typing import Any

from repro.service.app import ServiceApp
from repro.service.codes import ServiceError
from repro.service.http import MAX_BODY_BYTES

__all__ = ["create_asgi_app", "serve_asgi"]


def create_asgi_app(app: ServiceApp):
    """Wrap a :class:`ServiceApp` as an ASGI 3 application (stdlib only)."""
    router = app.server.router
    telemetry = app.telemetry

    async def asgi(scope: dict, receive, send) -> None:
        if scope["type"] == "lifespan":
            await _lifespan(app, receive, send)
            return
        if scope["type"] != "http":
            raise RuntimeError(f"unsupported ASGI scope {scope['type']!r}")

        start = telemetry.timer()
        endpoint = f"{scope['method']} {scope['path']}"
        try:
            body = await _read_body(receive)
            endpoint, handler, params = router.resolve(scope["method"], scope["path"])
            status, payload = await handler(params, body)
        except ServiceError as exc:
            telemetry.observe(endpoint, telemetry.elapsed(start), error=True)
            await _send_json(send, exc.http_status, exc.payload())
            return
        except Exception as exc:
            telemetry.observe(endpoint, telemetry.elapsed(start), error=True)
            err = ServiceError("E_INTERNAL", f"{type(exc).__name__}: {exc}")
            await _send_json(send, err.http_status, err.payload())
            return
        telemetry.observe(endpoint, telemetry.elapsed(start))
        await _send_json(send, status, payload)

    return asgi


async def _lifespan(app: ServiceApp, receive, send) -> None:
    while True:
        message = await receive()
        if message["type"] == "lifespan.startup":
            await send({"type": "lifespan.startup.complete"})
        elif message["type"] == "lifespan.shutdown":
            await app.batcher.close()
            app.jobs.close()
            await send({"type": "lifespan.shutdown.complete"})
            return


async def _read_body(receive) -> Any:
    chunks: list[bytes] = []
    total = 0
    while True:
        message = await receive()
        chunk = message.get("body", b"")
        total += len(chunk)
        if total > MAX_BODY_BYTES:
            raise ServiceError(
                "E_PAYLOAD_TOO_LARGE",
                f"body exceeds the {MAX_BODY_BYTES} byte limit",
            )
        chunks.append(chunk)
        if not message.get("more_body", False):
            break
    raw = b"".join(chunks)
    if not raw:
        return None
    try:
        return json.loads(raw)
    except ValueError:
        raise ServiceError("E_BAD_REQUEST", "request body is not valid JSON")


async def _send_json(send, status: int, payload: dict) -> None:
    body = json.dumps(payload, sort_keys=True).encode()
    await send(
        {
            "type": "http.response.start",
            "status": status,
            "headers": [
                (b"content-type", b"application/json"),
                (b"content-length", str(len(body)).encode()),
            ],
        }
    )
    await send({"type": "http.response.body", "body": body})


def serve_asgi(app: ServiceApp, host: str, port: int) -> None:
    """Serve under uvicorn — requires the ``service`` extras group."""
    try:
        import uvicorn
    except ImportError:
        raise RuntimeError(
            "the --asgi server needs the optional service stack; "
            "install it with: pip install 'repro[service]'"
        ) from None
    uvicorn.run(create_asgi_app(app), host=host, port=port, log_level="warning")
