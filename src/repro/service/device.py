"""Virtual-time PCM device engine behind the service endpoints.

Each :class:`VirtualDevice` is a persistent simulated MLC-PCM device:
``n_blocks`` 3-ON-2 blocks of drifting cells (the paper's 354-cell
Figure-9 geometry by default), a per-device :class:`VirtualClock` that
only advances by explicit request, accumulated mark-and-spare wear, and
cumulative request statistics.  The arrays are laid out ``(n_blocks,
n_cells)`` so a batch of read requests senses and decodes as a handful
of vectorized passes through :class:`~repro.coding.batch.BatchThreeOnTwoCodec`.

**Determinism contract.**  Device state after any request history is a
pure function of ``(device seed, the ordered per-block request
sequence, the virtual timestamps)`` — *not* of wall-clock time, request
interleaving across blocks, or how the dynamic batcher happened to
group requests.  Three mechanisms enforce this:

- every write draws its program noise from a private generator
  addressed by ``(seed, SERVICE_SPAWN_KEY, block, epoch)`` via
  :func:`repro.montecarlo.rng.block_rng`, where ``epoch`` counts writes
  to that block — so the draw stream is independent of what other
  requests ran in between;
- endurance budgets and failure modes are sampled once at device
  creation from their own spawn keys;
- virtual timestamps are bound at request *submission*, before the
  batcher reorders anything.

The physics mirrors :class:`repro.cells.cell_array.CellArray` (write
distributions, drift-tier escalation, stuck-cell pinning) and the
write-and-verify / mark-and-spare loop mirrors
:meth:`repro.core.device.PCMDevice.write`; the difference is purely the
addressing of randomness and the batch-friendly array layout.
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
from typing import Iterator

import numpy as np

from repro.cells.drift import PAPER_ESCALATION, TieredDrift
from repro.cells.faults import FaultMode, WearoutModel
from repro.cells.params import T0_SECONDS, WRITE_TRUNCATION_SIGMA
from repro.coding.batch import BatchThreeOnTwoCodec
from repro.coding.blockcodec import ThreeOnTwoBlockCodec
from repro.core.designs import three_level_optimal
from repro.montecarlo.rng import block_rng, truncated_normal
from repro.service.clock import VirtualClock
from repro.service.codes import ServiceError
from repro.wearout.mark_and_spare import MarkAndSpareBlock, SpareExhausted

__all__ = [
    "SERVICE_SPAWN_KEY",
    "DeviceRegistry",
    "VirtualDevice",
    "VirtualDeviceStats",
    "shared_codec",
]

#: Root of the service's SeedSequence spawn-key domain.  Distinct from
#: the MC executor's block fan-out and the chaos stream, so service
#: traffic can never perturb (or be perturbed by) simulation RNG.
SERVICE_SPAWN_KEY = 0x5EC0

#: Sub-domains under :data:`SERVICE_SPAWN_KEY`.
_KEY_ENDURANCE = 0
_KEY_MODES = 1
_KEY_WRITE = 2

_HEALTHY = FaultMode.HEALTHY.value
_STUCK_RESET = FaultMode.STUCK_RESET.value
_STUCK_SET = FaultMode.STUCK_SET.value

# One BatchThreeOnTwoCodec per block geometry, shared across devices:
# the packed parity masks are a few hundred KB and identical for every
# device with the same (data_bits, n_spare_pairs).
_CODEC_CACHE: dict[tuple[int, int], BatchThreeOnTwoCodec] = {}
_CODEC_LOCK = threading.Lock()


def shared_codec(data_bits: int, n_spare_pairs: int) -> BatchThreeOnTwoCodec:
    """The process-wide batch codec for one block geometry."""
    key = (int(data_bits), int(n_spare_pairs))
    with _CODEC_LOCK:
        codec = _CODEC_CACHE.get(key)
        if codec is None:
            codec = BatchThreeOnTwoCodec(
                ThreeOnTwoBlockCodec(data_bits=key[0], n_spare_pairs=key[1])
            )
            _CODEC_CACHE[key] = codec
        return codec


@dataclasses.dataclass
class VirtualDeviceStats:
    """Cumulative request counters of one device."""

    writes: int = 0
    reads: int = 0
    write_retries: int = 0
    wearout_marks: int = 0
    tec_corrections: int = 0
    hec_pairs_dropped: int = 0
    uncorrectable_reads: int = 0
    spare_exhausted_writes: int = 0

    def snapshot(self) -> dict:
        return dataclasses.asdict(self)


class VirtualDevice:
    """One simulated PCM device with virtual-time drift and wear."""

    def __init__(
        self,
        device_id: str,
        seed: int,
        n_blocks: int,
        *,
        data_bits: int = 512,
        n_spare_pairs: int = 6,
        wearout: WearoutModel | None = None,
        schedule: TieredDrift = PAPER_ESCALATION,
    ):
        if n_blocks < 1:
            raise ServiceError("E_BAD_REQUEST", "need at least one block")
        if len(schedule.tiers) > 1:
            raise ValueError("VirtualDevice supports at most one escalation tier")
        self.device_id = device_id
        self.seed = int(seed)
        self.n_blocks = int(n_blocks)
        self.data_bits = int(data_bits)
        self.n_spare_pairs = int(n_spare_pairs)
        self.codec = shared_codec(data_bits, n_spare_pairs)
        self.design = three_level_optimal()
        self.schedule = schedule
        self.wearout = wearout or WearoutModel()
        self.clock = VirtualClock()
        self.stats = VirtualDeviceStats()

        scalar = self.codec.codec
        self.n_cells = scalar.n_mlc_cells
        self.n_slc_cells = scalar.n_slc_cells
        n, c = self.n_blocks, self.n_cells

        # Per-cell physics state, (n_blocks, n_cells).
        self._lr0 = np.full((n, c), self.design.states[0].mu_lr)
        self._alpha = np.zeros((n, c))
        self._alpha_esc = np.zeros((n, c))
        self._writes = np.zeros((n, c), dtype=np.int64)
        self._fault = np.full((n, c), _HEALTHY, dtype=np.int8)
        rng_end = block_rng(self.seed, (SERVICE_SPAWN_KEY, _KEY_ENDURANCE))
        self._endurance = self.wearout.sample_endurance(rng_end, n * c).reshape(n, c)
        rng_modes = block_rng(self.seed, (SERVICE_SPAWN_KEY, _KEY_MODES))
        self._pending_mode = self.wearout.sample_modes(rng_modes, n * c).reshape(n, c)

        # Per-block controller state.
        self._t_prog = np.zeros(n)
        self._slc = np.zeros((n, self.n_slc_cells), dtype=np.uint8)
        self._written = np.zeros(n, dtype=bool)
        self._epoch = np.zeros(n, dtype=np.int64)
        self._ms = [scalar.new_block_state() for _ in range(n)]

        # Cached per-state program/drift parameter vectors.
        self._mu_lr = np.array([s.mu_lr for s in self.design.states])
        self._sg_lr = np.array([s.sigma_lr for s in self.design.states])
        self._mu_a = np.array([s.drift.mu_alpha for s in self.design.states])
        self._sg_a = np.array([s.drift.sigma_alpha for s in self.design.states])

    # -- validation ----------------------------------------------------
    def check_block(self, block: int) -> int:
        block = int(block)
        if not 0 <= block < self.n_blocks:
            raise ServiceError(
                "E_BLOCK_RANGE",
                f"block {block} outside device range [0, {self.n_blocks})",
                {"device": self.device_id, "n_blocks": self.n_blocks},
            )
        return block

    def bind_time(self, t: float | None) -> float:
        """Resolve a request's virtual timestamp at submission time.

        ``None`` means "now" on the device clock; explicit timestamps
        must not be behind the clock (drift cannot rewind).
        """
        now = self.clock.now()
        if t is None:
            return now
        t = float(t)
        if not np.isfinite(t) or t < 0.0:
            raise ServiceError("E_BAD_REQUEST", f"virtual time must be finite >= 0, got {t}")
        if t < now:
            raise ServiceError(
                "E_TIME_REGRESSION",
                f"t={t} is behind the device clock ({now})",
                {"device": self.device_id, "virtual_time": now},
            )
        return t

    # -- write path ----------------------------------------------------
    def _program_row(
        self, block: int, states: np.ndarray, t: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Program one block's cells at virtual time ``t``; verify mask.

        Draws are made for *every* cell (then applied to the healthy
        subset) so the stream a write consumes never depends on how many
        cells happen to be worn — the per-write RNG contract.
        """
        c = self.n_cells
        writes = self._writes[block]
        writes += 1
        newly_dead = (writes >= self._endurance[block]) & (self._fault[block] == _HEALTHY)
        if np.any(newly_dead):
            self._fault[block][newly_dead] = self._pending_mode[block][newly_dead]

        z_r = truncated_normal(
            rng, 0.0, 1.0, -WRITE_TRUNCATION_SIGMA, WRITE_TRUNCATION_SIGMA, c
        )
        z = rng.standard_normal(c)
        fresh = rng.standard_normal(c)

        st = states.astype(np.int64)
        healthy = self._fault[block] == _HEALTHY
        lr0 = self._mu_lr[st] + self._sg_lr[st] * z_r
        alpha = np.maximum(self._mu_a[st] + self._sg_a[st] * z, 0.0)
        self._lr0[block][healthy] = lr0[healthy]
        self._alpha[block][healthy] = alpha[healthy]
        if self.schedule.tiers:
            tier = self.schedule.tiers[0]
            esc = self.schedule.escalated_alpha(tier, alpha, z, 0.0, z_fresh=fresh)
            self._alpha_esc[block][healthy] = esc[healthy]
        self._t_prog[block] = t

        verify = healthy.copy()
        stuck_reset = self._fault[block] == _STUCK_RESET
        verify |= stuck_reset & (st == self.design.n_levels - 1)
        return verify

    def _revive_pair(self, block: int, pair: int, rng: np.random.Generator) -> None:
        """Reverse-current revival of a marked pair's stuck-set cells.

        Two uniforms are always drawn (stream invariance); revived cells
        become permanently stuck-reset, i.e. they read as S4 — exactly
        what an INV mark needs.
        """
        cells = slice(2 * pair, 2 * pair + 2)
        u = rng.random(2)
        pair_faults = self._fault[block, cells]
        revived = (pair_faults == _STUCK_SET) & (u < self.wearout.p_revive)
        pair_faults[revived] = _STUCK_RESET

    def write_block(self, block: int, bits: np.ndarray, t: float) -> dict:
        """Encode + program one block with write-and-verify at time ``t``.

        Mirrors :meth:`repro.core.device.PCMDevice.write`: each verify
        failure marks the containing pair INV and relays the data around
        it, up to the spare budget.  Raises
        :class:`~repro.wearout.mark_and_spare.SpareExhausted` past it
        (the block is left unreadable until rewritten after remapping).
        """
        block = self.check_block(block)
        epoch = int(self._epoch[block])
        self._epoch[block] = epoch + 1
        rng = block_rng(self.seed, (SERVICE_SPAWN_KEY, _KEY_WRITE, block, epoch))
        ms = self._ms[block]
        self.stats.writes += 1
        retries = 0
        marks = 0
        try:
            for _ in range(self.n_spare_pairs + 1):
                states, checks = self.codec.encode(bits[None, :], [ms])
                ok = self._program_row(block, states[0], t, rng)
                self._slc[block] = checks[0]
                bad = np.nonzero(~ok)[0]
                if bad.size == 0:
                    self._written[block] = True
                    self.stats.write_retries += retries
                    self.stats.wearout_marks += marks
                    return {
                        "code": "OK",
                        "block": block,
                        "t": t,
                        "epoch": epoch,
                        "retries": retries,
                        "marked_pairs": ms.n_marked,
                    }
                retries += 1
                pair = int(bad[0]) // 2
                if not bool(ms._marked[pair]):
                    ms.mark(pair)  # raises SpareExhausted when out of budget
                    marks += 1
                self._revive_pair(block, pair, rng)
            raise SpareExhausted(f"block {block}: wearout beyond spare budget")
        except SpareExhausted:
            self._written[block] = False
            self.stats.write_retries += retries
            self.stats.wearout_marks += marks
            self.stats.spare_exhausted_writes += 1
            raise

    # -- read path -----------------------------------------------------
    def drifted_lr(self, blocks: np.ndarray, ts: np.ndarray) -> np.ndarray:
        """Drifted log10 resistance of whole block rows at virtual times.

        Vectorized mirror of
        :meth:`repro.cells.cell_array.CellArray.log_resistance` over
        ``(len(blocks), n_cells)`` with per-row timestamps.
        """
        blocks = np.asarray(blocks, dtype=np.int64)
        ts = np.asarray(ts, dtype=float)
        lr0 = self._lr0[blocks]
        alpha = self._alpha[blocks]
        dt = np.maximum(ts[:, None] - self._t_prog[blocks][:, None], 0.0) + T0_SECONDS
        L = np.log10(dt / T0_SECONDS)
        lr = lr0 + alpha * L
        if self.schedule.tiers:
            tier = self.schedule.tiers[0]
            b = tier.lr_break
            crossed = (lr0 < b) & (lr > b)
            if np.any(crossed):
                with np.errstate(divide="ignore", invalid="ignore"):
                    L_cross = np.where(crossed & (alpha > 0), (b - lr0) / alpha, np.inf)
                esc = b + self._alpha_esc[blocks] * np.maximum(L - L_cross, 0.0)
                lr = np.where(crossed & np.isfinite(L_cross), esc, lr)
        fault = self._fault[blocks]
        lr = np.where(fault == _STUCK_RESET, self.design.states[-1].mu_lr, lr)
        lr = np.where(fault == _STUCK_SET, self.design.states[0].mu_lr, lr)
        return lr

    def sense_rows(self, blocks: np.ndarray, ts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Sensed cell states + SLC check bits for a batch of reads."""
        blocks = np.asarray(blocks, dtype=np.int64)
        states = self.design.sense(self.drifted_lr(blocks, ts)).astype(np.uint8)
        return states, self._slc[blocks]

    def require_written(self, block: int) -> None:
        if not bool(self._written[block]):
            raise ServiceError(
                "E_BLOCK_NOT_WRITTEN",
                f"block {block} was never written (or its last write failed)",
                {"device": self.device_id, "block": block},
            )

    # -- introspection -------------------------------------------------
    def describe(self) -> dict:
        marks = np.array([ms.n_marked for ms in self._ms], dtype=np.int64)
        return {
            "id": self.device_id,
            "seed": self.seed,
            "n_blocks": self.n_blocks,
            "data_bits": self.data_bits,
            "n_spare_pairs": self.n_spare_pairs,
            "cells_per_block": self.n_cells,
            "slc_cells_per_block": self.n_slc_cells,
            "virtual_time": self.clock.now(),
            "blocks_written": int(self._written.sum()),
            "wear": {
                "marked_pairs_total": int(marks.sum()),
                "marked_pairs_max": int(marks.max()),
                "blocks_at_budget": int((marks >= self.n_spare_pairs).sum()),
                "stuck_cells": int((self._fault != _HEALTHY).sum()),
            },
            "stats": self.stats.snapshot(),
        }

    def state_digest(self) -> str:
        """SHA-256 over the full simulated state, for differential checks.

        Two devices that served bit-identical request histories (in any
        batching arrangement) must produce equal digests; the
        bench/CI cross-check is built on this.
        """
        h = hashlib.sha256()
        for arr in (
            self._lr0,
            self._alpha,
            self._alpha_esc,
            self._writes,
            self._fault,
            self._t_prog,
            self._slc,
            self._written,
            self._epoch,
        ):
            h.update(np.ascontiguousarray(arr).tobytes())
        for ms in self._ms:
            h.update(np.ascontiguousarray(ms._marked).tobytes())
        h.update(np.float64(self.clock.now()).tobytes())
        return h.hexdigest()


class DeviceRegistry:
    """Id-addressed collection of live devices.

    Creation and deletion are guarded by a lock (they run on the event
    loop thread while batches execute on the engine thread); per-device
    simulation state is only ever touched from the engine thread — the
    app routes every state-touching operation through the batcher's
    serialized executor.
    """

    def __init__(self) -> None:
        self._devices: dict[str, VirtualDevice] = {}
        self._next = 1
        self._lock = threading.Lock()

    def create(
        self,
        seed: int,
        n_blocks: int,
        *,
        data_bits: int = 512,
        n_spare_pairs: int = 6,
        wearout: WearoutModel | None = None,
    ) -> VirtualDevice:
        with self._lock:
            device_id = f"dev-{self._next:04d}"
            self._next += 1
            device = VirtualDevice(
                device_id,
                seed,
                n_blocks,
                data_bits=data_bits,
                n_spare_pairs=n_spare_pairs,
                wearout=wearout,
            )
            self._devices[device_id] = device
            return device

    def get(self, device_id: str) -> VirtualDevice:
        with self._lock:
            device = self._devices.get(device_id)
        if device is None:
            raise ServiceError(
                "E_DEVICE_NOT_FOUND", f"no device {device_id!r}", {"device": device_id}
            )
        return device

    def delete(self, device_id: str) -> None:
        with self._lock:
            if device_id not in self._devices:
                raise ServiceError(
                    "E_DEVICE_NOT_FOUND", f"no device {device_id!r}", {"device": device_id}
                )
            del self._devices[device_id]

    def __iter__(self) -> Iterator[VirtualDevice]:
        with self._lock:
            devices = list(self._devices.values())
        return iter(devices)

    def __len__(self) -> int:
        with self._lock:
            return len(self._devices)
