"""Async job manager: submit/poll long-running simulation work over HTTP.

BLER sweeps and campaigns take seconds to minutes — far past any sane
HTTP timeout — so the service runs them on a small worker pool and the
client polls ``GET /v1/jobs/<id>``.  Job state is the usual lattice
(``queued -> running -> done | failed``) with structured event codes on
every transition; campaign jobs additionally persist their run directory
through the existing :class:`~repro.campaign.store.RunStore`, so a
service-launched campaign is resumable with the offline CLI.

Job randomness is self-contained: each job carries its own ``seed`` and
never touches device state, so jobs and block I/O cannot perturb each
other's streams no matter how they interleave.
"""

from __future__ import annotations

import itertools
import pathlib
import threading
import traceback
from concurrent.futures import Future, ThreadPoolExecutor

from repro.campaign.scheduler import CampaignScheduler
from repro.campaign.spec import SpecError, builtin_campaign
from repro.campaign.store import RunStore
from repro.fleet.config import config_from_params
from repro.fleet.mc import fleet_mc
from repro.montecarlo.bler_mc import bler_mc
from repro.service.codes import ServiceError

__all__ = ["JobManager"]

#: Job kinds accepted by ``POST /v1/jobs``.
KINDS = ("bler", "campaign", "fleet")

#: Hard cap on CER points per BLER job — keeps one request from pinning
#: a worker for hours; split larger sweeps across jobs.
_MAX_CER_POINTS = 64


def _parse_bler_params(params: dict) -> dict:
    cers = params.get("cers")
    if not isinstance(cers, (list, tuple)) or not cers:
        raise ServiceError("E_JOB_KIND", "bler job needs a non-empty 'cers' list")
    if len(cers) > _MAX_CER_POINTS:
        raise ServiceError(
            "E_JOB_KIND",
            f"bler job limited to {_MAX_CER_POINTS} CER points, got {len(cers)}",
        )
    try:
        cers = [float(c) for c in cers]
    except (TypeError, ValueError):
        raise ServiceError("E_JOB_KIND", "'cers' entries must be numbers")
    if any(not 0.0 <= c <= 1.0 for c in cers):
        raise ServiceError("E_JOB_KIND", "'cers' entries must be in [0, 1]")
    n_blocks = params.get("n_blocks", 1000)
    if not isinstance(n_blocks, int) or n_blocks < 1 or n_blocks > 10_000_000:
        raise ServiceError("E_JOB_KIND", "'n_blocks' must be an int in [1, 1e7]")
    seed = params.get("seed", 0)
    if not isinstance(seed, int):
        raise ServiceError("E_JOB_KIND", "'seed' must be an int")
    return {"cers": cers, "n_blocks": n_blocks, "seed": seed}


def _parse_campaign_params(params: dict) -> dict:
    name = params.get("name")
    if not isinstance(name, str) or not name:
        raise ServiceError("E_JOB_KIND", "campaign job needs a 'name' string")
    n_samples = params.get("n_samples")
    if n_samples is not None and (not isinstance(n_samples, int) or n_samples < 1):
        raise ServiceError("E_JOB_KIND", "'n_samples' must be a positive int")
    seed = params.get("seed")
    if seed is not None and not isinstance(seed, int):
        raise ServiceError("E_JOB_KIND", "'seed' must be an int")
    try:  # reject unknown campaign names at submit time (400, not a failed job)
        builtin_campaign(name, n_samples=n_samples, seed=seed)
    except SpecError as exc:
        raise ServiceError("E_JOB_KIND", str(exc))
    return {"name": name, "n_samples": n_samples, "seed": seed}


def _parse_fleet_params(params: dict) -> dict:
    n_devices = params.get("n_devices", 1000)
    if not isinstance(n_devices, int) or not 1 <= n_devices <= 200_000:
        raise ServiceError("E_JOB_KIND", "'n_devices' must be an int in [1, 2e5]")
    n_epochs = params.get("n_epochs", 3)
    if not isinstance(n_epochs, int) or not 1 <= n_epochs <= 100:
        raise ServiceError("E_JOB_KIND", "'n_epochs' must be an int in [1, 100]")
    preset = params.get("preset", "stress")
    if preset not in ("default", "stress"):
        raise ServiceError("E_JOB_KIND", "'preset' must be 'default' or 'stress'")
    seed = params.get("seed", 0)
    if not isinstance(seed, int):
        raise ServiceError("E_JOB_KIND", "'seed' must be an int")
    return {
        "n_devices": n_devices,
        "n_epochs": n_epochs,
        "preset": preset,
        "seed": seed,
    }


class _Job:
    def __init__(self, job_id: str, kind: str, params: dict):
        self.job_id = job_id
        self.kind = kind
        self.params = params
        self.state = "queued"
        self.result: dict | None = None
        self.error: dict | None = None
        self.future: Future | None = None

    def describe(self) -> dict:
        out = {
            "job_id": self.job_id,
            "kind": self.kind,
            "state": self.state,
            "params": self.params,
        }
        if self.result is not None:
            out["result"] = self.result
        if self.error is not None:
            out["error"] = self.error
        return out


class JobManager:
    """Runs bler/fleet/campaign jobs on a bounded pool; thread-safe registry."""

    def __init__(self, work_dir: str | pathlib.Path, *, max_workers: int = 2,
                 mc_jobs: int | None = 1):
        self.work_dir = pathlib.Path(work_dir)
        self.mc_jobs = mc_jobs
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-jobs"
        )
        self._lock = threading.Lock()
        self._jobs: dict[str, _Job] = {}
        self._ids = itertools.count(1)
        self._closed = False

    # -- public API ----------------------------------------------------
    def submit(self, kind: str, params: dict) -> dict:
        """Validate and enqueue a job; returns its ACCEPTED descriptor."""
        if self._closed:
            raise ServiceError("E_SHUTTING_DOWN", "job manager is draining")
        if kind == "bler":
            clean = _parse_bler_params(params)
        elif kind == "campaign":
            clean = _parse_campaign_params(params)
        elif kind == "fleet":
            clean = _parse_fleet_params(params)
        else:
            raise ServiceError(
                "E_JOB_KIND",
                f"unknown job kind {kind!r}",
                {"kinds": list(KINDS)},
            )
        with self._lock:
            job = _Job(f"job-{next(self._ids):04d}", kind, clean)
            self._jobs[job.job_id] = job
            job.future = self._pool.submit(self._run, job)
        return {"code": "ACCEPTED", **job.describe()}

    def get(self, job_id: str) -> dict:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError("E_JOB_NOT_FOUND", f"no job {job_id!r}")
        return {"code": "OK", **job.describe()}

    def list(self) -> list[dict]:
        with self._lock:
            jobs = list(self._jobs.values())
        return [j.describe() for j in jobs]

    def close(self) -> None:
        """Stop accepting jobs and wait for in-flight ones to settle."""
        self._closed = True
        self._pool.shutdown(wait=True)

    # -- execution -----------------------------------------------------
    def _run(self, job: _Job) -> None:
        job.state = "running"
        try:
            if job.kind == "bler":
                job.result = self._run_bler(job.params)
            elif job.kind == "fleet":
                job.result = self._run_fleet(job.params)
            else:
                job.result = self._run_campaign(job.job_id, job.params)
            job.state = "done"
        except ServiceError as exc:
            job.state = "failed"
            job.error = exc.payload()
        except Exception as exc:
            job.state = "failed"
            job.error = {
                "code": "E_INTERNAL",
                "message": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(limit=8),
            }

    def _run_bler(self, params: dict) -> dict:
        results = bler_mc(
            params["cers"],
            params["n_blocks"],
            params["seed"],
            jobs=self.mc_jobs,
        )
        return {
            "points": [
                {
                    "cer": r.cer,
                    "n_blocks": r.n_blocks,
                    "n_errors": r.n_errors,
                    "n_silent": r.n_silent,
                    "bler": r.bler,
                }
                for r in results
            ]
        }

    def _run_fleet(self, params: dict) -> dict:
        config = config_from_params(
            {"preset": params["preset"]}, params["n_devices"], params["n_epochs"]
        )
        summary = fleet_mc(config, seed=params["seed"], jobs=self.mc_jobs)
        return summary.to_dict()

    def _run_campaign(self, job_id: str, params: dict) -> dict:
        try:
            spec = builtin_campaign(
                params["name"], n_samples=params["n_samples"], seed=params["seed"]
            )
        except SpecError as exc:
            raise ServiceError("E_JOB_KIND", str(exc))
        run_dir = self.work_dir / job_id
        store = RunStore(run_dir)
        scheduler = CampaignScheduler(
            spec, store, mc_jobs=self.mc_jobs, progress=False
        )
        outcome = scheduler.run()
        return {
            "campaign": params["name"],
            "run_dir": str(run_dir),
            "ok": outcome.ok,
            "states": outcome.states,
            "metrics": outcome.metrics,
        }
