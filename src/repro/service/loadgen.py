"""Synthetic-client load harness for the service benchmark.

Spawns N threads, each with its own keep-alive connection and a
*disjoint* block range on a shared device (disjoint so every client's
reads have deterministic expected data, letting the harness verify
payload integrity while it measures).  Records wall-clock latency per
request — measurement, not simulation, so ``time.perf_counter`` is the
right clock — and reduces to the percentile/throughput payload the
benchmark writes into ``results/BENCH_service.json``.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.montecarlo.rng import make_rng
from repro.service.client import ServiceClient, ServiceResponseError
from repro.service.wire import bits_to_hex

__all__ = ["run_load"]


def _percentile_ms(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return 1e3 * ordered[idx]


class _ClientWorker(threading.Thread):
    def __init__(self, base_url: str, device_id: str, blocks: range,
                 n_rounds: int, data_bits: int, seed: int, start_gate: threading.Event):
        super().__init__(name=f"loadgen-{blocks.start}", daemon=True)
        self.base_url = base_url
        self.device_id = device_id
        self.blocks = blocks
        self.n_rounds = n_rounds
        self.data_bits = data_bits
        self.seed = seed
        self.start_gate = start_gate
        self.write_latencies: list[float] = []
        self.read_latencies: list[float] = []
        self.errors = 0
        self.mismatches = 0

    def run(self) -> None:
        rng = make_rng(self.seed)
        payloads = {
            block: bits_to_hex(rng.integers(0, 2, size=self.data_bits, dtype="uint8"))
            for block in self.blocks
        }
        self.start_gate.wait()
        with ServiceClient(self.base_url) as client:
            for _ in range(self.n_rounds):
                for block, data_hex in payloads.items():
                    start = time.perf_counter()
                    try:
                        client.write_block(self.device_id, block, data_hex)
                    except ServiceResponseError:
                        self.errors += 1
                        continue
                    finally:
                        self.write_latencies.append(time.perf_counter() - start)
                for block, data_hex in payloads.items():
                    start = time.perf_counter()
                    try:
                        response = client.read_block(self.device_id, block)
                    except ServiceResponseError:
                        self.errors += 1
                        continue
                    finally:
                        self.read_latencies.append(time.perf_counter() - start)
                    if response.get("data") != data_hex:
                        self.mismatches += 1


def run_load(
    base_url: str,
    *,
    n_clients: int = 4,
    blocks_per_client: int = 16,
    n_rounds: int = 4,
    data_bits: int = 512,
    seed: int = 0,
) -> dict[str, Any]:
    """Run one load burst against a live server; returns the bench payload."""
    with ServiceClient(base_url) as setup:
        created = setup.create_device(
            n_blocks=n_clients * blocks_per_client,
            data_bits=data_bits,
            seed=seed,
        )
        device_id = created["device"]["id"]

        start_gate = threading.Event()
        workers = [
            _ClientWorker(
                base_url,
                device_id,
                range(i * blocks_per_client, (i + 1) * blocks_per_client),
                n_rounds,
                data_bits,
                seed + 1 + i,
                start_gate,
            )
            for i in range(n_clients)
        ]
        for w in workers:
            w.start()
        t0 = time.perf_counter()
        start_gate.set()
        for w in workers:
            w.join()
        duration_s = time.perf_counter() - t0

        metrics = setup.metrics()
        setup.delete_device(device_id)

    writes = [lat for w in workers for lat in w.write_latencies]
    reads = [lat for w in workers for lat in w.read_latencies]
    n_requests = len(writes) + len(reads)
    return {
        "config": {
            "n_clients": n_clients,
            "blocks_per_client": blocks_per_client,
            "n_rounds": n_rounds,
            "data_bits": data_bits,
            "seed": seed,
        },
        "duration_s": duration_s,
        "requests_total": n_requests,
        "requests_per_s": n_requests / duration_s if duration_s else 0.0,
        "blocks_per_s": n_requests / duration_s if duration_s else 0.0,
        "errors": sum(w.errors for w in workers),
        "payload_mismatches": sum(w.mismatches for w in workers),
        "endpoints": {
            "write": {
                "count": len(writes),
                "p50_ms": _percentile_ms(writes, 0.50) if writes else 0.0,
                "p99_ms": _percentile_ms(writes, 0.99) if writes else 0.0,
            },
            "read": {
                "count": len(reads),
                "p50_ms": _percentile_ms(reads, 0.50) if reads else 0.0,
                "p99_ms": _percentile_ms(reads, 0.99) if reads else 0.0,
            },
        },
        "batching": metrics.get("batching", {}),
    }
