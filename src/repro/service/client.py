"""A small blocking client over ``http.client`` — stdlib only.

Used by the test suite, the load harness, and anyone scripting against
a local server.  Errors arrive as :class:`ServiceResponseError` carrying
the structured event code, so callers branch on ``exc.code`` exactly as
the in-process layers branch on :class:`~repro.service.codes.ServiceError`.
"""

from __future__ import annotations

import http.client
import json
import urllib.parse

__all__ = ["ServiceClient", "ServiceResponseError"]


class ServiceResponseError(Exception):
    """A non-2xx response; carries the catalog ``code`` and detail."""

    def __init__(self, status: int, payload: dict):
        code = payload.get("code", "E_INTERNAL")
        super().__init__(f"{status} {code}: {payload.get('message', '')}")
        self.status = status
        self.code = code
        self.payload = payload


class ServiceClient:
    """One keep-alive connection to a running service."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.scheme != "http":
            raise ValueError(f"only http:// URLs are supported, got {base_url!r}")
        self._conn = http.client.HTTPConnection(
            parsed.hostname or "127.0.0.1", parsed.port or 80, timeout=timeout
        )

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- transport -----------------------------------------------------
    def request(self, method: str, path: str, body: dict | None = None) -> dict:
        payload = None if body is None else json.dumps(body).encode()
        headers = {"Content-Type": "application/json"} if payload else {}
        try:
            self._conn.request(method, path, body=payload, headers=headers)
            response = self._conn.getresponse()
            raw = response.read()
        except (http.client.HTTPException, ConnectionError):
            # A dropped keep-alive connection: reconnect once and retry.
            self._conn.close()
            self._conn.request(method, path, body=payload, headers=headers)
            response = self._conn.getresponse()
            raw = response.read()
        data = json.loads(raw) if raw else {}
        if response.status >= 400:
            raise ServiceResponseError(response.status, data)
        return data

    # -- convenience wrappers ------------------------------------------
    def healthz(self) -> dict:
        return self.request("GET", "/healthz")

    def codes(self) -> dict:
        return self.request("GET", "/v1/codes")

    def metrics(self) -> dict:
        return self.request("GET", "/metrics")

    def create_device(self, **kwargs) -> dict:
        return self.request("POST", "/v1/devices", kwargs)

    def list_devices(self) -> dict:
        return self.request("GET", "/v1/devices")

    def describe_device(self, device_id: str) -> dict:
        return self.request("GET", f"/v1/devices/{device_id}")

    def delete_device(self, device_id: str) -> dict:
        return self.request("DELETE", f"/v1/devices/{device_id}")

    def advance_clock(self, device_id: str, *, advance: float | None = None,
                      advance_to: float | None = None) -> dict:
        body: dict = {}
        if advance is not None:
            body["advance"] = advance
        if advance_to is not None:
            body["advance_to"] = advance_to
        return self.request("POST", f"/v1/devices/{device_id}/clock", body)

    def digest(self, device_id: str) -> dict:
        return self.request("GET", f"/v1/devices/{device_id}/digest")

    def write_block(self, device_id: str, block: int, data_hex: str,
                    t: float | None = None) -> dict:
        body: dict = {"data": data_hex}
        if t is not None:
            body["t"] = t
        return self.request(
            "POST", f"/v1/devices/{device_id}/blocks/{block}/write", body
        )

    def read_block(self, device_id: str, block: int, t: float | None = None) -> dict:
        body = {} if t is None else {"t": t}
        return self.request(
            "POST", f"/v1/devices/{device_id}/blocks/{block}/read", body
        )

    def submit_job(self, kind: str, **params) -> dict:
        return self.request("POST", "/v1/jobs", {"kind": kind, "params": params})

    def get_job(self, job_id: str) -> dict:
        return self.request("GET", f"/v1/jobs/{job_id}")
