"""Feasibility constraints of the Section-5.1 state-mapping optimization.

The decision variables of an n-level design are the interior nominal
levels ``mu_2 .. mu_{n-1}`` (the extremes ``mu_1`` and ``mu_n`` are fixed
by process technology) and all ``n - 1`` thresholds ``tau_1 .. tau_{n-1}``.
Each threshold must clear the write windows of both neighbouring states by
the guard band delta:

    mu_i + 2.75 sigma + delta < tau_i < mu_{i+1} - 2.75 sigma - delta
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.cells.params import (
    GUARD_BAND_DELTA,
    SIGMA_R,
    WRITE_TRUNCATION_SIGMA,
)

__all__ = ["DesignSpace", "MARGIN"]

#: Minimum distance between a nominal level and an adjacent threshold.
MARGIN: float = WRITE_TRUNCATION_SIGMA * SIGMA_R + GUARD_BAND_DELTA


@dataclasses.dataclass(frozen=True)
class DesignSpace:
    """Parameter space of an n-level mapping optimization.

    ``x`` packs the free variables as
    ``[mu_2, .., mu_{n-1}, tau_1, .., tau_{n-1}]``.
    """

    n_levels: int
    mu_lo: float = 3.0  # fully crystalline, fixed by process
    mu_hi: float = 6.0  # fully amorphous, fixed by process
    margin: float = MARGIN

    def __post_init__(self) -> None:
        if self.n_levels < 2:
            raise ValueError("need at least two levels")
        span_needed = (self.n_levels - 1) * 2 * self.margin
        if self.mu_hi - self.mu_lo < span_needed:
            raise ValueError(
                f"{self.n_levels} levels do not fit in "
                f"[{self.mu_lo}, {self.mu_hi}] with margin {self.margin:.3f}"
            )

    @property
    def n_free_mu(self) -> int:
        return self.n_levels - 2

    @property
    def n_free(self) -> int:
        return self.n_free_mu + (self.n_levels - 1)

    def unpack(self, x: np.ndarray) -> tuple[list[float], list[float]]:
        """Split a parameter vector into (all nominal levels, thresholds)."""
        x = np.asarray(x, dtype=float)
        if x.shape != (self.n_free,):
            raise ValueError(f"expected {self.n_free} parameters, got {x.shape}")
        mus = [self.mu_lo, *x[: self.n_free_mu].tolist(), self.mu_hi]
        taus = x[self.n_free_mu :].tolist()
        return mus, taus

    def pack(self, mus: list[float], taus: list[float]) -> np.ndarray:
        if len(mus) != self.n_levels or len(taus) != self.n_levels - 1:
            raise ValueError("wrong number of levels/thresholds")
        if mus[0] != self.mu_lo or mus[-1] != self.mu_hi:
            raise ValueError("end levels are fixed by the design space")
        return np.asarray(mus[1:-1] + taus, dtype=float)

    def constraint_values(self, x: np.ndarray) -> np.ndarray:
        """Slack of every inequality constraint (all must be > 0).

        Two constraints per threshold:
          tau_i - mu_i - margin  and  mu_{i+1} - tau_i - margin.
        """
        mus, taus = self.unpack(x)
        vals = []
        for i, tau in enumerate(taus):
            vals.append(tau - mus[i] - self.margin)
            vals.append(mus[i + 1] - tau - self.margin)
        return np.asarray(vals)

    def is_feasible(self, x: np.ndarray, tol: float = -1e-12) -> bool:
        return bool(np.all(self.constraint_values(x) >= tol))

    def naive_start(self) -> np.ndarray:
        """Evenly spaced levels with midpoint thresholds (the naive mapping)."""
        mus = np.linspace(self.mu_lo, self.mu_hi, self.n_levels)
        taus = (mus[:-1] + mus[1:]) / 2.0
        return self.pack(mus.tolist(), taus.tolist())

    def bounds(self) -> list[tuple[float, float]]:
        """Loose box bounds for the free variables."""
        lo, hi = self.mu_lo, self.mu_hi
        mu_bounds = [(lo + self.margin, hi - self.margin)] * self.n_free_mu
        tau_bounds = [(lo + self.margin, hi - self.margin)] * (self.n_levels - 1)
        return mu_bounds + tau_bounds
