"""Optimal state-mapping search under the Section-5.1 margin constraints (Figures 6/7)."""
