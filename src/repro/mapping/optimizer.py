"""Optimal state mapping (Section 5.1, Figures 6 and 7).

Minimizes the drift cell-error rate over the interior nominal levels and
all thresholds, subject to the write-window margin constraints.  The paper
evaluates the objective at ``t = 2**15 s`` with a 1e6-cell Monte Carlo; we
use the semi-analytic CER (exact lr0 tail + quadrature), which is smooth,
deterministic, and resolves the deep tails that a 1e6-sample MC cannot —
the optimized 3LC designs sit far below 1e-6 at the paper's evaluation
time, where a sampled objective is exactly zero over a wide region.  (For
that reason the canonical 3LCo adds later evaluation times to the
objective; see ``repro.core.designs``.)

Structure exploited: drift only *increases* resistance, so raising a
threshold ``tau_i`` widens state ``i``'s drift margin at no cost to state
``i+1``.  The optimal thresholds are therefore pinned at
``mu_{i+1} - margin``, and the search space reduces to the interior
nominal levels.  (The paper's Figure 6 optimum has exactly this pinned
structure.)  The reduced objective is optimized by a coarse feasible grid
scan followed by a Nelder-Mead polish.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Sequence

import numpy as np
from scipy import optimize

from repro.cells.drift import PAPER_ESCALATION, TieredDrift
from repro.core.levels import LevelDesign
from repro.mapping.constraints import DesignSpace
from repro.montecarlo.analytic import analytic_design_cer, analytic_design_cer_batch

__all__ = [
    "MappingResult",
    "optimize_mapping",
    "design_from_vector",
    "design_from_interior_mus",
]

#: The paper's objective evaluation time (Section 5.1): t = 2**15 s.
DEFAULT_EVAL_TIME_S: float = float(2**15)

#: CER floor added before taking log10, to keep the objective finite in
#: regions where the analytic CER underflows.
_CER_FLOOR: float = 1e-300


def design_from_vector(
    space: DesignSpace,
    x: np.ndarray,
    name: str = "candidate",
    state_names: Sequence[str] | None = None,
    occupancy: Sequence[float] | None = None,
) -> LevelDesign:
    """Instantiate a :class:`LevelDesign` from a full parameter vector."""
    mus, taus = space.unpack(np.asarray(x, dtype=float))
    if state_names is None:
        state_names = [f"S{i + 1}" for i in range(space.n_levels)]
    return LevelDesign.from_levels(
        name, list(state_names), mus, thresholds=taus, occupancy=occupancy
    )


def design_from_interior_mus(
    space: DesignSpace,
    interior: Sequence[float],
    name: str = "candidate",
    occupancy: Sequence[float] | None = None,
) -> LevelDesign:
    """Design with thresholds pinned at ``mu_{i+1} - margin``."""
    mus = [space.mu_lo, *[float(m) for m in interior], space.mu_hi]
    taus = [mus[i + 1] - space.margin for i in range(space.n_levels - 1)]
    x = space.pack(mus, taus)
    return design_from_vector(space, x, name=name, occupancy=occupancy)


@dataclasses.dataclass(frozen=True)
class MappingResult:
    """Outcome of a mapping optimization.

    ``mc_cer_at_eval`` is the Monte Carlo confirmation of the analytic
    objective at the winning design (``None`` unless requested via
    ``mc_confirm_samples``).
    """

    design: LevelDesign
    cer_at_eval: float
    eval_times_s: tuple[float, ...]
    start_cer: float
    n_evaluations: int
    mc_cer_at_eval: float | None = None

    @property
    def improvement(self) -> float:
        """Factor by which the optimization reduced the CER (>= 1)."""
        if self.cer_at_eval == 0.0:
            return np.inf
        return self.start_cer / self.cer_at_eval


def _feasible_interior(space: DesignSpace, interior: np.ndarray) -> bool:
    mus = [space.mu_lo, *interior.tolist(), space.mu_hi]
    return all(b - a >= 2 * space.margin - 1e-12 for a, b in zip(mus[:-1], mus[1:]))


def _clip_interior(space: DesignSpace, interior: np.ndarray) -> np.ndarray:
    """Project interior levels into the feasible ordered box."""
    out = np.asarray(interior, dtype=float).copy()
    prev = space.mu_lo
    for i in range(out.size):
        lo = prev + 2 * space.margin
        hi = space.mu_hi - 2 * space.margin * (out.size - i)
        out[i] = min(max(out[i], lo), hi)
        prev = out[i]
    return out


def optimize_mapping(
    n_levels: int,
    eval_time_s: float | Sequence[float] = DEFAULT_EVAL_TIME_S,
    occupancy: Sequence[float] | None = None,
    schedule: TieredDrift = PAPER_ESCALATION,
    space: DesignSpace | None = None,
    grid_points_per_dim: int = 24,
    coarse_z_points: int = 301,
    polish_z_points: int = 801,
    name: str | None = None,
    mc_confirm_samples: int = 0,
    mc_seed: int = 0,
    mc_jobs: int | None = 1,
    mc_cache=None,
) -> MappingResult:
    """Find the CER-minimizing state mapping for an ``n_levels`` cell.

    Deterministic: coarse feasible-grid scan of the interior nominal
    levels (thresholds pinned at ``mu_next - margin``), then a Nelder-Mead
    polish at higher quadrature resolution.

    ``mc_confirm_samples > 0`` additionally runs the winning design
    through the (parallel, cached) Monte Carlo engine at the evaluation
    times — the paper's own 1e6-cell methodology — and reports the result
    as ``mc_cer_at_eval``; ``mc_jobs``/``mc_cache`` are forwarded to
    :func:`repro.montecarlo.cer.design_cer`.
    """
    space = space or DesignSpace(n_levels=n_levels)
    times = np.atleast_1d(np.asarray(eval_time_s, dtype=float))
    counter = [0]

    def objective(interior: np.ndarray, z_points: int) -> float:
        counter[0] += 1
        clipped = _clip_interior(space, interior)
        # Quadratic penalty keeps the polish inside the feasible box.
        penalty = float(np.sum((np.asarray(interior) - clipped) ** 2)) * 1e4
        design = design_from_interior_mus(space, clipped, occupancy=occupancy)
        cer = analytic_design_cer(design, times, schedule=schedule, z_points=z_points)
        return float(np.log10(np.sum(cer) + _CER_FLOOR)) + penalty

    n_int = space.n_free_mu
    lo = space.mu_lo + 2 * space.margin
    hi = space.mu_hi - 2 * space.margin

    if n_int == 0:
        best = np.zeros(0)
    else:
        # Keep the total grid size bounded for many-level cells.
        per_dim = max(4, int(round(grid_points_per_dim ** (1.0 / n_int))))
        if n_int == 1:
            per_dim = grid_points_per_dim
        elif n_int == 2:
            per_dim = max(8, grid_points_per_dim // 2)
        axes = [np.linspace(lo, hi, per_dim)] * n_int
        # Candidate-axis batch: every feasible grid point becomes one row
        # set in a single analytic_design_cer_batch evaluation (candidates
        # share most of their (state, tau) rows, so the whole scan costs a
        # few broadcasted contractions instead of one quadrature per point).
        cands = [
            cand
            for cand in (np.asarray(pt) for pt in itertools.product(*axes))
            if _feasible_interior(space, cand)
        ]
        assert cands
        grid_designs = [
            design_from_interior_mus(
                space, _clip_interior(space, cand), occupancy=occupancy
            )
            for cand in cands
        ]
        grid_cer = analytic_design_cer_batch(
            grid_designs, times, schedule=schedule, z_points=coarse_z_points
        )
        counter[0] += len(cands)
        # Grid candidates are feasible, so the clip penalty vanishes and
        # the objective reduces to log10 of the summed CER (+ floor).
        fvals = np.log10(grid_cer.sum(axis=1) + _CER_FLOOR)
        best = cands[int(np.argmin(fvals))]
        res = optimize.minimize(
            objective,
            best,
            args=(polish_z_points,),
            method="Nelder-Mead",
            options={"xatol": 1e-4, "fatol": 1e-6, "maxiter": 400},
        )
        best = _clip_interior(space, res.x)

    label = name or f"{n_levels}LCo"
    design = design_from_interior_mus(space, best, name=label, occupancy=occupancy)
    cer = float(
        np.sum(analytic_design_cer(design, times, schedule=schedule, z_points=polish_z_points))
    )

    # Reference: the naive evenly-spaced mapping with midpoint thresholds.
    naive = design_from_vector(space, space.naive_start(), occupancy=occupancy)
    start_cer = float(
        np.sum(analytic_design_cer(naive, times, schedule=schedule, z_points=polish_z_points))
    )

    mc_cer = None
    if mc_confirm_samples:
        from repro.montecarlo.cer import design_cer

        mc = design_cer(
            design,
            times,
            mc_confirm_samples,
            seed=mc_seed,
            schedule=schedule,
            jobs=mc_jobs,
            cache=mc_cache,
        )
        mc_cer = float(np.sum(mc.cer))

    return MappingResult(
        design=design,
        cer_at_eval=cer,
        eval_times_s=tuple(float(t) for t in times),
        start_cer=start_cer,
        n_evaluations=counter[0],
        mc_cer_at_eval=mc_cer,
    )
