"""Vectorized functional model of an array of PCM cells.

Supports the full write / drift / sense / wearout lifecycle used by the
device model (:mod:`repro.core.device`):

- **program**: iterative write-and-verify draws the initial log-resistance
  from the truncated write distribution and a per-cell drift exponent;
  wear is charged and stuck cells are reported (they ignore the write).
- **sense** at time ``t``: drifted log-resistance (with the paper's tier
  escalation, fresh exponents pre-drawn at program time so sensing is
  deterministic) thresholded by the active :class:`LevelDesign`.
- **force_highest**: RESET-to-S4 used to mark INV pairs; stuck-set cells
  go through reverse-current revival.

Times are absolute seconds; each cell remembers when it was programmed.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.cells.drift import PAPER_ESCALATION, TieredDrift
from repro.cells.faults import FaultMode, WearoutModel
from repro.cells.params import T0_SECONDS, WRITE_TRUNCATION_SIGMA
from repro.core.levels import LevelDesign
from repro.montecarlo.rng import make_rng, truncated_normal

__all__ = [
    "CellArray",
    "cell_state_digest",
    "drifted_log_resistance",
    "programmed_alpha",
    "programmed_log_resistance",
]


def programmed_log_resistance(
    mu: np.ndarray, sigma: np.ndarray, z: np.ndarray
) -> np.ndarray:
    """Initial log-resistance of a programmed cell: ``mu + sigma * z``.

    ``mu``/``sigma`` are the per-cell write-distribution parameters
    (already gathered by target state), ``z`` the truncated-normal
    quantile drawn from the cell's physics stream.  Both the per-device
    scalar engine and the structure-of-arrays fleet engine evaluate this
    one expression, which is what keeps them bit-identical.
    """
    return mu + sigma * z


def programmed_alpha(
    mu: np.ndarray, sigma: np.ndarray, z: np.ndarray
) -> np.ndarray:
    """Per-cell drift exponent: ``max(mu + sigma * z, 0)`` (gathered params)."""
    return np.maximum(mu + sigma * z, 0.0)


def drifted_log_resistance(
    lr0: np.ndarray,
    alpha: np.ndarray,
    alpha_esc: np.ndarray,
    L: np.ndarray | float,
    lr_break: float,
) -> np.ndarray:
    """Drift law with one-tier escalation, in the log10 domain.

    ``L = log10(dt / t0)`` may be per-cell or a scalar broadcast over the
    cells (a block programmed in one shot shares its program time).
    Cells that drift across ``lr_break`` continue at their pre-drawn
    escalated exponent from the crossing point on; fault pinning is the
    caller's business.
    """
    lr = lr0 + alpha * L
    started_below = lr0 < lr_break
    crossed = started_below & (lr > lr_break)
    if np.any(crossed):
        with np.errstate(divide="ignore", invalid="ignore"):
            L_cross = np.where(
                crossed & (alpha > 0), (lr_break - lr0) / alpha, np.inf
            )
        esc = lr_break + alpha_esc * np.maximum(L - L_cross, 0.0)
        lr = np.where(crossed & np.isfinite(L_cross), esc, lr)
    return lr


def cell_state_digest(
    lr0: np.ndarray,
    alpha: np.ndarray,
    alpha_esc: np.ndarray,
    t_prog: np.ndarray,
    target: np.ndarray,
    writes: np.ndarray,
    endurance: np.ndarray,
    fault: np.ndarray,
    pending_mode: np.ndarray,
) -> str:
    """Canonical SHA-256 over a cell population's full state.

    The field order is frozen; any engine that lays the same cells out
    differently (object-per-device vs structure-of-arrays) hashes the
    same bytes and must produce the same digest.
    """
    h = hashlib.sha256()
    for arr in (
        lr0,
        alpha,
        alpha_esc,
        t_prog,
        target,
        writes,
        endurance,
        fault,
        pending_mode,
    ):
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


class CellArray:
    """An array of ``n`` PCM cells under a fixed level design."""

    def __init__(
        self,
        n: int,
        design: LevelDesign,
        rng: int | np.random.Generator = 0,
        wearout: WearoutModel | None = None,
        schedule: TieredDrift = PAPER_ESCALATION,
    ) -> None:
        if n < 1:
            raise ValueError("need at least one cell")
        self.n = n
        self.design = design
        self.schedule = schedule
        self.rng = make_rng(rng)
        self.wearout = wearout or WearoutModel()

        self._lr0 = np.full(n, design.states[0].mu_lr)
        self._alpha = np.zeros(n)
        self._alpha_esc = np.zeros(n)  # exponent after tier escalation
        self._t_prog = np.zeros(n)  # absolute program time (s)
        self._target = np.zeros(n, dtype=np.int64)

        self._writes = np.zeros(n, dtype=np.int64)
        self._endurance = self.wearout.sample_endurance(self.rng, n)
        self._fault = np.full(n, FaultMode.HEALTHY.value, dtype=np.int8)
        self._pending_mode = self.wearout.sample_modes(self.rng, n)

        if len(schedule.tiers) > 1:
            raise ValueError("CellArray supports at most one escalation tier")

    # ------------------------------------------------------------------
    @property
    def fault_modes(self) -> np.ndarray:
        return self._fault.copy()

    @property
    def write_counts(self) -> np.ndarray:
        return self._writes.copy()

    def stuck_mask(self) -> np.ndarray:
        return self._fault != FaultMode.HEALTHY.value

    def total_writes(self) -> int:
        """Total cell programs charged so far (wear, across all cells)."""
        return int(self._writes.sum())

    def state_digest(self) -> str:
        """SHA-256 over the full per-cell state, for differential checks.

        Two arrays that executed bit-identical program/force sequences
        (regardless of how callers batched the surrounding codec work)
        must produce equal digests.
        """
        return cell_state_digest(
            self._lr0,
            self._alpha,
            self._alpha_esc,
            self._t_prog,
            self._target,
            self._writes,
            self._endurance,
            self._fault,
            self._pending_mode,
        )

    # ------------------------------------------------------------------
    def program(
        self, indices: np.ndarray, states: np.ndarray, t_now: float
    ) -> np.ndarray:
        """Write ``states`` into cells ``indices`` at absolute time ``t_now``.

        Returns the verify-success mask: stuck cells fail verification
        unless the target happens to match their stuck value.  Wear is
        charged to every addressed cell; cells whose budget runs out
        during this write become stuck *before* it takes effect
        (write-and-verify then reports them).
        """
        idx = np.asarray(indices, dtype=np.int64)
        st = np.asarray(states, dtype=np.int64)
        if idx.shape != st.shape:
            raise ValueError("indices and states must have matching shapes")
        if np.any((st < 0) | (st >= self.design.n_levels)):
            raise ValueError("state index out of range for the level design")

        self._writes[idx] += 1
        newly_dead = (self._writes[idx] >= self._endurance[idx]) & (
            self._fault[idx] == FaultMode.HEALTHY.value
        )
        if np.any(newly_dead):
            dead = idx[newly_dead]
            self._fault[dead] = self._pending_mode[dead]

        healthy = self._fault[idx] == FaultMode.HEALTHY.value
        ok_idx = idx[healthy]
        ok_st = st[healthy]
        if ok_idx.size:
            mus = np.array([s.mu_lr for s in self.design.states])
            sgs = np.array([s.sigma_lr for s in self.design.states])
            z_r = truncated_normal(
                self.rng, 0.0, 1.0, -WRITE_TRUNCATION_SIGMA, WRITE_TRUNCATION_SIGMA,
                ok_idx.size,
            )
            self._lr0[ok_idx] = programmed_log_resistance(mus[ok_st], sgs[ok_st], z_r)
            mu_a = np.array([s.drift.mu_alpha for s in self.design.states])
            sg_a = np.array([s.drift.sigma_alpha for s in self.design.states])
            # Per-cell exponent: one standard draw scaled by the cell's
            # state parameters, clipped at zero.
            z = self.rng.standard_normal(ok_idx.size)
            alpha = programmed_alpha(mu_a[ok_st], sg_a[ok_st], z)
            self._alpha[ok_idx] = alpha
            if self.schedule.tiers:
                if self.schedule.mode == "offset":
                    raise ValueError(
                        "offset escalation is not supported by CellArray "
                        "(per-cell state mix makes mu_orig ambiguous)"
                    )
                tier = self.schedule.tiers[0]
                fresh = self.rng.standard_normal(ok_idx.size)
                self._alpha_esc[ok_idx] = self.schedule.escalated_alpha(
                    tier, alpha, z, 0.0, z_fresh=fresh
                )
            self._t_prog[ok_idx] = t_now
            self._target[ok_idx] = ok_st

        verify_ok = healthy.copy()
        # A stuck-reset cell passes verify iff the target is the top state.
        stuck_reset = self._fault[idx] == FaultMode.STUCK_RESET.value
        verify_ok |= stuck_reset & (st == self.design.n_levels - 1)
        return verify_ok

    def force_highest(self, indices: np.ndarray, t_now: float) -> np.ndarray:
        """RESET cells to the top state (used to mark INV pairs).

        Stuck-set cells get a reverse-current revival attempt; on success
        they become permanently stuck at the top state.  Returns the mask
        of cells now reading as the top state.
        """
        idx = np.asarray(indices, dtype=np.int64)
        top = self.design.n_levels - 1

        stuck_set = self._fault[idx] == FaultMode.STUCK_SET.value
        if np.any(stuck_set):
            revived = self.wearout.revive(self.rng, int(stuck_set.sum()))
            tgt = idx[stuck_set][revived]
            self._fault[tgt] = FaultMode.STUCK_RESET.value
        stuck_reset = self._fault[idx] == FaultMode.STUCK_RESET.value
        healthy = self._fault[idx] == FaultMode.HEALTHY.value
        h_idx = idx[healthy]
        if h_idx.size:
            self.program(h_idx, np.full(h_idx.size, top), t_now)
        return healthy | stuck_reset

    # ------------------------------------------------------------------
    def log_resistance(self, t_now: float, indices: np.ndarray | None = None) -> np.ndarray:
        """Drifted log10 resistance at absolute time ``t_now``."""
        idx = (
            np.arange(self.n) if indices is None else np.asarray(indices, dtype=np.int64)
        )
        dt = np.maximum(t_now - self._t_prog[idx], 0.0) + T0_SECONDS
        L = np.log10(dt / T0_SECONDS)
        lr0 = self._lr0[idx]
        alpha = self._alpha[idx]
        if self.schedule.tiers:
            lr = drifted_log_resistance(
                lr0, alpha, self._alpha_esc[idx], L, self.schedule.tiers[0].lr_break
            )
        else:
            lr = lr0 + alpha * L
        # Stuck cells pin their resistance.
        top_lr = self.design.states[-1].mu_lr
        bot_lr = self.design.states[0].mu_lr
        fault = self._fault[idx]
        lr = np.where(fault == FaultMode.STUCK_RESET.value, top_lr, lr)
        lr = np.where(fault == FaultMode.STUCK_SET.value, bot_lr, lr)
        return lr

    def sense(
        self,
        t_now: float,
        indices: np.ndarray | None = None,
        noise_sigma: float = 0.0,
    ) -> np.ndarray:
        """Sensed state indices at absolute time ``t_now``.

        ``noise_sigma`` adds Gaussian sense-amplifier noise (in decades)
        to the measured log-resistance — the disturbance the Section-5.1
        guard band ``delta`` exists to absorb.
        """
        lr = self.log_resistance(t_now, indices)
        if noise_sigma > 0.0:
            lr = lr + self.rng.normal(0.0, noise_sigma, lr.shape)
        return self.design.sense(lr)
