"""Physical PCM cell parameters (Table 1 of the paper).

The paper models a written MLC-PCM cell's resistance as lognormal: the
log10-resistance is normally distributed around a nominal value ``mu_R``
with standard deviation ``sigma_R``, truncated to ``+/- 2.75 sigma_R`` by
the iterative write-and-verify loop.  The drift exponent ``alpha`` in

    R(t) = R0 * (t / t0) ** alpha

is itself a per-cell random variable with mean ``mu_alpha`` and standard
deviation ``sigma_alpha = 0.4 * mu_alpha``, both growing with the state's
nominal resistance.

All resistances in this package are handled in the log10 domain ("lr" =
``log10(R / 1 Ohm)``) because both the write distribution and the drift law
are linear there.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

__all__ = [
    "DriftParams",
    "StateParams",
    "TABLE1",
    "SIGMA_R",
    "WRITE_TRUNCATION_SIGMA",
    "SIGMA_ALPHA_RATIO",
    "T0_SECONDS",
    "GUARD_BAND_DELTA",
    "state_params_for_levels",
    "alpha_params_for_level",
]

#: Std. deviation of log10-resistance of a written cell (Table 1: 1/6 decade).
SIGMA_R: float = 1.0 / 6.0

#: Write-and-verify acceptance window: a write is accepted iff the sensed
#: log-resistance lies within this many sigmas of the nominal value.
WRITE_TRUNCATION_SIGMA: float = 2.75

#: ``sigma_alpha = SIGMA_ALPHA_RATIO * mu_alpha`` (Table 1: 0.4 x mu_alpha).
SIGMA_ALPHA_RATIO: float = 0.4

#: Read-after-write reference time t0 in the drift law, in seconds.  The
#: paper's Figure 3 time axis starts at 2 s and spans powers of 2**5, which
#: is consistent with a 1 s sensing reference.
T0_SECONDS: float = 1.0

#: Guard band between a threshold and a distribution tail, in units of
#: sigma_R (Section 5.1: "a very small delta (0.05 sigma)").
GUARD_BAND_DELTA: float = 0.05 * SIGMA_R


@dataclasses.dataclass(frozen=True)
class DriftParams:
    """Per-state drift-exponent distribution parameters."""

    mu_alpha: float
    sigma_alpha: float

    def __post_init__(self) -> None:
        if self.mu_alpha < 0:
            raise ValueError(f"mu_alpha must be >= 0, got {self.mu_alpha}")
        if self.sigma_alpha < 0:
            raise ValueError(f"sigma_alpha must be >= 0, got {self.sigma_alpha}")


@dataclasses.dataclass(frozen=True)
class StateParams:
    """Write + drift parameters of one programmed cell state."""

    name: str
    mu_lr: float  # nominal log10 resistance
    sigma_lr: float
    drift: DriftParams

    @property
    def write_window(self) -> tuple[float, float]:
        """Accepted log10-resistance interval after write-and-verify."""
        half = WRITE_TRUNCATION_SIGMA * self.sigma_lr
        return (self.mu_lr - half, self.mu_lr + half)


def _mk_state(name: str, mu_lr: float, mu_alpha: float) -> StateParams:
    return StateParams(
        name=name,
        mu_lr=mu_lr,
        sigma_lr=SIGMA_R,
        drift=DriftParams(mu_alpha=mu_alpha, sigma_alpha=SIGMA_ALPHA_RATIO * mu_alpha),
    )


#: Table 1 of the paper: nominal log10 resistance and drift-rate parameters
#: of the four cell states of a conventional four-level cell.
TABLE1: dict[str, StateParams] = {
    "S1": _mk_state("S1", 3.0, 0.001),
    "S2": _mk_state("S2", 4.0, 0.02),
    "S3": _mk_state("S3", 5.0, 0.06),
    "S4": _mk_state("S4", 6.0, 0.1),
}

#: Piecewise-constant map from nominal log-resistance to drift parameters,
#: used to assign drift rates to *re-mapped* nominal levels (4LCo shifts S2
#: and S3; the drift physics follows the resistance a cell actually sits at).
_ALPHA_BREAKPOINTS: tuple[float, ...] = (3.5, 4.5, 5.5)
_ALPHA_TIERS: tuple[float, ...] = (0.001, 0.02, 0.06, 0.1)


def alpha_params_for_level(mu_lr: float) -> DriftParams:
    """Drift-exponent parameters for a cell whose log10 resistance is ``mu_lr``.

    The paper's Table 1 gives drift rates at the four naive nominal levels
    (3, 4, 5, 6).  Following the paper's own conservative treatment (Section
    5.3 applies S3's drift rate to an S2 cell once it crosses the original
    tau2 = 4.5), we treat the drift rate as a piecewise-constant function of
    log-resistance with breakpoints at the naive thresholds.
    """
    idx = int(np.searchsorted(_ALPHA_BREAKPOINTS, mu_lr, side="right"))
    mu_a = _ALPHA_TIERS[idx]
    return DriftParams(mu_alpha=mu_a, sigma_alpha=SIGMA_ALPHA_RATIO * mu_a)


def state_params_for_levels(
    names: Sequence[str],
    mu_lrs: Sequence[float],
    sigma_lr: float = SIGMA_R,
) -> list[StateParams]:
    """Build :class:`StateParams` for arbitrary nominal levels.

    Drift-rate parameters are looked up from the piecewise tier map, so that
    a remapped state inherits the drift behaviour of the resistance range it
    physically occupies.  ``sigma_lr`` overrides the write spread — the
    Section-8 lever ("reducing the variability of the log-resistance of
    written cells") explored by the margins/n-level ablations.
    """
    if len(names) != len(mu_lrs):
        raise ValueError("names and mu_lrs must have equal length")
    if sigma_lr <= 0:
        raise ValueError("sigma_lr must be positive")
    out: list[StateParams] = []
    for name, mu in zip(names, mu_lrs):
        drift = alpha_params_for_level(mu)
        out.append(
            StateParams(name=name, mu_lr=float(mu), sigma_lr=sigma_lr, drift=drift)
        )
    return out
