"""Iterative program-and-verify modeling (Nirschl et al. [23]).

MLC-PCM reaches its tight resistance distributions by *iterating*: a
staircase of partial-SET/RESET pulses, each followed by a verify read,
until the cell lands inside the acceptance window.  The paper leans on
this in three places:

- the ±2.75 sigma truncation of the write distribution *is* the verify
  window (Section 2.2);
- MLC's ~1 us write latency and 1e5-cycle endurance both come from the
  iteration count (Section 6.4: "iterative write-after-verify will
  increase variation among cells");
- Section 8's density lever — "reducing the variability of the
  log-resistance of written cells" — costs more iterations.

:class:`IterativeWriteModel` makes that trade quantitative: each pulse
lands lognormally around the target with per-pulse spread
``sigma_pulse``; the loop accepts within ``accept_sigma`` of the target.
Tightening the *effective* write sigma (the acceptance window) raises
the expected pulse count, the write latency, and the wear per write.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.cells.params import SIGMA_R, WRITE_TRUNCATION_SIGMA
from repro.montecarlo.rng import make_rng

__all__ = ["IterativeWriteModel", "WriteOutcome"]


@dataclasses.dataclass(frozen=True)
class WriteOutcome:
    """Result of programming a batch of cells."""

    lr: np.ndarray  # achieved log10 resistance
    pulses: np.ndarray  # pulses consumed per cell
    failed: np.ndarray  # cells that hit max_pulses without converging

    @property
    def mean_pulses(self) -> float:
        return float(np.mean(self.pulses))

    def latency_ns(self, pulse_ns: float) -> np.ndarray:
        """Per-cell write latency (pulse + verify per iteration)."""
        return self.pulses * pulse_ns


@dataclasses.dataclass(frozen=True)
class IterativeWriteModel:
    """Program-and-verify loop with a per-pulse placement spread.

    ``sigma_pulse`` is the log-resistance spread of a *single* pulse
    (process + programming noise); the verify loop accepts a placement
    within ``accept_sigma * sigma_accept`` of the target.  The achieved
    distribution is the single-pulse Gaussian truncated to the window —
    exactly the model the CER engines assume, with
    ``sigma_accept = SIGMA_R`` recovering Table 1.
    """

    sigma_pulse: float = SIGMA_R
    sigma_accept: float = SIGMA_R
    accept_sigma: float = WRITE_TRUNCATION_SIGMA
    max_pulses: int = 64

    def __post_init__(self) -> None:
        if self.sigma_pulse <= 0 or self.sigma_accept <= 0:
            raise ValueError("spreads must be positive")
        if self.max_pulses < 1:
            raise ValueError("need at least one pulse")

    @property
    def window_half_width(self) -> float:
        return self.accept_sigma * self.sigma_accept

    @property
    def accept_probability(self) -> float:
        """Per-pulse probability of landing inside the window."""
        from scipy.special import ndtr

        z = self.window_half_width / self.sigma_pulse
        return float(2 * ndtr(z) - 1)

    @property
    def expected_pulses(self) -> float:
        """Geometric mean pulse count (ignoring the max_pulses cap)."""
        return 1.0 / self.accept_probability

    def program(
        self,
        target_lr: np.ndarray | float,
        n: int | None = None,
        rng: int | np.random.Generator = 0,
    ) -> WriteOutcome:
        """Program cells toward ``target_lr``; vectorized rejection loop."""
        rng = make_rng(rng)
        target = np.atleast_1d(np.asarray(target_lr, dtype=float))
        if n is not None:
            if target.size != 1:
                raise ValueError("n only valid with a scalar target")
            target = np.full(n, float(target[0]))
        lr = rng.normal(target, self.sigma_pulse)
        pulses = np.ones(target.shape, dtype=np.int64)
        pending = np.abs(lr - target) > self.window_half_width
        while np.any(pending) and int(pulses.max()) < self.max_pulses:
            idx = np.nonzero(pending)[0]
            lr[idx] = rng.normal(target[idx], self.sigma_pulse)
            pulses[idx] += 1
            pending[idx] = np.abs(lr[idx] - target[idx]) > self.window_half_width
        failed = pending.copy()
        lr = np.where(
            failed,
            np.clip(
                lr,
                target - self.window_half_width,
                target + self.window_half_width,
            ),
            lr,
        )
        return WriteOutcome(lr=lr, pulses=pulses, failed=failed)

    def tightened(self, sigma_scale: float) -> "IterativeWriteModel":
        """The Section-8 lever: a tighter acceptance window (same pulses).

        Returns a model whose *effective* write sigma is
        ``sigma_scale * sigma_accept``; expected pulse count rises as the
        window narrows.
        """
        if not 0 < sigma_scale <= 1:
            raise ValueError("sigma_scale must be in (0, 1]")
        return IterativeWriteModel(
            sigma_pulse=self.sigma_pulse,
            sigma_accept=self.sigma_accept * sigma_scale,
            accept_sigma=self.accept_sigma,
            max_pulses=self.max_pulses,
        )
