"""PCM cell physics: Table-1 parameters, drift, programming, wearout, sensing."""
