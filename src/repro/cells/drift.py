"""Resistance drift law (Equation 1) and tier escalation (Section 5.3).

Everything works in the log10 domain, where drift is linear in
``L = log10(t / t0)``:

    lr(t) = lr0 + alpha * log10(t / t0)

The paper's conservative two-phase model for the 3LC design escalates the
drift exponent when a drifting cell's resistance crosses 10**4.5 Ohm (the
original tau2 of the naive 4LC): past that point the cell drifts "using
S3's drift rate parameters" (mu_alpha = 0.06).  The paper does not say how
the escalated exponent relates to the cell's original draw; we support
four readings (see :class:`TieredDrift`), defaulting to an independent
fresh draw — the only reading under which the paper's 3LC retention
claims (10-year nonvolatility with BCH-1) are reproduced; the alternatives
are exposed for the ablation benchmarks.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.cells.params import SIGMA_ALPHA_RATIO, T0_SECONDS

__all__ = [
    "drifted_lr",
    "crossing_time",
    "independent_escalated_alpha",
    "DriftTier",
    "TieredDrift",
    "PAPER_ESCALATION",
    "NO_ESCALATION",
    "escalation_schedule",
    "ESCALATION_MODES",
]


def independent_escalated_alpha(
    z_fresh: np.ndarray,
    mu_alpha: np.ndarray | float,
    sigma_alpha: np.ndarray | float,
) -> np.ndarray:
    """``mode="independent"`` escalation exponent: a fresh draw, >= 0.

    The expression both cell engines share: scalar callers
    (:meth:`TieredDrift.escalated_alpha`) pass the tier's parameters as
    floats, the structure-of-arrays fleet engine passes per-device
    parameter columns — either way the arithmetic (and therefore every
    bit of the result) is identical.
    """
    a = mu_alpha + np.asarray(z_fresh) * sigma_alpha
    return np.maximum(a, 0.0)

ESCALATION_MODES = ("independent", "correlated", "mean", "offset")


def drifted_lr(
    lr0: np.ndarray, alpha: np.ndarray, t: float, t0: float = T0_SECONDS
) -> np.ndarray:
    """Log10 resistance after drifting for ``t`` seconds (single phase)."""
    if t < t0:
        raise ValueError(f"t={t} must be >= t0={t0}")
    return np.asarray(lr0) + np.asarray(alpha) * np.log10(t / t0)


def crossing_time(
    lr0: np.ndarray, alpha: np.ndarray, tau: float, t0: float = T0_SECONDS
) -> np.ndarray:
    """Time at which ``lr(t)`` first reaches ``tau`` (``inf`` if never).

    Cells already at or above ``tau`` cross at ``t0``; cells with
    ``alpha <= 0`` never cross.
    """
    lr0 = np.asarray(lr0, dtype=float)
    alpha = np.asarray(alpha, dtype=float)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        exponent = (tau - lr0) / alpha
        t = t0 * np.power(10.0, exponent)
    t = np.where(lr0 >= tau, t0, t)
    t = np.where((alpha <= 0) & (lr0 < tau), np.inf, t)
    return t


@dataclasses.dataclass(frozen=True)
class DriftTier:
    """A drift-rate escalation point: a cell that drifts across
    ``lr_break`` continues with exponent distribution
    ``N(mu_alpha, sigma_alpha)`` (truncated at zero)."""

    lr_break: float
    mu_alpha: float
    sigma_alpha: float


@dataclasses.dataclass(frozen=True)
class TieredDrift:
    """Drift-rate escalation schedule.

    ``tiers`` must be sorted by ``lr_break``.  A cell *programmed* above a
    tier boundary is unaffected by it (its own exponent draw already
    reflects the tier it occupies, via the Table-1 tier map); only cells
    that *drift across* the boundary escalate.

    ``mode`` selects how the escalated exponent relates to the cell's
    original draw:

    - ``"independent"`` (default): a fresh draw from the tier's
      distribution, independent of the cell's phase-0 exponent.
    - ``"correlated"``: the cell keeps its standardized quantile ``z`` —
      a fast-drifting cell stays fast (most conservative).
    - ``"mean"``: the escalated exponent is exactly ``mu_alpha``.
    - ``"offset"``: ``alpha0 + (mu_tier - mu_orig)``.
    """

    tiers: tuple[DriftTier, ...]
    mode: str = "independent"

    def __post_init__(self) -> None:
        breaks = [t.lr_break for t in self.tiers]
        if sorted(breaks) != breaks:
            raise ValueError("tiers must be sorted by lr_break")
        if self.mode not in ESCALATION_MODES:
            raise ValueError(f"unknown escalation mode {self.mode!r}")

    def escalated_alpha(
        self,
        tier: DriftTier,
        alpha0: np.ndarray,
        z0: np.ndarray,
        mu_orig: float,
        z_fresh: np.ndarray | None = None,
    ) -> np.ndarray:
        """Exponent used above ``tier.lr_break`` (vectorized, >= 0).

        ``z_fresh`` supplies the independent standard-normal quantiles for
        ``mode="independent"`` (required in that mode).
        """
        alpha0 = np.asarray(alpha0, dtype=float)
        if self.mode == "independent":
            if z_fresh is None:
                raise ValueError("independent escalation requires z_fresh")
            return independent_escalated_alpha(z_fresh, tier.mu_alpha, tier.sigma_alpha)
        if self.mode == "correlated":
            a = tier.mu_alpha + np.asarray(z0) * tier.sigma_alpha
        elif self.mode == "mean":
            a = np.full_like(alpha0, tier.mu_alpha)
        else:  # offset
            a = alpha0 + (tier.mu_alpha - mu_orig)
        return np.maximum(a, 0.0)

    def tiers_between(self, lr_lo: float, lr_hi: float) -> list[DriftTier]:
        """Tier boundaries strictly inside ``(lr_lo, lr_hi)``."""
        return [t for t in self.tiers if lr_lo < t.lr_break < lr_hi]


def _sigma(mu: float) -> float:
    return SIGMA_ALPHA_RATIO * mu


#: The paper's escalation (Section 5.3): a cell drifting across
#: 10**4.5 Ohm continues with S3's drift-rate parameters.
PAPER_ESCALATION = TieredDrift(
    tiers=(DriftTier(lr_break=4.5, mu_alpha=0.06, sigma_alpha=_sigma(0.06)),)
)

#: Single-phase drift (no escalation), for ablations.
NO_ESCALATION = TieredDrift(tiers=())


def escalation_schedule(mode: str) -> TieredDrift:
    """The paper's escalation tier with a chosen escalation mode."""
    return TieredDrift(tiers=PAPER_ESCALATION.tiers, mode=mode)
