"""Circuit-level drift mitigations: time-aware and reference-cell sensing.

Section 3 reviews two complementary techniques the paper compares
against (and finds insufficient on their own):

- **Time-aware sensing** (Xu & Zhang [37]): the controller knows how long
  ago each block was written and shifts the sensing thresholds upward by
  the *expected* drift of each state, cancelling the systematic
  component.  Residual errors come from per-cell exponent variation.
- **Reference cells** (Hwang et al. [16]): each block embeds cells
  programmed to known states; at read time their measured drift
  calibrates the thresholds.  This tracks the block's average drift —
  including environmental components — but per-cell variation remains.

Both are modeled as *threshold adjustment policies* on top of a
:class:`LevelDesign`; the ablation benchmark quantifies how far they
push the 4LC error knee (the paper: "limited improvement").
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.cells.params import T0_SECONDS
from repro.core.levels import LevelDesign
from repro.montecarlo.rng import make_rng

__all__ = [
    "SensingPolicy",
    "FixedSensing",
    "TimeAwareSensing",
    "ReferenceCellSensing",
]


class SensingPolicy:
    """Maps raw log-resistances to state indices, given read-time context."""

    def thresholds_at(self, design: LevelDesign, age_s: float) -> np.ndarray:
        raise NotImplementedError

    def sense(
        self, design: LevelDesign, lr: np.ndarray, age_s: float
    ) -> np.ndarray:
        taus = self.thresholds_at(design, age_s)
        return np.searchsorted(taus, np.asarray(lr), side="right")


@dataclasses.dataclass(frozen=True)
class FixedSensing(SensingPolicy):
    """Baseline: the design's static thresholds."""

    def thresholds_at(self, design: LevelDesign, age_s: float) -> np.ndarray:
        return np.asarray(design.thresholds)


@dataclasses.dataclass(frozen=True)
class TimeAwareSensing(SensingPolicy):
    """Shift each threshold by the mean drift of the state *below* it.

    The threshold between states i and i+1 guards against state i
    drifting upward; moving it by ``mu_alpha_i * log10(age/t0)`` cancels
    the average drift while the gap to state i+1's (less-drifted) write
    window shrinks only by the difference of means.  ``headroom_frac``
    caps the shift so the threshold never crosses into the upper state's
    write window.
    """

    headroom_frac: float = 0.9

    def thresholds_at(self, design: LevelDesign, age_s: float) -> np.ndarray:
        L = np.log10(max(age_s, T0_SECONDS) / T0_SECONDS)
        taus = np.asarray(design.thresholds, dtype=float).copy()
        for i in range(len(taus)):
            shift = design.states[i].drift.mu_alpha * L
            upper_limit = design.states[i + 1].write_window[0]
            max_shift = max(self.headroom_frac * (upper_limit - taus[i]), 0.0)
            taus[i] += min(shift, max_shift)
        return taus


@dataclasses.dataclass(frozen=True)
class ReferenceCellSensing(SensingPolicy):
    """Calibrate thresholds from embedded reference cells.

    ``n_ref_per_state`` reference cells per state are written alongside
    the data; at read time their *measured* mean log-resistance replaces
    the nominal value, and thresholds sit at the measured midpoints
    (clamped inside the neighbouring write windows).  The measurement is
    simulated from the same drift physics, so block-common drift is
    tracked but per-cell variation is not.
    """

    n_ref_per_state: int = 4
    seed: int = 0

    def measured_means(self, design: LevelDesign, age_s: float) -> np.ndarray:
        from repro.montecarlo.cer import sample_state_cells

        rng = make_rng(self.seed)
        L = np.log10(max(age_s, T0_SECONDS) / T0_SECONDS)
        means = []
        for state in design.states:
            lr0, alpha, _ = sample_state_cells(state, self.n_ref_per_state, rng)
            means.append(float(np.mean(lr0 + alpha * L)))
        return np.asarray(means)

    def thresholds_at(self, design: LevelDesign, age_s: float) -> np.ndarray:
        means = self.measured_means(design, age_s)
        taus = (means[:-1] + means[1:]) / 2.0
        # Clamp inside the static feasibility corridor.
        for i in range(len(taus)):
            lo = design.states[i].mu_lr + 1e-6
            hi = design.states[i + 1].write_window[0]
            taus[i] = float(np.clip(taus[i], lo, hi))
        return taus
