"""Circuit-level drift mitigations: time-aware and reference-cell sensing.

Section 3 reviews two complementary techniques the paper compares
against (and finds insufficient on their own):

- **Time-aware sensing** (Xu & Zhang [37]): the controller knows how long
  ago each block was written and shifts the sensing thresholds upward by
  the *expected* drift of each state, cancelling the systematic
  component.  Residual errors come from per-cell exponent variation.
- **Reference cells** (Hwang et al. [16]): each block embeds cells
  programmed to known states; at read time their measured drift
  calibrates the thresholds.  This tracks the block's average drift —
  including environmental components — but per-cell variation remains.

Both are modeled as *threshold adjustment policies* on top of a
:class:`LevelDesign`; the ablation benchmark quantifies how far they
push the 4LC error knee (the paper: "limited improvement").
"""

from __future__ import annotations

import dataclasses

import numpy as np
from scipy.special import ndtr, ndtri

from repro.cells.params import T0_SECONDS, WRITE_TRUNCATION_SIGMA
from repro.core.levels import LevelDesign
from repro.montecarlo.rng import make_rng

__all__ = [
    "SensingPolicy",
    "FixedSensing",
    "TimeAwareSensing",
    "ReferenceCellSensing",
]


class SensingPolicy:
    """Maps raw log-resistances to state indices, given read-time context."""

    def thresholds_at(self, design: LevelDesign, age_s: float) -> np.ndarray:
        raise NotImplementedError

    def sense(
        self, design: LevelDesign, lr: np.ndarray, age_s: float
    ) -> np.ndarray:
        taus = self.thresholds_at(design, age_s)
        return np.searchsorted(taus, np.asarray(lr), side="right")


@dataclasses.dataclass(frozen=True)
class FixedSensing(SensingPolicy):
    """Baseline: the design's static thresholds."""

    def thresholds_at(self, design: LevelDesign, age_s: float) -> np.ndarray:
        return np.asarray(design.thresholds)


@dataclasses.dataclass(frozen=True)
class TimeAwareSensing(SensingPolicy):
    """Shift each threshold by the mean drift of the state *below* it.

    The threshold between states i and i+1 guards against state i
    drifting upward; moving it by ``mu_alpha_i * log10(age/t0)`` cancels
    the average drift while the gap to state i+1's (less-drifted) write
    window shrinks only by the difference of means.  ``headroom_frac``
    caps the shift so the threshold never crosses into the upper state's
    write window.
    """

    headroom_frac: float = 0.9

    def thresholds_at(self, design: LevelDesign, age_s: float) -> np.ndarray:
        L = np.log10(max(age_s, T0_SECONDS) / T0_SECONDS)
        taus = np.asarray(design.thresholds, dtype=float)
        # Each threshold is independent: one broadcast over the level axis.
        shift = np.array([s.drift.mu_alpha for s in design.states[:-1]]) * L
        upper_limit = np.array([s.write_window[0] for s in design.states[1:]])
        max_shift = np.maximum(self.headroom_frac * (upper_limit - taus), 0.0)
        return taus + np.minimum(shift, max_shift)


@dataclasses.dataclass(frozen=True)
class ReferenceCellSensing(SensingPolicy):
    """Calibrate thresholds from embedded reference cells.

    ``n_ref_per_state`` reference cells per state are written alongside
    the data; at read time their *measured* mean log-resistance replaces
    the nominal value, and thresholds sit at the measured midpoints
    (clamped inside the neighbouring write windows).  The measurement is
    simulated from the same drift physics, so block-common drift is
    tracked but per-cell variation is not.
    """

    n_ref_per_state: int = 4
    seed: int = 0

    def measured_means(self, design: LevelDesign, age_s: float) -> np.ndarray:
        rng = make_rng(self.seed)
        L = np.log10(max(age_s, T0_SECONDS) / T0_SECONDS)
        states = design.states
        if any(
            s.sigma_lr == 0.0 or s.drift.mu_alpha == 0.0 or s.drift.sigma_alpha == 0.0
            for s in states
        ):
            # Degenerate states draw fewer uniforms; keep the legacy
            # per-state sampling loop so the stream layout is preserved.
            return self._measured_means_loop(design, rng, L)
        # Fast path: every state consumes exactly two uniform vectors
        # (lr0, alpha), and a C-order ``random((n_states, 2, n))`` fill is
        # the same uniform stream as the sequential per-state calls — the
        # inverse-CDF transforms are elementwise, so the batched means are
        # bit-identical to the loop's.
        n = self.n_ref_per_state
        u = rng.random((len(states), 2, n))
        mu_r = np.array([s.mu_lr for s in states])[:, None]
        sg_r = np.array([s.sigma_lr for s in states])[:, None]
        mu_a = np.array([s.drift.mu_alpha for s in states])[:, None]
        sg_a = np.array([s.drift.sigma_alpha for s in states])[:, None]
        p_lo = ndtr(-WRITE_TRUNCATION_SIGMA)
        p_hi = ndtr(WRITE_TRUNCATION_SIGMA)
        lr0 = mu_r + sg_r * ndtri(p_lo + u[:, 0, :] * (p_hi - p_lo))
        p_lo_a = ndtr(-mu_a / sg_a)  # alpha >= 0 truncation
        alpha = mu_a + sg_a * ndtri(p_lo_a + u[:, 1, :] * (1.0 - p_lo_a))
        return np.mean(lr0 + alpha * L, axis=1)

    def _measured_means_loop(
        self, design: LevelDesign, rng: np.random.Generator, L: float
    ) -> np.ndarray:
        from repro.montecarlo.cer import sample_state_cells

        means = []
        for state in design.states:
            lr0, alpha, _ = sample_state_cells(state, self.n_ref_per_state, rng)
            means.append(float(np.mean(lr0 + alpha * L)))
        return np.asarray(means)

    def thresholds_at(self, design: LevelDesign, age_s: float) -> np.ndarray:
        means = self.measured_means(design, age_s)
        taus = (means[:-1] + means[1:]) / 2.0
        # Clamp inside the static feasibility corridor.
        lo = np.array([s.mu_lr for s in design.states[:-1]]) + 1e-6
        hi = np.array([s.write_window[0] for s in design.states[1:]])
        return np.clip(taus, lo, hi)
