"""Wearout (hard-error) fault models (Sections 3 and 6.4).

PCM cells fail after a finite number of write cycles; MLC-PCM endures
about 1e5 cycles vs 1e8 for SLC (Section 6.4).  Two failure modes exist
[6]:

- **stuck-reset**: the cell is stuck at the highest-resistance state (S4);
- **stuck-set**: the cell can no longer be RESET to high resistance.

A stuck-set cell can usually be *revived* into S4 by applying a reverse
current [12]; mark-and-spare relies on this to mark failed pairs INV.

Per-cell endurance is modeled lognormal (process variation), with wear
accumulated per write.
"""

from __future__ import annotations

import dataclasses
from enum import Enum

import numpy as np

__all__ = ["FaultMode", "WearoutModel", "MLC_ENDURANCE_CYCLES", "SLC_ENDURANCE_CYCLES"]

MLC_ENDURANCE_CYCLES: float = 1e5
SLC_ENDURANCE_CYCLES: float = 1e8


class FaultMode(Enum):
    HEALTHY = 0
    STUCK_RESET = 1  # stuck at the highest-resistance state
    STUCK_SET = 2  # cannot be RESET to high resistance


@dataclasses.dataclass(frozen=True)
class WearoutModel:
    """Endurance distribution and failure-mode mix.

    ``endurance_sigma`` is the std-dev of log10(endurance); the default
    0.25 gives roughly a 3x spread at +/-2 sigma.  ``p_stuck_reset`` is
    the fraction of failures that are stuck-reset; ``p_revive`` is the
    probability that a reverse-current pulse revives a stuck-set cell
    into S4.
    """

    mean_endurance: float = MLC_ENDURANCE_CYCLES
    endurance_sigma: float = 0.25
    p_stuck_reset: float = 0.5
    p_revive: float = 0.9

    def sample_endurance(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Per-cell write budgets (cycles until failure)."""
        lg = rng.normal(np.log10(self.mean_endurance), self.endurance_sigma, n)
        return np.power(10.0, lg)

    def sample_modes(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Failure modes assigned to cells when they wear out."""
        reset = rng.random(n) < self.p_stuck_reset
        return np.where(
            reset, FaultMode.STUCK_RESET.value, FaultMode.STUCK_SET.value
        ).astype(np.int8)

    def revive(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Success mask of reverse-current revival attempts."""
        return rng.random(n) < self.p_revive
