"""Reliability targets (Section 4.2).

The paper's goal: fewer than one erroneous 64B block per 16GB device over
ten years (device MTBF > 10 years).  The cumulative 10-year BLER target
is therefore one over the number of blocks; the per-refresh-period target
divides that by the number of refresh periods in the horizon.
"""

from __future__ import annotations

import dataclasses

__all__ = [
    "ReliabilityTarget",
    "SECONDS_PER_YEAR",
    "PAPER_TARGET",
    "SEVENTEEN_MINUTES_S",
]

SECONDS_PER_YEAR: float = 365.25 * 24 * 3600.0

#: The paper's "acceptable refresh interval" (Section 4.1): 2**10 s.
SEVENTEEN_MINUTES_S: float = 1024.0


@dataclasses.dataclass(frozen=True)
class ReliabilityTarget:
    """Device geometry + horizon defining the BLER targets of Figure 5."""

    device_bytes: int = 16 * 2**30
    block_bytes: int = 64
    horizon_years: float = 10.0

    @property
    def n_blocks(self) -> int:
        return self.device_bytes // self.block_bytes

    @property
    def cumulative_bler(self) -> float:
        """Ten-year per-block error budget: one erroneous block per device."""
        return 1.0 / self.n_blocks

    def n_periods(self, refresh_interval_s: float) -> float:
        if refresh_interval_s <= 0:
            raise ValueError("refresh interval must be positive")
        horizon_s = self.horizon_years * SECONDS_PER_YEAR
        return max(horizon_s / refresh_interval_s, 1.0)

    def per_period_bler(self, refresh_interval_s: float) -> float:
        """Target BLER per refresh period (the dotted lines of Figure 5).

        For intervals at or beyond the horizon this equals the cumulative
        target (a single "period").
        """
        return self.cumulative_bler / self.n_periods(refresh_interval_s)


#: The paper's default target: 16GB device, 64B blocks, 10-year horizon.
PAPER_TARGET = ReliabilityTarget()
