"""Storage-density models (Tables 3-4, Figure 15).

Cell budgets for a 64B (512-bit) block under each design, as a function
of the number of tolerated wearout failures ``k``:

- **4LC**: 256 data cells + 5t check cells (BCH-t, 10 bits per corrected
  bit in GF(2^10), 2 bits/cell) + ECP-k at 5 cells per failure + 1 full
  flag.
- **3-ON-2**: 342 data cells + 2k spare cells (mark-and-spare) + 10 SLC
  cells (BCH-1 over the 2-bit view).
- **Permutation**: ceil(512/11) * 7 = 329 data cells + ECP-k in SLC at
  10 cells per failure + 1 flag + BCH-1 check bits in SLC.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

__all__ = [
    "four_lc_cells",
    "three_on_two_cells",
    "permutation_cells",
    "density",
    "DesignCapacity",
    "TABLE3_CAPACITIES",
    "TABLE4_CAPACITIES",
    "capacity_vs_hard_errors",
]


def four_lc_cells(data_bits: int = 512, t: int = 10, hard_errors: int = 6) -> int:
    """Cell budget of the 4LCo design (Table 3 row 1: 337 for defaults)."""
    if data_bits % 2:
        raise ValueError("data bits must fill whole 2-bit cells")
    data_cells = data_bits // 2
    check_cells = math.ceil(10 * t / 2)
    ptr_cells = math.ceil(math.ceil(math.log2(data_cells)) / 2)
    ecp_cells = hard_errors * (ptr_cells + 1) + (1 if hard_errors else 0)
    return data_cells + check_cells + ecp_cells


def three_on_two_cells(data_bits: int = 512, hard_errors: int = 6) -> int:
    """Cell budget of the 3-ON-2 design (Table 3 row 3: 364 for defaults)."""
    data_cells = 2 * math.ceil(data_bits / 3)
    spare_cells = 2 * hard_errors
    tec_cells = 10  # BCH-1 over the <= 1013-bit TEC view, stored SLC
    return data_cells + spare_cells + tec_cells


def permutation_cells(data_bits: int = 512, hard_errors: int = 6) -> int:
    """Cell budget of the permutation-coding baseline (Table 3 row 2).

    ECP is stored SLC (the patent does not define wearout handling inside
    permutation groups): pointer (9 bits for 329 cells) + 1 replacement
    bit per failure, plus a full flag, plus BCH-1 check bits in SLC.
    """
    groups = math.ceil(data_bits / 11)
    data_cells = groups * 7
    ptr_bits = math.ceil(math.log2(data_cells))
    ecp_cells = hard_errors * (ptr_bits + 1) + (1 if hard_errors else 0)
    tec_cells = 10
    return data_cells + ecp_cells + tec_cells


def density(data_bits: int, total_cells: int) -> float:
    """Information density in bits per cell."""
    return data_bits / total_cells


@dataclasses.dataclass(frozen=True)
class DesignCapacity:
    """One row of Table 3 / Table 4."""

    name: str
    data_cells: int
    overhead_cells: int
    data_bits: int = 512

    @property
    def total_cells(self) -> int:
        return self.data_cells + self.overhead_cells

    @property
    def bits_per_cell(self) -> float:
        return density(self.data_bits, self.total_cells)


def _table3() -> dict[str, DesignCapacity]:
    return {
        "4LCo": DesignCapacity("4LCo", 256, four_lc_cells() - 256),
        "Permutation": DesignCapacity(
            "Permutation", 329, permutation_cells() - 329
        ),
        "3-ON-2": DesignCapacity("3-ON-2", 342, three_on_two_cells() - 342),
    }


TABLE3_CAPACITIES = _table3()

#: Table 4: comparison with the tri-level-cell PCM paper [29].
TABLE4_CAPACITIES: dict[str, DesignCapacity] = {
    # Seong et al.: BCH-32 (320 bits / 160 cells), no wearout tolerance.
    "4LC [29]": DesignCapacity("4LC [29]", 256, 160),
    "4LCo (ours)": DesignCapacity("4LCo (ours)", 256, four_lc_cells() - 256),
    # Seong et al. 3LC: 8 bits per 6 cells, no ECC, no wearout tolerance.
    "3LC [29]": DesignCapacity("3LC [29]", 6, 0, data_bits=8),
    "3LCo (ours)": DesignCapacity("3LCo (ours)", 342, three_on_two_cells() - 342),
}


def capacity_vs_hard_errors(
    max_hard_errors: int = 20, data_bits: int = 512
) -> dict[str, np.ndarray]:
    """Figure 15: bits/cell of each design vs tolerated wearout failures."""
    ks = np.arange(0, max_hard_errors + 1)
    return {
        "k": ks,
        "4LC": np.array(
            [density(data_bits, four_lc_cells(data_bits, 10, int(k))) for k in ks]
        ),
        "3-ON-2": np.array(
            [density(data_bits, three_on_two_cells(data_bits, int(k))) for k in ks]
        ),
        "Permutation": np.array(
            [density(data_bits, permutation_cells(data_bits, int(k))) for k in ks]
        ),
    }
