"""FO4 latency model for BCH encoders/decoders (Table 3, Section 6.6).

Follows the structure of Strukov's bit-parallel BCH decoder study [32]:

- **Encoder / syndrome**: XOR trees over the codeword bits; roughly half
  the bits feed each parity tree, so depth = ceil(log2(n/2)) XOR2 levels
  at ~2 FO4 per level.
- **t = 1 decoder**: no Berlekamp-Massey at all — the single syndrome
  *is* the error locator, and a syndrome-to-position decoder plus a
  correcting XOR completes the job (this is why the paper's BCH-1 decode
  is 8x faster than BCH-10).
- **t >= 2 decoder**: 2t Berlekamp-Massey iterations, each serialized
  through GF(2^m) multiply-accumulate logic, followed by a Chien
  search/correction stage.

The two non-structural constants (position-decode cost and per-iteration
BM cost) are calibrated so the model reproduces the paper's Table 3
numbers exactly: encode 18 FO4 for both codes, decode 68 FO4 (BCH-1) and
569 FO4 (BCH-10).
"""

from __future__ import annotations

import dataclasses
import math

__all__ = [
    "BCHLatencyModel",
    "BCHAreaModel",
    "PAPER_LATENCY_MODEL",
    "PAPER_AREA_MODEL",
    "table3_latencies",
]

#: FO4 delay of a 2-input XOR gate level.
XOR2_FO4: float = 2.0


@dataclasses.dataclass(frozen=True)
class BCHLatencyModel:
    """Parametric FO4 model; defaults calibrated to the paper's Table 3."""

    xor2_fo4: float = XOR2_FO4
    #: Syndrome-to-position decode for the t=1 fast path (10-bit match
    #: plus fanout buffering to the block width plus the correcting XOR).
    position_decode_fo4: float = 50.0
    #: One Berlekamp-Massey iteration: two serial GF(2^10) multiplies and
    #: an accumulate.
    bm_iteration_fo4: float = 26.0
    #: Chien search and correction stage for the iterative decoder.
    chien_fo4: float = 31.0

    def encode_fo4(self, n_codeword_bits: int) -> float:
        """Parity-tree depth over ~n/2 participating bits."""
        if n_codeword_bits < 2:
            raise ValueError("codeword too short")
        levels = math.ceil(math.log2(max(n_codeword_bits // 2, 2)))
        return self.xor2_fo4 * levels

    def syndrome_fo4(self, n_codeword_bits: int) -> float:
        return self.encode_fo4(n_codeword_bits)

    def decode_fo4(self, n_codeword_bits: int, t: int) -> float:
        if t < 1:
            return 0.0
        synd = self.syndrome_fo4(n_codeword_bits)
        if t == 1:
            return synd + self.position_decode_fo4
        return synd + 2 * t * self.bm_iteration_fo4 + self.chien_fo4

    def decode_ns(
        self, n_codeword_bits: int, t: int, fo4_ps: float = 25.0
    ) -> float:
        """Decode latency in nanoseconds for a given FO4 delay (ps).

        The paper's Table 5 charges +36.25 ns for BCH-10 on the 200 ns
        read; at ~64 ps/FO4 the 569-FO4 decode matches that figure.
        """
        return self.decode_fo4(n_codeword_bits, t) * fo4_ps / 1000.0


PAPER_LATENCY_MODEL = BCHLatencyModel()


@dataclasses.dataclass(frozen=True)
class BCHAreaModel:
    """Gate-count model of bit-parallel BCH logic (Strukov [32] structure).

    Counts two-input-gate equivalents:

    - encoder / syndrome: XOR trees — each check (syndrome) bit sums
      roughly half the codeword bits;
    - Berlekamp-Massey: t registers of m bits with two GF(2^m)
      multipliers per step; a bit-parallel GF multiplier costs ~2 m^2
      gates;
    - Chien search: evaluating a degree-t locator needs t constant
      multipliers (~m^2/2 each) and an m-input zero-detect per position
      (amortized by serial evaluation in Strukov's design).

    Absolute counts are order-of-magnitude; the model's purpose is the
    *ratio* between BCH-1 and BCH-10 hardware (the paper's "simpler
    error correction ... is more desirable" argument).
    """

    gf_mult_gates_per_m2: float = 2.0
    chien_mult_gates_per_m2: float = 0.5

    def encoder_gates(self, n_codeword_bits: int, n_check_bits: int) -> float:
        return n_check_bits * (n_codeword_bits / 2.0)

    def syndrome_gates(self, n_codeword_bits: int, t: int) -> float:
        return 2 * t * (n_codeword_bits / 2.0)

    def bm_gates(self, m: int, t: int) -> float:
        if t <= 1:
            return 0.0  # t=1 short-circuits BM entirely
        registers = 2 * t * m  # locator + scratch
        multipliers = 2 * self.gf_mult_gates_per_m2 * m * m
        return registers * 8 + multipliers  # ~8 gates per flip-flop

    def chien_gates(self, m: int, t: int) -> float:
        if t <= 1:
            # syndrome-to-position decoder: an m-input match per location
            # is folded into a single decoder tree.
            return 4.0 * m * m
        return t * self.chien_mult_gates_per_m2 * m * m + 4 * m

    def decoder_gates(self, n_codeword_bits: int, m: int, t: int) -> float:
        return (
            self.syndrome_gates(n_codeword_bits, t)
            + self.bm_gates(m, t)
            + self.chien_gates(m, t)
        )


PAPER_AREA_MODEL = BCHAreaModel()


def table3_latencies() -> dict[str, tuple[float, float]]:
    """(encode, decode) FO4 pairs of Table 3's ECC column."""
    m = PAPER_LATENCY_MODEL
    return {
        "4LCo BCH-10": (m.encode_fo4(612), m.decode_fo4(612, 10)),
        "3-ON-2 BCH-1": (m.encode_fo4(718), m.decode_fo4(718, 1)),
    }
