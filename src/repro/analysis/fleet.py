"""Fleet-level reducers: lifetime percentiles and spare-exhaustion hazard.

Pure functions over the per-epoch ``deaths`` counter of a fleet run
(:mod:`repro.fleet.mc`): everything here is derivable from the count
matrix alone, so the reducers also run over cached summaries without
touching any device state.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["hazard_curve", "lifetime_percentiles", "survival_curve"]


def _deaths(deaths_per_epoch: Sequence[int], n_devices: int) -> np.ndarray:
    d = np.asarray(deaths_per_epoch, dtype=np.int64)
    if d.ndim != 1:
        raise ValueError(f"expected a 1-D deaths vector, got shape {d.shape}")
    if np.any(d < 0):
        raise ValueError("deaths must be non-negative")
    if int(d.sum()) > int(n_devices):
        raise ValueError(
            f"{int(d.sum())} total deaths exceed the fleet of {n_devices}"
        )
    return d


def lifetime_percentiles(
    deaths_per_epoch: Sequence[int],
    n_devices: int,
    percentiles: Sequence[float] = (50.0, 90.0, 99.0),
) -> dict[str, int | None]:
    """Epoch index by which each percentile of the fleet has died.

    ``pQ`` is the smallest epoch ``e`` (0-based) such that at least
    ``Q%`` of the ``n_devices`` devices have exhausted their spares by
    the end of epoch ``e`` — the fleet's Q-th lifetime percentile in
    epochs.  ``None`` means the run ended before that fraction died
    (right-censored), which is the *normal* outcome for a healthy fleet.
    """
    n_devices = int(n_devices)
    if n_devices < 1:
        raise ValueError("n_devices must be >= 1")
    d = _deaths(deaths_per_epoch, n_devices)
    cum = np.cumsum(d)
    out: dict[str, int | None] = {}
    for q in percentiles:
        if not 0.0 < q <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {q}")
        need = q / 100.0 * n_devices
        hit = np.nonzero(cum >= need)[0]
        label = f"p{q:g}"
        out[label] = int(hit[0]) if hit.size else None
    return out


def hazard_curve(
    deaths_per_epoch: Sequence[int], n_devices: int
) -> list[float]:
    """Discrete spare-exhaustion hazard: ``h[e] = deaths[e] / alive[e]``.

    ``alive[e]`` is the population entering epoch ``e``.  Once everyone
    is dead the hazard is reported as 0 (no population at risk).
    """
    n_devices = int(n_devices)
    if n_devices < 1:
        raise ValueError("n_devices must be >= 1")
    d = _deaths(deaths_per_epoch, n_devices)
    alive = n_devices - np.concatenate([[0], np.cumsum(d)[:-1]])
    return [
        float(d[e] / alive[e]) if alive[e] > 0 else 0.0 for e in range(d.size)
    ]


def survival_curve(
    deaths_per_epoch: Sequence[int], n_devices: int
) -> list[float]:
    """Fraction of the fleet still alive *after* each epoch."""
    n_devices = int(n_devices)
    if n_devices < 1:
        raise ValueError("n_devices must be >= 1")
    d = _deaths(deaths_per_epoch, n_devices)
    return [float(x) for x in (n_devices - np.cumsum(d)) / n_devices]
