"""PCM availability under periodic refresh (Section 4.1, Figure 4).

Refreshing a block takes one MLC write (~1 us).  Refreshing the whole
device serially makes it unavailable for ``n_blocks * t_write`` out of
every refresh interval; refreshing banks independently divides the
blackout per bank by the bank count, and the *write-throughput* limit
bounds how fast a refresh pass can possibly complete regardless of
scheduling.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["RefreshModel", "PAPER_REFRESH_MODEL"]


@dataclasses.dataclass(frozen=True)
class RefreshModel:
    """Geometry and timing of device refresh (Table 5 defaults)."""

    device_bytes: int = 16 * 2**30
    block_bytes: int = 64
    n_banks: int = 8
    block_refresh_s: float = 1e-6  # one MLC write
    write_throughput_bytes_per_s: float = 40e6  # 40 MB/s [7]

    @property
    def n_blocks(self) -> int:
        return self.device_bytes // self.block_bytes

    @property
    def device_refresh_pass_s(self) -> float:
        """Serial time to refresh every block once (~268 s for the paper)."""
        return self.n_blocks * self.block_refresh_s

    @property
    def bank_refresh_pass_s(self) -> float:
        return self.device_refresh_pass_s / self.n_banks

    @property
    def throughput_limited_pass_s(self) -> float:
        """Refresh-pass time if limited by write throughput (~410 s)."""
        return self.device_bytes / self.write_throughput_bytes_per_s

    def device_availability(self, interval_s: np.ndarray | float) -> np.ndarray | float:
        """Fraction of time the device serves requests, refreshing one
        block at a time with the whole device blocked (Figure 4, lower
        curve)."""
        iv = np.asarray(interval_s, dtype=float)
        avail = 1.0 - self.device_refresh_pass_s / iv
        out = np.clip(avail, 0.0, 1.0)
        return float(out) if np.isscalar(interval_s) else out

    def bank_availability(self, interval_s: np.ndarray | float) -> np.ndarray | float:
        """Per-bank availability with independent bank refresh (Figure 4,
        upper curve)."""
        iv = np.asarray(interval_s, dtype=float)
        avail = 1.0 - self.bank_refresh_pass_s / iv
        out = np.clip(avail, 0.0, 1.0)
        return float(out) if np.isscalar(interval_s) else out

    def refresh_write_fraction(self, interval_s: float) -> float:
        """Fraction of the device's write throughput consumed by refresh.

        Section 4.1's bandwidth argument: a refresh pass moves the whole
        device's contents once per interval.
        """
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        frac = self.throughput_limited_pass_s / interval_s
        return min(frac, 1.0)

    def min_practical_interval_s(self, margin: float = 2.0) -> float:
        """Shortest interval leaving (margin-1)/margin of write throughput
        to applications; the paper picks 2x the throughput-limited pass
        (~820 s) and rounds to 2**10 s = ~17 minutes."""
        return margin * self.throughput_limited_pass_s


PAPER_REFRESH_MODEL = RefreshModel()
