"""Analytic reliability, capacity and latency models (Figures 4/5/15, Tables 3-4)."""
