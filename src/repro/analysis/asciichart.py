"""ASCII log-scale charts for the benchmark artifacts.

The offline environment has no matplotlib; the figure benchmarks render
their series as character plots so ``results/*.txt`` shows the curve
*shapes* (the reproduction criterion), not just number grids.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["log_chart"]

_MARKERS = "ox+*#@%&"


def log_chart(
    series: Mapping[str, Sequence[float]],
    x_labels: Sequence[str],
    height: int = 18,
    floor: float = 1e-22,
    title: str = "",
) -> str:
    """Render multiple y-series on a shared log10 y-axis.

    Zeros / sub-floor values are clamped to ``floor`` and drawn on the
    bottom row.  Each series gets a marker from a fixed cycle; collisions
    show the later series' marker.
    """
    names = list(series)
    if not names:
        raise ValueError("no series")
    n_pts = len(x_labels)
    for name in names:
        if len(series[name]) != n_pts:
            raise ValueError(f"series {name!r} length != x_labels")

    def clamp(v: float) -> float:
        return max(float(v), floor)

    all_vals = [clamp(v) for name in names for v in series[name]]
    lo = math.floor(math.log10(min(all_vals)))
    hi = math.ceil(math.log10(max(all_vals)))
    hi = max(hi, lo + 1)

    col_w = max(max(len(l) for l in x_labels) + 1, 6)
    width = n_pts * col_w
    rows = [[" "] * width for _ in range(height)]

    def y_of(v: float) -> int:
        frac = (math.log10(clamp(v)) - lo) / (hi - lo)
        return min(height - 1, max(0, int(round((1 - frac) * (height - 1)))))

    # Draw in reverse so earlier-listed series win marker collisions.
    for si in range(len(names) - 1, -1, -1):
        name = names[si]
        marker = _MARKERS[si % len(_MARKERS)]
        for i, v in enumerate(series[name]):
            x = i * col_w + col_w // 2
            rows[y_of(v)][x] = marker

    lines = []
    if title:
        lines.append(title)
    axis_w = 9
    for r in range(height):
        frac = 1 - r / (height - 1)
        exp = lo + frac * (hi - lo)
        label = f"1E{exp:+04.0f} |" if r % 3 == 0 or r == height - 1 else (" " * 7 + "|")
        lines.append(label.rjust(axis_w) + "".join(rows[r]))
    lines.append(" " * (axis_w - 1) + "+" + "-" * width)
    xrow = [" "] * width
    for i, lab in enumerate(x_labels):
        start = i * col_w
        for j, ch in enumerate(lab[: col_w - 1]):
            xrow[start + j] = ch
    lines.append(" " * axis_w + "".join(xrow))
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}" for i, name in enumerate(names)
    )
    lines.append(" " * axis_w + legend)
    return "\n".join(lines)
