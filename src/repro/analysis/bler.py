"""Block error rate as a function of CER and ECC strength (Figure 5).

A block of ``n`` cells protected by a t-bit-correcting code becomes
erroneous when more than ``t`` cells err within one refresh period (Gray
coding makes one drift error exactly one bit error, Section 6.6).  With
i.i.d. cell errors at rate ``p``:

    BLER = P[Binom(n, p) > t]

computed with exact log-domain binomial tails — Figure 5 spans down to
1e-14 and the nonvolatility analysis needs far smaller values still.
"""

from __future__ import annotations

import numpy as np
from scipy.special import betainc, betaincinv, gammaln

__all__ = [
    "binom_confidence",
    "block_error_rate",
    "binom_tail",
    "fig5_cell_counts",
]


def binom_tail(n: int, t: int, p: np.ndarray | float) -> np.ndarray | float:
    """P[X > t] for X ~ Binom(n, p), exact for tiny probabilities.

    Uses the regularized incomplete beta identity
    ``P[X >= k] = I_p(k, n - k + 1)``; for probabilities below ~1e-280
    (where the beta function underflows) it falls back to the dominant
    term of the log-domain series, keeping the curve smooth into the
    deepest tails.
    """
    if t < 0:
        return np.ones_like(np.asarray(p, dtype=float))
    if t >= n:
        return np.zeros_like(np.asarray(p, dtype=float))
    p_arr = np.asarray(p, dtype=float)
    scalar = p_arr.ndim == 0
    p_arr = np.atleast_1d(p_arr).astype(float)
    if np.any((p_arr < 0) | (p_arr > 1)):
        raise ValueError("probabilities must be in [0, 1]")
    k = t + 1
    with np.errstate(under="ignore"):
        out = betainc(k, n - k + 1, p_arr)
    # Deep-tail fallback: dominant term C(n, k) p^k (1-p)^(n-k).
    tiny = (out == 0.0) & (p_arr > 0.0)
    if np.any(tiny):
        pt = p_arr[tiny]
        log_term = (
            gammaln(n + 1)
            - gammaln(k + 1)
            - gammaln(n - k + 1)
            + k * np.log(pt)
            + (n - k) * np.log1p(-pt)
        )
        out[tiny] = np.exp(np.maximum(log_term, -745.0))
        out[tiny] = np.where(log_term < -745.0, 0.0, out[tiny])
    return float(out[0]) if scalar else out


def binom_confidence(
    k: int, n: int, confidence: float = 0.95
) -> tuple[float, float]:
    """Exact (Clopper-Pearson) two-sided binomial CI for ``k`` out of ``n``.

    Used to cross-validate the empirical BLER engine
    (:mod:`repro.montecarlo.bler_mc`) against the analytic
    :func:`block_error_rate` curves: at matched operating points the
    analytic value must fall inside the empirical interval.  The exact
    interval is conservative (coverage >= the nominal level), which is
    the right direction for an acceptance gate.
    """
    k, n = int(k), int(n)
    if n < 1:
        raise ValueError(f"need at least one trial, got n={n}")
    if not 0 <= k <= n:
        raise ValueError(f"successes k={k} outside [0, {n}]")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    alpha = 1.0 - confidence
    lo = 0.0 if k == 0 else float(betaincinv(k, n - k + 1, alpha / 2.0))
    hi = 1.0 if k == n else float(betaincinv(k + 1, n - k, 1.0 - alpha / 2.0))
    return lo, hi


def block_error_rate(
    cer: np.ndarray | float, n_cells: int, t_correctable: int
) -> np.ndarray | float:
    """Per-period BLER of an ``n_cells`` block with a BCH-t code.

    ``cer`` is the per-cell drift error probability at the end of the
    refresh period; one erring cell contributes one bit error under Gray
    coding, so the code survives up to ``t`` erring cells.
    """
    if n_cells < 1:
        raise ValueError("block must have at least one cell")
    return binom_tail(n_cells, t_correctable, cer)


def fig5_cell_counts(
    data_bits: int = 512, bits_per_cell: int = 2, check_bits_per_t: int = 10
) -> dict[int, int]:
    """Block sizes (in cells) for BCH-0..10 as plotted in Figure 5.

    Each added level of correction costs ``check_bits_per_t`` bits
    (GF(2^10) for the paper's block size), stored at ``bits_per_cell``.
    The x-axis annotation "ECC overhead 0%..20%" in the figure is exactly
    ``t * 10 / 512``.
    """
    base = data_bits // bits_per_cell
    return {
        t: base + (t * check_bits_per_t) // bits_per_cell for t in range(0, 11)
    }
