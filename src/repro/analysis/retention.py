"""Retention-time solver: how long until a design needs refresh.

Combines the semi-analytic CER (monotone in time), the binomial BLER
model and the reliability target: the retention time of a (design, ECC)
pair is the largest refresh interval whose end-of-period BLER still meets
the per-period target.  This reproduces Table 3's "refresh period" column
and the nonvolatility claims of Sections 5.3 and 6.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis.bler import block_error_rate
from repro.analysis.targets import PAPER_TARGET, SECONDS_PER_YEAR, ReliabilityTarget
from repro.cells.drift import PAPER_ESCALATION, TieredDrift
from repro.cells.params import T0_SECONDS
from repro.core.levels import LevelDesign
from repro.montecarlo.analytic import analytic_design_cer

__all__ = ["RetentionResult", "retention_time_s", "meets_nonvolatility"]


@dataclasses.dataclass(frozen=True)
class RetentionResult:
    """Outcome of a retention solve."""

    retention_s: float
    cer_at_retention: float
    bler_at_retention: float
    target_bler: float

    @property
    def retention_years(self) -> float:
        return self.retention_s / SECONDS_PER_YEAR

    @property
    def retention_minutes(self) -> float:
        return self.retention_s / 60.0


def _period_ok(
    design: LevelDesign,
    interval_s: float,
    n_cells: int,
    ecc_t: int,
    target: ReliabilityTarget,
    schedule: TieredDrift,
    z_points: int,
) -> tuple[bool, float, float, float]:
    cer = float(analytic_design_cer(design, [interval_s], schedule, z_points)[0])
    bler = float(block_error_rate(cer, n_cells, ecc_t))
    tgt = target.per_period_bler(interval_s)
    return bler <= tgt, cer, bler, tgt


def retention_time_s(
    design: LevelDesign,
    n_cells: int,
    ecc_t: int,
    target: ReliabilityTarget = PAPER_TARGET,
    schedule: TieredDrift = PAPER_ESCALATION,
    t_max_s: float = 1e12,
    z_points: int = 801,
    rel_tol: float = 0.01,
) -> RetentionResult:
    """Largest refresh interval meeting the per-period BLER target.

    Both the end-of-period BLER and the per-period target move with the
    interval; their ratio is monotone (CER grows with time much faster
    than the linear target relaxation), so bisection on log10(t) applies.
    ``t_max_s`` caps the search (1e12 s is ~32k years).
    """
    lo = np.log10(T0_SECONDS * 2)
    hi = np.log10(t_max_s)
    ok_lo, *_ = _period_ok(
        design, 10**lo, n_cells, ecc_t, target, schedule, z_points
    )
    if not ok_lo:
        cer0 = float(analytic_design_cer(design, [10**lo], schedule, z_points)[0])
        return RetentionResult(0.0, cer0, 1.0, target.per_period_bler(10**lo))
    ok_hi, cer, bler, tgt = _period_ok(
        design, 10**hi, n_cells, ecc_t, target, schedule, z_points
    )
    if ok_hi:
        return RetentionResult(float(t_max_s), cer, bler, tgt)
    while (hi - lo) > np.log10(1 + rel_tol):
        mid = (lo + hi) / 2
        ok, *_ = _period_ok(
            design, 10**mid, n_cells, ecc_t, target, schedule, z_points
        )
        if ok:
            lo = mid
        else:
            hi = mid
    t_star = 10**lo
    _, cer, bler, tgt = _period_ok(
        design, t_star, n_cells, ecc_t, target, schedule, z_points
    )
    return RetentionResult(float(t_star), cer, bler, tgt)


def meets_nonvolatility(
    design: LevelDesign,
    n_cells: int,
    ecc_t: int,
    years: float = 10.0,
    target: ReliabilityTarget = PAPER_TARGET,
    schedule: TieredDrift = PAPER_ESCALATION,
) -> bool:
    """True when data survive ``years`` without refresh at the device
    reliability target (the paper's practical nonvolatility criterion)."""
    horizon = years * SECONDS_PER_YEAR
    ok, *_ = _period_ok(design, horizon, n_cells, ecc_t, target, schedule, 801)
    return ok
