"""repro — reproduction of *Practical Nonvolatile Multilevel-Cell Phase
Change Memory* (Yoon, Chang, Schreiber, Jouppi; SC '13).

The package models MLC-PCM resistance drift, the optimized four-level and
proposed three-level cell designs, the 3-ON-2 encoding with mark-and-spare
wearout tolerance, the analytic reliability/capacity/latency comparisons,
and a cycle-based memory-system simulation of the refresh overheads.

Quick start::

    from repro import three_level_optimal, design_cer, PAPER_TIME_GRID_S
    design = three_level_optimal()
    result = design_cer(design, PAPER_TIME_GRID_S, n_samples=10_000_000)

See README.md for the architecture overview and DESIGN.md for the
per-experiment index.
"""

from repro.analysis.availability import PAPER_REFRESH_MODEL, RefreshModel
from repro.analysis.bler import block_error_rate
from repro.analysis.capacity import (
    capacity_vs_hard_errors,
    four_lc_cells,
    permutation_cells,
    three_on_two_cells,
)
from repro.analysis.latency import PAPER_LATENCY_MODEL, BCHLatencyModel
from repro.analysis.retention import meets_nonvolatility, retention_time_s
from repro.analysis.targets import PAPER_TARGET, ReliabilityTarget
from repro.cells.cell_array import CellArray
from repro.cells.drift import (
    NO_ESCALATION,
    PAPER_ESCALATION,
    TieredDrift,
    escalation_schedule,
)
from repro.cells.faults import FaultMode, WearoutModel
from repro.cells.params import TABLE1, StateParams
from repro.coding.bch import BCH, BCHDecodeFailure
from repro.coding.blockcodec import (
    FourLevelBlockCodec,
    ThreeOnTwoBlockCodec,
    UncorrectableBlock,
)
from repro.coding.permutation import PermutationCode
from repro.coding.smart import RotationSmartCode
from repro.core.designs import (
    all_designs,
    design_by_name,
    four_level_naive,
    four_level_optimal,
    four_level_smart,
    three_level_naive,
    three_level_optimal,
)
from repro.core.device import PCMDevice
from repro.core.levels import LevelDesign
from repro.mapping.optimizer import optimize_mapping
from repro.montecarlo.analytic import analytic_design_cer, analytic_state_cer
from repro.montecarlo.cer import CERResult, design_cer, state_cer
from repro.montecarlo.sweep import (
    PAPER_TIME_GRID_S,
    PAPER_TIME_LABELS,
    fig3_state_sweep,
    fig8_design_sweep,
)
from repro.wearout.mark_and_spare import (
    MarkAndSpareBlock,
    MarkAndSpareConfig,
    SpareExhausted,
)

__version__ = "1.0.0"

__all__ = [
    "BCH",
    "BCHDecodeFailure",
    "BCHLatencyModel",
    "CellArray",
    "CERResult",
    "FaultMode",
    "FourLevelBlockCodec",
    "LevelDesign",
    "MarkAndSpareBlock",
    "MarkAndSpareConfig",
    "NO_ESCALATION",
    "PAPER_ESCALATION",
    "PAPER_LATENCY_MODEL",
    "PAPER_REFRESH_MODEL",
    "PAPER_TARGET",
    "PAPER_TIME_GRID_S",
    "PAPER_TIME_LABELS",
    "PCMDevice",
    "PermutationCode",
    "RefreshModel",
    "ReliabilityTarget",
    "RotationSmartCode",
    "SpareExhausted",
    "StateParams",
    "TABLE1",
    "ThreeOnTwoBlockCodec",
    "TieredDrift",
    "UncorrectableBlock",
    "WearoutModel",
    "all_designs",
    "analytic_design_cer",
    "analytic_state_cer",
    "block_error_rate",
    "capacity_vs_hard_errors",
    "design_by_name",
    "design_cer",
    "escalation_schedule",
    "fig3_state_sweep",
    "fig8_design_sweep",
    "four_lc_cells",
    "four_level_naive",
    "four_level_optimal",
    "four_level_smart",
    "meets_nonvolatility",
    "optimize_mapping",
    "permutation_cells",
    "retention_time_s",
    "state_cer",
    "three_level_naive",
    "three_level_optimal",
    "three_on_two_cells",
]

# Extended subsystems (related-work substrates and Section-8 generalizations).
from repro.cells.sensing import (
    FixedSensing,
    ReferenceCellSensing,
    SensingPolicy,
    TimeAwareSensing,
)
from repro.coding.enumerative import EnumerativeCode, best_group
from repro.coding.smart import HelmetSmartCode
from repro.core.managed import ManagedPCMDevice
from repro.sim.controller import PCMController, WritePolicy
from repro.wearout.remap import PoolExhausted, RemapDirectory, lifetime_with_remapping
from repro.wearout.wear_leveling import StartGap, simulate_wear, wear_stats

__all__ += [
    "EnumerativeCode",
    "FixedSensing",
    "HelmetSmartCode",
    "ManagedPCMDevice",
    "PCMController",
    "PoolExhausted",
    "ReferenceCellSensing",
    "RemapDirectory",
    "SensingPolicy",
    "StartGap",
    "TimeAwareSensing",
    "WritePolicy",
    "best_group",
    "lifetime_with_remapping",
    "simulate_wear",
    "wear_stats",
]

from repro.cells.program import IterativeWriteModel, WriteOutcome
from repro.workloads.synthetic import (
    Trace,
    interleave,
    pointer_chase_trace,
    random_trace,
    stream_trace,
    zipfian_trace,
)
from repro.workloads.tracefile import load_trace, save_trace

__all__ += [
    "IterativeWriteModel",
    "Trace",
    "WriteOutcome",
    "interleave",
    "load_trace",
    "pointer_chase_trace",
    "random_trace",
    "save_trace",
    "stream_trace",
    "zipfian_trace",
]

from repro.coding.nlevel_codec import NLevelBlockCodec, gray_sequence

__all__ += ["NLevelBlockCodec", "gray_sequence"]

from repro.coding.smart import FrequencySmartCode

__all__ += ["FrequencySmartCode"]

from repro.montecarlo.results_cache import ResultsCache

__all__ += ["ResultsCache"]

from repro.campaign import (
    CampaignScheduler,
    CampaignSpec,
    RunStore,
    builtin_campaign,
    campaign_from_dict,
    campaign_from_toml,
)

__all__ += [
    "CampaignScheduler",
    "CampaignSpec",
    "RunStore",
    "builtin_campaign",
    "campaign_from_dict",
    "campaign_from_toml",
]

from repro.fleet import FleetConfig, FleetEngine, FleetSummary, fleet_mc, stress_config

__all__ += [
    "FleetConfig",
    "FleetEngine",
    "FleetSummary",
    "fleet_mc",
    "stress_config",
]
