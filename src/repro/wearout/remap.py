"""Fine-grained block remapping (FREE-p style [39], Section 6.4).

Mark-and-spare tolerates six wearout failures per block; the paper notes
that blocks exceeding that budget can be handled by combining with
fine-grained remapping "to provide end-to-end protection".  FREE-p's
idea: a worn-out block's last service is to store a pointer to its
replacement, so no dedicated remap table is needed; here we model the
controller-visible effect — a remap directory backed by a spare-block
pool — and the lifetime it buys.

Used by :class:`ManagedDevice`-style wrappers and the lifetime ablation
benchmark.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.montecarlo.rng import make_rng

__all__ = ["RemapDirectory", "PoolExhausted", "lifetime_with_remapping"]


class PoolExhausted(Exception):
    """No spare blocks left: the device has reached end of life."""


@dataclasses.dataclass
class RemapDirectory:
    """Logical-block -> physical-block indirection with a spare pool.

    Physical blocks ``0 .. n_blocks-1`` are the primary space; blocks
    ``n_blocks .. n_blocks + n_spare_blocks - 1`` form the pool.  A
    remapped block may itself wear out and be remapped again (chains are
    collapsed eagerly, as FREE-p's pointer-chasing hardware does after
    the first access).
    """

    n_blocks: int
    n_spare_blocks: int

    def __post_init__(self) -> None:
        if self.n_blocks < 1 or self.n_spare_blocks < 0:
            raise ValueError("invalid geometry")
        self._map = np.arange(self.n_blocks, dtype=np.int64)
        self._next_spare = self.n_blocks
        self.remaps = 0

    @property
    def spares_left(self) -> int:
        return self.n_blocks + self.n_spare_blocks - self._next_spare

    def translate(self, logical: int) -> int:
        if not 0 <= logical < self.n_blocks:
            raise IndexError(f"logical block {logical} out of range")
        return int(self._map[logical])

    def retire(self, logical: int) -> int:
        """Retire a logical block's current backing; returns the new
        physical block, raising :class:`PoolExhausted` when out."""
        if self.spares_left == 0:
            raise PoolExhausted(
                f"{self.n_spare_blocks} spare blocks all consumed"
            )
        new_phys = self._next_spare
        self._next_spare += 1
        self._map[logical] = new_phys
        self.remaps += 1
        return new_phys


def lifetime_with_remapping(
    n_blocks: int,
    n_spare_blocks: int,
    failures_per_block_budget: int,
    mean_endurance: float,
    endurance_sigma: float,
    cells_per_block: int = 354,
    seed: int = 0,
    max_multiple: float = 40.0,
) -> dict[str, float]:
    """Monte Carlo device lifetime (writes per block until pool exhaustion).

    Every block fails once ``failures_per_block_budget + 1`` of its cells
    exceed their endurance (mark-and-spare absorbs the budget); a failed
    block is remapped to a spare until the pool runs dry.  Returns the
    write count (per block, uniform traffic) at device end-of-life, and
    the count at *first* block failure for comparison — the gap is what
    remapping buys.

    The per-cell endurance distribution matches
    :class:`repro.cells.faults.WearoutModel`.
    """
    rng = make_rng(seed)
    total_blocks = n_blocks + n_spare_blocks

    def block_lifetimes(n: int) -> np.ndarray:
        # A block dies at the (budget+1)-th smallest cell endurance.
        e = 10 ** rng.normal(
            np.log10(mean_endurance), endurance_sigma, (n, cells_per_block)
        )
        k = failures_per_block_budget
        return np.partition(e, k, axis=1)[:, k]

    import heapq

    lifetimes = block_lifetimes(total_blocks)
    primary = np.sort(lifetimes[:n_blocks])
    first_failure = float(primary[0])

    # Uniform traffic: all blocks age together; each failure consumes one
    # spare, which starts aging (unworn) the moment it is activated.
    heap = list(primary)
    heapq.heapify(heap)
    spare_pool = list(lifetimes[n_blocks:])
    horizon = max_multiple * mean_endurance
    failures = 0
    device_dead_at = horizon
    while heap:
        t = heapq.heappop(heap)
        failures += 1
        if not spare_pool:
            device_dead_at = t
            break
        life = spare_pool.pop()
        if t + life < horizon:
            heapq.heappush(heap, t + life)

    return {
        "first_block_failure_writes": first_failure,
        "device_lifetime_writes": float(device_dead_at),
        "lifetime_gain": float(device_dead_at / first_failure),
        "failures_absorbed": float(failures),
    }
