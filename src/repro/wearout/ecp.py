"""Error-Correcting Pointers (ECP) for SLC and MLC PCM (Figure 14).

ECP [27] tolerates wearout (stuck-at) failures by pairing each failed
cell with a pointer + replacement cell.  The original design targets
SLC; the paper adapts it to 4LC-PCM (Figure 14): an 8-bit pointer into a
256-cell block is stored in four 2-bit cells, plus one replacement cell —
five cells per corrected failure — and one extra cell holds the "full"
flag, giving 31 cells for ECP-6.

Entry priority follows the original ECP: a *later* entry may point at the
replacement cell of an earlier one (correcting a worn-out ECP cell), so
entries are applied first-to-last with later entries winning.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

__all__ = ["ECPConfig", "ECPTable", "ecp_cells_slc", "ecp_cells_mlc"]


def ecp_cells_mlc(
    n_data_cells: int, n_entries: int, bits_per_cell: int = 2
) -> int:
    """Storage cost of ECP-n for an MLC block, in cells (Figure 14).

    Pointer bits are packed into MLC cells; each entry adds one
    replacement cell; one extra cell stores the full flag.
    """
    ptr_bits = max(1, math.ceil(math.log2(n_data_cells)))
    ptr_cells = math.ceil(ptr_bits / bits_per_cell)
    return n_entries * (ptr_cells + 1) + 1


def ecp_cells_slc(n_data_bits: int, n_entries: int) -> int:
    """Storage cost of ECP-n in SLC mode (1 bit per cell), in cells."""
    ptr_bits = max(1, math.ceil(math.log2(n_data_bits)))
    return n_entries * (ptr_bits + 1) + 1


@dataclasses.dataclass(frozen=True)
class ECPConfig:
    n_data_cells: int = 256
    n_entries: int = 6
    bits_per_cell: int = 2

    @property
    def pointer_bits(self) -> int:
        return max(1, math.ceil(math.log2(self.n_data_cells)))

    @property
    def total_cells(self) -> int:
        return ecp_cells_mlc(self.n_data_cells, self.n_entries, self.bits_per_cell)


class ECPTable:
    """Functional ECP state for one block."""

    def __init__(self, config: ECPConfig = ECPConfig()):
        self.config = config
        self._entries: list[tuple[int, int]] = []  # (pointer, replacement)

    @property
    def n_used(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return self.n_used >= self.config.n_entries

    def allocate(self, pointer: int, replacement_value: int) -> bool:
        """Record a failed cell; returns False when the table is full."""
        if not 0 <= pointer < self.config.n_data_cells:
            raise ValueError(f"pointer {pointer} out of range")
        if not 0 <= replacement_value < (1 << self.config.bits_per_cell):
            raise ValueError("replacement value out of cell range")
        if self.full:
            return False
        self._entries.append((pointer, replacement_value))
        return True

    def update(self, pointer: int, replacement_value: int) -> bool:
        """Refresh the replacement value of an existing entry (on write)."""
        for i in range(len(self._entries) - 1, -1, -1):
            if self._entries[i][0] == pointer:
                self._entries[i] = (pointer, replacement_value)
                return True
        return False

    def covers(self, pointer: int) -> bool:
        return any(p == pointer for p, _ in self._entries)

    def apply(self, states: np.ndarray) -> np.ndarray:
        """Substitute replacement values into a read cell-state array."""
        s = np.asarray(states, dtype=np.int64)
        if s.shape != (self.config.n_data_cells,):
            raise ValueError(
                f"expected {self.config.n_data_cells} states, got {s.shape}"
            )
        out = s.copy()
        for pointer, value in self._entries:  # later entries win
            out[pointer] = value
        return out
