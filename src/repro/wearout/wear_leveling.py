"""Start-Gap wear leveling (Qureshi et al. [26], Section 1 prior work).

PCM lines wear out under write-hot workloads; Start-Gap spreads writes
across the device with two registers and one spare line instead of a
remapping table:

- a **gap** line is kept empty; every ``gap_move_interval`` writes the
  line above the gap moves into it and the gap shifts down by one;
- once the gap has walked the whole device, **start** advances by one,
  rotating the logical-to-physical mapping.

The logical->physical translation is pure arithmetic (the paper's
appeal): ``physical = (logical + start) % N``, bumped by one if it is at
or past the gap.  Over time every logical line visits every physical
line, converting a hot spot into uniform wear.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["StartGap", "wear_stats", "simulate_wear"]


@dataclasses.dataclass
class StartGap:
    """Start-Gap address rotation over ``n_lines`` physical lines.

    One extra physical line (index ``n_lines``) serves as the roaming
    gap, so physical indices span ``0 .. n_lines``.
    """

    n_lines: int
    gap_move_interval: int = 100  # writes between gap moves (paper: 100)

    def __post_init__(self) -> None:
        if self.n_lines < 1:
            raise ValueError("need at least one line")
        if self.gap_move_interval < 1:
            raise ValueError("interval must be >= 1")
        self.start = 0
        self.gap = self.n_lines  # gap begins past the last line
        self._writes_since_move = 0
        self.gap_moves = 0
        self.rotations = 0

    # ------------------------------------------------------------------
    def translate(self, logical: int) -> int:
        """Logical line -> physical line (O(1), no tables)."""
        if not 0 <= logical < self.n_lines:
            raise IndexError(f"logical line {logical} out of range")
        phys = (logical + self.start) % self.n_lines
        if phys >= self.gap:
            phys += 1
        return phys

    def on_write(self) -> int | None:
        """Charge one write; returns the physical line whose contents
        must be copied when the gap moves (or ``None``)."""
        self._writes_since_move += 1
        if self._writes_since_move < self.gap_move_interval:
            return None
        self._writes_since_move = 0
        self.gap_moves += 1
        if self.gap == 0:
            # Gap wraps to the top; the start register advances.
            self.gap = self.n_lines
            self.start = (self.start + 1) % self.n_lines
            self.rotations += 1
            return None
        moved = self.gap - 1  # line above the gap slides into it
        self.gap -= 1
        return moved

    @property
    def write_overhead(self) -> float:
        """Extra writes per demand write (1 copy per interval)."""
        return 1.0 / self.gap_move_interval


def wear_stats(write_counts: np.ndarray) -> dict[str, float]:
    """Summary of a wear distribution: max/mean ratio is the leveling
    figure of merit (1.0 = perfectly level)."""
    w = np.asarray(write_counts, dtype=float)
    if w.size == 0 or np.all(w == 0):
        raise ValueError("no writes recorded")
    mean = float(np.mean(w))
    return {
        "max": float(np.max(w)),
        "mean": mean,
        "max_over_mean": float(np.max(w)) / mean if mean else np.inf,
        "cv": float(np.std(w) / mean) if mean else np.inf,
    }


def simulate_wear(
    n_lines: int,
    writes: np.ndarray,
    leveler: StartGap | None = None,
) -> np.ndarray:
    """Physical per-line write counts for a logical write stream.

    ``writes`` is a sequence of logical line indices; with a leveler the
    gap-move copy writes are charged too.
    """
    counts = np.zeros(n_lines + (1 if leveler is not None else 0), dtype=np.int64)
    for logical in np.asarray(writes, dtype=np.int64):
        if leveler is None:
            counts[int(logical)] += 1
            continue
        counts[leveler.translate(int(logical))] += 1
        moved = leveler.on_write()
        if moved is not None:
            # The copy reads physical ``moved`` and writes it into the old
            # gap slot at ``moved + 1``; only the write wears a cell.
            counts[moved + 1] += 1
    return counts
