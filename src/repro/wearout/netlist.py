"""Gate-level model of the mark-and-spare correction logic (Figs 12-13).

Each correction stage consists of an OR-gate chain over the INV flags and
a row of 2:1 MUXes that shift data pairs left past the first marked pair.
The OR chain is a *prefix-OR* network; the paper shows the O(n) ripple
form and an O(log n) Sklansky form, and mentions Kogge-Stone as an
alternative.  We build all three as explicit gate lists, evaluate them,
and report gate count and depth — reproducing the Figure 13 latency
argument.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = [
    "PrefixNetwork",
    "ripple_prefix_or",
    "sklansky_prefix_or",
    "kogge_stone_prefix_or",
    "mux_stage",
    "NETWORK_BUILDERS",
]


@dataclasses.dataclass(frozen=True)
class PrefixNetwork:
    """An explicit 2-input OR network computing all prefix ORs.

    ``gates`` is a topologically ordered list of
    ``(out_node, in_a, in_b)``; nodes ``0..n-1`` are the inputs, outputs
    are published in ``outputs[i]`` = node holding ``a_0 | ... | a_i``.
    """

    n: int
    gates: tuple[tuple[int, int, int], ...]
    outputs: tuple[int, ...]
    name: str

    @property
    def gate_count(self) -> int:
        return len(self.gates)

    @property
    def depth(self) -> int:
        """Longest gate path from any input to any output."""
        depths = {i: 0 for i in range(self.n)}
        for out, a, b in self.gates:
            depths[out] = 1 + max(depths[a], depths[b])
        return max((depths[o] for o in self.outputs), default=0)

    def evaluate(self, inputs: np.ndarray) -> np.ndarray:
        """Prefix ORs of a boolean input vector (also vectorized over rows)."""
        x = np.atleast_2d(np.asarray(inputs, dtype=bool))
        if x.shape[1] != self.n:
            raise ValueError(f"expected {self.n} inputs, got {x.shape[1]}")
        max_node = max(
            [self.n - 1]
            + [out for out, _, _ in self.gates]
        )
        nodes = np.zeros((x.shape[0], max_node + 1), dtype=bool)
        nodes[:, : self.n] = x
        for out, a, b in self.gates:
            nodes[:, out] = nodes[:, a] | nodes[:, b]
        result = nodes[:, list(self.outputs)]
        return result[0] if np.asarray(inputs).ndim == 1 else result


def ripple_prefix_or(n: int) -> PrefixNetwork:
    """O(n)-depth serial chain, Figure 13(a)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    gates: list[tuple[int, int, int]] = []
    outputs = [0]
    next_node = n
    prev = 0
    for i in range(1, n):
        gates.append((next_node, prev, i))
        outputs.append(next_node)
        prev = next_node
        next_node += 1
    return PrefixNetwork(n=n, gates=tuple(gates), outputs=tuple(outputs), name="ripple")


def sklansky_prefix_or(n: int) -> PrefixNetwork:
    """Divide-and-conquer prefix network, O(log n) depth, Figure 13(b)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    gates: list[tuple[int, int, int]] = []
    cur = list(range(n))  # node currently holding prefix ending at i
    next_node = n
    span = 1
    while span < n:
        for i in range(n):
            # combine blocks: positions whose (i // span) is odd take the
            # last node of the previous block
            if (i // span) % 2 == 1:
                src = ((i // span) * span) - 1
                gates.append((next_node, cur[src], cur[i]))
                cur[i] = next_node
                next_node += 1
        span *= 2
    return PrefixNetwork(n=n, gates=tuple(gates), outputs=tuple(cur), name="sklansky")


def kogge_stone_prefix_or(n: int) -> PrefixNetwork:
    """Kogge-Stone prefix network: O(log n) depth, minimal fanout."""
    if n < 1:
        raise ValueError("n must be >= 1")
    gates: list[tuple[int, int, int]] = []
    cur = list(range(n))
    next_node = n
    dist = 1
    while dist < n:
        new = cur[:]
        for i in range(dist, n):
            gates.append((next_node, cur[i - dist], cur[i]))
            new[i] = next_node
            next_node += 1
        cur = new
        dist *= 2
    return PrefixNetwork(
        n=n, gates=tuple(gates), outputs=tuple(cur), name="kogge-stone"
    )


NETWORK_BUILDERS = {
    "ripple": ripple_prefix_or,
    "sklansky": sklansky_prefix_or,
    "kogge-stone": kogge_stone_prefix_or,
}


def mux_stage(
    values: np.ndarray, inv_flags: np.ndarray, network: PrefixNetwork
) -> tuple[np.ndarray, np.ndarray]:
    """One mark-and-spare correction stage (Figure 12) at the gate level.

    MUX select signals are the prefix ORs of the INV flags: every position
    at or after the first INV pair takes its right-hand neighbour,
    squeezing that pair out.  Returns the shifted ``(values, inv_flags)``
    (the vacated last slot reads as value 0 / flag False, matching spares
    exhausted).
    """
    v = np.asarray(values)
    f = np.asarray(inv_flags, dtype=bool)
    if v.shape != f.shape or v.ndim != 1:
        raise ValueError("values and inv_flags must be equal-length vectors")
    if network.n != v.size:
        raise ValueError(f"network width {network.n} != vector size {v.size}")
    sel = network.evaluate(f)
    shifted_v = np.append(v[1:], 0)
    shifted_f = np.append(f[1:], False)
    return np.where(sel, shifted_v, v), np.where(sel, shifted_f, f)
