"""Mark-and-spare wearout tolerance for 3-ON-2 blocks (Section 6.4).

A block holds ``n_data_pairs`` data pairs followed by ``n_spare_pairs``
spare pairs (Figure 10: a real 64B system has 171 data pairs and 6 spare
pairs, i.e. 342 + 12 cells).  When write-and-verify detects a worn-out
cell, the containing pair is *marked* by programming it to the INV state
([S4, S4]) and all subsequent data shift one pair toward the spares —
costing exactly two spare cells per tolerated failure.

The read path (Figure 12) squeezes marked pairs out with one MUX stage
per tolerated failure; both a functional vectorized corrector and the
gate-level stage simulation (via :mod:`repro.wearout.netlist`) are
provided, and tests assert they agree.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.three_on_two import INV_VALUE
from repro.wearout.netlist import (
    NETWORK_BUILDERS,
    PrefixNetwork,
    mux_stage,
)

__all__ = [
    "MarkAndSpareConfig",
    "SpareExhausted",
    "MarkAndSpareBlock",
    "correct_values",
    "correct_values_batch",
]


class SpareExhausted(Exception):
    """More marked pairs than spare pairs: block must be remapped."""


@dataclasses.dataclass(frozen=True)
class MarkAndSpareConfig:
    """Geometry of a mark-and-spare block (defaults: the paper's 64B block)."""

    n_data_pairs: int = 171
    n_spare_pairs: int = 6

    @property
    def n_pairs(self) -> int:
        return self.n_data_pairs + self.n_spare_pairs

    @property
    def n_cells(self) -> int:
        return 2 * self.n_pairs

    @property
    def spare_cells_per_failure(self) -> int:
        return 2


def correct_values(
    values: np.ndarray,
    config: MarkAndSpareConfig = MarkAndSpareConfig(),
    inv_value: int = INV_VALUE,
) -> np.ndarray:
    """Functional mark-and-spare correction.

    ``values`` are the raw pair values of a whole block (data + spares),
    with marked pairs equal to :data:`INV_VALUE`.  Returns the
    ``n_data_pairs`` corrected data values, raising
    :class:`SpareExhausted` when more pairs are marked than spares exist.
    """
    v = np.asarray(values, dtype=np.int64)
    if v.shape != (config.n_pairs,):
        raise ValueError(f"expected {config.n_pairs} pair values, got {v.shape}")
    good = v[v != inv_value]
    n_marked = config.n_pairs - good.size
    if n_marked > config.n_spare_pairs:
        raise SpareExhausted(
            f"{n_marked} marked pairs exceed {config.n_spare_pairs} spares"
        )
    return good[: config.n_data_pairs]


def correct_values_batch(
    values: np.ndarray,
    config: MarkAndSpareConfig = MarkAndSpareConfig(),
    inv_value: int = INV_VALUE,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized mark-and-spare correction of many blocks at once.

    ``values`` is ``(n_blocks, n_pairs)``; returns ``(data_values,
    n_marked, exhausted)`` where ``data_values`` is ``(n_blocks,
    n_data_pairs)``, ``n_marked`` counts each block's marked pairs and
    ``exhausted`` flags blocks whose marks exceed the spare budget
    (:func:`correct_values` raises :class:`SpareExhausted` there instead;
    the data rows of exhausted blocks are unspecified).

    Row-for-row bit-identical to looping :func:`correct_values`: a stable
    argsort of the INV flags moves every non-marked pair to the front of
    its row in original order — exactly the squeeze the MUX chain of
    Figure 12 performs — and the first ``n_data_pairs`` columns are the
    recovered data.
    """
    v = np.asarray(values)
    if v.dtype.kind not in "iu":
        v = v.astype(np.int64)
    if v.ndim != 2 or v.shape[1] != config.n_pairs:
        raise ValueError(
            f"expected (n_blocks, {config.n_pairs}) pair values, got {v.shape}"
        )
    inv = v == inv_value
    n_marked = inv.sum(axis=1)
    exhausted = n_marked > config.n_spare_pairs
    data = v[:, : config.n_data_pairs].copy()
    # Dirty-row dispatch: only rows with at least one marked pair need
    # the squeeze; in a datapath read almost every row is mark-free.
    rows = np.nonzero(n_marked)[0]
    if rows.size:
        order = np.argsort(inv[rows], axis=1, kind="stable")
        squeezed = np.take_along_axis(v[rows], order, axis=1)
        data[rows] = squeezed[:, : config.n_data_pairs]
    return data, n_marked, exhausted


def correct_values_gate_level(
    values: np.ndarray,
    config: MarkAndSpareConfig = MarkAndSpareConfig(),
    network: str = "sklansky",
    inv_value: int = INV_VALUE,
) -> np.ndarray:
    """Gate-level correction: one MUX stage per tolerated failure.

    Mirrors Figure 12 exactly; used by tests to validate the functional
    path and by the Figure 13 benchmark for gate counts/depths.
    """
    v = np.asarray(values, dtype=np.int64)
    if v.shape != (config.n_pairs,):
        raise ValueError(f"expected {config.n_pairs} pair values, got {v.shape}")
    net: PrefixNetwork = NETWORK_BUILDERS[network](config.n_pairs)
    flags = v == inv_value
    if int(flags.sum()) > config.n_spare_pairs:
        raise SpareExhausted(
            f"{int(flags.sum())} marked pairs exceed {config.n_spare_pairs} spares"
        )
    vals = v.copy()
    for _ in range(config.n_spare_pairs):
        vals, flags = mux_stage(vals, flags, net)
    return vals[: config.n_data_pairs]


class MarkAndSpareBlock:
    """Write-side state of one mark-and-spare block.

    Tracks which physical pairs are marked and lays data out around them.
    ``inv_value`` generalizes to enumerative group codecs whose INV marker
    is not 8 (see :mod:`repro.coding.enumerative`).
    """

    def __init__(
        self,
        config: MarkAndSpareConfig = MarkAndSpareConfig(),
        inv_value: int = INV_VALUE,
    ):
        self.config = config
        self.inv_value = inv_value
        self._marked = np.zeros(config.n_pairs, dtype=bool)

    @property
    def n_marked(self) -> int:
        return int(self._marked.sum())

    @property
    def marked_pairs(self) -> np.ndarray:
        return np.nonzero(self._marked)[0]

    @property
    def spares_left(self) -> int:
        """Unused spare-pair budget (0 means the next mark exhausts the block)."""
        return self.config.n_spare_pairs - self.n_marked

    def can_mark(self) -> bool:
        return self.n_marked < self.config.n_spare_pairs

    def mark(self, pair_index: int) -> None:
        """Mark the pair containing a worn-out cell."""
        if not 0 <= pair_index < self.config.n_pairs:
            raise ValueError(f"pair index {pair_index} out of range")
        if self._marked[pair_index]:
            return
        if not self.can_mark():
            raise SpareExhausted(
                f"all {self.config.n_spare_pairs} spares already consumed"
            )
        self._marked[pair_index] = True

    def layout(self, data_values: np.ndarray) -> np.ndarray:
        """Physical pair values for a write: data skip marked pairs.

        Marked pairs are programmed to INV; unused spare pairs are written
        with value 0.
        """
        d = np.asarray(data_values, dtype=np.int64)
        if d.shape != (self.config.n_data_pairs,):
            raise ValueError(
                f"expected {self.config.n_data_pairs} data values, got {d.shape}"
            )
        if np.any((d < 0) | (d >= self.inv_value)):
            raise ValueError(
                f"data pair values must be in [0, {self.inv_value})"
            )
        out = np.zeros(self.config.n_pairs, dtype=np.int64)
        out[self._marked] = self.inv_value
        free = np.nonzero(~self._marked)[0]
        out[free[: d.size]] = d
        return out

    def read(self, raw_values: np.ndarray) -> np.ndarray:
        """Recover data values from a sensed block (functional path)."""
        return correct_values(raw_values, self.config, self.inv_value)
