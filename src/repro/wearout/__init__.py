"""Hard-error tolerance: mark-and-spare, ECP, prefix-OR netlists, wear leveling, remapping."""
