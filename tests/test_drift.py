"""Drift law, crossing times and tier escalation."""

import numpy as np
import pytest

from repro.cells.drift import (
    ESCALATION_MODES,
    NO_ESCALATION,
    PAPER_ESCALATION,
    DriftTier,
    TieredDrift,
    crossing_time,
    drifted_lr,
    escalation_schedule,
)


class TestDriftLaw:
    def test_no_drift_at_t0(self):
        assert drifted_lr(4.0, 0.05, 1.0) == pytest.approx(4.0)

    def test_log_linear_growth(self):
        assert drifted_lr(4.0, 0.05, 100.0) == pytest.approx(4.0 + 0.05 * 2)

    def test_vectorized(self):
        lr0 = np.array([3.0, 4.0])
        alpha = np.array([0.0, 0.1])
        out = drifted_lr(lr0, alpha, 1000.0)
        assert out[0] == pytest.approx(3.0)
        assert out[1] == pytest.approx(4.3)

    def test_rejects_t_before_t0(self):
        with pytest.raises(ValueError):
            drifted_lr(4.0, 0.05, 0.5)

    def test_zero_alpha_never_moves(self):
        assert drifted_lr(4.0, 0.0, 1e12) == pytest.approx(4.0)


class TestCrossingTime:
    def test_basic_inversion(self):
        t = crossing_time(4.0, 0.05, 4.5)
        assert drifted_lr(4.0, 0.05, float(t)) == pytest.approx(4.5)

    def test_already_crossed(self):
        assert crossing_time(4.6, 0.05, 4.5) == pytest.approx(1.0)

    def test_zero_alpha_never_crosses(self):
        assert crossing_time(4.0, 0.0, 4.5) == np.inf

    def test_vectorized_mixed(self):
        out = crossing_time(
            np.array([4.0, 4.6, 4.0]), np.array([0.05, 0.01, 0.0]), 4.5
        )
        assert np.isfinite(out[0])
        assert out[1] == pytest.approx(1.0)
        assert out[2] == np.inf


class TestSchedules:
    def test_paper_escalation_single_tier(self):
        assert len(PAPER_ESCALATION.tiers) == 1
        tier = PAPER_ESCALATION.tiers[0]
        assert tier.lr_break == 4.5
        assert tier.mu_alpha == pytest.approx(0.06)
        assert tier.sigma_alpha == pytest.approx(0.024)

    def test_default_mode_independent(self):
        assert PAPER_ESCALATION.mode == "independent"

    def test_no_escalation_empty(self):
        assert NO_ESCALATION.tiers == ()

    def test_tiers_must_be_sorted(self):
        with pytest.raises(ValueError):
            TieredDrift(
                tiers=(DriftTier(5.0, 0.1, 0.04), DriftTier(4.5, 0.06, 0.024))
            )

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            TieredDrift(tiers=(), mode="psychic")

    def test_escalation_schedule_factory(self):
        for mode in ESCALATION_MODES:
            s = escalation_schedule(mode)
            assert s.mode == mode
            assert s.tiers == PAPER_ESCALATION.tiers

    def test_tiers_between(self):
        s = PAPER_ESCALATION
        assert s.tiers_between(-np.inf, 5.0) == [s.tiers[0]]
        assert s.tiers_between(-np.inf, 4.5) == []  # strict
        assert s.tiers_between(4.6, 6.0) == []


class TestEscalatedAlpha:
    tier = DriftTier(4.5, 0.06, 0.024)

    def test_correlated_keeps_quantile(self):
        s = escalation_schedule("correlated")
        z = np.array([0.0, 2.0, -2.0])
        out = s.escalated_alpha(self.tier, np.zeros(3), z, 0.02)
        assert out[0] == pytest.approx(0.06)
        assert out[1] == pytest.approx(0.06 + 2 * 0.024)
        assert out[2] == pytest.approx(0.06 - 2 * 0.024)

    def test_mean_mode(self):
        s = escalation_schedule("mean")
        out = s.escalated_alpha(self.tier, np.array([0.01, 0.05]), np.zeros(2), 0.02)
        assert np.allclose(out, 0.06)

    def test_offset_mode(self):
        s = escalation_schedule("offset")
        out = s.escalated_alpha(self.tier, np.array([0.025]), np.zeros(1), 0.02)
        assert out[0] == pytest.approx(0.025 + 0.04)

    def test_independent_requires_fresh(self):
        s = escalation_schedule("independent")
        with pytest.raises(ValueError):
            s.escalated_alpha(self.tier, np.zeros(2), np.zeros(2), 0.02)

    def test_independent_uses_fresh(self):
        s = escalation_schedule("independent")
        out = s.escalated_alpha(
            self.tier, np.zeros(2), np.zeros(2), 0.02, z_fresh=np.array([0.0, 1.0])
        )
        assert out[0] == pytest.approx(0.06)
        assert out[1] == pytest.approx(0.084)

    def test_never_negative(self):
        s = escalation_schedule("correlated")
        out = s.escalated_alpha(
            self.tier, np.zeros(1), np.array([-10.0]), 0.02
        )
        assert out[0] == 0.0
