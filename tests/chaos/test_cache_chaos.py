"""ResultsCache integrity: a corrupted entry is never served.

Every corruption mode quarantines the blob (miss + ``stats.quarantined``),
and a failed store degrades to an uncached computation, never an error.
"""

import numpy as np
import pytest

from repro.chaos import FaultPlan, FaultSpec, activate, builtin_plan
from repro.montecarlo.results_cache import ResultsCache

KEY = "k" * 64
N = 6


def make_cache(tmp_path):
    return ResultsCache(cache_dir=tmp_path / "cache")


def valid_counts():
    return np.array([0, 1, 1, 4, 9, 9], dtype=np.int64)


def put_entry(cache, counts=None):
    cache.put_counts(KEY, valid_counts() if counts is None else counts)
    assert cache._path(KEY).is_file()


def fresh_view(cache):
    """Same directory, empty memory front — forces the disk read."""
    return ResultsCache(cache_dir=cache.cache_dir)


def assert_quarantined(cache, expect_quarantine=True):
    """The corrupted entry reads as a miss and is moved aside."""
    assert cache.get_counts(KEY, expected_len=N) is None
    assert cache.stats.misses == 1
    assert not cache._path(KEY).is_file()
    if expect_quarantine:
        assert cache.stats.quarantined == 1
        assert cache.quarantined() == [KEY]
        assert cache.entries() == []
    # Once quarantined, the same key is a plain miss (no double count).
    assert cache.get_counts(KEY, expected_len=N) is None
    assert cache.stats.quarantined == (1 if expect_quarantine else 0)


class TestCorruptionModes:
    def test_garbage_bytes_overwrite(self, tmp_path):
        cache = make_cache(tmp_path)
        put_entry(cache)
        path = cache._path(KEY)
        with open(path, "r+b") as f:
            f.write(b"\xde\xad\xbe\xef" * 4)  # clobber the npy magic
        assert_quarantined(fresh_view(cache))

    def test_truncated_blob(self, tmp_path):
        cache = make_cache(tmp_path)
        put_entry(cache)
        path = cache._path(KEY)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        assert_quarantined(fresh_view(cache))

    def test_empty_file(self, tmp_path):
        cache = make_cache(tmp_path)
        put_entry(cache)
        cache._path(KEY).write_bytes(b"")
        assert_quarantined(fresh_view(cache))

    def test_pickled_payload_is_refused(self, tmp_path):
        cache = make_cache(tmp_path)
        put_entry(cache)
        np.save(
            open(cache._path(KEY), "wb"),
            np.array([{"not": "counts"}], dtype=object),
            allow_pickle=True,
        )
        assert_quarantined(fresh_view(cache))

    def test_wrong_length(self, tmp_path):
        cache = make_cache(tmp_path)
        put_entry(cache, np.arange(N + 3, dtype=np.int64))
        assert_quarantined(fresh_view(cache))

    def test_wrong_dtype(self, tmp_path):
        cache = make_cache(tmp_path)
        put_entry(cache)
        np.save(open(cache._path(KEY), "wb"), np.linspace(0, 1, N))
        assert_quarantined(fresh_view(cache))

    def test_wrong_ndim(self, tmp_path):
        cache = make_cache(tmp_path)
        put_entry(cache)
        np.save(open(cache._path(KEY), "wb"), np.zeros((2, 3), dtype=np.int64))
        assert_quarantined(fresh_view(cache))

    def test_negative_counts(self, tmp_path):
        cache = make_cache(tmp_path)
        put_entry(cache)
        np.save(
            open(cache._path(KEY), "wb"),
            np.array([-1, 0, 1, 2, 3, 4], dtype=np.int64),
        )
        assert_quarantined(fresh_view(cache))

    def test_non_monotone_counts(self, tmp_path):
        cache = make_cache(tmp_path)
        put_entry(cache)
        np.save(
            open(cache._path(KEY), "wb"),
            np.array([0, 5, 3, 6, 7, 8], dtype=np.int64),
        )
        assert_quarantined(fresh_view(cache))

    def test_deleted_file_is_a_plain_miss(self, tmp_path):
        cache = make_cache(tmp_path)
        put_entry(cache)
        cache._path(KEY).unlink()
        view = fresh_view(cache)
        assert view.get_counts(KEY, expected_len=N) is None
        assert view.stats.misses == 1
        assert view.stats.quarantined == 0


class TestRecovery:
    def test_put_after_quarantine_restores_the_entry(self, tmp_path):
        cache = make_cache(tmp_path)
        put_entry(cache)
        cache._path(KEY).write_bytes(b"junk")
        view = fresh_view(cache)
        assert view.get_counts(KEY, expected_len=N) is None
        view.put_counts(KEY, valid_counts())
        restored = fresh_view(view).get_counts(KEY, expected_len=N)
        assert np.array_equal(restored, valid_counts())
        # The quarantined evidence is still on disk until clear().
        assert view.quarantined() == [KEY]

    def test_clear_removes_quarantined_blobs(self, tmp_path):
        cache = make_cache(tmp_path)
        put_entry(cache)
        cache._path(KEY).write_bytes(b"junk")
        view = fresh_view(cache)
        view.get_counts(KEY, expected_len=N)
        assert view.clear() == 0  # no live entries; count excludes quarantine
        assert view.quarantined() == []

    def test_valid_entry_unaffected(self, tmp_path):
        cache = make_cache(tmp_path)
        put_entry(cache)
        got = fresh_view(cache).get_counts(KEY, expected_len=N)
        assert np.array_equal(got, valid_counts())


class TestStoreErrors:
    def test_injected_oserror_degrades_to_uncached(self, tmp_path):
        cache = make_cache(tmp_path)
        plan = builtin_plan("cache-write-eio")
        with activate(plan) as fired:
            cache.put_counts(KEY, valid_counts())  # occurrence 0: EIO
            cache.put_counts("m" * 64, valid_counts())  # occurrence 1: EIO
            cache.put_counts("z" * 64, valid_counts())  # third write lands
        assert [f.point for f in fired] == ["cache.put", "cache.put"]
        assert cache.stats.store_errors == 2
        assert cache.stats.stores == 1
        assert cache.entries() == ["z" * 64]
        # No temp-file litter from the failed writes.
        assert list(cache.cache_dir.glob(".*.tmp")) == []
        # The failed stores are still fronted in memory for this instance,
        # but a fresh process sees a plain miss.
        assert np.array_equal(
            cache.get_counts(KEY, expected_len=N), valid_counts()
        )
        assert fresh_view(cache).get_counts(KEY, expected_len=N) is None


class TestChaosActions:
    def test_corrupt_action_quarantines_on_read(self, tmp_path):
        cache = make_cache(tmp_path)
        put_entry(cache)
        plan = FaultPlan(
            faults=(FaultSpec.make("cache.get", 0, "corrupt_file"),), seed=3
        )
        view = fresh_view(cache)
        with activate(plan) as fired:
            assert view.get_counts(KEY, expected_len=N) is None
        assert len(fired) == 1
        assert view.stats.quarantined == 1

    def test_truncate_action_quarantines_on_read(self, tmp_path):
        cache = make_cache(tmp_path)
        put_entry(cache)
        plan = FaultPlan(
            faults=(FaultSpec.make("cache.get", 0, "truncate_file"),), seed=3
        )
        view = fresh_view(cache)
        with activate(plan):
            assert view.get_counts(KEY, expected_len=N) is None
        assert view.stats.quarantined == 1

    def test_delete_action_is_a_plain_miss(self, tmp_path):
        cache = make_cache(tmp_path)
        put_entry(cache)
        plan = FaultPlan(
            faults=(FaultSpec.make("cache.get", 0, "delete_file"),), seed=3
        )
        view = fresh_view(cache)
        with activate(plan):
            assert view.get_counts(KEY, expected_len=N) is None
        assert view.stats.quarantined == 0

    def test_corruption_bytes_are_plan_deterministic(self, tmp_path):
        """Same plan seed, same garbage: the fault itself replays exactly."""
        blobs = []
        for trial in ("one", "two"):
            cache = ResultsCache(cache_dir=tmp_path / trial)
            put_entry(cache)
            plan = FaultPlan(
                faults=(FaultSpec.make("cache.get", 0, "corrupt_file"),), seed=77
            )
            view = fresh_view(cache)
            with activate(plan):
                view.get_counts(KEY, expected_len=N)
            blobs.append((cache.cache_dir / f"{KEY}.quarantined").read_bytes())
        assert blobs[0] == blobs[1]

    def test_match_targets_one_key(self, tmp_path):
        cache = make_cache(tmp_path)
        other = "o" * 64
        put_entry(cache)
        cache.put_counts(other, valid_counts())
        plan = FaultPlan(
            faults=(
                FaultSpec.make("cache.get", 0, "corrupt_file", match={"key": KEY}),
            ),
            seed=5,
        )
        view = fresh_view(cache)
        with activate(plan):
            assert np.array_equal(
                view.get_counts(other, expected_len=N), valid_counts()
            )
            assert view.get_counts(KEY, expected_len=N) is None
        assert view.stats.quarantined == 1


@pytest.mark.parametrize(
    "arr,ok",
    [
        (np.array([0, 0, 2], dtype=np.int64), True),
        (np.array([], dtype=np.int64), True),
        (np.array([0, 1], dtype=np.int32), True),
        (np.array([1, 0], dtype=np.int64), False),
        (np.array([-1, 0], dtype=np.int64), False),
        (np.array([0.0, 1.0]), False),
        (np.zeros((2, 2), dtype=np.int64), False),
        ("not an array", False),
    ],
)
def test_valid_counts_predicate(arr, ok):
    assert ResultsCache._valid_counts(arr, None) is ok


def test_valid_counts_length_check():
    arr = np.array([0, 1, 2], dtype=np.int64)
    assert ResultsCache._valid_counts(arr, 3)
    assert not ResultsCache._valid_counts(arr, 4)
