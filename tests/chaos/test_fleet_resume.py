"""Fleet campaigns crash mid-epoch and resume bit-identical.

The ``fleet.epoch`` fault point fires between population epochs inside
the sharded worker, so a crash there kills a campaign with a fleet shard
half-advanced.  Shard results are all-or-nothing (a shard's count matrix
is only cached after all its epochs complete), so resume either serves a
finished shard from the results cache or recomputes it from scratch —
either way the persisted summary must be *byte*-equal to a never-crashed
run.  Same harness shape as ``test_differential.py``: fresh scheduler
and cache instance per restart, exactly like a restarted process.
"""

import json

import pytest

from repro.campaign.scheduler import CampaignScheduler
from repro.campaign.spec import builtin_campaign
from repro.campaign.store import RunStore
from repro.chaos import FaultPlan, FaultSpec, InjectedCrash, activate
from repro.montecarlo.results_cache import ResultsCache

N_DEVICES = 30
MAX_RESUMES = 8


def fleet_spec():
    return builtin_campaign("fleet", n_samples=N_DEVICES, seed=0)


def run_clean(run_dir, cache_dir):
    result = CampaignScheduler(
        fleet_spec(),
        RunStore(run_dir),
        cache=ResultsCache(cache_dir=cache_dir),
        sleep=lambda _t: None,
    ).run()
    assert result.ok
    return result


def run_faulted(plan, run_dir, cache_dir):
    store = RunStore(run_dir)
    crashes = 0
    with activate(plan) as fired:
        for attempt in range(MAX_RESUMES):
            scheduler = CampaignScheduler(
                fleet_spec(),
                store,
                cache=ResultsCache(cache_dir=cache_dir),
                sleep=lambda _t: None,
            )
            try:
                result = scheduler.run(resume=attempt > 0)
            except InjectedCrash:
                crashes += 1
                continue
            return result, list(fired), crashes
    raise AssertionError(f"no recovery within {MAX_RESUMES} restarts")


@pytest.mark.parametrize("epoch", [0, 1, 2])
def test_crash_in_any_epoch_resumes_bit_identical(epoch, tmp_path):
    run_clean(tmp_path / "ref", tmp_path / "ref-cache")

    plan = FaultPlan(
        faults=(
            FaultSpec.make("fleet.epoch", occurrence=epoch, action="crash"),
        ),
        seed=0,
    )
    result, fired, crashes = run_faulted(
        plan, tmp_path / "faulted", tmp_path / "faulted-cache"
    )
    assert result.ok and result.exit_code == 0
    assert crashes == 1
    assert [(f.point, f.occurrence) for f in fired] == [("fleet.epoch", epoch)]

    ref, faulted = RunStore(tmp_path / "ref"), RunStore(tmp_path / "faulted")
    jobs = sorted(ref.completed_jobs())
    assert jobs == sorted(faulted.completed_jobs()) == ["fleet-population"]
    for job_id in jobs:
        assert (
            faulted.result_path(job_id).read_bytes()
            == ref.result_path(job_id).read_bytes()
        ), f"job {job_id} diverged after crash in epoch {epoch}"


def test_double_crash_and_warm_shards_resume_bit_identical(tmp_path):
    """Two crashes across restarts, with the second restart finding some
    shards already cached (multi-shard layout via a task-level crash
    after a completed shard would need shard_devices plumbing; here the
    warm path is exercised by the epoch-0 recrash reusing the cache dir
    of the first attempt)."""
    run_clean(tmp_path / "ref", tmp_path / "ref-cache")

    plan = FaultPlan(
        faults=(
            FaultSpec.make("fleet.epoch", occurrence=1, action="crash"),
            FaultSpec.make("fleet.epoch", occurrence=2, action="crash"),
        ),
        seed=0,
    )
    result, fired, crashes = run_faulted(
        plan, tmp_path / "faulted", tmp_path / "faulted-cache"
    )
    assert result.ok and crashes == 2
    assert {f.point for f in fired} == {"fleet.epoch"}

    ref, faulted = RunStore(tmp_path / "ref"), RunStore(tmp_path / "faulted")
    for job_id in sorted(ref.completed_jobs()):
        assert (
            faulted.result_path(job_id).read_bytes()
            == ref.result_path(job_id).read_bytes()
        )
    # The summary the scheduler returned matches the persisted reference.
    assert result.results["fleet-population"] == json.loads(
        ref.result_path("fleet-population").read_text()
    )


def test_warm_cache_resume_serves_shards_without_recompute(tmp_path):
    """If the fleet job's shards are already cached when the campaign
    (re)runs, the job completes with zero cache misses and the same
    bytes — the resume fast path."""
    cache_dir = tmp_path / "cache"
    run_clean(tmp_path / "first", cache_dir)

    cache = ResultsCache(cache_dir=cache_dir)
    result = CampaignScheduler(
        fleet_spec(),
        RunStore(tmp_path / "second"),
        cache=cache,
        sleep=lambda _t: None,
    ).run()
    assert result.ok
    assert cache.stats.misses == 0 and cache.stats.hits >= 1
    assert (
        RunStore(tmp_path / "second").result_path("fleet-population").read_bytes()
        == RunStore(tmp_path / "first").result_path("fleet-population").read_bytes()
    )
