"""Scheduler retry/backoff under injected worker faults: attempt counts
come from the event log, backoff delays from an injected sleep recorder,
and exhausted retries block exactly the transitive dependents."""

from repro.campaign.events import read_events
from repro.campaign.scheduler import CampaignScheduler
from repro.campaign.spec import campaign_from_dict
from repro.campaign.store import RunStore
from repro.chaos import FaultPlan, FaultSpec, activate


def diamond_spec(**overrides):
    """a -> b -> c plus independent d, on the instant ``capacity`` kind."""
    d = {
        "name": "retrying",
        "retries": 2,
        "backoff_s": 0.25,
        "backoff_factor": 4.0,
        "backoff_max_s": 0.5,
        "job": [
            {"id": "a", "kind": "capacity"},
            {"id": "b", "kind": "capacity", "needs": ["a"]},
            {"id": "c", "kind": "capacity", "needs": ["b"]},
            {"id": "d", "kind": "capacity"},
        ],
    }
    d.update(overrides)
    return campaign_from_dict(d)


def transient(job, *occurrences):
    return tuple(
        FaultSpec.make("scheduler.job", occ, "raise_transient", match={"job": job})
        for occ in occurrences
    )


def events_by_type(store, event):
    return [e for e in read_events(store.events_path) if e["event"] == event]


class SleepRecorder:
    def __init__(self):
        self.delays = []

    def __call__(self, delay):
        self.delays.append(delay)


class TestRetryBackoff:
    def test_one_transient_fault_costs_one_retry(self, tmp_path):
        sleeps = SleepRecorder()
        store = RunStore(tmp_path / "run")
        plan = FaultPlan(faults=transient("a", 0), seed=1)
        with activate(plan) as fired:
            result = CampaignScheduler(
                diamond_spec(), store, sleep=sleeps
            ).run()
        assert len(fired) == 1
        assert result.ok and result.exit_code == 0
        starts = events_by_type(store, "job_start")
        assert [e["attempt"] for e in starts if e["job"] == "a"] == [1, 2]
        assert all(
            e["attempt"] == 1 for e in starts if e["job"] != "a"
        ), "only the faulted job may retry"
        retries = events_by_type(store, "job_retry")
        assert [(e["job"], e["attempt"]) for e in retries] == [("a", 1)]
        assert "InjectedFault" in retries[0]["error"]
        assert sleeps.delays == [0.25]  # backoff_s * factor**0
        assert result.metrics["retries"] == 1

    def test_backoff_grows_and_caps(self, tmp_path):
        """Two consecutive faults on one job: delays follow
        ``backoff_s * factor**(attempt-1)`` capped at ``backoff_max_s``."""
        sleeps = SleepRecorder()
        store = RunStore(tmp_path / "run")
        plan = FaultPlan(faults=transient("b", 0, 1), seed=1)
        with activate(plan) as fired:
            result = CampaignScheduler(
                diamond_spec(), store, sleep=sleeps
            ).run()
        assert len(fired) == 2
        assert result.ok
        starts = events_by_type(store, "job_start")
        assert [e["attempt"] for e in starts if e["job"] == "b"] == [1, 2, 3]
        # 0.25 * 4**0 = 0.25; 0.25 * 4**1 = 1.0 -> capped at 0.5.
        assert sleeps.delays == [0.25, 0.5]
        delays_logged = [e["delay_s"] for e in events_by_type(store, "job_retry")]
        assert delays_logged == sleeps.delays

    def test_job_level_retries_override(self, tmp_path):
        spec = campaign_from_dict(
            {
                "name": "override",
                "retries": 0,
                "backoff_s": 0.0,
                "job": [{"id": "a", "kind": "capacity", "retries": 1}],
            }
        )
        store = RunStore(tmp_path / "run")
        plan = FaultPlan(faults=transient("a", 0), seed=1)
        with activate(plan):
            result = CampaignScheduler(spec, store, sleep=lambda _t: None).run()
        assert result.ok
        assert [e["attempt"] for e in events_by_type(store, "job_start")] == [1, 2]


class TestExhaustedRetries:
    def test_blocks_exactly_the_transitive_dependents(self, tmp_path):
        sleeps = SleepRecorder()
        store = RunStore(tmp_path / "run")
        # retries=2 allows 3 attempts; fault all three.
        plan = FaultPlan(faults=transient("a", 0, 1, 2), seed=1)
        with activate(plan) as fired:
            result = CampaignScheduler(
                diamond_spec(), store, sleep=sleeps
            ).run()
        assert len(fired) == 3
        assert result.states == {
            "a": "failed",
            "b": "blocked",
            "c": "blocked",
            "d": "done",
        }
        assert result.exit_code == 1
        failed = events_by_type(store, "job_failed")
        assert [(e["job"], e["attempts"]) for e in failed] == [("a", 3)]
        blocked = {e["job"]: e["cause"] for e in events_by_type(store, "job_blocked")}
        assert blocked == {"b": "a", "c": "a"}
        # Two backoffs happened (after attempts 1 and 2), none after the last.
        assert sleeps.delays == [0.25, 0.5]
        # Blocked jobs never started.
        started = {e["job"] for e in events_by_type(store, "job_start")}
        assert started == {"a", "d"}

    def test_midchain_failure_blocks_only_downstream(self, tmp_path):
        store = RunStore(tmp_path / "run")
        plan = FaultPlan(faults=transient("b", 0, 1, 2), seed=1)
        with activate(plan):
            result = CampaignScheduler(
                diamond_spec(), store, sleep=lambda _t: None
            ).run()
        assert result.states == {
            "a": "done",
            "b": "failed",
            "c": "blocked",
            "d": "done",
        }

    def test_failed_job_retries_on_resume_and_can_heal(self, tmp_path):
        """The injected fault is gone on the second run: resume re-runs
        only the failed job and the campaign converges to ok."""
        store = RunStore(tmp_path / "run")
        plan = FaultPlan(faults=transient("a", 0, 1, 2), seed=1)
        with activate(plan):
            first = CampaignScheduler(
                diamond_spec(), store, sleep=lambda _t: None
            ).run()
        assert not first.ok
        second = CampaignScheduler(
            diamond_spec(), store, sleep=lambda _t: None
        ).run(resume=True)
        assert second.ok
        assert second.states == {
            "a": "done",
            "b": "done",
            "c": "done",
            "d": "cached",
        }


def test_unmatched_fault_never_fires(tmp_path):
    store = RunStore(tmp_path / "run")
    plan = FaultPlan(
        faults=(FaultSpec.make("scheduler.job", 50, "raise_transient"),), seed=1
    )
    with activate(plan) as fired:
        result = CampaignScheduler(
            diamond_spec(), store, sleep=lambda _t: None
        ).run()
    assert result.ok
    assert fired == []
