"""FaultPlan / registry semantics: determinism, occurrence counting,
context matching, activation discipline, and RNG-stream isolation."""

import numpy as np
import pytest

from repro.chaos import (
    BUILTIN_PLANS,
    CHAOS_SPAWN_KEY,
    FAULT_POINTS,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    activate,
    builtin_plan,
    chaos_active,
    fault_point,
)
from repro.chaos.registry import ACTIONS
from repro.montecarlo.cer import state_cer
from repro.montecarlo.rng import block_rng


class TestFaultSpec:
    def test_make_sorts_mappings_into_tuples(self):
        spec = FaultSpec.make(
            "cache.get", args={"n_bytes": 4, "a": 1}, match={"key": "k", "b": 2}
        )
        assert spec.args == (("a", 1), ("n_bytes", 4))
        assert spec.match == (("b", 2), ("key", "k"))
        # Hashable by construction (frozen dataclass of tuples).
        hash(spec)

    def test_matches_is_subset_semantics(self):
        spec = FaultSpec.make("scheduler.job", match={"job": "b"})
        assert spec.matches({"job": "b", "attempt": 3})
        assert not spec.matches({"job": "a", "attempt": 1})
        assert not spec.matches({})
        assert FaultSpec.make("scheduler.job").matches({"anything": 1})

    def test_describe_names_point_occurrence_action(self):
        spec = FaultSpec.make("cache.get", 2, "corrupt_file", match={"key": "k"})
        text = spec.describe()
        assert "cache.get[2]" in text
        assert "corrupt_file" in text
        assert "key" in text


class TestFaultPlanRandom:
    def test_same_seed_same_plan(self):
        assert FaultPlan.random(7) == FaultPlan.random(7)
        assert FaultPlan.random(7, n_faults=5) == FaultPlan.random(7, n_faults=5)

    def test_different_seeds_differ(self):
        plans = {FaultPlan.random(s).faults for s in range(20)}
        assert len(plans) > 1

    def test_draws_only_recoverable_actions(self):
        for seed in range(25):
            for spec in FaultPlan.random(seed, n_faults=4).faults:
                assert spec.point in FAULT_POINTS
                info = FAULT_POINTS[spec.point]
                assert spec.action in info.recoverable_actions
                assert 0 <= spec.occurrence <= 3

    def test_points_restriction(self):
        plan = FaultPlan.random(3, n_faults=6, points=["cache.get"])
        assert {s.point for s in plan.faults} == {"cache.get"}

    def test_errors(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            FaultPlan.random(0, points=["nope"])
        with pytest.raises(ValueError, match="n_faults"):
            FaultPlan.random(0, n_faults=-1)
        with pytest.raises(ValueError, match="no recoverable actions"):
            FaultPlan.random(0, points=[])

    def test_rng_is_the_dedicated_chaos_stream(self):
        plan = FaultPlan(faults=(), seed=11)
        want = block_rng(11, (CHAOS_SPAWN_KEY,)).integers(0, 2**31, 8)
        got = plan.make_rng().integers(0, 2**31, 8)
        assert np.array_equal(want, got)


class TestBuiltinPlans:
    def test_lookup_and_error(self):
        assert builtin_plan("cache-corruption") is BUILTIN_PLANS["cache-corruption"]
        with pytest.raises(ValueError, match="unknown built-in fault plan"):
            builtin_plan("nope")

    def test_builtins_use_cataloged_points_and_actions(self):
        for name, plan in BUILTIN_PLANS.items():
            assert plan.faults, name
            for spec in plan.faults:
                assert spec.point in FAULT_POINTS, name
                assert spec.action in ACTIONS, name

    def test_describe_mentions_seed_and_every_fault(self):
        plan = builtin_plan("flaky-workers")
        text = plan.describe()
        assert f"seed {plan.seed}" in text
        for spec in plan.faults:
            assert spec.point in text


class TestActivation:
    def test_fault_point_is_noop_when_inactive(self):
        assert not chaos_active()
        fault_point("scheduler.job", job="x", attempt=1)  # must not raise

    def test_fires_exactly_at_nth_matching_call(self):
        plan = FaultPlan(
            faults=(FaultSpec.make("scheduler.job", occurrence=2),), seed=0
        )
        with activate(plan) as fired:
            assert chaos_active()
            fault_point("scheduler.job", job="a", attempt=1)
            fault_point("scheduler.job", job="a", attempt=2)
            with pytest.raises(InjectedFault):
                fault_point("scheduler.job", job="a", attempt=3)
            # One-shot: the spec never fires again.
            fault_point("scheduler.job", job="a", attempt=4)
        assert not chaos_active()
        assert [(f.point, f.occurrence, f.action) for f in fired] == [
            ("scheduler.job", 2, "raise_transient")
        ]
        assert fired[0].ctx == {"job": "a", "attempt": 3}

    def test_match_filters_the_occurrence_count(self):
        plan = FaultPlan(
            faults=(
                FaultSpec.make("scheduler.job", occurrence=1, match={"job": "b"}),
            ),
            seed=0,
        )
        with activate(plan) as fired:
            fault_point("scheduler.job", job="a", attempt=1)  # not counted
            fault_point("scheduler.job", job="b", attempt=1)  # occurrence 0
            fault_point("scheduler.job", job="a", attempt=2)  # not counted
            with pytest.raises(InjectedFault):
                fault_point("scheduler.job", job="b", attempt=2)
        assert len(fired) == 1

    def test_unrelated_points_do_not_count(self):
        plan = FaultPlan(faults=(FaultSpec.make("cache.put", 0, "raise_oserror"),))
        with activate(plan):
            fault_point("cache.get", path="p", key="k")  # different point
            with pytest.raises(OSError):
                fault_point("cache.put", path="p", key="k")

    def test_rejects_unknown_point_and_action(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            with activate(FaultPlan(faults=(FaultSpec.make("nope"),))):
                pass
        bad = FaultPlan(faults=(FaultSpec.make("cache.get", action="nope"),))
        with pytest.raises(ValueError, match="unknown action"):
            with activate(bad):
                pass

    def test_rejects_nested_activation(self):
        plan = FaultPlan(faults=())
        with activate(plan):
            with pytest.raises(RuntimeError, match="already active"):
                with activate(plan):
                    pass
        # Cleanly deactivated after the error.
        with activate(plan):
            pass

    def test_catalog_entries_are_consistent(self):
        for info in FAULT_POINTS.values():
            for action in info.all_actions():
                assert action in ACTIONS, (info.name, action)
            assert info.description
            assert info.ctx_keys


class TestStreamIsolation:
    def test_active_plan_never_perturbs_simulation_draws(self):
        """A faulted run samples the exact same Monte Carlo population."""
        from repro.core.designs import three_level_naive

        design = three_level_naive()
        state, tau = design.states[0], design.upper_threshold(0)
        clean = state_cer(state, tau, [1e4, 1e6], n_samples=2_000, seed=9)
        plan = FaultPlan(
            faults=(FaultSpec.make("scheduler.job", occurrence=0),), seed=42
        )
        with activate(plan) as fired:
            chaotic = state_cer(state, tau, [1e4, 1e6], n_samples=2_000, seed=9)
        assert not fired  # no campaign ran, so the fault never triggered
        assert np.array_equal(clean.cer, chaotic.cer)
