"""Chaos at the batched-decode boundary: abort, retry, bit-identical.

The ``datapath.batch_decode`` fault point fires before any outcome
arrays exist, so an injected transient failure must leave no partial
state behind: a straight retry — of the batch call or of a whole
``bler_mc`` run — lands on exactly the result the fault interrupted.
"""

import numpy as np
import pytest

from repro.chaos import FaultPlan, FaultSpec, InjectedFault, activate
from repro.chaos.registry import FAULT_POINTS
from repro.coding.batch import BatchThreeOnTwoCodec
from repro.montecarlo.bler_mc import bler_mc
from repro.montecarlo.results_cache import ResultsCache


def one_shot_plan(occurrence=0, match=()):
    return FaultPlan(
        faults=(
            FaultSpec(
                point="datapath.batch_decode",
                occurrence=occurrence,
                action="raise_transient",
                match=match,
            ),
        ),
        seed=0,
    )


class TestRegistryEntry:
    def test_point_is_cataloged(self):
        info = FAULT_POINTS["datapath.batch_decode"]
        assert info.ctx_keys == ("n_blocks",)
        assert "raise_transient" in info.recoverable_actions


class TestBatchDecodeFault:
    def test_abort_then_retry_is_bit_identical(self):
        rng = np.random.default_rng(0)
        bc = BatchThreeOnTwoCodec()
        data = rng.integers(0, 2, size=(32, 512), dtype=np.uint8)
        states, checks = bc.encode(data)
        clean = bc.decode(states, checks)
        with activate(one_shot_plan()) as fired:
            with pytest.raises(InjectedFault):
                bc.decode(states, checks)
            assert [f.point for f in fired] == ["datapath.batch_decode"]
            assert fired[0].ctx == {"n_blocks": 32}
            retried = bc.decode(states, checks)  # occurrence 0 consumed
        assert np.array_equal(retried.data_bits, clean.data_bits)
        assert np.array_equal(retried.fail_stage, clean.fail_stage)
        assert np.array_equal(retried.tec_corrected, clean.tec_corrected)

    def test_context_match_targets_one_batch_size(self):
        rng = np.random.default_rng(1)
        bc = BatchThreeOnTwoCodec()
        data = rng.integers(0, 2, size=(8, 512), dtype=np.uint8)
        states, checks = bc.encode(data)
        plan = one_shot_plan(match=(("n_blocks", 9999),))
        with activate(plan) as fired:
            bc.decode(states, checks)  # does not match -> must not fire
        assert fired == []


class TestBlerMcUnderChaos:
    N_BLOCKS = 6_000
    CERS = [1e-2]

    def test_aborted_run_retries_to_identical_counts(self, tmp_path):
        cache = ResultsCache(cache_dir=tmp_path / "mc")
        baseline = bler_mc(self.CERS, self.N_BLOCKS, seed=3)
        with activate(one_shot_plan()):
            with pytest.raises(InjectedFault):
                bler_mc(self.CERS, self.N_BLOCKS, seed=3, cache=cache)
        # The aborted run stored nothing partial: a plain retry computes
        # (and caches) exactly the interrupted result.
        assert cache.entries() == []
        retried = bler_mc(self.CERS, self.N_BLOCKS, seed=3, cache=cache)
        assert retried == baseline
        assert cache.stats.stores == 1
        assert bler_mc(self.CERS, self.N_BLOCKS, seed=3, cache=cache) == baseline
        assert cache.stats.hits == 1

    def test_mid_run_fault_leaves_later_tasks_unaffected(self):
        """Fault the third task's decode: still a clean abort/retry."""
        n = 30_000  # three RNG blocks -> three decode calls at chunk=10k
        baseline = bler_mc(self.CERS, n, seed=3, chunk=10_000)
        with activate(one_shot_plan(occurrence=2)) as fired:
            with pytest.raises(InjectedFault):
                bler_mc(self.CERS, n, seed=3, chunk=10_000)
            assert len(fired) == 1
        assert bler_mc(self.CERS, n, seed=3, chunk=10_000) == baseline
