"""Differential chaos: a faulted-then-recovered campaign is bit-identical
to a clean one.

For every built-in fault plan (and a seed-matrix of randomized plans in
CI), the harness runs one clean reference campaign, then the same
campaign under the activated plan — resuming after each injected crash —
and asserts:

- the final exit code is 0 and every job state is done/cached,
- every persisted per-job result JSON is *byte*-equal to the reference,
- no job ever starts again after its ``job_done`` was logged (no
  duplicate execution of completed work),
- the cache never serves a corrupted entry (recovered cache contents
  decode to the reference counts),
- every scheduled fault of the built-in plans actually fired.

Monte Carlo sampling uses its own RNG spawn tree; the chaos stream lives
at a disjoint spawn key, which is why bit-identity is achievable at all.
"""

import json
import os

import pytest

from repro.campaign.events import read_events
from repro.campaign.scheduler import CampaignScheduler
from repro.campaign.spec import campaign_from_dict
from repro.campaign.store import RunStore
from repro.chaos import BUILTIN_PLANS, FaultPlan, InjectedCrash, activate
from repro.montecarlo.results_cache import ResultsCache

N = 4_000
TIMES = [1024.0, 2.0**20]
MAX_RESUMES = 8


def campaign_spec():
    return campaign_from_dict(
        {
            "name": "differential",
            "seed": 5,
            "retries": 2,
            "backoff_s": 0.0,
            "defaults": {"n_samples": N, "times_s": TIMES},
            "job": [
                {"id": "a", "kind": "design_cer", "params": {"design": "4LCn"}},
                {
                    "id": "b",
                    "kind": "design_cer",
                    "needs": ["a"],
                    "params": {"design": "3LCn", "seed_offset": 1},
                },
                {
                    "id": "c",
                    "kind": "retention",
                    "needs": ["b"],
                    "params": {"design": "3LCn", "n_cells": 354, "ecc_t": 1},
                },
            ],
        }
    )


def run_clean(run_dir, cache_dir):
    result = CampaignScheduler(
        campaign_spec(),
        RunStore(run_dir),
        cache=ResultsCache(cache_dir=cache_dir),
        sleep=lambda _t: None,
    ).run()
    assert result.ok
    return result


def run_faulted(plan, run_dir, cache_dir):
    """Run under ``plan``, resuming after every injected crash."""
    store = RunStore(run_dir)
    crashes = 0
    with activate(plan) as fired:
        for attempt in range(MAX_RESUMES):
            scheduler = CampaignScheduler(
                campaign_spec(),
                store,
                # A fresh cache instance per (re)start: recovery must come
                # from disk, exactly like a restarted process.
                cache=ResultsCache(cache_dir=cache_dir),
                sleep=lambda _t: None,
            )
            try:
                result = scheduler.run(resume=attempt > 0)
            except InjectedCrash:
                crashes += 1
                continue
            return result, list(fired), crashes
    raise AssertionError(f"no recovery within {MAX_RESUMES} restarts")


def assert_no_rework(store):
    """No job starts again after its result was durably logged done."""
    done = set()
    for e in read_events(store.events_path):
        if e["event"] == "job_start":
            assert e["job"] not in done, (
                f"job {e['job']} re-executed after completion"
            )
        elif e["event"] == "job_done":
            done.add(e["job"])


def assert_identical_outcome(ref_dir, faulted_dir, result):
    assert result.ok and result.exit_code == 0
    ref, faulted = RunStore(ref_dir), RunStore(faulted_dir)
    jobs = sorted(ref.completed_jobs())
    assert jobs == sorted(faulted.completed_jobs())
    for job_id in jobs:
        assert (
            faulted.result_path(job_id).read_bytes()
            == ref.result_path(job_id).read_bytes()
        ), f"job {job_id} diverged from the clean run"
        assert result.results[job_id] == json.loads(
            ref.result_path(job_id).read_text()
        )
    assert_no_rework(faulted)


def plan_touches(plan, point):
    return any(spec.point == point for spec in plan.faults)


@pytest.mark.parametrize("name", sorted(BUILTIN_PLANS))
def test_builtin_plan_recovers_bit_identical(name, tmp_path):
    plan = BUILTIN_PLANS[name]
    ref_cache = tmp_path / "ref-cache"
    run_clean(tmp_path / "ref", ref_cache)

    faulted_cache = tmp_path / "faulted-cache"
    if plan_touches(plan, "cache.get"):
        # Read-path faults need a populated cache to corrupt: prime it
        # with a throwaway clean run sharing the faulted cache dir.
        run_clean(tmp_path / "prime", faulted_cache)

    result, fired, crashes = run_faulted(plan, tmp_path / "faulted", faulted_cache)
    assert_identical_outcome(tmp_path / "ref", tmp_path / "faulted", result)

    # Every scheduled fault of a built-in plan is reachable by design.
    assert len(fired) == len(plan.faults), (
        f"{name}: fired {[(f.point, f.occurrence) for f in fired]}"
    )
    # Crash-action plans must actually have exercised the resume path.
    n_crash_specs = sum(
        1 for s in plan.faults if s.action in ("crash", "torn_json", "torn_append")
    )
    assert crashes == n_crash_specs

    # The recovered cache serves only valid entries matching the clean
    # run's: every reference key decodes identically from the faulted dir.
    ref_entries = ResultsCache(cache_dir=ref_cache)
    faulted_entries = ResultsCache(cache_dir=faulted_cache)
    if not plan_touches(plan, "cache.put"):
        assert faulted_entries.entries() == ref_entries.entries()
    for key in faulted_entries.entries():
        got = faulted_entries.get_counts(key)
        want = ref_entries.get_counts(key)
        assert want is not None and (got == want).all()
    assert faulted_entries.stats.quarantined == 0  # survivors are all valid


def test_cache_corruption_plan_quarantines(tmp_path):
    """The cache-corruption plan's damage is visible: the faulted run
    quarantined blobs and recomputed them (misses where the clean resumed
    run would have hit)."""
    plan = BUILTIN_PLANS["cache-corruption"]
    cache_dir = tmp_path / "cache"
    run_clean(tmp_path / "prime", cache_dir)
    result, fired, _crashes = run_faulted(plan, tmp_path / "faulted", cache_dir)
    assert result.ok
    assert {(f.point, f.action) for f in fired} == {
        ("cache.get", "corrupt_file"),
        ("cache.get", "truncate_file"),
    }
    quarantined = [
        p.name for p in cache_dir.glob("*.quarantined")
    ]
    assert len(quarantined) == 2


@pytest.mark.slow
def test_random_plan_recovers_bit_identical(tmp_path):
    """CI seed matrix: REPRO_CHAOS_SEED selects a randomized recoverable
    plan; replaying a failure locally is ``FaultPlan.random(seed)``."""
    seed = int(os.environ.get("REPRO_CHAOS_SEED", "0"))
    plan = FaultPlan.random(seed, n_faults=3)
    ref_cache = tmp_path / "ref-cache"
    run_clean(tmp_path / "ref", ref_cache)

    faulted_cache = tmp_path / "faulted-cache"
    if plan_touches(plan, "cache.get"):
        run_clean(tmp_path / "prime", faulted_cache)

    result, _fired, _crashes = run_faulted(
        plan, tmp_path / "faulted", faulted_cache
    )
    # On any failure here, replay locally with FaultPlan.random(seed).
    assert_identical_outcome(tmp_path / "ref", tmp_path / "faulted", result)
