"""Property-based contracts of the 3-ON-2 datapath and CER estimators.

The decode contract is stated at the *achievable* boundary.  The TEC is
BCH-1 (minimum distance 3) over the 2-bit cell view, so:

- a clean block round-trips exactly;
- any single drift step (one bit flip in the TEC view) is corrected
  exactly, as is any single check-bit flip;
- an **arbitrary** corruption of one cell pair (up to 4 bit flips) is
  *not* always detectable: for a binary BCH code every 2-bit error
  presents syndromes consistent with some single-bit error
  (``S2 = S1**2`` identically), so bounded-distance decoding can land on
  a valid codeword and return wrong bits with no decoder able to tell —
  measured at roughly half of random pair corruptions.  The enforceable
  property is therefore *containment*: decode either returns a
  ``DecodedBlock`` or raises ``UncorrectableBlock`` — never a foreign
  exception — and whenever it does return after a corruption within the
  code's correction radius, the data is exact.

The metamorphic CER property needs no decoder at all: error counts are
cumulative over a sorted time grid, so ``state_cer``/``design_cer``
must be non-decreasing in read time.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.blockcodec import (
    DecodedBlock,
    ThreeOnTwoBlockCodec,
    UncorrectableBlock,
)
from repro.core.designs import three_level_naive
from repro.montecarlo.cer import design_cer, state_cer

CODEC = ThreeOnTwoBlockCodec()
N_CELLS = CODEC.n_mlc_cells
N_PAIRS = N_CELLS // 2

SETTINGS = settings(max_examples=40, deadline=None)


def data_bits(seed):
    return np.random.default_rng(seed).integers(0, 2, CODEC.data_bits).astype(
        np.uint8
    )


class TestRoundtrip:
    @SETTINGS
    @given(seed=st.integers(0, 2**32 - 1))
    def test_clean_roundtrip_is_exact(self, seed):
        bits = data_bits(seed)
        states, check = CODEC.encode(bits)
        out = CODEC.decode(states, check)
        assert np.array_equal(out.data_bits, bits)
        assert out.tec_corrected == 0
        assert out.hec_pairs_dropped == 0

    @SETTINGS
    @given(seed=st.integers(0, 2**32 - 1), cell=st.integers(0, N_CELLS - 1))
    def test_single_drift_step_corrected_exactly(self, seed, cell):
        """One drift step (S1->S2 or S2->S4) is one TEC bit flip."""
        bits = data_bits(seed)
        states, check = CODEC.encode(bits)
        if states[cell] == 2:
            states[cell] -= 1  # the top state can only have come *from* below
        else:
            states[cell] += 1
        out = CODEC.decode(states, check)
        assert np.array_equal(out.data_bits, bits)
        assert out.tec_corrected == 1

    @SETTINGS
    @given(seed=st.integers(0, 2**32 - 1), bit=st.integers(0, 9))
    def test_single_check_bit_flip_corrected_exactly(self, seed, bit):
        bits = data_bits(seed)
        states, check = CODEC.encode(bits)
        check = check.copy()
        check[bit] ^= 1
        out = CODEC.decode(states, check)
        assert np.array_equal(out.data_bits, bits)
        assert out.tec_corrected == 1


class TestPairCorruptionContainment:
    @SETTINGS
    @given(
        seed=st.integers(0, 2**32 - 1),
        pair=st.integers(0, N_PAIRS - 1),
        s0=st.integers(0, 2),
        s1=st.integers(0, 2),
    )
    def test_decode_returns_or_raises_uncorrectable(self, seed, pair, s0, s1):
        """Arbitrary single-pair corruption: DecodedBlock or
        UncorrectableBlock — never a foreign exception."""
        bits = data_bits(seed)
        states, check = CODEC.encode(bits)
        original = states[2 * pair : 2 * pair + 2].copy()
        states[2 * pair], states[2 * pair + 1] = s0, s1
        try:
            out = CODEC.decode(states, check)
        except UncorrectableBlock:
            return
        assert isinstance(out, DecodedBlock)
        # Within the correction radius (<= 1 TEC bit changed) the data
        # must be exact; beyond it, escapes are possible (d = 3).
        tec = np.array([[0, 0], [0, 1], [1, 1]])
        flips = int(
            np.sum(tec[np.array([s0, s1])] != tec[original])
        )
        if flips <= 1:
            assert np.array_equal(out.data_bits, bits)

    @SETTINGS
    @given(seed=st.integers(0, 2**31 - 1))
    def test_two_separated_drift_errors_never_crash_foreign(self, seed):
        """Two drift flips in different pairs: contained the same way."""
        rng = np.random.default_rng(seed)
        bits = data_bits(seed)
        states, check = CODEC.encode(bits)
        cells = rng.choice(N_CELLS, size=2, replace=False)
        for cell in cells:
            states[cell] = states[cell] - 1 if states[cell] == 2 else states[cell] + 1
        try:
            CODEC.decode(states, check)
        except UncorrectableBlock:
            pass  # detection is the best possible outcome at d = 3


class TestHardening:
    def test_all_pairs_inv_raises_uncorrectable_not_spare_exhausted(self):
        """More INV pairs than spares surfaces as UncorrectableBlock."""
        bits = np.zeros(CODEC.data_bits, dtype=np.uint8)
        states, _check = CODEC.encode(bits)
        states[:] = 2  # every pair reads INV (both cells S4)
        # Re-derive matching check bits so the TEC stage passes cleanly
        # and the failure is attributable to spare exhaustion.
        from repro.core import three_on_two as t32

        codeword = CODEC.tec.encode(t32.states_to_tec_bits(states))
        with pytest.raises(UncorrectableBlock, match="HEC failure"):
            CODEC.decode(states, codeword[CODEC.tec.k :])

    def test_invalid_tec_pattern_raises_uncorrectable(self):
        """BCH 'correction' that lands on a codeword containing the
        impossible cell pattern '10' is reported as uncorrectable.

        Construction: encode check bits for a message whose cell 0 is
        '10', then present states whose TEC view differs from that
        codeword in exactly one bit (cell 0 read as S4 = '11').  BCH-1
        dutifully corrects the single 'error' back to '10' — which no
        physical state produces, so the decoder must refuse.
        """
        from repro.core import three_on_two as t32

        bits = np.zeros(CODEC.data_bits, dtype=np.uint8)
        states, _check = CODEC.encode(bits)
        poisoned = t32.states_to_tec_bits(states)
        poisoned[0], poisoned[1] = 1, 0  # cell 0: the invalid "10"
        check = CODEC.tec.encode(poisoned)[CODEC.tec.k :]
        read_states = states.copy()
        read_states[0] = 2  # S4 = "11": one bit from the poisoned codeword
        with pytest.raises(UncorrectableBlock, match="invalid TEC"):
            CODEC.decode(read_states, check)


class TestMetamorphicCER:
    @SETTINGS
    @given(
        seed=st.integers(0, 2**31 - 1),
        log_times=st.lists(
            st.floats(min_value=2.0, max_value=9.0), min_size=3, max_size=6
        ),
    )
    def test_state_cer_non_decreasing_in_time(self, seed, log_times):
        design = three_level_naive()
        state, tau = design.states[0], design.upper_threshold(0)
        times = sorted(10.0**t for t in log_times)
        res = state_cer(state, tau, times, n_samples=1_500, seed=seed)
        assert np.all(np.diff(res.cer) >= 0)
        assert np.all((res.cer >= 0) & (res.cer <= 1))

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_design_cer_non_decreasing_in_time(self, seed):
        times = [1e3, 1e5, 1e7, 1e9]
        res = design_cer(three_level_naive(), times, n_samples=2_000, seed=seed)
        assert np.all(np.diff(res.cer) >= 0)
