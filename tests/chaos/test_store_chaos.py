"""Durability of the run directory: torn event tails, torn JSON files,
and crash-at-write faults all leave a resumable store behind."""

import json

import pytest

from repro.campaign.events import EventLog, read_events
from repro.campaign.store import RunStore
from repro.chaos import FaultPlan, FaultSpec, InjectedCrash, activate, builtin_plan

SPEC = {"name": "t", "job": [{"id": "a", "kind": "capacity"}]}
ORDER = ["a"]


class TestTornEventTail:
    def test_read_skips_torn_final_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.emit("one", n=1)
        log.emit("two", n=2)
        with open(path, "a") as f:
            f.write('{"event": "thr')  # crash mid-append: no newline
        events = list(read_events(path))
        assert [e["event"] for e in events] == ["one", "two"]
        # strict mode also tolerates a torn *tail* — it is expected wear.
        assert len(list(read_events(path, strict=True))) == 2

    def test_next_writer_repairs_the_tail(self, tmp_path):
        path = tmp_path / "events.jsonl"
        EventLog(path).emit("one")
        with open(path, "a") as f:
            f.write('{"event": "torn')
        # A fresh writer (the resumed process) must not merge its first
        # record into the fragment.
        EventLog(path).emit("resumed", n=3)
        events = list(read_events(path))
        assert [e["event"] for e in events] == ["one", "resumed"]
        assert events[-1]["n"] == 3

    def test_repaired_fragment_is_interior_corruption_under_strict(self, tmp_path):
        path = tmp_path / "events.jsonl"
        EventLog(path).emit("one")
        with open(path, "a") as f:
            f.write('{"event": "torn')
        EventLog(path).emit("resumed")
        # Lenient read skips the now-interior fragment; strict reports it,
        # because one record genuinely was lost.
        assert [e["event"] for e in read_events(path)] == ["one", "resumed"]
        with pytest.raises(ValueError, match="corrupt event log line 2"):
            list(read_events(path, strict=True))

    def test_interior_corruption(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.emit("one")
        raw = path.read_text()
        path.write_text(raw + "garbage not json\n")
        log.emit("two")
        assert [e["event"] for e in read_events(path)] == ["one", "two"]
        with pytest.raises(ValueError, match="line 2"):
            list(read_events(path, strict=True))

    def test_missing_and_empty_files(self, tmp_path):
        assert list(read_events(tmp_path / "nope.jsonl")) == []
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert list(read_events(empty, strict=True)) == []
        # An empty log needs no repair and emit starts it cleanly.
        EventLog(empty).emit("first")
        assert [e["event"] for e in read_events(empty)] == ["first"]

    def test_torn_append_fault_loses_exactly_one_record(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        plan = FaultPlan(
            faults=(FaultSpec.make("events.append", 2, "torn_append"),), seed=1
        )
        with activate(plan) as fired:
            log.emit("e0")
            log.emit("e1")
            with pytest.raises(InjectedCrash):
                log.emit("e2")  # torn: half the line, then "process death"
        assert len(fired) == 1
        assert not path.read_text().endswith("\n")
        assert [e["event"] for e in read_events(path)] == ["e0", "e1"]
        # The resumed writer repairs and continues; only e2 was lost.
        EventLog(path).emit("e3")
        assert [e["event"] for e in read_events(path)] == ["e0", "e1", "e3"]


class TestTornManifest:
    def test_init_recovers_a_torn_manifest(self, tmp_path):
        store = RunStore(tmp_path / "run")
        store.init(SPEC, ORDER)
        good = store.manifest_path.read_text()
        store.manifest_path.write_text('{"torn": tru')  # crash mid-write
        assert store.exists()
        store.init(SPEC, ORDER)  # resume: re-supplies the same spec
        assert store.manifest_path.read_text() == good
        assert store.read_manifest()["spec"] == SPEC

    def test_init_still_rejects_a_different_campaign(self, tmp_path):
        store = RunStore(tmp_path / "run")
        store.init(SPEC, ORDER)
        with pytest.raises(ValueError, match="different campaign"):
            store.init({**SPEC, "name": "other"}, ORDER)

    def test_torn_json_fault_leaves_recoverable_manifest(self, tmp_path):
        store = RunStore(tmp_path / "run")
        plan = FaultPlan(
            faults=(FaultSpec.make("store.write_manifest", 0, "torn_json"),),
            seed=1,
        )
        with activate(plan):
            with pytest.raises(InjectedCrash):
                store.init(SPEC, ORDER)
            # The torn file is there, unparseable...
            assert store.exists()
            with pytest.raises(json.JSONDecodeError):
                store.read_manifest()
            # ...and the next init (the resume) heals it.
            store.init(SPEC, ORDER)
        assert store.read_manifest()["order"] == ORDER


class TestJobResults:
    def test_torn_result_is_not_a_completed_job(self, tmp_path):
        store = RunStore(tmp_path / "run")
        store.init(SPEC, ORDER)
        store.write_result("a", {"x": 1})
        assert set(store.completed_jobs()) == {"a"}
        store.result_path("a").write_text('{"x": 1')  # truncated
        assert store.read_result("a") is None
        assert store.completed_jobs() == {}

    def test_missing_result_is_not_a_completed_job(self, tmp_path):
        store = RunStore(tmp_path / "run")
        store.init(SPEC, ORDER)
        store.write_result("a", {"x": 1})
        store.result_path("a").unlink()
        assert store.completed_jobs() == {}

    def test_crash_fault_fires_before_the_write(self, tmp_path):
        store = RunStore(tmp_path / "run")
        store.init(SPEC, ORDER)
        plan = FaultPlan(
            faults=(FaultSpec.make("store.write_result", 0, "crash"),), seed=1
        )
        with activate(plan):
            with pytest.raises(InjectedCrash):
                store.write_result("a", {"x": 1})
            assert not store.result_path("a").is_file()
            store.write_result("a", {"x": 1})  # occurrence 1: lands
        assert store.read_result("a") == {"x": 1}

    def test_status_crash_leaves_previous_snapshot(self, tmp_path):
        store = RunStore(tmp_path / "run")
        store.init(SPEC, ORDER)
        store.write_status({"v": 1})
        plan = FaultPlan(
            faults=(FaultSpec.make("store.write_status", 0, "crash"),), seed=1
        )
        with activate(plan):
            with pytest.raises(InjectedCrash):
                store.write_status({"v": 2})
        assert store.read_status() == {"v": 1}
