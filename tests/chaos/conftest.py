"""Everything under tests/chaos/ carries the ``chaos`` marker."""

import pytest


def pytest_collection_modifyitems(items):
    for item in items:
        item.add_marker(pytest.mark.chaos)
