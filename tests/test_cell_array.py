"""CellArray: program / drift / sense / wearout lifecycle."""

import numpy as np
import pytest

from repro.cells.cell_array import CellArray
from repro.cells.drift import NO_ESCALATION, escalation_schedule
from repro.cells.faults import WearoutModel
from repro.core.designs import four_level_naive, three_level_optimal


@pytest.fixture
def arr():
    return CellArray(1000, four_level_naive(), rng=0)


class TestProgramSense:
    def test_fresh_sense_matches_target(self, arr):
        idx = np.arange(1000)
        states = np.tile(np.arange(4), 250)
        ok = arr.program(idx, states, t_now=0.0)
        assert ok.all()
        assert np.array_equal(arr.sense(0.0), states)

    def test_write_window_respected(self, arr):
        idx = np.arange(1000)
        arr.program(idx, np.ones(1000, dtype=np.int64), 0.0)
        lr = arr.log_resistance(0.0)
        assert lr.min() >= 4.0 - 2.75 / 6 - 1e-9
        assert lr.max() <= 4.0 + 2.75 / 6 + 1e-9

    def test_drift_monotone(self, arr):
        idx = np.arange(1000)
        arr.program(idx, np.full(1000, 2), 0.0)
        lr1 = arr.log_resistance(1e3)
        lr2 = arr.log_resistance(1e6)
        assert np.all(lr2 >= lr1 - 1e-12)

    def test_s3_drifts_into_s4_eventually(self, arr):
        idx = np.arange(1000)
        arr.program(idx, np.full(1000, 2), 0.0)
        sensed = arr.sense(2.0**40)
        assert (sensed == 3).mean() > 0.3

    def test_s1_stable_forever(self, arr):
        idx = np.arange(1000)
        arr.program(idx, np.zeros(1000, dtype=np.int64), 0.0)
        assert np.array_equal(arr.sense(2.0**40), np.zeros(1000))

    def test_reprogram_resets_drift(self, arr):
        idx = np.arange(1000)
        arr.program(idx, np.full(1000, 2), 0.0)
        t = 2.0**25
        arr.program(idx, np.full(1000, 2), t)  # refresh-like rewrite
        assert (arr.sense(t) == 2).all()

    def test_program_time_offsets(self, arr):
        """Drift is measured from each cell's own program time."""
        arr.program(np.arange(500), np.full(500, 2), 0.0)
        arr.program(np.arange(500, 1000), np.full(500, 2), 1e6)
        lr = arr.log_resistance(1e6 + 10)
        old = lr[:500].mean()
        fresh = lr[500:].mean()
        assert old > fresh + 0.05

    def test_state_bounds_checked(self, arr):
        with pytest.raises(ValueError):
            arr.program(np.array([0]), np.array([4]), 0.0)

    def test_escalation_applies_above_tier(self):
        """3LC S2 cells drifting past 4.5 accelerate (Section 5.3)."""
        sched = escalation_schedule("mean")
        slow = CellArray(40_000, three_level_optimal(), rng=1, schedule=NO_ESCALATION)
        fast = CellArray(40_000, three_level_optimal(), rng=1, schedule=sched)
        idx = np.arange(40_000)
        slow.program(idx, np.ones(40_000, dtype=np.int64), 0.0)
        fast.program(idx, np.ones(40_000, dtype=np.int64), 0.0)
        t = 2.0**38
        assert fast.log_resistance(t).mean() > slow.log_resistance(t).mean()


class TestWearout:
    def test_cells_fail_after_endurance(self):
        arr = CellArray(
            100,
            four_level_naive(),
            rng=2,
            wearout=WearoutModel(mean_endurance=10, endurance_sigma=0.05),
        )
        idx = np.arange(100)
        states = np.zeros(100, dtype=np.int64)
        for _ in range(20):
            arr.program(idx, states, 0.0)
        assert arr.stuck_mask().all()

    def test_verify_reports_failures(self):
        arr = CellArray(
            200,
            four_level_naive(),
            rng=3,
            wearout=WearoutModel(mean_endurance=5, endurance_sigma=0.01),
        )
        idx = np.arange(200)
        for i in range(10):
            ok = arr.program(idx, np.ones(200, dtype=np.int64), 0.0)
            if not ok.all():
                break
        assert not ok.all()

    def test_stuck_reset_reads_top(self):
        arr = CellArray(
            300,
            four_level_naive(),
            rng=4,
            wearout=WearoutModel(mean_endurance=2, endurance_sigma=0.01, p_stuck_reset=1.0),
        )
        idx = np.arange(300)
        for _ in range(5):
            arr.program(idx, np.zeros(300, dtype=np.int64), 0.0)
        assert (arr.sense(0.0) == 3).all()

    def test_stuck_set_reads_bottom(self):
        arr = CellArray(
            300,
            four_level_naive(),
            rng=5,
            wearout=WearoutModel(mean_endurance=2, endurance_sigma=0.01, p_stuck_reset=0.0),
        )
        idx = np.arange(300)
        for _ in range(5):
            arr.program(idx, np.full(300, 3), 0.0)
        assert (arr.sense(0.0) == 0).all()

    def test_force_highest_revives_stuck_set(self):
        arr = CellArray(
            300,
            four_level_naive(),
            rng=6,
            wearout=WearoutModel(
                mean_endurance=2, endurance_sigma=0.01,
                p_stuck_reset=0.0, p_revive=1.0,
            ),
        )
        idx = np.arange(300)
        for _ in range(5):
            arr.program(idx, np.full(300, 3), 0.0)
        ok = arr.force_highest(idx, 0.0)
        assert ok.all()
        assert (arr.sense(0.0) == 3).all()

    def test_stuck_reset_passes_verify_for_top_state(self):
        arr = CellArray(
            50,
            four_level_naive(),
            rng=7,
            wearout=WearoutModel(mean_endurance=2, endurance_sigma=0.01, p_stuck_reset=1.0),
        )
        idx = np.arange(50)
        for _ in range(5):
            arr.program(idx, np.zeros(50, dtype=np.int64), 0.0)
        ok = arr.program(idx, np.full(50, 3), 0.0)
        assert ok.all()


class TestValidation:
    def test_needs_cells(self):
        with pytest.raises(ValueError):
            CellArray(0, four_level_naive())

    def test_shape_mismatch(self, arr):
        with pytest.raises(ValueError):
            arr.program(np.arange(3), np.zeros(2, dtype=np.int64), 0.0)

    def test_offset_mode_rejected(self):
        arr = CellArray(
            10, three_level_optimal(), rng=8, schedule=escalation_schedule("offset")
        )
        with pytest.raises(ValueError):
            arr.program(np.arange(10), np.ones(10, dtype=np.int64), 0.0)
