"""Empirical BLER engine: determinism, caching, analytic cross-validation."""

import numpy as np
import pytest

from repro.analysis.bler import binom_confidence, block_error_rate
from repro.cli import main
from repro.core.three_on_two import STATE_TO_TEC_BITS
from repro.montecarlo.bler_mc import ERR_STATE, BlerResult, bler_mc
from repro.montecarlo.results_cache import ResultsCache

CERS = [3e-3, 1e-2]
N_BLOCKS = 20_000


@pytest.fixture(scope="module")
def baseline():
    return bler_mc(CERS, N_BLOCKS, seed=7)


class TestInjectionModel:
    def test_each_error_flips_exactly_one_tec_bit(self):
        """The analytic comparison hinges on 1 erring cell = 1 bit error."""
        for s in range(3):
            assert ERR_STATE[s] != s
            flipped = STATE_TO_TEC_BITS[s] ^ STATE_TO_TEC_BITS[ERR_STATE[s]]
            assert int(flipped.sum()) == 1, s

    def test_err_state_is_read_only(self):
        with pytest.raises(ValueError):
            ERR_STATE[0] = 2


class TestDeterminism:
    def test_chunk_and_jobs_invariance(self, baseline):
        assert bler_mc(CERS, N_BLOCKS, seed=7, chunk=7_000, jobs=1) == baseline
        assert bler_mc(CERS, N_BLOCKS, seed=7, chunk=5_000, jobs=2) == baseline

    def test_seed_changes_counts(self, baseline):
        other = bler_mc(CERS, N_BLOCKS, seed=8)
        assert [r.n_errors for r in other] != [r.n_errors for r in baseline]

    def test_single_cer_scalar_and_duplicates(self, baseline):
        one = bler_mc(CERS[0], N_BLOCKS, seed=7)
        assert isinstance(one, list) and one[0] == baseline[0]
        dup = bler_mc([CERS[0], CERS[0]], N_BLOCKS, seed=7)
        assert dup[0] == dup[1] == baseline[0]

    def test_common_random_numbers_make_curve_monotone(self, baseline):
        """Shared uniforms: more CER can only add errors, never remove."""
        assert baseline[0].n_errors <= baseline[1].n_errors


class TestCache:
    def test_round_trip_and_warm_hit(self, tmp_path, baseline):
        cache = ResultsCache(cache_dir=tmp_path / "mc")
        first = bler_mc(CERS, N_BLOCKS, seed=7, cache=cache)
        assert cache.stats.misses == len(CERS)
        assert cache.stats.stores == len(CERS)
        second = bler_mc(CERS, N_BLOCKS, seed=7, cache=cache)
        assert cache.stats.hits == len(CERS)
        assert first == second == baseline

    def test_key_separates_geometry_and_seed(self, tmp_path):
        cache = ResultsCache(cache_dir=tmp_path / "mc")
        bler_mc([1e-2], 2_000, seed=7, cache=cache)
        bler_mc([1e-2], 2_000, seed=8, cache=cache)
        bler_mc([1e-2], 2_000, seed=7, n_spare_pairs=4, cache=cache)
        assert cache.stats.stores == 3 and cache.stats.hits == 0


class TestAnalyticAgreement:
    def test_within_binomial_ci_at_three_points(self):
        """The acceptance cross-validation, at CI scale (50k blocks)."""
        results = bler_mc([3e-3, 1e-2, 3e-2], 50_000, seed=7)
        for r in results:
            lo, hi = r.confidence()
            analytic = block_error_rate(r.cer, 354, 1)
            assert lo <= analytic <= hi, (r.cer, r.bler, analytic)

    def test_zero_cer_never_errs(self):
        (r,) = bler_mc([0.0], 5_000, seed=7)
        assert r.n_errors == 0 and r.n_silent == 0 and r.bler == 0.0
        assert r.confidence()[0] == 0.0


class TestBlerResult:
    def test_detected_plus_silent(self, baseline):
        for r in baseline:
            assert 0 <= r.n_silent <= r.n_errors
            assert r.n_detected == r.n_errors - r.n_silent
            lo, hi = r.confidence()
            assert lo <= r.bler <= hi

    def test_zero_blocks_guard(self):
        r = BlerResult(cer=0.1, n_blocks=0, n_silent=0, n_errors=0)
        assert r.bler == 0.0


class TestValidation:
    def test_bad_cer_rejected(self):
        with pytest.raises(ValueError):
            bler_mc([1.5], 100)
        with pytest.raises(ValueError):
            bler_mc([-0.1], 100)

    def test_bad_block_count_rejected(self):
        with pytest.raises(ValueError):
            bler_mc([0.01], 0)

    def test_empty_cers_rejected(self):
        with pytest.raises(ValueError):
            bler_mc([], 100)

    def test_binom_confidence_validation(self):
        with pytest.raises(ValueError):
            binom_confidence(1, 0)
        with pytest.raises(ValueError):
            binom_confidence(5, 3)
        with pytest.raises(ValueError):
            binom_confidence(1, 10, confidence=1.0)

    def test_binom_confidence_extremes(self):
        lo, hi = binom_confidence(0, 100)
        assert lo == 0.0 and 0 < hi < 0.05
        lo, hi = binom_confidence(100, 100)
        assert 0.95 < lo < 1 and hi == 1.0


class TestCli:
    def test_analytic_table(self, capsys):
        assert main(["bler", "--cer", "1e-3", "1e-2"]) == 0
        out = capsys.readouterr().out
        assert "BCH-1" in out and out.count("BLER at CER") == 2

    def test_empirical_cross_validates(self, capsys):
        rc = main(
            [
                "bler", "--cer", "3e-3", "1e-2", "--empirical", "20000",
                "--seed", "7", "--no-cache",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "analytic" in out and "NO" not in out
        assert "batched 3-ON-2 datapath" in out

    def test_campaign_builtin_runs(self, tmp_path, capsys):
        rc = main(
            [
                "campaign", "run", "--spec", "bler", "--samples", "5000",
                "--run-dir", str(tmp_path / "run"), "--no-cache",
                "--no-progress",
            ]
        )
        assert rc == 0, capsys.readouterr().err
        assert "bler_mc" in capsys.readouterr().out
