"""Differential suites for the vectorized CER core (PR 6).

Three promises are held here:

1. **Batched analytic quadrature** (`analytic_design_cer_batch` /
   `analytic_state_cer_batch`) matches the per-design scalar entry points
   to <= 1e-12 relative over random feasible designs, schedules, and time
   grids (in practice the kernels are bit-identical — the broadcasts
   preserve the scalar path's per-element float operations).
2. **Block-fused MC evaluation** returns bit-identical ``int64`` counts
   to the pre-fusion per-block sort + ``searchsorted`` reduction, for any
   fuse-group size, and leaves the persistent cache keys unchanged (a
   warm cache written before the fusion serves with zero misses).
3. **Vectorized sensing policies** reproduce the per-threshold loops
   exactly (golden pins captured before the rewrite).
"""

import shutil

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.montecarlo.executor as executor
from repro.cells.drift import (
    NO_ESCALATION,
    PAPER_ESCALATION,
    escalation_schedule,
)
from repro.cells.params import TABLE1, DriftParams, StateParams
from repro.cells.sensing import ReferenceCellSensing, TimeAwareSensing
from repro.core.designs import all_designs, four_level_naive, three_level_optimal
from repro.core.levels import LevelDesign
from repro.montecarlo.analytic import (
    analytic_design_cer,
    analytic_design_cer_batch,
    analytic_state_cer,
    analytic_state_cer_batch,
)
from repro.montecarlo.cer import (
    critical_log_times,
    design_cer,
    sample_state_cells,
    state_cer,
)
from repro.montecarlo.executor import StateRun, blocks_evaluated, run_counts
from repro.montecarlo.results_cache import ResultsCache, state_counts_key
from repro.montecarlo.rng import block_rng

SCHEDULES = {
    "paper": PAPER_ESCALATION,
    "none": NO_ESCALATION,
    "correlated": escalation_schedule("correlated"),
    "mean": escalation_schedule("mean"),
}


def random_design(draw) -> LevelDesign:
    """A feasible random design: ordered levels with room for thresholds."""
    n = draw(st.integers(min_value=2, max_value=4))
    gaps = [draw(st.floats(0.7, 1.6)) for _ in range(n - 1)]
    mus = np.concatenate([[3.0], 3.0 + np.cumsum(gaps)])
    fracs = [draw(st.floats(0.25, 0.75)) for _ in range(n - 1)]
    taus = [m + f * (m2 - m) for m, m2, f in zip(mus[:-1], mus[1:], fracs)]
    occ = np.array([draw(st.floats(0.05, 1.0)) for _ in range(n)])
    return LevelDesign.from_levels(
        "rand",
        [f"S{i + 1}" for i in range(n)],
        [float(m) for m in mus],
        thresholds=taus,
        occupancy=occ / occ.sum(),
    )


class TestBatchedAnalytic:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_batch_matches_scalar_per_design(self, data):
        designs = [random_design(data.draw) for _ in range(data.draw(st.integers(1, 3)))]
        sched = SCHEDULES[data.draw(st.sampled_from(sorted(SCHEDULES)))]
        n_t = data.draw(st.integers(1, 5))
        exps = sorted(data.draw(st.floats(0.1, 11.9)) for _ in range(n_t))
        times = [10.0**e for e in exps]
        batch = analytic_design_cer_batch(designs, times, schedule=sched, z_points=301)
        assert batch.shape == (len(designs), n_t)
        for j, d in enumerate(designs):
            ref = analytic_design_cer(d, times, schedule=sched, z_points=301)
            np.testing.assert_allclose(batch[j], ref, rtol=1e-12, atol=0.0)

    def test_canonical_designs_bitwise(self):
        designs = all_designs()
        names = sorted(designs)
        times = [2.0**k for k in (1, 15, 30, 40)]
        batch = analytic_design_cer_batch([designs[n] for n in names], times)
        for j, n in enumerate(names):
            ref = analytic_design_cer(designs[n], times)
            assert np.array_equal(batch[j], ref), n

    def test_state_batch_matches_scalar(self):
        d = four_level_naive()
        taus = [d.upper_threshold(i) for i in range(4)]
        times = [32.0, 2.0**20, 2.0**40]
        batch = analytic_state_cer_batch(d.states, taus, times)
        for i, (s, tau) in enumerate(zip(d.states, taus)):
            if np.isfinite(tau):
                assert np.array_equal(batch[i], analytic_state_cer(s, tau, times))
            else:
                assert np.all(batch[i] == 0.0)

    def test_duplicate_rows_share_quadrature(self):
        s = TABLE1["S2"]
        times = [2.0**20, 2.0**30]
        batch = analytic_state_cer_batch([s, s, s], [4.5, 5.0, 4.5], times)
        assert np.array_equal(batch[0], batch[2])
        assert not np.array_equal(batch[0], batch[1])

    def test_empty_designs(self):
        assert analytic_design_cer_batch([], [1024.0]).shape == (0, 1)

    def test_deterministic_kernel_rejects_independent_tiers(self):
        from repro.montecarlo.analytic import _deterministic_rows_cer

        s = TABLE1["S2"]
        with pytest.raises(ValueError, match="independent"):
            _deterministic_rows_cer(
                np.array([s.mu_lr]),
                np.array([s.sigma_lr]),
                np.array([5.5]),
                PAPER_ESCALATION.tiers,
                PAPER_ESCALATION,
                s.drift.mu_alpha,
                s.drift.sigma_alpha,
                np.array([6.0]),
                301,
                8.5,
            )


def _eval_blocks_reference(task) -> np.ndarray:
    """The pre-fusion per-block reduction, frozen as the test oracle."""
    counts = np.zeros(len(task.L_grid), dtype=np.int64)
    for offset, size in enumerate(task.sizes):
        rng = block_rng(task.entropy, task.prefix + (task.first_block + offset,))
        lr0, alpha, z = sample_state_cells(task.state, size, rng)
        tier_z = None
        if task.n_tiers:
            tier_z = [rng.standard_normal(size) for _ in range(task.n_tiers)]
        L_star = critical_log_times(
            lr0, alpha, z, task.state.drift.mu_alpha, task.tau, task.schedule, tier_z
        )
        L_star.sort()
        counts += np.searchsorted(L_star, task.L_grid, side="right")
    return counts


class TestFusedExecutor:
    L = np.log10(np.sort(np.array([32.0, 2.0**15, 2.0**20, 2.0**30, 2.0**40])))

    def test_engine_version_unchanged(self):
        assert executor.ENGINE_VERSION == 1

    @settings(max_examples=10, deadline=None)
    @given(
        name=st.sampled_from(["S1", "S2", "S3"]),
        tau=st.floats(4.2, 6.0),
        n=st.integers(1, 45_000),
        seed=st.integers(0, 2**31),
        sched=st.sampled_from(sorted(SCHEDULES)),
    )
    def test_fused_counts_bit_identical(self, name, tau, n, seed, sched):
        schedule = SCHEDULES[sched]
        run = StateRun(TABLE1[name], tau, n, seed, (1,))
        new = run_counts([run], self.L, schedule=schedule)[0]
        n_tiers = 0
        if schedule.mode == "independent" and np.isfinite(tau):
            n_tiers = len(schedule.tiers_between(-np.inf, tau))
        task = executor._Task(
            item=0,
            state=run.state,
            tau=float(run.tau),
            n_tiers=n_tiers,
            first_block=0,
            sizes=tuple(executor.plan_blocks(n)),
            entropy=run.entropy,
            prefix=run.prefix,
            L_grid=self.L,
            schedule=schedule,
        )
        ref = _eval_blocks_reference(task)
        assert new.dtype == np.int64
        assert np.array_equal(new, ref)

    def test_fuse_group_size_never_affects_counts(self, monkeypatch):
        run = StateRun(TABLE1["S2"], 5.5, 123_456, 5, ())
        ref = None
        for fuse in (1, 3, 8, 128):
            monkeypatch.setattr(executor, "_FUSE_BLOCKS", fuse)
            counts = run_counts([run], self.L)[0]
            if ref is None:
                ref = counts
            assert np.array_equal(ref, counts), fuse

    def test_golden_counts_tier_crossing(self):
        r = state_cer(TABLE1["S3"], 5.5, [4.0, 1024.0, 2.0**20], 34_567, seed=7)
        assert [int(c) for c in (r.cer * r.n_samples).round()] == [5, 1299, 9278]

    def test_golden_counts_custom_state(self):
        s = StateParams("X", 4.0, 1.0 / 6.0, DriftParams(0.05, 0.02))
        r = state_cer(s, 4.9, [4.0, 1024.0, 2.0**20], 50_000, seed=9)
        assert [int(c) for c in (r.cer * r.n_samples).round()] == [0, 0, 45]
        r = state_cer(
            s, 5.1, [4.0, 1024.0, 2.0**20], 50_000, seed=9,
            schedule=SCHEDULES["correlated"],
        )
        assert [int(c) for c in (r.cer * r.n_samples).round()] == [0, 0, 6]


class TestWarmCacheAcrossFusion:
    """A cache written by the pre-fusion engine must serve with 0 misses."""

    FIXTURE = "tests/fixtures/mc_cache_prefusion"
    PINNED_KEY = "02d47640eddf339cc2077172072c177c60b444b30b894450c731faf0e5aa21ff"

    @pytest.fixture()
    def warm_cache(self, tmp_path):
        shutil.copytree(self.FIXTURE, tmp_path, dirs_exist_ok=True)
        return ResultsCache(tmp_path)

    def test_state_counts_key_pinned(self):
        run = StateRun(TABLE1["S2"], 5.5, 25_000, 123, ())
        times = np.sort(np.array([2.0**15, 2.0**30, 2.0**40]))
        assert state_counts_key(run, times, PAPER_ESCALATION) == self.PINNED_KEY

    def test_design_run_zero_misses(self, warm_cache):
        before = blocks_evaluated()
        r = design_cer(
            four_level_naive(), [32.0, 1024.0, 2.0**20], 30_000, seed=42,
            cache=warm_cache,
        )
        assert blocks_evaluated() == before, "fusion invalidated the warm cache"
        assert [int(c) for c in (r.cer * r.n_samples).round()] == [33, 275, 2029]

    def test_state_run_zero_misses(self, warm_cache):
        before = blocks_evaluated()
        r = state_cer(
            TABLE1["S2"], 5.5, [2.0**15, 2.0**30, 2.0**40], 25_000, seed=123,
            cache=warm_cache,
        )
        assert blocks_evaluated() == before
        assert [int(c) for c in (r.cer * r.n_samples).round()] == [0, 0, 0]


class TestVectorizedSensing:
    def test_time_aware_golden_pins(self):
        lc4 = four_level_naive()
        got = TimeAwareSensing().thresholds_at(lc4, 3.0)
        assert list(got) == [3.5004771212547197, 4.509542425094393, 5.5286272752831795]
        got = TimeAwareSensing().thresholds_at(three_level_optimal(), 1e6)
        assert list(got) == [3.490033333333333, 5.5408333333333335]

    def test_reference_cell_golden_pins(self):
        lc4 = four_level_naive()
        got = ReferenceCellSensing(8, seed=5).thresholds_at(lc4, 1.0)
        assert list(got) == [3.45058391693733, 4.4612482518329175, 5.500144909488183]
        got = ReferenceCellSensing(8, seed=5).measured_means(lc4, 1e4)
        assert list(got) == [
            2.9512985164573715,
            4.032603357346295,
            5.204576105093643,
            6.44448003621172,
        ]

    def test_reference_cell_degenerate_state_uses_loop(self):
        # sigma_alpha = 0 consumes fewer uniforms in the fast path; the
        # policy must fall back to the sequential per-state sampler.
        d = LevelDesign(
            name="deg",
            states=(
                StateParams("A", 4.0, 0.1, DriftParams(0.02, 0.0)),
                StateParams("B", 6.0, 0.1, DriftParams(0.1, 0.04)),
            ),
            thresholds=(5.0,),
            occupancy=(0.5, 0.5),
        )
        policy = ReferenceCellSensing(4, seed=3)
        from repro.montecarlo.rng import make_rng

        expect = policy._measured_means_loop(d, make_rng(3), np.log10(1e4))
        assert np.array_equal(policy.measured_means(d, 1e4), expect)
