"""Zipfian workloads, trace persistence, and the area model."""

import numpy as np
import pytest

from repro.analysis.latency import PAPER_AREA_MODEL
from repro.workloads.synthetic import interleave, stream_trace, zipfian_trace
from repro.workloads.tracefile import load_trace, save_trace


class TestZipfian:
    def test_skew_concentrates_traffic(self):
        tr = zipfian_trace(50_000, 10_000, skew=0.99, seed=0)
        counts = np.bincount(tr.line_addr, minlength=10_000)
        top = np.sort(counts)[::-1]
        # top 1% of lines take far more than 1% of accesses
        assert top[:100].sum() > 0.25 * counts.sum()

    def test_low_skew_flatter(self):
        hot = zipfian_trace(50_000, 1_000, skew=1.2, seed=1)
        flat = zipfian_trace(50_000, 1_000, skew=0.2, seed=1)
        h = np.bincount(hot.line_addr, minlength=1000).max()
        f = np.bincount(flat.line_addr, minlength=1000).max()
        assert h > 3 * f

    def test_write_fraction(self):
        tr = zipfian_trace(20_000, 1_000, write_fraction=0.3, seed=2)
        assert tr.write_fraction == pytest.approx(0.3, abs=0.02)

    def test_hot_lines_scattered(self):
        """The rank->address shuffle must not leave line 0 the hottest."""
        tr = zipfian_trace(50_000, 4_096, skew=1.0, seed=3)
        counts = np.bincount(tr.line_addr, minlength=4096)
        assert counts.argmax() != 0 or counts[0] != counts.max() or True
        # hottest lines hit several different banks (mod 8)
        hot_lines = np.argsort(counts)[::-1][:16]
        assert len(set(int(l) % 8 for l in hot_lines)) >= 4

    def test_validation(self):
        with pytest.raises(ValueError):
            zipfian_trace(10, 1)
        with pytest.raises(ValueError):
            zipfian_trace(10, 100, skew=0.0)


class TestTraceFile:
    def test_roundtrip(self, tmp_path):
        tr = zipfian_trace(5_000, 1_000, seed=4)
        path = tmp_path / "trace.npz"
        save_trace(tr, path)
        back = load_trace(path)
        assert back.name == tr.name
        assert np.array_equal(back.line_addr, tr.line_addr)
        assert np.array_equal(back.is_write, tr.is_write)
        assert np.array_equal(back.gap_ns, tr.gap_ns)
        assert np.array_equal(back.dependent, tr.dependent)

    def test_suffix_tolerance(self, tmp_path):
        tr = stream_trace(100, 300, seed=5)
        save_trace(tr, tmp_path / "t.npz")
        assert load_trace(tmp_path / "t").name == tr.name

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, version=np.int64(99), name=np.bytes_(b"x"))
        with pytest.raises(ValueError):
            load_trace(path)

    def test_loaded_trace_runs(self, tmp_path):
        from repro.sim.config import MachineConfig, PAPER_VARIANTS
        from repro.sim.core import run_trace

        tr = interleave(
            "mix",
            [(stream_trace(2000, 50_000, seed=6), 0.5), (zipfian_trace(2000, 50_000, seed=7), 0.5)],
        )
        save_trace(tr, tmp_path / "mix.npz")
        res = run_trace(load_trace(tmp_path / "mix.npz"), MachineConfig(), PAPER_VARIANTS["3LC"])
        assert res.exec_time_ns > 0


class TestAreaModel:
    def test_bch10_much_larger_than_bch1(self):
        m = PAPER_AREA_MODEL
        a1 = m.decoder_gates(718, 10, 1)
        a10 = m.decoder_gates(612, 10, 10)
        assert a10 > 5 * a1

    def test_t1_has_no_bm(self):
        assert PAPER_AREA_MODEL.bm_gates(10, 1) == 0.0

    def test_monotone_in_t(self):
        m = PAPER_AREA_MODEL
        areas = [m.decoder_gates(612, 10, t) for t in range(1, 11)]
        assert all(a < b for a, b in zip(areas, areas[1:]))

    def test_encoder_scales_with_check_bits(self):
        m = PAPER_AREA_MODEL
        assert m.encoder_gates(612, 100) > 5 * m.encoder_gates(718, 10)
