"""End-to-end HTTP tests against an in-process server.

One module-scoped server handles the read-only walk; mutating tests and
tests needing special configs (tiny queues, held batchers) boot their
own.  The differential class is the service-level acceptance check: the
HTTP responses and the final state digest must be bit-identical to a
twin :class:`VirtualDevice` driven directly through the batch kernels.
"""

import time

import numpy as np
import pytest

from repro.service.app import ServiceConfig, ServiceRunner
from repro.service.batching import IoOp, execute_batch
from repro.service.client import ServiceClient, ServiceResponseError
from repro.service.codes import CODES
from repro.service.device import VirtualDevice
from repro.service.wire import bits_to_hex


def _payload_hex(seed: int, n_bits: int = 512) -> str:
    bits = np.random.default_rng(seed).integers(0, 2, size=n_bits, dtype=np.uint8)
    return bits_to_hex(bits)


@pytest.fixture(scope="module")
def server():
    runner = ServiceRunner(ServiceConfig(port=0, batch_deadline_ms=1.0))
    runner.start()
    yield runner
    runner.stop()


@pytest.fixture()
def client(server):
    with ServiceClient(server.base_url) as c:
        yield c


class TestMetaEndpoints:
    def test_healthz(self, client):
        assert client.healthz() == {"code": "OK", "status": "healthy"}

    def test_codes_catalog_is_published(self, client):
        published = {c["name"]: c for c in client.codes()["codes"]}
        assert published.keys() == CODES.keys()
        assert published["E_QUEUE_FULL"]["http_status"] == 503

    def test_unknown_route_404(self, client):
        with pytest.raises(ServiceResponseError) as excinfo:
            client.request("GET", "/v1/nope")
        assert excinfo.value.status == 404
        assert excinfo.value.code == "E_NOT_FOUND"

    def test_wrong_method_405(self, client):
        with pytest.raises(ServiceResponseError) as excinfo:
            client.request("DELETE", "/healthz")
        assert excinfo.value.code == "E_METHOD"

    def test_bad_json_400(self, server):
        import http.client as hc
        import json

        host, port = server.address
        conn = hc.HTTPConnection(host, port, timeout=10)
        try:
            conn.request("POST", "/v1/devices", body=b"{not json",
                         headers={"Content-Type": "application/json"})
            resp = conn.getresponse()
            payload = json.loads(resp.read())
            assert resp.status == 400
            assert payload["code"] == "E_BAD_REQUEST"
        finally:
            conn.close()

    def test_metrics_shape(self, client):
        client.healthz()
        m = client.metrics()
        assert "GET /healthz" in m["http"]["endpoints"]
        health = m["http"]["endpoints"]["GET /healthz"]
        assert health["count"] >= 1
        assert "p50_ms" in health
        assert "batch_size_hist" in m["batching"]


class TestDeviceLifecycle:
    def test_create_describe_delete(self, client):
        created = client.create_device(n_blocks=4, seed=7)
        dev = created["device"]
        assert created["code"] == "CREATED"
        assert dev["seed"] == 7
        assert dev["n_blocks"] == 4

        described = client.describe_device(dev["id"])["device"]
        assert described == dev

        ids = [d["id"] for d in client.list_devices()["devices"]]
        assert dev["id"] in ids

        client.delete_device(dev["id"])
        with pytest.raises(ServiceResponseError) as excinfo:
            client.describe_device(dev["id"])
        assert excinfo.value.code == "E_DEVICE_NOT_FOUND"

    def test_create_validation(self, client):
        with pytest.raises(ServiceResponseError) as excinfo:
            client.create_device(n_blocks=0)
        assert excinfo.value.code == "E_BAD_REQUEST"
        with pytest.raises(ServiceResponseError):
            client.create_device(n_blocks="many")
        with pytest.raises(ServiceResponseError):
            client.create_device(wearout={"bogus_field": 1.0})

    def test_derived_seeds_are_distinct(self, client):
        a = client.create_device(n_blocks=2)["device"]
        b = client.create_device(n_blocks=2)["device"]
        try:
            assert a["seed"] != b["seed"]
        finally:
            client.delete_device(a["id"])
            client.delete_device(b["id"])


class TestBlockIo:
    def test_write_read_roundtrip(self, client):
        dev = client.create_device(n_blocks=4, seed=3)["device"]
        try:
            data = _payload_hex(1)
            w = client.write_block(dev["id"], 0, data)
            assert w["code"] == "OK"
            assert w["epoch"] == 0
            r = client.read_block(dev["id"], 0)
            assert r["code"] == "OK"
            assert r["data"] == data
        finally:
            client.delete_device(dev["id"])

    def test_error_codes(self, client):
        dev = client.create_device(n_blocks=2, seed=3)["device"]
        try:
            with pytest.raises(ServiceResponseError) as excinfo:
                client.read_block(dev["id"], 0)
            assert excinfo.value.status == 409
            assert excinfo.value.code == "E_BLOCK_NOT_WRITTEN"

            with pytest.raises(ServiceResponseError) as excinfo:
                client.write_block(dev["id"], 9, _payload_hex(0))
            assert excinfo.value.code == "E_BLOCK_RANGE"

            with pytest.raises(ServiceResponseError) as excinfo:
                client.write_block(dev["id"], 0, "zz" * 64)
            assert excinfo.value.code == "E_BAD_REQUEST"

            with pytest.raises(ServiceResponseError) as excinfo:
                client.write_block(dev["id"], 0, "ab")  # wrong length
            assert excinfo.value.code == "E_BAD_REQUEST"
        finally:
            client.delete_device(dev["id"])

    def test_virtual_clock_over_http(self, client):
        dev = client.create_device(n_blocks=2, seed=5)["device"]
        try:
            data = _payload_hex(2)
            client.write_block(dev["id"], 0, data, t=0.0)
            out = client.advance_clock(dev["id"], advance=3.15e7)  # ~a year
            assert out["virtual_time"] == pytest.approx(3.15e7)
            r = client.read_block(dev["id"], 0)
            assert r["data"] == data
            assert r["t"] == pytest.approx(3.15e7)
            # reads in the past are now rejected
            with pytest.raises(ServiceResponseError) as excinfo:
                client.read_block(dev["id"], 0, t=1.0)
            assert excinfo.value.code == "E_TIME_REGRESSION"
        finally:
            client.delete_device(dev["id"])

    def test_spare_exhaustion_507(self, client):
        dev = client.create_device(
            n_blocks=1,
            seed=31,
            wearout={
                "mean_endurance": 4.0,
                "endurance_sigma": 0.1,
                "p_stuck_reset": 1.0,
                "p_revive": 0.0,
            },
        )["device"]
        try:
            with pytest.raises(ServiceResponseError) as excinfo:
                for i in range(200):
                    client.write_block(dev["id"], 0, _payload_hex(i))
            assert excinfo.value.status == 507
            assert excinfo.value.code == "E_SPARE_EXHAUSTED"
        finally:
            client.delete_device(dev["id"])


class TestJobs:
    def _poll(self, client, job_id, timeout=60.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            job = client.get_job(job_id)
            if job["state"] in ("done", "failed"):
                return job
            time.sleep(0.05)
        raise AssertionError(f"job {job_id} did not settle in {timeout}s")

    def test_bler_job(self, client):
        accepted = client.submit_job("bler", cers=[1e-3], n_blocks=200, seed=1)
        assert accepted["code"] == "ACCEPTED"
        assert accepted["state"] in ("queued", "running")
        job = self._poll(client, accepted["job_id"])
        assert job["state"] == "done"
        (point,) = job["result"]["points"]
        assert point["cer"] == 1e-3
        assert point["n_blocks"] == 200
        assert 0.0 <= point["bler"] <= 1.0

    def test_job_listing(self, client):
        accepted = client.submit_job("bler", cers=[1e-3], n_blocks=50, seed=2)
        ids = [j["job_id"] for j in client.request("GET", "/v1/jobs")["jobs"]]
        assert accepted["job_id"] in ids

    def test_job_validation(self, client):
        with pytest.raises(ServiceResponseError) as excinfo:
            client.submit_job("mine-bitcoin")
        assert excinfo.value.code == "E_JOB_KIND"
        with pytest.raises(ServiceResponseError):
            client.submit_job("bler", cers=[])
        with pytest.raises(ServiceResponseError):
            client.submit_job("bler", cers=[2.0], n_blocks=10)
        with pytest.raises(ServiceResponseError):
            client.submit_job("campaign", name="no-such-campaign")
        with pytest.raises(ServiceResponseError) as excinfo:
            client.get_job("job-9999")
        assert excinfo.value.code == "E_JOB_NOT_FOUND"

    def test_campaign_job(self, client):
        accepted = client.submit_job("campaign", name="smoke", n_samples=1000)
        job = self._poll(client, accepted["job_id"], timeout=120.0)
        assert job["state"] == "done", job.get("error")
        assert job["result"]["ok"] is True
        assert all(s == "done" for s in job["result"]["states"].values())


class TestBackpressure:
    def test_queue_full_503(self):
        runner = ServiceRunner(
            ServiceConfig(port=0, batch_max=2, queue_depth=2, batch_deadline_ms=1.0)
        )
        runner.start()
        try:
            with ServiceClient(runner.base_url) as c:
                dev = c.create_device(n_blocks=4, seed=0)["device"]
                runner.app.batcher.hold()  # nothing flushes: queue must fill
                import threading

                held = [
                    threading.Thread(
                        target=lambda b=b: ServiceClient(runner.base_url).write_block(
                            dev["id"], b, _payload_hex(b)
                        ),
                        daemon=True,
                    )
                    for b in range(2)
                ]
                for t in held:
                    t.start()
                deadline = time.monotonic() + 10.0
                while runner.app.batcher.queue.depth < 2:
                    assert time.monotonic() < deadline, "queue never filled"
                    time.sleep(0.01)
                with pytest.raises(ServiceResponseError) as excinfo:
                    c.write_block(dev["id"], 3, _payload_hex(3))
                assert excinfo.value.status == 503
                assert excinfo.value.code == "E_QUEUE_FULL"
                runner.app.batcher.release()
                for t in held:
                    t.join(timeout=10.0)
                assert c.metrics()["batching"]["rejected"] == 1
        finally:
            runner.stop()


class TestHttpDifferential:
    """Service responses == direct batch-kernel execution, bit for bit."""

    def test_http_matches_direct_device(self):
        seed, n_blocks = 424242, 8
        runner = ServiceRunner(ServiceConfig(port=0, batch_deadline_ms=0.5))
        runner.start()
        try:
            with ServiceClient(runner.base_url) as c:
                dev = c.create_device(n_blocks=n_blocks, seed=seed)["device"]
                twin = VirtualDevice("twin", seed, n_blocks)

                # interleaved writes/reads at explicit virtual times,
                # including a rewrite (epoch 1) and post-drift reads
                script = [
                    ("write", 0, 0.0, 1),
                    ("write", 1, 0.0, 2),
                    ("read", 0, 0.0, None),
                    ("write", 0, 0.0, 3),  # rewrite -> epoch 1
                    ("read", 0, 0.0, None),
                    ("advance", None, 1e6, None),
                    ("read", 0, 1e6, None),
                    ("read", 1, 1e6, None),
                    ("write", 2, 1e6, 4),
                    ("read", 2, 1e6, None),
                ]
                for kind, block, t, data_seed in script:
                    if kind == "advance":
                        c.advance_clock(dev["id"], advance_to=t)
                        twin.clock.advance_to(t)
                        continue
                    if kind == "write":
                        data = _payload_hex(data_seed)
                        http_out = c.write_block(dev["id"], block, data, t=t)
                        bits = np.random.default_rng(data_seed).integers(
                            0, 2, size=512, dtype=np.uint8
                        )
                        (direct,) = execute_batch(
                            [IoOp("write", twin, block, t, bits=bits)]
                        )
                    else:
                        http_out = c.read_block(dev["id"], block, t=t)
                        (direct,) = execute_batch([IoOp("read", twin, block, t)])
                    assert http_out == direct, (kind, block, t)

                # Same request history => same full simulated state.
                assert c.digest(dev["id"])["digest"] == twin.state_digest()
        finally:
            runner.stop()
