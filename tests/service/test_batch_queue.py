"""Batching queue and batch-execution semantics.

The load-bearing suite of the service: flush policy under a hand-cranked
clock (no sleeps), FIFO and backpressure behaviour, and — the contract
everything else rests on — *bit identity* between batched and sequential
execution, including the adversarial arrangements (several writes to the
same block in one batch, reads submitted before and after those writes).
"""

import asyncio

import numpy as np
import pytest

from repro.service.batching import (
    BatchQueue,
    DynamicBatcher,
    IoOp,
    QueueFull,
    execute_batch,
)
from repro.service.clock import ManualClock
from repro.service.codes import ServiceError
from repro.service.device import VirtualDevice
from repro.service.wire import bits_to_hex


def _payload(seed: int, n_bits: int = 512) -> np.ndarray:
    return np.random.default_rng(seed).integers(0, 2, size=n_bits, dtype=np.uint8)


def _write(device: VirtualDevice, block: int, seed: int, t: float = 0.0) -> IoOp:
    return IoOp("write", device, block, t, bits=_payload(seed))


def _read(device: VirtualDevice, block: int, t: float = 0.0) -> IoOp:
    return IoOp("read", device, block, t)


# ---------------------------------------------------------------------------
# BatchQueue policy (sans-io, ManualClock)
# ---------------------------------------------------------------------------

class TestBatchQueue:
    def test_flush_by_size(self):
        clock = ManualClock()
        q = BatchQueue(max_batch=3, deadline_s=10.0, clock=clock)
        dev = VirtualDevice("d", 0, 4)
        for i in range(2):
            q.submit(_read(dev, i))
        assert not q.ready()  # 2 < max_batch and deadline far away
        q.submit(_read(dev, 2))
        assert q.ready()  # size threshold reached, clock never moved
        batch = q.take(reason="size")
        assert [op.block for op in batch] == [0, 1, 2]
        assert q.stats.flushes_size == 1
        assert q.stats.batch_size_hist[3] == 1

    def test_flush_by_deadline(self):
        clock = ManualClock()
        q = BatchQueue(max_batch=64, deadline_s=0.5, clock=clock)
        dev = VirtualDevice("d", 0, 4)
        q.submit(_read(dev, 0))
        assert not q.ready()
        clock.advance(0.49)
        assert not q.ready()
        clock.advance(0.02)  # oldest op is now past its deadline
        assert q.ready()
        batch = q.take(reason="deadline")
        assert len(batch) == 1
        assert q.stats.flushes_deadline == 1

    def test_deadline_tracks_oldest_op(self):
        clock = ManualClock()
        q = BatchQueue(max_batch=64, deadline_s=1.0, clock=clock)
        dev = VirtualDevice("d", 0, 4)
        q.submit(_read(dev, 0))
        clock.advance(0.8)
        q.submit(_read(dev, 1))  # newer op must not push the deadline out
        assert q.next_deadline() == pytest.approx(1.0)
        clock.advance(0.3)
        assert q.ready()

    def test_fifo_order_across_takes(self):
        q = BatchQueue(max_batch=2, deadline_s=0.0, clock=ManualClock())
        dev = VirtualDevice("d", 0, 8)
        for i in range(5):
            q.submit(_read(dev, i))
        order = [op.block for op in q.take()] + [op.block for op in q.take()]
        order += [op.block for op in q.take()]
        assert order == [0, 1, 2, 3, 4]

    def test_backpressure(self):
        q = BatchQueue(max_batch=2, deadline_s=1.0, max_depth=3, clock=ManualClock())
        dev = VirtualDevice("d", 0, 8)
        for i in range(3):
            q.submit(_read(dev, i))
        with pytest.raises(QueueFull):
            q.submit(_read(dev, 3))
        assert q.stats.rejected == 1
        assert q.stats.submitted == 3
        q.take()  # frees room
        q.submit(_read(dev, 3))

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchQueue(max_batch=0)
        with pytest.raises(ValueError):
            BatchQueue(deadline_s=-1.0)
        with pytest.raises(ValueError):
            BatchQueue(max_batch=8, max_depth=4)


# ---------------------------------------------------------------------------
# Bit identity: batched == sequential
# ---------------------------------------------------------------------------

def _run_sequential(device: VirtualDevice, ops: list[IoOp]) -> list[dict]:
    """Reference semantics: each op in its own batch, in queue order."""
    results = []
    for op in ops:
        results.extend(execute_batch([op]))
    return results


def _strip_errors(results: list[dict]) -> list[dict]:
    """Make error entries comparable (ServiceError has no __eq__)."""
    out = []
    for r in results:
        err = r.get("error")
        if err is not None:
            out.append({"error": (err.code, str(err), err.detail)})
        else:
            out.append(r)
    return out


class TestBitIdentity:
    def _twins(self, seed=123, n_blocks=16, **kwargs):
        # Same id on purpose: ids label error payloads, and the payloads
        # must compare equal between the two execution paths.
        return (
            VirtualDevice("dev", seed, n_blocks, **kwargs),
            VirtualDevice("dev", seed, n_blocks, **kwargs),
        )

    def _check(self, build_ops):
        """Run the same op sequence batched and sequential; compare all."""
        dev_seq, dev_bat = self._twins()
        seq = _run_sequential(dev_seq, build_ops(dev_seq))
        bat = execute_batch(build_ops(dev_bat))
        assert _strip_errors(seq) == _strip_errors(bat)
        assert dev_seq.state_digest() == dev_bat.state_digest()
        return bat

    def test_writes_then_reads(self):
        def ops(dev):
            writes = [_write(dev, b, seed=b) for b in range(8)]
            reads = [_read(dev, b) for b in range(8)]
            return writes + reads

        results = self._check(ops)
        for b, r in enumerate(results[8:]):
            assert r["data"] == bits_to_hex(_payload(b))

    def test_duplicate_block_writes_keep_queue_order(self):
        # Two writes to one block in a single batch: the later one must
        # win, with the same epochs (hence the same RNG draws) as
        # sequential execution.
        def ops(dev):
            return [
                _write(dev, 3, seed=1),
                _write(dev, 3, seed=2),
                _read(dev, 3),
            ]

        results = self._check(ops)
        assert results[0]["epoch"] == 0
        assert results[1]["epoch"] == 1
        assert results[2]["data"] == bits_to_hex(_payload(2))

    def test_read_before_write_sees_old_data(self):
        # A read queued BEFORE a write to the same block must observe the
        # pre-write data even when both land in one batch (the case that
        # forces segment partitioning in execute_batch).
        def ops(dev):
            setup = [_write(dev, 5, seed=10)]
            return setup + [
                _read(dev, 5),  # must see seed=10 data
                _write(dev, 5, seed=11),
                _read(dev, 5),  # must see seed=11 data
            ]

        results = self._check(ops)
        assert results[1]["data"] == bits_to_hex(_payload(10))
        assert results[3]["data"] == bits_to_hex(_payload(11))

    def test_mixed_devices_and_times(self):
        dev_a_seq, dev_a_bat = self._twins(seed=1)
        dev_b_seq, dev_b_bat = self._twins(seed=2, n_blocks=4)

        def ops(da, db):
            return [
                _write(da, 0, seed=5, t=0.0),
                _write(db, 0, seed=6, t=0.0),
                _read(da, 0, t=100.0),
                _read(db, 0, t=1000.0),
                _write(da, 0, seed=7, t=2000.0),
                _read(da, 0, t=2000.0),
            ]

        seq = _run_sequential(None, ops(dev_a_seq, dev_b_seq))
        bat = execute_batch(ops(dev_a_bat, dev_b_bat))
        assert _strip_errors(seq) == _strip_errors(bat)
        assert dev_a_seq.state_digest() == dev_a_bat.state_digest()
        assert dev_b_seq.state_digest() == dev_b_bat.state_digest()

    def test_unwritten_read_errors_match(self):
        def ops(dev):
            return [_read(dev, 0), _write(dev, 0, seed=3), _read(dev, 0)]

        results = self._check(ops)
        assert results[0]["error"].code == "E_BLOCK_NOT_WRITTEN"
        assert results[2]["data"] == bits_to_hex(_payload(3))

    def test_wearout_state_identical(self):
        # Accelerated wearout: marks and revives draw from the per-write
        # RNG, so wear state after a batched history must equal the
        # sequential one exactly.
        from repro.cells.faults import WearoutModel

        wearout = WearoutModel(
            mean_endurance=4.0, endurance_sigma=0.2, p_stuck_reset=1.0, p_revive=0.0
        )
        dev_seq = VirtualDevice("dev", 7, 4, wearout=wearout)
        dev_bat = VirtualDevice("dev", 7, 4, wearout=wearout)

        def ops(dev):
            out = []
            for round_i in range(6):
                out.extend(_write(dev, b, seed=round_i * 4 + b) for b in range(4))
            return out

        seq = _run_sequential(dev_seq, ops(dev_seq))
        bat = execute_batch(ops(dev_bat))
        assert _strip_errors(seq) == _strip_errors(bat)
        assert dev_seq.state_digest() == dev_bat.state_digest()
        assert dev_seq.describe()["wear"] == dev_bat.describe()["wear"]


# ---------------------------------------------------------------------------
# DynamicBatcher (asyncio)
# ---------------------------------------------------------------------------

class TestDynamicBatcher:
    def test_size_flush_coalesces(self):
        async def scenario():
            dev = VirtualDevice("d", 0, 8)
            batcher = DynamicBatcher(BatchQueue(max_batch=4, deadline_s=60.0))
            try:
                writes = [batcher.submit(_write(dev, b, seed=b)) for b in range(4)]
                results = await asyncio.wait_for(asyncio.gather(*writes), timeout=10)
                assert [r["code"] for r in results] == ["OK"] * 4
                # One size-triggered flush of exactly 4 — the 60s deadline
                # proves it wasn't time that flushed it.
                assert batcher.queue.stats.flushes_size == 1
                assert batcher.queue.stats.batch_size_hist[4] == 1
            finally:
                await batcher.close()

        asyncio.run(scenario())

    def test_deadline_flush(self):
        async def scenario():
            dev = VirtualDevice("d", 0, 8)
            batcher = DynamicBatcher(BatchQueue(max_batch=64, deadline_s=0.01))
            try:
                op = _write(dev, 0, seed=1)
                result = await asyncio.wait_for(batcher.submit(op), timeout=10)
                assert result["code"] == "OK"
                assert batcher.queue.stats.flushes_deadline >= 1
            finally:
                await batcher.close()

        asyncio.run(scenario())

    def test_hold_backpressure_and_release(self):
        async def scenario():
            dev = VirtualDevice("d", 0, 8)
            batcher = DynamicBatcher(
                BatchQueue(max_batch=2, deadline_s=0.0, max_depth=2)
            )
            batcher.hold()
            try:
                pending = [
                    asyncio.ensure_future(batcher.submit(_write(dev, b, seed=b)))
                    for b in range(2)
                ]
                await asyncio.sleep(0)  # let submissions enqueue
                with pytest.raises(ServiceError) as excinfo:
                    await batcher.submit(_write(dev, 2, seed=2))
                assert excinfo.value.code == "E_QUEUE_FULL"
                assert all(not f.done() for f in pending)  # held, not lost
                batcher.release()
                results = await asyncio.wait_for(asyncio.gather(*pending), timeout=10)
                assert [r["code"] for r in results] == ["OK", "OK"]
            finally:
                await batcher.close()

        asyncio.run(scenario())

    def test_uncorrectable_surfaces_as_service_error(self):
        async def scenario():
            dev = VirtualDevice("d", 0, 8)
            batcher = DynamicBatcher(BatchQueue(max_batch=1, deadline_s=0.0))
            try:
                with pytest.raises(ServiceError) as excinfo:
                    await asyncio.wait_for(batcher.submit(_read(dev, 0)), timeout=10)
                assert excinfo.value.code == "E_BLOCK_NOT_WRITTEN"
            finally:
                await batcher.close()

        asyncio.run(scenario())

    def test_close_drains_pending_ops(self):
        async def scenario():
            dev = VirtualDevice("d", 0, 8)
            batcher = DynamicBatcher(BatchQueue(max_batch=64, deadline_s=120.0))
            pending = [
                asyncio.ensure_future(batcher.submit(_write(dev, b, seed=b)))
                for b in range(3)
            ]
            await asyncio.sleep(0)
            await batcher.close()  # deadline far away: close must flush
            results = await asyncio.gather(*pending)
            assert [r["code"] for r in results] == ["OK"] * 3
            assert batcher.queue.stats.flushes_drain >= 1
            with pytest.raises(ServiceError) as excinfo:
                await batcher.submit(_write(dev, 3, seed=3))
            assert excinfo.value.code == "E_SHUTTING_DOWN"

        asyncio.run(scenario())

    def test_run_serialized(self):
        async def scenario():
            dev = VirtualDevice("d", 0, 8)
            batcher = DynamicBatcher(BatchQueue(max_batch=1, deadline_s=0.0))
            try:
                described = await batcher.run_serialized(dev.describe)
                assert described["n_blocks"] == 8
            finally:
                await batcher.close()

        asyncio.run(scenario())
