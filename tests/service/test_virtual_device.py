"""Virtual-time device engine: drift, wear, determinism, validation."""

import numpy as np
import pytest

from repro.cells.faults import WearoutModel
from repro.service.codes import ServiceError
from repro.service.device import DeviceRegistry, VirtualDevice
from repro.wearout.mark_and_spare import SpareExhausted

SECONDS_PER_YEAR = 365.25 * 86400.0


def _payload(seed: int, n_bits: int = 512) -> np.ndarray:
    return np.random.default_rng(seed).integers(0, 2, size=n_bits, dtype=np.uint8)


def _read_data(device: VirtualDevice, block: int, t: float) -> np.ndarray:
    """Direct read through the batch codec (no queue)."""
    device.require_written(block)
    states, slc = device.sense_rows(np.array([block]), np.array([t]))
    decoded = device.codec.decode(states, slc)
    assert not decoded.uncorrectable[0]
    return decoded.data_bits[0]


class TestDeterminism:
    def test_same_history_same_digest(self):
        histories = []
        for _ in range(2):
            dev = VirtualDevice("dev", 99, 8)
            for b in range(4):
                dev.write_block(b, _payload(b), t=0.0)
            dev.clock.advance(1000.0)
            dev.write_block(0, _payload(17), t=1000.0)
            histories.append(dev.state_digest())
        assert histories[0] == histories[1]

    def test_seed_changes_digest(self):
        a = VirtualDevice("a", 1, 4)
        b = VirtualDevice("b", 2, 4)
        a.write_block(0, _payload(0), t=0.0)
        b.write_block(0, _payload(0), t=0.0)
        assert a.state_digest() != b.state_digest()

    def test_rewrite_epoch_changes_draws(self):
        # Writing the same data twice redraws programming noise under a
        # new epoch: the analog state must differ even if data matches.
        dev = VirtualDevice("dev", 5, 2)
        dev.write_block(0, _payload(1), t=0.0)
        lr_first = dev.drifted_lr(np.array([0]), np.array([0.0])).copy()
        dev.write_block(0, _payload(1), t=0.0)
        lr_second = dev.drifted_lr(np.array([0]), np.array([0.0]))
        assert not np.array_equal(lr_first, lr_second)


class TestDrift:
    def test_roundtrip_at_program_time(self):
        dev = VirtualDevice("dev", 3, 4)
        data = _payload(7)
        dev.write_block(1, data, t=0.0)
        assert np.array_equal(_read_data(dev, 1, 0.0), data)

    def test_resistance_drifts_upward(self):
        dev = VirtualDevice("dev", 3, 4)
        dev.write_block(0, _payload(0), t=0.0)
        lr_now = dev.drifted_lr(np.array([0]), np.array([0.0]))
        lr_year = dev.drifted_lr(np.array([0]), np.array([SECONDS_PER_YEAR]))
        # Drift only ever increases log-resistance (alpha >= 0).
        assert (lr_year >= lr_now - 1e-12).all()
        assert lr_year.mean() > lr_now.mean()

    def test_decode_survives_a_year(self):
        # The paper's operating point: 3-ON-2 + BCH-1 keeps a block
        # readable after a year of drift.
        dev = VirtualDevice("dev", 11, 4)
        data = _payload(21)
        dev.write_block(2, data, t=0.0)
        dev.clock.advance(SECONDS_PER_YEAR)
        assert np.array_equal(_read_data(dev, 2, SECONDS_PER_YEAR), data)

    def test_reads_at_distinct_virtual_times(self):
        # Two reads of one block at different t: drift between them is
        # fully determined by the timestamps, not by wall time.
        dev = VirtualDevice("dev", 13, 2)
        dev.write_block(0, _payload(2), t=0.0)
        lr_a = dev.drifted_lr(np.array([0]), np.array([1e4]))
        lr_b = dev.drifted_lr(np.array([0]), np.array([1e4]))
        assert np.array_equal(lr_a, lr_b)


class TestVirtualTime:
    def test_bind_time_defaults_to_clock(self):
        dev = VirtualDevice("dev", 0, 2)
        dev.clock.advance(42.0)
        assert dev.bind_time(None) == 42.0

    def test_time_regression_rejected(self):
        dev = VirtualDevice("dev", 0, 2)
        dev.clock.advance(100.0)
        with pytest.raises(ServiceError) as excinfo:
            dev.bind_time(99.0)
        assert excinfo.value.code == "E_TIME_REGRESSION"

    def test_bad_timestamps_rejected(self):
        dev = VirtualDevice("dev", 0, 2)
        for bad in (-1.0, float("nan"), float("inf")):
            with pytest.raises(ServiceError) as excinfo:
                dev.bind_time(bad)
            assert excinfo.value.code in ("E_BAD_REQUEST", "E_TIME_REGRESSION")

    def test_clock_never_rewinds(self):
        dev = VirtualDevice("dev", 0, 2)
        dev.clock.advance_to(50.0)
        with pytest.raises(ValueError):
            dev.clock.advance_to(10.0)
        with pytest.raises(ValueError):
            dev.clock.advance(-1.0)


class TestWearout:
    # A wide endurance spread (sigma is in decades) makes individual
    # cells die one at a time, so marks accumulate gradually before the
    # budget runs out.  Verify retries reprogram (and further wear) the
    # whole block, so exhaustion follows within a few more writes.
    WEAROUT = WearoutModel(
        mean_endurance=200.0, endurance_sigma=0.6, p_stuck_reset=1.0, p_revive=0.0
    )

    def test_wear_accumulates_until_exhaustion(self):
        dev = VirtualDevice("dev", 7, 1, wearout=self.WEAROUT)
        saw_marks = False
        with pytest.raises(SpareExhausted):
            for i in range(400):
                out = dev.write_block(0, _payload(i), t=0.0)
                saw_marks = saw_marks or out["marked_pairs"] > 0
        assert saw_marks  # wear was gradual, not a cliff
        assert dev.stats.spare_exhausted_writes == 1
        assert dev.stats.wearout_marks >= 1
        wear = dev.describe()["wear"]
        assert wear["blocks_at_budget"] == 1
        assert wear["stuck_cells"] >= 1

    def test_exhausted_block_unreadable_until_rewritten(self):
        dev = VirtualDevice("dev", 7, 1, wearout=self.WEAROUT)
        with pytest.raises(SpareExhausted):
            for i in range(400):
                dev.write_block(0, _payload(i), t=0.0)
        with pytest.raises(ServiceError) as excinfo:
            dev.require_written(0)
        assert excinfo.value.code == "E_BLOCK_NOT_WRITTEN"

    def test_healthy_device_never_marks(self):
        dev = VirtualDevice("dev", 7, 2)  # default 1e5 endurance
        for i in range(20):
            out = dev.write_block(0, _payload(i), t=0.0)
            assert out["marked_pairs"] == 0
            assert out["retries"] == 0


class TestValidation:
    def test_block_range(self):
        dev = VirtualDevice("dev", 0, 4)
        with pytest.raises(ServiceError) as excinfo:
            dev.check_block(4)
        assert excinfo.value.code == "E_BLOCK_RANGE"
        with pytest.raises(ServiceError):
            dev.check_block(-1)

    def test_unwritten_block(self):
        dev = VirtualDevice("dev", 0, 4)
        with pytest.raises(ServiceError) as excinfo:
            dev.require_written(2)
        assert excinfo.value.code == "E_BLOCK_NOT_WRITTEN"

    def test_needs_a_block(self):
        with pytest.raises(ServiceError):
            VirtualDevice("dev", 0, 0)


class TestRegistry:
    def test_create_get_delete(self):
        reg = DeviceRegistry()
        dev = reg.create(0, 4)
        assert dev.device_id == "dev-0001"
        assert reg.get(dev.device_id) is dev
        assert len(reg) == 1
        reg.delete(dev.device_id)
        assert len(reg) == 0
        with pytest.raises(ServiceError) as excinfo:
            reg.get(dev.device_id)
        assert excinfo.value.code == "E_DEVICE_NOT_FOUND"

    def test_ids_never_reused(self):
        reg = DeviceRegistry()
        first = reg.create(0, 4)
        reg.delete(first.device_id)
        second = reg.create(0, 4)
        assert second.device_id != first.device_id

    def test_describe_fields(self):
        reg = DeviceRegistry()
        dev = reg.create(9, 8)
        d = dev.describe()
        assert d["n_blocks"] == 8
        assert d["data_bits"] == 512
        assert d["cells_per_block"] == 354
        assert d["slc_cells_per_block"] == 10
        assert d["virtual_time"] == 0.0
        assert d["blocks_written"] == 0
