"""Wearout fault model distributions."""

import numpy as np
import pytest

from repro.cells.faults import (
    MLC_ENDURANCE_CYCLES,
    SLC_ENDURANCE_CYCLES,
    FaultMode,
    WearoutModel,
)


class TestEnduranceConstants:
    def test_paper_values(self):
        """Section 6.4: 1e5 cycles (MLC) vs 1e8 (SLC)."""
        assert MLC_ENDURANCE_CYCLES == 1e5
        assert SLC_ENDURANCE_CYCLES == 1e8


class TestWearoutModel:
    def test_endurance_lognormal_median(self):
        m = WearoutModel(mean_endurance=1e5, endurance_sigma=0.25)
        e = m.sample_endurance(np.random.default_rng(0), 100_000)
        assert np.median(e) == pytest.approx(1e5, rel=0.05)

    def test_endurance_spread(self):
        m = WearoutModel(endurance_sigma=0.25)
        e = m.sample_endurance(np.random.default_rng(1), 100_000)
        assert np.std(np.log10(e)) == pytest.approx(0.25, rel=0.05)

    def test_all_positive(self):
        m = WearoutModel()
        e = m.sample_endurance(np.random.default_rng(2), 10_000)
        assert e.min() > 0

    def test_mode_mix(self):
        m = WearoutModel(p_stuck_reset=0.7)
        modes = m.sample_modes(np.random.default_rng(3), 100_000)
        frac_reset = np.mean(modes == FaultMode.STUCK_RESET.value)
        assert frac_reset == pytest.approx(0.7, abs=0.01)
        assert set(np.unique(modes)) <= {
            FaultMode.STUCK_RESET.value,
            FaultMode.STUCK_SET.value,
        }

    def test_revive_probability(self):
        m = WearoutModel(p_revive=0.9)
        ok = m.revive(np.random.default_rng(4), 100_000)
        assert np.mean(ok) == pytest.approx(0.9, abs=0.01)

    def test_deterministic_given_rng(self):
        m = WearoutModel()
        a = m.sample_endurance(np.random.default_rng(5), 100)
        b = m.sample_endurance(np.random.default_rng(5), 100)
        assert np.array_equal(a, b)
