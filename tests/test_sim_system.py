"""System simulation: core model, energy accounting, Figure 16 runner."""

import pytest

from repro.sim.config import MachineConfig, PAPER_VARIANTS
from repro.sim.core import run_trace
from repro.sim.energy import EnergyBreakdown, account_energy
from repro.sim.pcm_timing import OpCounts
from repro.sim.runner import run_fig16, run_variant
from repro.workloads.spec_like import PAPER_WORKLOADS, make_workload
from repro.workloads.synthetic import (
    pointer_chase_trace,
    random_trace,
    stream_trace,
)

MACHINE = MachineConfig()


class TestEnergy:
    def test_accounting(self):
        counts = OpCounts(reads=10, writes=5, refreshes=2)
        e = account_energy(counts, MACHINE)
        assert e.read_nj == pytest.approx(10 * 2.2)
        assert e.write_nj == pytest.approx(5 * 24.0)
        assert e.refresh_nj == pytest.approx(2 * 26.2)
        assert e.total_nj == pytest.approx(e.read_nj + e.write_nj + e.refresh_nj)

    def test_power(self):
        e = EnergyBreakdown(10.0, 10.0, 0.0)
        assert e.power_w(20.0) == pytest.approx(1.0)  # 20 nJ / 20 ns = 1 W
        with pytest.raises(ValueError):
            e.power_w(0.0)


class TestRunTrace:
    def test_compute_bound_time_is_sum_of_gaps(self):
        tr = random_trace(5000, 64, write_fraction=0.0, gap_ns=10.0, seed=0)
        res = run_trace(tr, MACHINE, PAPER_VARIANTS["3LC"])
        floor = 5000 * (10.0 + MACHINE.l1_hit_ns)
        assert res.exec_time_ns == pytest.approx(floor, rel=0.1)
        assert res.pcm_reads <= 64

    def test_memory_bound_sees_pcm_latency(self):
        tr = pointer_chase_trace(3000, 500_000, gap_ns=5.0, seed=1)
        res = run_trace(tr, MACHINE, PAPER_VARIANTS["3LC"])
        # nearly every access misses everything and serializes on PCM reads
        assert res.exec_time_ns > 3000 * 150
        assert res.l2_miss_rate > 0.9

    def test_read_adder_visible_in_dependent_reads(self):
        tr = pointer_chase_trace(3000, 500_000, gap_ns=5.0, seed=2)
        t3 = run_trace(tr, MACHINE, PAPER_VARIANTS["3LC"]).exec_time_ns
        t4 = run_trace(tr, MACHINE, PAPER_VARIANTS["4LC-NO-REF"]).exec_time_ns
        per_access = (t4 - t3) / 3000
        assert per_access == pytest.approx(36.25 - 5.0, rel=0.25)

    def test_write_throughput_bounds_streams(self):
        tr = stream_trace(20_000, 600_000, write_fraction=1.0, gap_ns=1.0, seed=3, n_arrays=1)
        res = run_trace(tr, MACHINE, PAPER_VARIANTS["3LC"])
        # ~20k writebacks at 40MB/s = 64B/1.6us each
        assert res.exec_time_ns > res.pcm_writes * 1500
        assert res.write_window_stall_ns > 0

    def test_refresh_slows_write_streams(self):
        tr = stream_trace(20_000, 600_000, write_fraction=1.0, gap_ns=1.0, seed=4, n_arrays=1)
        t_ref = run_trace(tr, MACHINE, PAPER_VARIANTS["4LC-REF"]).exec_time_ns
        t_no = run_trace(tr, MACHINE, PAPER_VARIANTS["4LC-NO-REF"]).exec_time_ns
        assert t_ref > 1.3 * t_no

    def test_refresh_count_scales_with_time(self):
        tr = stream_trace(20_000, 600_000, write_fraction=1.0, gap_ns=1.0, seed=5, n_arrays=1)
        res = run_trace(tr, MACHINE, PAPER_VARIANTS["4LC-REF"])
        expect = res.exec_time_ns / (1024e9 / MACHINE.n_blocks)
        assert res.pcm_refreshes == pytest.approx(expect, rel=0.05)


class TestWorkloads:
    def test_all_profiles_build(self):
        for name in PAPER_WORKLOADS:
            tr = make_workload(name, n_accesses=5000, seed=0)
            assert len(tr) > 0
            assert tr.name.lower().startswith(name.lower()[:3])

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            make_workload("gcc")

    def test_stream_is_write_third(self):
        tr = make_workload("STREAM", 9000)
        assert tr.write_fraction == pytest.approx(1 / 3, abs=0.02)

    def test_lbm_write_heavy(self):
        tr = make_workload("lbm", 9000)
        assert tr.write_fraction == pytest.approx(0.5, abs=0.02)

    def test_mcf_dependent(self):
        tr = make_workload("mcf", 5000)
        assert tr.dependent.mean() > 0.7

    def test_namd_cache_resident(self):
        tr = make_workload("namd", 5000)
        assert int(tr.line_addr.max()) < 256  # fits in L1


class TestFig16:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_fig16(
            workloads=["STREAM", "namd", "mcf"], n_accesses=25_000, seed=0
        )

    def test_baseline_normalized_to_one(self, rows):
        for r in rows:
            assert r.exec_time["4LC-REF"] == 1.0
            assert r.energy["4LC-REF"] == 1.0

    def test_3lc_faster_on_memory_bound(self, rows):
        stream = next(r for r in rows if r.workload == "STREAM")
        assert stream.exec_time["3LC"] < 0.8

    def test_namd_insensitive(self, rows):
        namd = next(r for r in rows if r.workload == "namd")
        assert namd.exec_time["3LC"] == pytest.approx(1.0, abs=0.02)

    def test_no_ref_close_to_3lc(self, rows):
        stream = next(r for r in rows if r.workload == "STREAM")
        assert stream.exec_time["4LC-NO-REF"] == pytest.approx(
            stream.exec_time["3LC"], abs=0.05
        )

    def test_3lc_beats_4lc_no_ref_on_mcf(self, rows):
        """Read-latency-sensitive mcf sees the 36 ns vs 5 ns ECC adder."""
        mcf = next(r for r in rows if r.workload == "mcf")
        assert mcf.exec_time["3LC"] < mcf.exec_time["4LC-NO-REF"] - 0.02

    def test_energy_breakdown_sums(self, rows):
        for r in rows:
            for v, (rd, wr, ref) in r.energy_breakdown.items():
                assert rd + wr + ref == pytest.approx(r.energy[v], rel=1e-6)

    def test_ref_has_refresh_energy(self, rows):
        for r in rows:
            assert r.energy_breakdown["4LC-REF"][2] > 0
            assert r.energy_breakdown["3LC"][2] == 0

    def test_unknown_baseline(self):
        with pytest.raises(ValueError):
            run_fig16(workloads=["namd"], baseline="5LC", n_accesses=100)


class TestVariantRunner:
    def test_run_variant_returns_power(self):
        res = run_variant("namd", PAPER_VARIANTS["3LC"], n_accesses=2000)
        assert res.power_w > 0
        assert res.variant == "3LC"
