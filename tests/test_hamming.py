"""Hamming SEC and Hsiao SEC-DED codes."""

import numpy as np
import pytest

from repro.coding.hamming import HammingSEC, HsiaoSECDED


class TestHammingSEC:
    @pytest.mark.parametrize("k", [4, 11, 26, 57, 120, 708])
    def test_check_bit_count(self, k):
        code = HammingSEC(k)
        assert (1 << code.r) - code.r - 1 >= k
        assert (1 << (code.r - 1)) - (code.r - 1) - 1 < k

    def test_clean_roundtrip(self):
        code = HammingSEC(64)
        rng = np.random.default_rng(0)
        data = rng.integers(0, 2, 64).astype(np.uint8)
        out, n = code.decode(code.encode(data))
        assert np.array_equal(out, data) and n == 0

    def test_corrects_every_single_data_error(self):
        code = HammingSEC(30)
        data = np.random.default_rng(1).integers(0, 2, 30).astype(np.uint8)
        cw = code.encode(data)
        for i in range(30):
            bad = cw.copy()
            bad[i] ^= 1
            out, n = code.decode(bad)
            assert np.array_equal(out, data) and n == 1

    def test_corrects_every_single_check_error(self):
        code = HammingSEC(30)
        data = np.random.default_rng(2).integers(0, 2, 30).astype(np.uint8)
        cw = code.encode(data)
        for i in range(30, code.n):
            bad = cw.copy()
            bad[i] ^= 1
            out, n = code.decode(bad)
            assert np.array_equal(out, data) and n == 1

    def test_wrong_length(self):
        with pytest.raises(ValueError):
            HammingSEC(10).encode(np.zeros(9, dtype=np.uint8))
        with pytest.raises(ValueError):
            HammingSEC(10).decode(np.zeros(3, dtype=np.uint8))

    def test_matches_bch1_overhead_for_paper_message(self):
        """The paper's 708-bit TEC message needs 10 check bits either way."""
        assert HammingSEC(708).r == 10


class TestHsiaoSECDED:
    def test_corrects_all_singles(self):
        code = HsiaoSECDED(32)
        data = np.random.default_rng(3).integers(0, 2, 32).astype(np.uint8)
        cw = code.encode(data)
        for i in range(code.n):
            bad = cw.copy()
            bad[i] ^= 1
            out, n, uncorrectable = code.decode(bad)
            assert not uncorrectable
            assert np.array_equal(out, data) and n == 1

    def test_detects_all_doubles(self):
        code = HsiaoSECDED(16)
        data = np.random.default_rng(4).integers(0, 2, 16).astype(np.uint8)
        cw = code.encode(data)
        for i in range(code.n):
            for j in range(i + 1, code.n):
                bad = cw.copy()
                bad[i] ^= 1
                bad[j] ^= 1
                _, n, uncorrectable = code.decode(bad)
                assert uncorrectable and n == 0, (i, j)

    def test_clean(self):
        code = HsiaoSECDED(64)
        data = np.random.default_rng(5).integers(0, 2, 64).astype(np.uint8)
        out, n, bad = code.decode(code.encode(data))
        assert np.array_equal(out, data) and n == 0 and not bad

    def test_64_bit_uses_8_check_bits(self):
        """The classic (72, 64) Hsiao geometry."""
        assert HsiaoSECDED(64).r == 8

    def test_odd_weight_columns(self):
        code = HsiaoSECDED(64)
        for col in code._data_cols:
            assert bin(int(col)).count("1") % 2 == 1
