"""PCMDevice integration: the full write/drift/read/refresh lifecycle."""

import numpy as np
import pytest

from repro.cells.faults import WearoutModel
from repro.core.device import PCMDevice, SpareExhausted


@pytest.fixture
def data():
    return np.random.default_rng(0).integers(0, 2, 512).astype(np.uint8)


class TestBasicLifecycle:
    @pytest.mark.parametrize("kind", ["3LC", "4LC"])
    def test_write_read(self, kind, data):
        dev = PCMDevice(2, kind, seed=1)
        dev.write(0, data, 0.0)
        out = dev.read(0, 1.0)
        assert np.array_equal(out.data_bits, data)

    def test_read_before_write_rejected(self):
        dev = PCMDevice(1, "3LC", seed=2)
        with pytest.raises(ValueError):
            dev.read(0, 0.0)

    def test_block_bounds(self, data):
        dev = PCMDevice(2, "3LC", seed=3)
        with pytest.raises(IndexError):
            dev.write(5, data, 0.0)

    def test_wrong_data_size(self):
        dev = PCMDevice(1, "3LC", seed=4)
        with pytest.raises(ValueError):
            dev.write(0, np.zeros(100, dtype=np.uint8), 0.0)

    def test_blocks_independent(self, data):
        dev = PCMDevice(3, "3LC", seed=5)
        other = 1 - data
        dev.write(0, data, 0.0)
        dev.write(1, other, 0.0)
        assert np.array_equal(dev.read(0, 1.0).data_bits, data)
        assert np.array_equal(dev.read(1, 1.0).data_bits, other)

    def test_stats_counting(self, data):
        dev = PCMDevice(1, "3LC", seed=6)
        dev.write(0, data, 0.0)
        dev.read(0, 1.0)
        dev.read(0, 2.0)
        assert dev.stats.writes == 1 and dev.stats.reads == 2


class TestRetention:
    def test_3lc_ten_years_unrefreshed(self, data):
        dev = PCMDevice(1, "3LC", seed=7)
        dev.write(0, data, 0.0)
        out = dev.read(0, 3.15e8)  # ten years
        assert np.array_equal(out.data_bits, data)

    def test_4lc_loses_data_after_years(self, data):
        """4LC cells drift beyond BCH-10 if never refreshed (why the paper
        calls unrefreshed 4LC-PCM volatile)."""
        from repro.coding.blockcodec import UncorrectableBlock

        failures = 0
        for seed in range(5):
            dev = PCMDevice(1, "4LC", seed=seed)
            dev.write(0, data, 0.0)
            try:
                out = dev.read(0, 3.15e8)
                if not np.array_equal(out.data_bits, data):
                    failures += 1
            except UncorrectableBlock:
                failures += 1
        assert failures >= 4

    def test_4lc_refresh_preserves_data(self, data):
        dev = PCMDevice(1, "4LC", seed=8)
        dev.write(0, data, 0.0)
        t = 0.0
        for _ in range(20):
            t += 1024.0  # 17-minute refresh
            out = dev.refresh(0, t)
            assert np.array_equal(out.data_bits, data)
        assert dev.stats.refreshes == 20

    def test_scrub_refreshes_written_blocks(self, data):
        dev = PCMDevice(4, "3LC", seed=9)
        dev.write(0, data, 0.0)
        dev.write(2, data, 0.0)
        assert dev.scrub(100.0) == 2


class TestWearout:
    def _worn_model(self):
        return WearoutModel(mean_endurance=4000, endurance_sigma=0.8)

    def test_3lc_marks_and_survives(self, data):
        dev = PCMDevice(2, "3LC", seed=10, wearout=self._worn_model())
        t = 0.0
        for _ in range(40):
            t += 100.0
            dev.write(0, data, t)
            assert np.array_equal(dev.read(0, t).data_bits, data)
        assert dev.stats.wearout_marks > 0

    def test_4lc_ecp_covers_and_survives(self, data):
        dev = PCMDevice(
            2,
            "4LC",
            seed=11,
            wearout=WearoutModel(mean_endurance=2000, endurance_sigma=0.8),
        )
        t = 0.0
        for _ in range(40):
            t += 100.0
            dev.write(0, data, t)
            assert np.array_equal(dev.read(0, t).data_bits, data)
        assert dev.stats.wearout_marks > 0

    def test_spare_exhaustion_raises(self, data):
        dev = PCMDevice(
            1,
            "3LC",
            seed=12,
            wearout=WearoutModel(mean_endurance=20, endurance_sigma=0.05),
        )
        with pytest.raises(SpareExhausted):
            for i in range(40):
                dev.write(0, data, float(i))


class TestConstruction:
    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            PCMDevice(1, "5LC")

    def test_design_kind_mismatch(self):
        from repro.core.designs import four_level_naive

        with pytest.raises(ValueError):
            PCMDevice(1, "3LC", design=four_level_naive())

    def test_needs_blocks(self):
        with pytest.raises(ValueError):
            PCMDevice(0, "3LC")
